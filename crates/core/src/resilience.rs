//! The per-launch recovery ladder: deadlines, bounded retry with
//! deterministic jittered backoff, contained panics, redundant-execution
//! corruption detection and bit-exact backend failover.
//!
//! Brook Auto's certification argument needs evidence of *fault
//! response*, not just fault-free behavior (paper §2 rules d/e). This
//! module is the response half: [`crate::BrookContext`] routes every
//! `run`/`reduce` through [`execute_resilient`] once a fault plan or a
//! [`ResiliencePolicy`] is installed — one `Option` check on the
//! fault-free hot path — and the ladder turns injected (or real) device
//! loss, hangs, panics and corruption back into correct results, each
//! recovery attributed in a [`LaunchResilience`] record.
//!
//! The ladder is sound because of a global Brook invariant the context
//! enforces at classification time: kernels never read their own output
//! (ping-pong streams instead), so re-dispatching a launch is
//! idempotent — retries, redundant execution and failover re-execution
//! all recompute the same values from unchanged inputs.
//!
//! The failover path replays host *shadow* copies of every stream
//! (maintained whenever a policy with `failover` is installed) into a
//! fresh serial CPU backend, re-executes the launch there **and** on the
//! independent AST-walker oracle, and only commits the switch when the
//! two agree bit-for-bit — a failed device can degrade latency, never
//! correctness.

use crate::backend::{BackendExecutor, KernelLaunch};
use crate::cpu::CpuBackend;
use crate::error::{BrookError, Result};
use crate::stream::StreamDesc;
use brook_inject::{
    cancellable_sleep, Backoff, CancelToken, FaultInjector, FaultPlan, LaunchResilience, PreDispatch,
    ResilienceSummary,
};
use brook_lang::{CheckedProgram, ReduceOp};
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// What the recovery ladder is allowed to do about a failed attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePolicy {
    /// Retry budget for transient failures (device loss, timeouts,
    /// contained panics) per launch.
    pub max_retries: u32,
    /// Backoff base in milliseconds for retry number 0.
    pub backoff_base_ms: u64,
    /// Backoff cap in milliseconds.
    pub backoff_cap_ms: u64,
    /// Whole-launch deadline: the ladder gives up (and records a
    /// deadline miss) rather than retry past it. `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Per-attempt watchdog: an attempt (including an injected hang) is
    /// cancelled after this long so the *launch* can still recover
    /// within its deadline. `None` = attempts are unbounded.
    pub attempt_timeout_ms: Option<u64>,
    /// Fail over to the serial CPU backend on persistent device loss
    /// (or transient-retry exhaustion with a device-loss error),
    /// verifying the re-execution bit-exact against the AST oracle.
    /// Enabling this maintains host shadow copies of every stream.
    pub failover: bool,
    /// Re-execute every successful launch and compare outputs bitwise —
    /// the redundant-execution corruption detector. Doubles dispatch
    /// cost; campaigns enable it, latency-sensitive callers don't.
    pub redundant_check: bool,
    /// Contain panics that escape dispatch (unwind-shield + retry).
    /// When false, panics propagate to the caller's shield (the serve
    /// layer's tenant poisoning / circuit breaker).
    pub catch_panics: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 20,
            deadline_ms: None,
            attempt_timeout_ms: Some(1_000),
            failover: true,
            redundant_check: false,
            catch_panics: true,
        }
    }
}

/// The full resilience evidence of a context: every per-launch record
/// still held plus the cumulative summary (the figure
/// `ComplianceReport` carries).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceReport {
    /// Per-launch records (in launch order) not yet drained by
    /// [`crate::BrookContext::take_resilience_records`].
    pub records: Vec<LaunchResilience>,
    /// Cumulative summary over the context's lifetime (survives
    /// draining).
    pub summary: ResilienceSummary,
}

/// Per-context resilience state: the injector executing a fault plan,
/// the recovery policy, the watchdog's cancel token, stream shadows for
/// failover, and the accumulated evidence.
pub(crate) struct ResilienceState {
    pub(crate) injector: Option<FaultInjector>,
    pub(crate) policy: Option<ResiliencePolicy>,
    pub(crate) cancel: CancelToken,
    /// Logical launch counter (runs and reduces share it; retries keep
    /// their launch's index).
    launches: u64,
    records: Vec<LaunchResilience>,
    summary: ResilienceSummary,
    /// Host shadow copies `stream index → (desc, values)`, maintained
    /// only when the policy enables failover. Indices are dense (every
    /// backend allocates sequentially and never frees), so replaying in
    /// order reproduces identical indices on a fresh backend.
    shadows: BTreeMap<usize, (StreamDesc, Vec<f32>)>,
}

impl ResilienceState {
    pub(crate) fn new() -> Self {
        ResilienceState {
            injector: None,
            policy: None,
            cancel: CancelToken::new(),
            launches: 0,
            records: Vec::new(),
            summary: ResilienceSummary::default(),
            shadows: BTreeMap::new(),
        }
    }

    pub(crate) fn install_plan(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
    }

    pub(crate) fn shadows_enabled(&self) -> bool {
        self.policy.as_ref().is_some_and(|p| p.failover)
    }

    /// Registers a freshly created (zero-initialized) stream shadow.
    pub(crate) fn note_stream(&mut self, index: usize, desc: StreamDesc) {
        if self.shadows_enabled() {
            let zeros = vec![0.0; desc.scalar_len()];
            self.shadows.insert(index, (desc, zeros));
        }
    }

    /// Mirrors a host write into the shadow.
    pub(crate) fn note_write(&mut self, index: usize, values: &[f32]) {
        if self.shadows_enabled() {
            if let Some((_, v)) = self.shadows.get_mut(&index) {
                values.clone_into(v);
            }
        }
    }

    pub(crate) fn take_records(&mut self) -> Vec<LaunchResilience> {
        std::mem::take(&mut self.records)
    }

    pub(crate) fn report(&self) -> ResilienceReport {
        ResilienceReport {
            records: self.records.clone(),
            summary: self.summary.clone(),
        }
    }

    pub(crate) fn summary(&self) -> ResilienceSummary {
        self.summary.clone()
    }

    /// Re-reads every shadowed stream from the backend — the
    /// catch-up hook for execution paths that bypass the per-launch
    /// ladder (the graph executor dispatches its fused plan directly).
    pub(crate) fn sync_shadows(&mut self, backend: &mut (dyn BackendExecutor + Send)) -> Result<()> {
        if !self.shadows_enabled() {
            return Ok(());
        }
        for (idx, (_, values)) in self.shadows.iter_mut() {
            *values = backend.read_stream(*idx)?;
        }
        Ok(())
    }

    /// Snapshots shadows for streams created before the policy was
    /// installed (indices `0..count`).
    pub(crate) fn snapshot_missing(
        &mut self,
        backend: &mut (dyn BackendExecutor + Send),
        count: usize,
    ) -> Result<()> {
        if !self.shadows_enabled() {
            return Ok(());
        }
        for idx in 0..count {
            if let std::collections::btree_map::Entry::Vacant(e) = self.shadows.entry(idx) {
                let desc = backend.stream_desc(idx).clone();
                let values = backend.read_stream(idx)?;
                e.insert((desc, values));
            }
        }
        Ok(())
    }
}

/// One unit of resilient work: a kernel launch or a reduction.
pub(crate) enum Work<'l, 'a> {
    Launch(&'l KernelLaunch<'a>),
    Reduce {
        checked: &'a CheckedProgram,
        ir: &'a brook_ir::IrProgram,
        kernel: &'a str,
        op: ReduceOp,
        simd: Option<&'a brook_ir::simd::ReduceKernel>,
        input: usize,
    },
}

impl Work<'_, '_> {
    fn run_on(&self, backend: &mut (dyn BackendExecutor + Send)) -> Result<Option<f32>> {
        match self {
            Work::Launch(l) => backend.dispatch(l).map(|()| None),
            Work::Reduce {
                checked,
                ir,
                kernel,
                op,
                simd,
                input,
            } => backend.reduce(checked, ir, kernel, *op, *simd, *input).map(Some),
        }
    }
}

/// Transient failures: retrying is sound (idempotent dispatch) and
/// plausibly useful.
fn is_transient(e: &BrookError) -> bool {
    matches!(e, BrookError::Timeout(_) | BrookError::DeviceLost(_))
        || matches!(e, BrookError::Gl(gles2_sim::GlError::ContextLost(_)))
}

/// Failures that mean the *device* is gone — the failover trigger.
fn is_device_loss(e: &BrookError) -> bool {
    matches!(e, BrookError::DeviceLost(_)) || matches!(e, BrookError::Gl(gles2_sim::GlError::ContextLost(_)))
}

/// How one attempt ended, from the retry loop's point of view.
enum Attempt {
    Done(Option<f32>),
    /// Transient failure; `true` when a panic was contained (counted
    /// separately from retries in the record).
    Retryable(BrookError, bool),
    Fatal(BrookError),
}

/// Executes one launch (or reduce) through the recovery ladder.
/// Returns `Some(scalar)` for reduces, `None` for launches.
pub(crate) fn execute_resilient(
    backend: &mut Box<dyn BackendExecutor + Send>,
    state: &mut ResilienceState,
    kernel: &str,
    work: Work<'_, '_>,
) -> Result<Option<f32>> {
    let launch_idx = state.launches;
    state.launches += 1;
    let started = Instant::now();
    let deadline = state
        .policy
        .as_ref()
        .and_then(|p| p.deadline_ms)
        .map(|ms| started + Duration::from_millis(ms));
    let mut rec = LaunchResilience {
        launch: launch_idx,
        kernel: kernel.to_string(),
        backend: backend.name().to_string(),
        deadline_met: true,
        ..Default::default()
    };
    let injected_before = state.injector.as_ref().map_or(0, |i| i.injected().len());
    let seed = state.injector.as_ref().map_or(0, |i| i.plan().seed);
    let backoff = {
        let (base, cap) = state
            .policy
            .as_ref()
            .map_or((1, 20), |p| (p.backoff_base_ms, p.backoff_cap_ms));
        // Per-launch jitter stream: reproducible runs have reproducible
        // pauses, but concurrent launches never sleep in lockstep.
        Backoff::new(base, cap, seed ^ launch_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    };
    let max_retries = state.policy.as_ref().map_or(0, |p| p.max_retries);

    let mut attempt_no: u32 = 0;
    let result = loop {
        attempt_no += 1;
        rec.attempts = attempt_no;
        if let Some(d) = deadline {
            if Instant::now() >= d {
                rec.deadline_met = false;
                break Err(BrookError::Timeout(format!(
                    "launch {launch_idx} (`{kernel}`) exceeded its deadline before attempt \
                     {attempt_no}"
                )));
            }
        }
        let attempt_deadline = {
            let watchdog = state
                .policy
                .as_ref()
                .and_then(|p| p.attempt_timeout_ms)
                .map(|ms| Instant::now() + Duration::from_millis(ms));
            match (watchdog, deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        };

        match run_attempt(backend, state, &work, launch_idx, attempt_deadline, &mut rec) {
            Attempt::Done(v) => break Ok(v),
            Attempt::Fatal(e) => break Err(e),
            Attempt::Retryable(e, _panicked) => {
                // A latched persistent loss can't be retried away: fail
                // over now (when allowed) instead of burning the budget.
                let latched = state.injector.as_ref().is_some_and(|i| i.device_lost());
                let may_failover = state.shadows_enabled() && is_device_loss(&e);
                let exhausted = attempt_no > max_retries;
                if may_failover && (latched || exhausted) {
                    match failover(backend, state, kernel, &work, &mut rec) {
                        Ok(v) => break Ok(v),
                        Err(fe) => break Err(fe),
                    }
                }
                if exhausted {
                    break Err(e);
                }
                rec.retries += 1;
                // Jittered backoff, cut short by deadline/cancellation
                // (the next iteration's deadline check then reports the
                // miss).
                cancellable_sleep(backoff.delay(attempt_no - 1), &state.cancel, deadline);
            }
        }
    };

    // Attribution and evidence, success or not.
    rec.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    if let Some(dl_ms) = state.policy.as_ref().and_then(|p| p.deadline_ms) {
        let margin = dl_ms as f64 - rec.elapsed_ms;
        rec.deadline_margin_ms = Some(margin);
        rec.deadline_met = rec.deadline_met && margin >= 0.0;
    }
    if let Some(inj) = state.injector.as_ref() {
        rec.injected = inj.injected()[injected_before..].to_vec();
    }
    state.summary.absorb(&rec);
    state.records.push(rec);

    // Keep failover shadows current: outputs of a successful launch may
    // feed later launches (ping-pong), so they must be replayable.
    if result.is_ok() && state.shadows_enabled() {
        if let Work::Launch(l) = &work {
            for (_, out_idx) in &l.outputs {
                let values = backend.read_stream(*out_idx)?;
                state.note_write(*out_idx, &values);
            }
        }
    }
    result
}

/// One dispatch attempt: pre-dispatch fault evaluation, the (optionally
/// unwind-shielded) dispatch itself, then post-dispatch corruption
/// injection and the redundant-execution check.
fn run_attempt(
    backend: &mut Box<dyn BackendExecutor + Send>,
    state: &mut ResilienceState,
    work: &Work<'_, '_>,
    launch_idx: u64,
    attempt_deadline: Option<Instant>,
    rec: &mut LaunchResilience,
) -> Attempt {
    // Disjoint field borrows: the injector is consulted while the
    // cancel token is polled inside injected sleeps.
    let ResilienceState {
        injector,
        policy,
        cancel,
        ..
    } = state;
    let catch_panics = policy.as_ref().is_some_and(|p| p.catch_panics);
    // Pre-dispatch faults, in schedule order, until the plan lets the
    // attempt proceed (or fails it).
    if let Some(inj) = injector.as_mut() {
        loop {
            match inj.pre_dispatch(launch_idx) {
                PreDispatch::Proceed => break,
                PreDispatch::DeviceLost { persistent } => {
                    if persistent {
                        // Make the loss real on device backends so any
                        // bypassing access fails honestly too.
                        backend.set_device_lost(true);
                    }
                    return Attempt::Retryable(
                        BrookError::DeviceLost(format!(
                            "injected {} device loss at launch {launch_idx}",
                            if persistent { "persistent" } else { "transient" },
                        )),
                        false,
                    );
                }
                PreDispatch::Panic => {
                    if catch_panics {
                        rec.panics_caught += 1;
                        return Attempt::Retryable(
                            BrookError::Internal(format!(
                                "injected worker panic at launch {launch_idx} (contained)"
                            )),
                            true,
                        );
                    }
                    panic!("brook-inject: injected worker panic at launch {launch_idx}");
                }
                PreDispatch::Latency { millis } => {
                    if !cancellable_sleep(Duration::from_millis(millis), cancel, attempt_deadline) {
                        return Attempt::Retryable(
                            BrookError::Timeout(format!(
                                "attempt cancelled during injected {millis}ms latency spike \
                                 at launch {launch_idx}"
                            )),
                            false,
                        );
                    }
                    // Spike absorbed; keep polling the schedule.
                }
                PreDispatch::Hang => {
                    // A wedged device: sleep until the watchdog cancels
                    // the attempt or its deadline passes. Unbounded when
                    // neither exists — exactly the failure mode the
                    // serve watchdog (and the policy's attempt timeout)
                    // were built to cover.
                    while cancellable_sleep(Duration::from_secs(3600), cancel, attempt_deadline) {}
                    return Attempt::Retryable(
                        BrookError::Timeout(format!(
                            "injected hang at launch {launch_idx} cancelled by the watchdog"
                        )),
                        false,
                    );
                }
            }
        }
    }

    // The dispatch itself, unwind-shielded when the policy asks for it.
    let dispatched: Result<Option<f32>> = if catch_panics {
        match panic::catch_unwind(AssertUnwindSafe(|| work.run_on(backend.as_mut()))) {
            Ok(r) => r,
            Err(_) => {
                rec.panics_caught += 1;
                return Attempt::Retryable(
                    BrookError::Internal(format!(
                        "panic during dispatch of launch {launch_idx} (contained by the \
                         recovery shield)"
                    )),
                    true,
                );
            }
        }
    } else {
        work.run_on(backend.as_mut())
    };
    let value = match dispatched {
        Ok(v) => v,
        Err(e) if is_transient(&e) => return Attempt::Retryable(e, false),
        Err(e) => return Attempt::Fatal(e),
    };

    // Post-dispatch: transient result corruption + redundant execution.
    if let Work::Launch(l) = work {
        if let Some((out, block, xor)) = injector.as_mut().and_then(|i| i.corruption(launch_idx)) {
            let (_, stream_idx) = &l.outputs[out.min(l.outputs.len() - 1)];
            if let Err(e) = corrupt_stream(backend.as_mut(), *stream_idx, block, xor) {
                return Attempt::Fatal(e);
            }
        }
        if policy.as_ref().is_some_and(|p| p.redundant_check) {
            match redundant_check(backend.as_mut(), l) {
                Ok(true) => rec.corruptions_detected += 1,
                Ok(false) => {}
                Err(e) if is_transient(&e) => return Attempt::Retryable(e, false),
                Err(e) => return Attempt::Fatal(e),
            }
        }
    }
    Attempt::Done(value)
}

/// Flips `xor` into every element of lane block `block` of a stream —
/// the injected transient bit-flip redundant execution must catch.
fn corrupt_stream(
    backend: &mut (dyn BackendExecutor + Send),
    stream: usize,
    block: usize,
    xor: u32,
) -> Result<()> {
    let mut values = backend.read_stream(stream)?;
    let span = brook_ir::lanes::block_span(block, values.len());
    for v in &mut values[span] {
        *v = f32::from_bits(v.to_bits() ^ xor);
    }
    backend.write_stream(stream, &values)
}

/// Redundant execution: re-dispatch (inputs are unchanged — kernels
/// never read their own output) and compare all outputs bitwise against
/// the first execution. Returns `true` when a divergence was detected;
/// either way the streams end up holding the freshly recomputed values.
fn redundant_check(backend: &mut (dyn BackendExecutor + Send), launch: &KernelLaunch<'_>) -> Result<bool> {
    let mut first: Vec<Vec<u32>> = Vec::with_capacity(launch.outputs.len());
    for (_, idx) in &launch.outputs {
        first.push(bits_of(&backend.read_stream(*idx)?));
    }
    backend.dispatch(launch)?;
    for ((_, idx), before) in launch.outputs.iter().zip(&first) {
        if bits_of(&backend.read_stream(*idx)?) != *before {
            return Ok(true);
        }
    }
    Ok(false)
}

fn bits_of(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Bit-exact backend failover: replay the stream shadows into a fresh
/// serial CPU backend *and* the independent AST-walker oracle, execute
/// the failed work on both, and only commit the switch when every
/// output agrees bit-for-bit. On success the context runs on the CPU
/// from here on and the injector stops targeting the lost device.
fn failover(
    backend: &mut Box<dyn BackendExecutor + Send>,
    state: &mut ResilienceState,
    kernel: &str,
    work: &Work<'_, '_>,
    rec: &mut LaunchResilience,
) -> Result<Option<f32>> {
    let from = backend.name();
    let mut fresh: Box<dyn BackendExecutor + Send> = Box::new(CpuBackend::new());
    let mut oracle: Box<dyn BackendExecutor + Send> = Box::new(CpuBackend::ast_walker());
    for (idx, (desc, values)) in &state.shadows {
        for b in [fresh.as_mut(), oracle.as_mut()] {
            let got = b.create_stream(desc.clone())?;
            if got != *idx {
                return Err(BrookError::Internal(format!(
                    "failover shadow replay produced stream index {got}, expected {idx}"
                )));
            }
            b.write_stream(got, values)?;
        }
    }
    let value = work.run_on(fresh.as_mut())?;
    let oracle_value = work.run_on(oracle.as_mut())?;
    match (work, value, oracle_value) {
        (Work::Launch(l), _, _) => {
            for (name, idx) in &l.outputs {
                let a = bits_of(&fresh.read_stream(*idx)?);
                let b = bits_of(&oracle.read_stream(*idx)?);
                if a != b {
                    return Err(BrookError::Internal(format!(
                        "failover verification failed: output `{name}` of `{kernel}` \
                         diverges between the CPU backend and the AST oracle"
                    )));
                }
            }
        }
        (Work::Reduce { .. }, Some(a), Some(b)) if a.to_bits() != b.to_bits() => {
            return Err(BrookError::Internal(format!(
                "failover verification failed: reduce `{kernel}` diverges between the CPU \
                 backend and the AST oracle ({a} vs {b})"
            )));
        }
        _ => {}
    }
    *backend = fresh;
    if let Some(inj) = state.injector.as_mut() {
        inj.mark_failed_over();
    }
    rec.failover = Some(format!("{from} → cpu (verified bit-exact vs ast-oracle)"));
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Arg, BrookContext};
    use gles2_sim::DeviceProfile;

    const DBL: &str = "kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }";
    const SUM: &str = "reduce void sum(float a<>, reduce float r<>) { r += a; }";

    fn policy() -> ResiliencePolicy {
        ResiliencePolicy {
            redundant_check: true,
            ..ResiliencePolicy::default()
        }
    }

    fn run_dbl(ctx: &mut BrookContext, n: usize) -> (Vec<f32>, Result<()>) {
        let module = ctx.compile(DBL).unwrap();
        let a = ctx.stream(&[n]).unwrap();
        let o = ctx.stream(&[n]).unwrap();
        let data: Vec<f32> = (0..n).map(|i| i as f32 - 3.0).collect();
        ctx.write(&a, &data).unwrap();
        let r = ctx.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&o)]);
        let out = if r.is_ok() {
            ctx.read(&o).unwrap()
        } else {
            Vec::new()
        };
        (out, r)
    }

    fn expected_dbl(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 - 3.0) * 2.0).collect()
    }

    #[test]
    fn transient_device_loss_is_retried_away() {
        let mut ctx = BrookContext::cpu();
        ctx.set_resilience(policy()).unwrap();
        ctx.set_fault_plan(FaultPlan::new().with_device_loss(0, false));
        let (out, r) = run_dbl(&mut ctx, 10);
        r.unwrap();
        assert_eq!(out, expected_dbl(10));
        let recs = ctx.take_resilience_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].attempts, 2);
        assert_eq!(recs[0].retries, 1);
        assert_eq!(recs[0].injected.len(), 1);
        assert!(recs[0].failover.is_none());
    }

    #[test]
    fn persistent_gles2_loss_fails_over_bit_exact() {
        let mut ctx = BrookContext::gles2(DeviceProfile::radeon_hd3400());
        ctx.set_resilience(policy()).unwrap();
        ctx.set_fault_plan(FaultPlan::new().with_device_loss(0, true));
        let (out, r) = run_dbl(&mut ctx, 33);
        r.unwrap();
        // Failover re-executes on the serial CPU: results are bit-exact
        // to the CPU oracle by the ladder's own verification.
        assert_eq!(out, expected_dbl(33));
        assert_eq!(ctx.backend_name(), "cpu", "context now runs on the CPU");
        let recs = ctx.take_resilience_records();
        assert_eq!(recs.len(), 1);
        let f = recs[0].failover.as_deref().expect("failover attributed");
        assert!(f.starts_with("gles2-native"), "{f}");
        // The device stays usable: later launches run on the new backend.
        let (out2, r2) = run_dbl(&mut ctx, 8);
        r2.unwrap();
        assert_eq!(out2, expected_dbl(8));
    }

    #[test]
    fn injected_corruption_is_detected_and_repaired() {
        let mut ctx = BrookContext::cpu();
        ctx.set_resilience(policy()).unwrap();
        ctx.set_fault_plan(FaultPlan::new().with_corruption(0, 0, 1, 0x0040_0000));
        let (out, r) = run_dbl(&mut ctx, 40);
        r.unwrap();
        assert_eq!(out, expected_dbl(40), "redundant execution repaired the flip");
        let recs = ctx.take_resilience_records();
        assert_eq!(recs[0].corruptions_detected, 1);
        assert_eq!(recs[0].injected.len(), 1);
    }

    #[test]
    fn corruption_without_redundancy_goes_undetected() {
        // The honest negative control: detection really does come from
        // redundant execution, not from peeking at the plan.
        let mut ctx = BrookContext::cpu();
        ctx.set_resilience(ResiliencePolicy {
            redundant_check: false,
            ..policy()
        })
        .unwrap();
        ctx.set_fault_plan(FaultPlan::new().with_corruption(0, 0, 0, 0x0040_0000));
        let (out, r) = run_dbl(&mut ctx, 20);
        r.unwrap();
        assert_ne!(out, expected_dbl(20));
        assert_eq!(ctx.take_resilience_records()[0].corruptions_detected, 0);
    }

    #[test]
    fn injected_panic_is_contained_and_retried() {
        let mut ctx = BrookContext::cpu();
        ctx.set_resilience(policy()).unwrap();
        ctx.set_fault_plan(FaultPlan::new().with_panic(0));
        let (out, r) = run_dbl(&mut ctx, 12);
        r.unwrap();
        assert_eq!(out, expected_dbl(12));
        let recs = ctx.take_resilience_records();
        assert_eq!(recs[0].panics_caught, 1);
        assert!(recs[0].attempts >= 2);
    }

    #[test]
    fn injected_panic_without_policy_propagates() {
        let result = std::panic::catch_unwind(|| {
            let mut ctx = BrookContext::cpu();
            ctx.set_fault_plan(FaultPlan::new().with_panic(0));
            let _ = run_dbl(&mut ctx, 4);
        });
        assert!(result.is_err(), "raw injection must surface the panic");
    }

    #[test]
    fn hang_is_cancelled_by_attempt_watchdog_within_deadline() {
        let mut ctx = BrookContext::cpu();
        ctx.set_resilience(ResiliencePolicy {
            deadline_ms: Some(2_000),
            attempt_timeout_ms: Some(50),
            ..policy()
        })
        .unwrap();
        ctx.set_fault_plan(FaultPlan::new().with_hang(0));
        let started = std::time::Instant::now();
        let (out, r) = run_dbl(&mut ctx, 6);
        r.unwrap();
        assert_eq!(out, expected_dbl(6));
        assert!(started.elapsed() < Duration::from_secs(2));
        let recs = ctx.take_resilience_records();
        assert!(recs[0].deadline_met, "{recs:?}");
        assert!(recs[0].retries >= 1);
        assert!(recs[0].deadline_margin_ms.unwrap() > 0.0);
    }

    #[test]
    fn reduce_recovers_from_transient_loss() {
        let mut ctx = BrookContext::cpu();
        ctx.set_resilience(policy()).unwrap();
        let module = ctx.compile(SUM).unwrap();
        let a = ctx.stream(&[100]).unwrap();
        let data: Vec<f32> = (1..=100).map(|i| i as f32).collect();
        ctx.write(&a, &data).unwrap();
        // Stream writes don't consume launch indices; the reduce is
        // logical launch 0.
        ctx.set_fault_plan(FaultPlan::new().with_device_loss(0, false));
        assert_eq!(ctx.reduce(&module, "sum", &a).unwrap(), 5050.0);
        let recs = ctx.take_resilience_records();
        assert_eq!(recs[0].retries, 1);
    }

    #[test]
    fn reduce_fails_over_on_persistent_loss() {
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        ctx.set_resilience(policy()).unwrap();
        let module = ctx.compile(SUM).unwrap();
        let a = ctx.stream(&[64]).unwrap();
        let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
        ctx.write(&a, &data).unwrap();
        ctx.set_fault_plan(FaultPlan::new().with_device_loss(0, true));
        let total = ctx.reduce(&module, "sum", &a).unwrap();
        assert_eq!(total, (0..64).sum::<i32>() as f32);
        assert_eq!(ctx.backend_name(), "cpu");
        assert!(ctx.take_resilience_records()[0].failover.is_some());
    }

    #[test]
    fn summary_flows_into_compliance_report() {
        let mut ctx = BrookContext::cpu();
        ctx.set_resilience(policy()).unwrap();
        ctx.set_fault_plan(
            FaultPlan::new()
                .with_device_loss(0, false)
                .with_corruption(1, 0, 0, 0x1000),
        );
        let module = ctx.compile(DBL).unwrap();
        let a = ctx.stream(&[8]).unwrap();
        let o = ctx.stream(&[8]).unwrap();
        ctx.write(&a, &[1.0; 8]).unwrap();
        ctx.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&o)])
            .unwrap();
        ctx.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&o)])
            .unwrap();
        let report = ctx.compliance_with_resilience(&module);
        assert_eq!(report.resilience.launches, 2);
        assert_eq!(report.resilience.retries, 1);
        assert_eq!(report.resilience.corruptions_detected, 1);
        assert_eq!(report.resilience.injected_faults, 2);
        let rendered = brook_cert::render_report(&report);
        assert!(rendered.contains("resilience evidence"), "{rendered}");
        // The fault-free compile-time report stays unchanged.
        assert!(!brook_cert::render_report(&module.report).contains("resilience evidence"));
    }

    #[test]
    fn deadline_miss_is_recorded_and_reported() {
        let mut ctx = BrookContext::cpu();
        ctx.set_resilience(ResiliencePolicy {
            deadline_ms: Some(30),
            attempt_timeout_ms: Some(10),
            max_retries: 50,
            ..policy()
        })
        .unwrap();
        // Two hangs back to back: the watchdog unwedges each attempt,
        // but the launch cannot finish before its deadline.
        ctx.set_fault_plan(
            FaultPlan::new()
                .with_hang(0)
                .with_hang(0)
                .with_hang(0)
                .with_hang(0)
                .with_hang(0),
        );
        let (_, r) = run_dbl(&mut ctx, 4);
        assert!(matches!(r, Err(BrookError::Timeout(_))), "{r:?}");
        let recs = ctx.take_resilience_records();
        assert!(!recs[0].deadline_met);
        assert!(recs[0].deadline_margin_ms.unwrap() < 0.0);
        assert_eq!(ctx.resilience_summary().deadline_misses, 1);
    }

    #[test]
    fn failover_replays_streams_written_before_the_policy() {
        // Streams created/written before set_resilience are snapshotted
        // at install time, so failover still replays them faithfully.
        let mut ctx = BrookContext::gles2(DeviceProfile::radeon_hd3400());
        let module = ctx.compile(DBL).unwrap();
        let a = ctx.stream(&[16]).unwrap();
        let o = ctx.stream(&[16]).unwrap();
        let data: Vec<f32> = (0..16).map(|i| i as f32 * 0.25).collect();
        ctx.write(&a, &data).unwrap();
        ctx.set_resilience(policy()).unwrap();
        ctx.set_fault_plan(FaultPlan::new().with_device_loss(0, true));
        ctx.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&o)])
            .unwrap();
        let out = ctx.read(&o).unwrap();
        let want: Vec<f32> = data.iter().map(|v| v * 2.0).collect();
        assert_eq!(out, want);
    }
}
