//! Unified error type of the Brook Auto runtime.

use brook_cert::ComplianceReport;
use std::error::Error;
use std::fmt;

/// Everything that can go wrong between Brook source and a result buffer.
#[derive(Debug)]
pub enum BrookError {
    /// Lexical, syntactic or type error in the Brook source.
    FrontEnd(brook_lang::CompileError),
    /// The program violates the Brook Auto certification rules; the full
    /// report identifies every violated rule (paper §4).
    Certification(Box<ComplianceReport>),
    /// Code generation failure.
    Codegen(brook_codegen::CodegenError),
    /// OpenGL ES simulator error.
    Gl(gles2_sim::GlError),
    /// Runtime misuse: wrong argument counts/kinds, unknown kernels,
    /// size mismatches.
    Usage(String),
    /// A launch (or one dispatch attempt) exceeded its configured
    /// deadline, or was cancelled by a watchdog. Transient: retrying is
    /// sound (Brook kernels never read their own output, so a
    /// re-dispatch recomputes the same result).
    Timeout(String),
    /// The execution device was lost mid-launch. Transient losses clear
    /// on retry; persistent ones require failing over to another
    /// backend. Also transient/retryable for the same idempotence
    /// reason as [`BrookError::Timeout`].
    DeviceLost(String),
    /// A runtime invariant the toolchain itself guarantees was found
    /// broken (a toolchain bug, not caller misuse). Long-running hosts
    /// (the service layer) surface these as failed *requests* — never a
    /// process abort.
    Internal(String),
}

impl fmt::Display for BrookError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrookError::FrontEnd(e) => write!(f, "front-end: {e}"),
            BrookError::Certification(r) => {
                write!(
                    f,
                    "certification failed with {} violation(s)",
                    r.violation_count()
                )?;
                if let Some(k) = r.kernels.iter().find(|k| !k.is_compliant()) {
                    if let Some(v) = k.violations().next() {
                        write!(
                            f,
                            "; first: [{}] {} (kernel `{}`)",
                            v.rule.code(),
                            v.message,
                            k.kernel
                        )?;
                    }
                }
                Ok(())
            }
            BrookError::Codegen(e) => write!(f, "codegen: {e}"),
            BrookError::Gl(e) => write!(f, "gl: {e}"),
            BrookError::Usage(m) => write!(f, "usage: {m}"),
            BrookError::Timeout(m) => write!(f, "timeout: {m}"),
            BrookError::DeviceLost(m) => write!(f, "device lost: {m}"),
            BrookError::Internal(m) => write!(f, "internal: {m}"),
        }
    }
}

impl Error for BrookError {}

impl From<brook_lang::CompileError> for BrookError {
    fn from(e: brook_lang::CompileError) -> Self {
        BrookError::FrontEnd(e)
    }
}

impl From<brook_codegen::CodegenError> for BrookError {
    fn from(e: brook_codegen::CodegenError) -> Self {
        BrookError::Codegen(e)
    }
}

impl From<gles2_sim::GlError> for BrookError {
    fn from(e: gles2_sim::GlError) -> Self {
        BrookError::Gl(e)
    }
}

/// Convenience alias used across the runtime.
pub type Result<T> = std::result::Result<T, BrookError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = BrookError::Usage("three streams expected".into());
        assert!(e.to_string().contains("three streams"));
    }
}
