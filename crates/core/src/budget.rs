//! Static GPU memory accounting (paper §4: "we force each stream handle
//! to be statically sized, to allow the static determination of the
//! maximum GPU memory usage").
//!
//! Given the stream shapes a deployment will create, [`plan_memory`]
//! computes the exact texture allocations the runtime would make on a
//! device — *before* touching the device — and verdicts them against a
//! budget. This is the certification data-package artifact backing rule
//! BA002, complementing the runtime enforcement in
//! [`crate::BrookContext::set_memory_budget`].

use crate::stream::layout_for;
use brook_codegen::StorageMode;
use gles2_sim::DeviceProfile;

/// One planned stream allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedStream {
    /// Caller-supplied label (e.g. the kernel argument it will bind to).
    pub label: String,
    /// Logical shape.
    pub shape: Vec<usize>,
    /// Allocated texture dimensions after device constraints.
    pub alloc: (u32, u32),
    /// Bytes the texture occupies on the device.
    pub bytes: usize,
    /// Padding overhead relative to the logical data (1.0 = none).
    pub overhead: f64,
}

/// The static memory plan for a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryPlan {
    /// Per-stream allocations, in input order.
    pub streams: Vec<PlannedStream>,
    /// Total bytes of texture memory.
    pub total_bytes: usize,
    /// Reduction scratch (two ping-pong textures the size of the largest
    /// stream) if reductions are used.
    pub reduction_scratch_bytes: usize,
}

impl MemoryPlan {
    /// Total including reduction scratch.
    pub fn worst_case_bytes(&self) -> usize {
        self.total_bytes + self.reduction_scratch_bytes
    }

    /// True when the worst case fits a budget.
    pub fn fits(&self, budget_bytes: usize) -> bool {
        self.worst_case_bytes() <= budget_bytes
    }

    /// Renders the plan as a certification-artifact table.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>16} {:>12} {:>10} {:>9}",
            "stream", "shape", "texture", "bytes", "overhead"
        );
        for s in &self.streams {
            let _ = writeln!(
                out,
                "{:<16} {:>16} {:>12} {:>10} {:>8.2}x",
                s.label,
                format!("{:?}", s.shape),
                format!("{}x{}", s.alloc.0, s.alloc.1),
                s.bytes,
                s.overhead
            );
        }
        let _ = writeln!(
            out,
            "total: {} B (+{} B reduction scratch)",
            self.total_bytes, self.reduction_scratch_bytes
        );
        out
    }
}

/// Computes the static memory plan for a set of streams on a device.
///
/// `with_reductions` reserves the two ping-pong intermediates the
/// reduction ladder of paper §5.5 needs (sized like the largest stream).
///
/// # Errors
/// Returns the offending stream's label and the device diagnostic when a
/// shape cannot be allocated at all — the same check the runtime applies,
/// moved to planning time.
pub fn plan_memory(
    streams: &[(&str, Vec<usize>)],
    device: &DeviceProfile,
    with_reductions: bool,
) -> Result<MemoryPlan, String> {
    let widened: Vec<(&str, Vec<usize>, u8)> = streams
        .iter()
        .map(|(label, shape)| (*label, shape.clone(), 1))
        .collect();
    plan_memory_with_widths(&widened, device, with_reductions)
}

/// [`plan_memory`] for streams of `floatN` elements.
///
/// Mirrors the runtime's storage decisions exactly (gpu.rs
/// `format_for`): native scalar streams are R32F (4 B/texel), native
/// wide streams are RGBA32F (16 B/texel), and packed devices cannot
/// store wide elements at all — the same `Usage` error the runtime
/// raises, surfaced at planning time.
pub fn plan_memory_with_widths(
    streams: &[(&str, Vec<usize>, u8)],
    device: &DeviceProfile,
    with_reductions: bool,
) -> Result<MemoryPlan, String> {
    let storage = if device.float_textures && device.float_render_targets {
        StorageMode::Native
    } else {
        StorageMode::Packed
    };
    let mut planned = Vec::new();
    let mut total = 0usize;
    let mut largest_texels = 0usize;
    for (label, shape, width) in streams {
        if !(1..=4).contains(width) {
            return Err(format!("stream `{label}`: vector width {width} out of range"));
        }
        let bytes_per_texel = match (storage, width) {
            (StorageMode::Packed, 1) => 4usize, // RGBA8
            (StorageMode::Packed, _) => {
                return Err(format!(
                    "stream `{label}`: this device stores streams in RGBA8 textures; \
                     float{width} elements are not representable"
                ))
            }
            (StorageMode::Native, 1) => 4,  // R32F
            (StorageMode::Native, _) => 16, // RGBA32F
        };
        let layout = layout_for(shape, !device.npot_textures, device.max_texture_size)
            .map_err(|e| format!("stream `{label}`: {e}"))?;
        let bytes = layout.alloc_bytes(bytes_per_texel);
        let logical_bytes = shape.iter().product::<usize>() * bytes_per_texel;
        planned.push(PlannedStream {
            label: (*label).to_owned(),
            shape: shape.clone(),
            alloc: (layout.alloc_w, layout.alloc_h),
            bytes,
            overhead: bytes as f64 / logical_bytes as f64,
        });
        total += bytes;
        largest_texels = largest_texels.max(layout.alloc_w as usize * layout.alloc_h as usize);
    }
    // The runtime's ping-pong intermediates (gpu.rs `reduce_stream`) are
    // allocated at the *reduced stream's* texture dimensions in the
    // scalar format — 4 B/texel on both storage modes — so scratch
    // scales with the largest stream's texel count, not its byte size
    // (a wide RGBA32F stream reduces through scalar intermediates).
    Ok(MemoryPlan {
        streams: planned,
        total_bytes: total,
        reduction_scratch_bytes: if with_reductions {
            2 * largest_texels * 4
        } else {
            0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_matches_runtime_allocation() {
        // The plan must predict exactly what the runtime allocates.
        let device = DeviceProfile::videocore_iv();
        let shapes: Vec<(&str, Vec<usize>)> =
            vec![("a", vec![100, 200]), ("b", vec![1000]), ("c", vec![64, 64])];
        let plan = plan_memory(&shapes, &device, false).expect("plan");
        let mut ctx = crate::BrookContext::gles2(device);
        for (_, shape) in &shapes {
            ctx.stream(shape).expect("stream");
        }
        assert_eq!(
            plan.total_bytes,
            ctx.gpu_memory_used(),
            "plan must equal actual allocation"
        );
    }

    #[test]
    fn pow2_padding_shows_as_overhead() {
        let device = DeviceProfile::videocore_iv();
        let plan = plan_memory(&[("img", vec![100, 200])], &device, false).expect("plan");
        // 100x200 -> 128x256 texture: 1.6384x overhead.
        assert_eq!(plan.streams[0].alloc, (256, 128));
        assert!((plan.streams[0].overhead - 1.6384).abs() < 1e-6);
    }

    #[test]
    fn npot_device_has_no_padding_overhead() {
        let device = DeviceProfile::radeon_hd3400();
        let plan = plan_memory(&[("img", vec![100, 200])], &device, false).expect("plan");
        assert_eq!(plan.streams[0].overhead, 1.0);
    }

    #[test]
    fn reduction_scratch_doubles_largest() {
        let device = DeviceProfile::videocore_iv();
        let plan = plan_memory(&[("small", vec![16]), ("big", vec![128, 128])], &device, true).expect("plan");
        assert_eq!(plan.reduction_scratch_bytes, 2 * 128 * 128 * 4);
        assert_eq!(
            plan.worst_case_bytes(),
            plan.total_bytes + plan.reduction_scratch_bytes
        );
    }

    #[test]
    fn budget_verdict() {
        let device = DeviceProfile::videocore_iv();
        let plan = plan_memory(&[("a", vec![64, 64])], &device, false).expect("plan");
        assert!(plan.fits(16 * 1024));
        assert!(!plan.fits(16 * 1024 - 1));
    }

    #[test]
    fn oversized_stream_fails_at_planning_time() {
        let device = DeviceProfile::videocore_iv();
        let err = plan_memory(&[("huge", vec![4096, 4096])], &device, false).unwrap_err();
        assert!(err.contains("huge"));
        assert!(err.contains("2048"));
    }

    const SUM: &str = "reduce void sum(float a<>, reduce float r<>) { r += a; }";

    /// The BA002 differential: for a reduction workload the static
    /// plan's worst case equals the runtime's device-memory peak, on
    /// both storage modes.
    #[test]
    fn plan_worst_case_equals_runtime_peak_for_reduction() {
        for device in [
            DeviceProfile::videocore_iv(),  // packed storage
            DeviceProfile::radeon_hd3400(), // native storage
        ] {
            let shapes: Vec<(&str, Vec<usize>)> =
                vec![("big", vec![64, 64]), ("small", vec![100]), ("mid", vec![1000])];
            let plan = plan_memory(&shapes, &device, true).expect("plan");
            let mut ctx = crate::BrookContext::gles2(device);
            let module = ctx.compile(SUM).expect("compile");
            let mut streams = Vec::new();
            for (_, shape) in &shapes {
                let s = ctx.stream(shape).expect("stream");
                ctx.write(&s, &vec![1.0; shape.iter().product()]).expect("write");
                streams.push(s);
            }
            // Reduce the largest stream: scratch is sized on the
            // reduced input, and the plan reserves it for the largest.
            let total = ctx.reduce(&module, "sum", &streams[0]).expect("reduce");
            assert_eq!(total, 64.0 * 64.0);
            assert_eq!(
                plan.worst_case_bytes(),
                ctx.gpu_memory_peak(),
                "static plan must equal the runtime peak"
            );
            // And the scratch is released afterwards: current usage is
            // back to the streams alone.
            assert_eq!(plan.total_bytes, ctx.gpu_memory_used());
        }
    }

    /// Wide (float4) native streams are 16 B/texel on the device; the
    /// width-aware plan predicts the allocation exactly.
    #[test]
    fn wide_stream_plan_matches_runtime_allocation() {
        let device = DeviceProfile::radeon_hd3400();
        let plan = plan_memory_with_widths(&[("w", vec![32, 32], 4), ("s", vec![32, 32], 1)], &device, false)
            .expect("plan");
        assert_eq!(plan.streams[0].bytes, 32 * 32 * 16);
        assert_eq!(plan.streams[1].bytes, 32 * 32 * 4);
        let mut ctx = crate::BrookContext::gles2(device);
        ctx.stream_with_width(&[32, 32], 4).expect("wide stream");
        ctx.stream(&[32, 32]).expect("scalar stream");
        assert_eq!(plan.total_bytes, ctx.gpu_memory_used());
        assert_eq!(plan.total_bytes, ctx.gpu_memory_peak());
    }

    /// Packed devices cannot hold wide elements; the plan refuses them
    /// with the same verdict the runtime would.
    #[test]
    fn wide_stream_on_packed_device_fails_at_planning_time() {
        let device = DeviceProfile::videocore_iv();
        let err = plan_memory_with_widths(&[("w", vec![8], 4)], &device, false).unwrap_err();
        assert!(err.contains("RGBA8"), "got: {err}");
        let mut ctx = crate::BrookContext::gles2(device);
        assert!(ctx.stream_with_width(&[8], 4).is_err());
    }

    /// Runtime budget enforcement agrees with the plan's verdict: a
    /// budget the plan rejects makes the reduction fail on the device
    /// (cleanly, releasing its intermediates), and a budget the plan
    /// accepts lets it run.
    #[test]
    fn runtime_budget_enforcement_matches_plan_verdict() {
        let device = DeviceProfile::videocore_iv();
        let shapes: Vec<(&str, Vec<usize>)> = vec![("a", vec![64, 64])];
        let plan = plan_memory(&shapes, &device, true).expect("plan");
        let tight = plan.worst_case_bytes() - 1;
        assert!(!plan.fits(tight));
        let mut ctx = crate::BrookContext::gles2(device);
        let module = ctx.compile(SUM).expect("compile");
        let a = ctx.stream(&[64, 64]).expect("stream");
        ctx.write(&a, &vec![1.0; 64 * 64]).expect("write");
        ctx.set_memory_budget(Some(tight));
        let err = ctx.reduce(&module, "sum", &a).unwrap_err();
        assert!(
            matches!(err, crate::BrookError::Gl(gles2_sim::GlError::OutOfMemory(_))),
            "expected OutOfMemory, got: {err}"
        );
        // The failed attempt released whatever scratch it had acquired.
        assert_eq!(ctx.gpu_memory_used(), plan.total_bytes);
        // A budget the plan accepts admits the workload.
        ctx.set_memory_budget(Some(plan.worst_case_bytes()));
        assert_eq!(ctx.reduce(&module, "sum", &a).expect("reduce"), 4096.0);
    }

    #[test]
    fn render_is_tabular() {
        let device = DeviceProfile::videocore_iv();
        let plan = plan_memory(&[("a", vec![8, 8])], &device, true).expect("plan");
        let text = plan.render();
        assert!(text.contains("stream"));
        assert!(text.contains("8x8"));
        assert!(text.contains("reduction scratch"));
    }
}
