//! The deferred stream-graph executor, cross-validated against eager
//! execution on every registered backend: fusion must be invisible in
//! results (bit-exact on the CPU interpreters, storage tolerance on the
//! device) and visible only in the pass/byte accounting.

use brook_auto::{
    registered_backends, Arg, BrookContext, BrookError, CertConfig, GraphReport, ParallelCpuBackend,
};

const CHAIN2: &str = "kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }
kernel void inc(float a<>, out float o<>) { o = a + 1.0; }";

const CHAIN3: &str = "kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }
kernel void addk(float a<>, float k, out float o<>) { o = a + k; }
kernel void square(float a<>, out float o<>) { o = a * a; }";

fn all_contexts() -> Vec<BrookContext> {
    registered_backends().iter().map(|b| (b.make)()).collect()
}

/// Eager and deferred-fused execution of `dbl → inc`, compared
/// elementwise on one context pair from the same factory.
fn run_chain2(make: fn() -> BrookContext) -> (Vec<f32>, Vec<f32>, GraphReport) {
    let data: Vec<f32> = (0..64).map(|i| i as f32 * 0.25 - 4.0).collect();
    // Eager: a real intermediate stream, two passes.
    let mut ctx = make();
    let module = ctx.compile(CHAIN2).expect("compile");
    let a = ctx.stream(&[64]).expect("a");
    let tmp = ctx.stream(&[64]).expect("tmp");
    let out = ctx.stream(&[64]).expect("out");
    ctx.write(&a, &data).expect("write");
    ctx.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&tmp)])
        .expect("dbl");
    ctx.run(&module, "inc", &[Arg::Stream(&tmp), Arg::Stream(&out)])
        .expect("inc");
    let eager = ctx.read(&out).expect("read");

    // Deferred: a virtual intermediate, fused into one pass.
    let mut ctx = make();
    let module = ctx.compile(CHAIN2).expect("compile");
    let a = ctx.stream(&[64]).expect("a");
    let out = ctx.stream(&[64]).expect("out");
    ctx.write(&a, &data).expect("write");
    let mut g = ctx.graph();
    let tmp = g.stream(&[64]).expect("virtual");
    g.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&tmp)])
        .expect("record dbl");
    g.run(&module, "inc", &[Arg::Stream(&tmp), Arg::Stream(&out)])
        .expect("record inc");
    let report = g.execute().expect("execute");
    let fused = ctx.read(&out).expect("read");
    (eager, fused, report)
}

#[test]
fn two_kernel_chain_fuses_to_one_pass_everywhere() {
    for spec in registered_backends() {
        let (eager, fused, report) = run_chain2(spec.make);
        assert_eq!(eager, fused, "{}: fusion changed results", spec.name);
        assert_eq!(report.eager_passes, 2, "{}", spec.name);
        assert_eq!(report.executed_passes, 1, "{}", spec.name);
        assert_eq!(report.elided_streams, 1, "{}", spec.name);
        assert_eq!(report.fused.len(), 1, "{}", spec.name);
        assert_eq!(report.fused[0].replaced, vec!["dbl", "inc"], "{}", spec.name);
        assert_eq!(
            report.intermediate_bytes_elided,
            64 * 4 * 2,
            "{}: one write + one read of 64 floats",
            spec.name
        );
    }
}

#[test]
fn three_kernel_chain_collapses_to_single_pass() {
    for spec in registered_backends() {
        let data: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        // Eager reference.
        let mut ctx = (spec.make)();
        let module = ctx.compile(CHAIN3).expect("compile");
        let a = ctx.stream(&[100]).expect("a");
        let t1 = ctx.stream(&[100]).expect("t1");
        let t2 = ctx.stream(&[100]).expect("t2");
        let out = ctx.stream(&[100]).expect("out");
        ctx.write(&a, &data).expect("write");
        ctx.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&t1)])
            .expect("dbl");
        ctx.run(
            &module,
            "addk",
            &[Arg::Stream(&t1), Arg::Float(3.5), Arg::Stream(&t2)],
        )
        .expect("addk");
        ctx.run(&module, "square", &[Arg::Stream(&t2), Arg::Stream(&out)])
            .expect("square");
        let eager = ctx.read(&out).expect("read");

        let mut ctx = (spec.make)();
        let module = ctx.compile(CHAIN3).expect("compile");
        let a = ctx.stream(&[100]).expect("a");
        let out = ctx.stream(&[100]).expect("out");
        ctx.write(&a, &data).expect("write");
        let mut g = ctx.graph();
        let t1 = g.stream(&[100]).expect("t1");
        let t2 = g.stream(&[100]).expect("t2");
        g.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&t1)])
            .expect("record");
        g.run(
            &module,
            "addk",
            &[Arg::Stream(&t1), Arg::Float(3.5), Arg::Stream(&t2)],
        )
        .expect("record");
        g.run(&module, "square", &[Arg::Stream(&t2), Arg::Stream(&out)])
            .expect("record");
        let report = g.execute().expect("execute");
        assert_eq!(report.eager_passes, 3, "{}", spec.name);
        assert_eq!(report.executed_passes, 1, "{}", spec.name);
        assert_eq!(report.elided_streams, 2, "{}", spec.name);
        assert_eq!(ctx.read(&out).expect("read"), eager, "{}", spec.name);
    }
}

/// A gather-carrying producer (convolution-style) inlines soundly: the
/// external table is random-access, only the chain edge must be
/// elementwise.
#[test]
fn gather_producer_fuses_with_elementwise_consumer() {
    let src = "kernel void shift(float t[], float a<>, out float o<>) {
        float2 p = indexof(o);
        o = t[p.x + 1.0] + a;
    }
    kernel void thresh(float a<>, float lim, out float o<>) {
        o = (a > lim) ? 1.0 : 0.0;
    }";
    for spec in registered_backends() {
        let n = 32;
        let table: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let zeros = vec![0.0f32; n];

        let mut ctx = (spec.make)();
        let module = ctx.compile(src).expect("compile");
        let t = ctx.stream(&[n]).expect("t");
        let a = ctx.stream(&[n]).expect("a");
        let tmp = ctx.stream(&[n]).expect("tmp");
        let out = ctx.stream(&[n]).expect("out");
        ctx.write(&t, &table).expect("write t");
        ctx.write(&a, &zeros).expect("write a");
        ctx.run(
            &module,
            "shift",
            &[Arg::Stream(&t), Arg::Stream(&a), Arg::Stream(&tmp)],
        )
        .expect("shift");
        ctx.run(
            &module,
            "thresh",
            &[Arg::Stream(&tmp), Arg::Float(15.0), Arg::Stream(&out)],
        )
        .expect("thresh");
        let eager = ctx.read(&out).expect("read");

        let mut ctx = (spec.make)();
        let module = ctx.compile(src).expect("compile");
        let t = ctx.stream(&[n]).expect("t");
        let a = ctx.stream(&[n]).expect("a");
        let out = ctx.stream(&[n]).expect("out");
        ctx.write(&t, &table).expect("write t");
        ctx.write(&a, &zeros).expect("write a");
        let mut g = ctx.graph();
        let tmp = g.stream(&[n]).expect("virtual");
        g.run(
            &module,
            "shift",
            &[Arg::Stream(&t), Arg::Stream(&a), Arg::Stream(&tmp)],
        )
        .expect("record");
        g.run(
            &module,
            "thresh",
            &[Arg::Stream(&tmp), Arg::Float(15.0), Arg::Stream(&out)],
        )
        .expect("record");
        let report = g.execute().expect("execute");
        assert_eq!(report.executed_passes, 1, "{}", spec.name);
        assert_eq!(ctx.read(&out).expect("read"), eager, "{}", spec.name);
    }
}

/// An intermediate consumed twice stays unfused (fusing would duplicate
/// the producer's work and is out of scope); results must still match
/// eager execution exactly.
#[test]
fn twice_read_intermediate_is_not_fused() {
    let src = "kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }
    kernel void add(float a<>, float b<>, out float o<>) { o = a + b; }";
    for spec in registered_backends() {
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut ctx = (spec.make)();
        let module = ctx.compile(src).expect("compile");
        let a = ctx.stream(&[16]).expect("a");
        let out = ctx.stream(&[16]).expect("out");
        ctx.write(&a, &data).expect("write");
        let mut g = ctx.graph();
        let tmp = g.stream(&[16]).expect("virtual");
        g.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&tmp)])
            .expect("record");
        g.run(
            &module,
            "add",
            &[Arg::Stream(&tmp), Arg::Stream(&tmp), Arg::Stream(&out)],
        )
        .expect("record");
        let report = g.execute().expect("execute");
        assert_eq!(report.executed_passes, 2, "{}: must stay unfused", spec.name);
        assert_eq!(report.elided_streams, 0, "{}", spec.name);
        let expected: Vec<f32> = data.iter().map(|v| v * 4.0).collect();
        assert_eq!(ctx.read(&out).expect("read"), expected, "{}", spec.name);
    }
}

/// Fusion that would exceed the context's input limit is rejected by the
/// gate pre-filter and the chain runs unfused — certification is never
/// bypassed, results are still correct.
#[test]
fn gate_rejected_fusion_falls_back_to_unfused() {
    let src = "kernel void mix2(float a<>, float b<>, out float o<>) { o = a + b; }
    kernel void mix3(float a<>, float b<>, float c<>, out float o<>) { o = a * b - c; }";
    let cfg = CertConfig {
        max_inputs: 3,
        ..CertConfig::default()
    };
    let mut ctx = BrookContext::with_backend(Box::new(brook_auto::CpuBackend::new()), cfg);
    let module = ctx.compile(src).expect("both kernels fit the limit alone");
    let mk = |ctx: &mut BrookContext, v: f32| {
        let s = ctx.stream(&[8]).unwrap();
        ctx.write(&s, &[v; 8]).unwrap();
        s
    };
    let (a, b, c, d) = (
        mk(&mut ctx, 1.0),
        mk(&mut ctx, 2.0),
        mk(&mut ctx, 3.0),
        mk(&mut ctx, 4.0),
    );
    let out = ctx.stream(&[8]).unwrap();
    let mut g = ctx.graph();
    let tmp = g.stream(&[8]).expect("virtual");
    g.run(
        &module,
        "mix2",
        &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&tmp)],
    )
    .expect("record");
    // Fused would need inputs {a, b, c, d} = 4 > max_inputs = 3.
    g.run(
        &module,
        "mix3",
        &[
            Arg::Stream(&tmp),
            Arg::Stream(&c),
            Arg::Stream(&d),
            Arg::Stream(&out),
        ],
    )
    .expect("record");
    let report = g.execute().expect("execute");
    assert_eq!(report.executed_passes, 2, "fusion must be vetoed by the gate");
    assert!(report.fused.is_empty());
    assert_eq!(ctx.read(&out).unwrap(), vec![(1.0 + 2.0) * 3.0 - 4.0; 8]);
}

/// A producer that assigns its output only conditionally keeps eager
/// semantics after fusion: the elided intermediate was zero-filled, and
/// so is the fused kernel's let-bound local.
#[test]
fn conditionally_written_intermediate_keeps_zero_fill_semantics() {
    let src = "kernel void gate(float a<>, out float o<>) { if (a > 0.0) { o = a * 10.0; } }
    kernel void inc(float a<>, out float o<>) { o = a + 1.0; }";
    for spec in registered_backends() {
        let data = vec![-1.0f32, 2.0, -3.0, 4.0];
        let mut ctx = (spec.make)();
        let module = ctx.compile(src).expect("compile");
        let a = ctx.stream(&[4]).expect("a");
        let out = ctx.stream(&[4]).expect("out");
        ctx.write(&a, &data).expect("write");
        let mut g = ctx.graph();
        let tmp = g.stream(&[4]).expect("virtual");
        g.run(&module, "gate", &[Arg::Stream(&a), Arg::Stream(&tmp)])
            .expect("record");
        g.run(&module, "inc", &[Arg::Stream(&tmp), Arg::Stream(&out)])
            .expect("record");
        let report = g.execute().expect("execute");
        assert_eq!(report.executed_passes, 1, "{}", spec.name);
        assert_eq!(
            ctx.read(&out).expect("read"),
            vec![1.0, 21.0, 1.0, 41.0],
            "{}: unwritten lanes must read the zero fill",
            spec.name
        );
    }
}

/// A read-then-overwrite pipeline — the producer reads a stream the
/// consumer overwrites — is legal eagerly but must never fuse: fused,
/// it would be a kernel reading its own output. (Regression: the
/// planner used to fuse this and crash or silently diverge.)
#[test]
fn producer_read_consumer_written_stream_blocks_fusion() {
    for spec in registered_backends() {
        let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut ctx = (spec.make)();
        let module = ctx.compile(CHAIN2).expect("compile");
        let x = ctx.stream(&[16]).expect("x");
        ctx.write(&x, &data).expect("write");
        let mut g = ctx.graph();
        let tmp = g.stream(&[16]).expect("virtual");
        // dbl reads x into tmp; inc reads tmp and overwrites x.
        g.run(&module, "dbl", &[Arg::Stream(&x), Arg::Stream(&tmp)])
            .expect("record");
        g.run(&module, "inc", &[Arg::Stream(&tmp), Arg::Stream(&x)])
            .expect("record");
        let report = g
            .execute()
            .expect("execute must not fuse into an in-place kernel");
        assert_eq!(report.executed_passes, 2, "{}: must stay unfused", spec.name);
        let expected: Vec<f32> = data.iter().map(|v| v * 2.0 + 1.0).collect();
        assert_eq!(ctx.read(&x).expect("read"), expected, "{}", spec.name);
    }
}

/// Fused kernels exist only in IR form — the AST-walking oracle
/// backend must execute them through the IR interpreter rather than
/// failing the lookup in the checked program. (Regression: the graph
/// path on `cpu_ast_oracle` used to error with "unknown kernel".)
#[test]
fn fused_chain_executes_on_the_ast_oracle_backend() {
    let (eager, fused, report) = run_chain2(BrookContext::cpu_ast_oracle);
    assert_eq!(report.executed_passes, 1, "chain must fuse on the oracle too");
    assert_eq!(eager, fused, "oracle fusion changed results");
}

/// A producer with a kernel-level `return;` must not fuse: its Ret
/// would terminate the fused element before the consumer's body runs.
/// (Regression: the IR fuser used to concatenate it and silently drop
/// the consumer's work on early-returning elements.)
#[test]
fn early_returning_producer_is_not_fused() {
    let src = "kernel void gate(float a<>, out float o<>) { o = 1.0; if (a > 0.0) { return; } o = 2.0; }
    kernel void inc(float a<>, out float o<>) { o = a + 10.0; }";
    for spec in registered_backends() {
        let data = vec![1.0f32, -1.0, 0.5, -0.5];
        let mut ctx = (spec.make)();
        let module = ctx.compile(src).expect("compile");
        let a = ctx.stream(&[4]).expect("a");
        let out = ctx.stream(&[4]).expect("out");
        ctx.write(&a, &data).expect("write");
        let mut g = ctx.graph();
        let tmp = g.stream(&[4]).expect("virtual");
        g.run(&module, "gate", &[Arg::Stream(&a), Arg::Stream(&tmp)])
            .expect("record");
        g.run(&module, "inc", &[Arg::Stream(&tmp), Arg::Stream(&out)])
            .expect("record");
        let report = g.execute().expect("execute");
        assert_eq!(report.executed_passes, 2, "{}: must stay unfused", spec.name);
        assert_eq!(
            ctx.read(&out).expect("read"),
            vec![11.0, 12.0, 11.0, 12.0],
            "{}: fused-away consumer work",
            spec.name
        );
    }
}

/// A `ReduceHandle` is stamped with its graph: redeeming it against
/// another graph's report is a caller bug and panics instead of
/// silently returning the wrong scalar.
#[test]
#[should_panic(expected = "different graph")]
fn reduce_handle_rejected_on_foreign_report() {
    let src = "reduce void sum(float a<>, reduce float r<>) { r += a; }";
    let mut ctx = BrookContext::cpu();
    let module = ctx.compile(src).expect("compile");
    let s = ctx.stream(&[4]).expect("s");
    ctx.write(&s, &[1.0, 2.0, 3.0, 4.0]).expect("write");
    let mut g = ctx.graph();
    let handle_a = g.reduce(&module, "sum", &s).expect("record");
    let _report_a = g.execute().expect("execute");
    let mut g = ctx.graph();
    let _handle_b = g.reduce(&module, "sum", &s).expect("record");
    let report_b = g.execute().expect("execute");
    let _ = report_b.reduce_value(handle_a);
}

/// Virtual and real streams accept exactly the same shapes with the
/// same diagnostics — one validator serves both surfaces.
#[test]
fn virtual_and_real_stream_validation_agree() {
    let mut ctx = BrookContext::cpu();
    for (shape, width) in [
        (vec![0usize], 1u8),
        (vec![], 1),
        (vec![1, 1, 1, 1, 1], 1),
        (vec![4], 0),
        (vec![4], 5),
    ] {
        let real = ctx.stream_with_width(&shape, width).unwrap_err().to_string();
        let mut g = ctx.graph();
        let virt = g.stream_with_width(&shape, width).unwrap_err().to_string();
        assert_eq!(real, virt, "shape {shape:?} width {width}");
    }
}

/// Reduces record into the graph, run after their producers, and a
/// fused producer chain can feed them.
#[test]
fn reduce_over_fused_chain() {
    let src = "kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }
    kernel void inc(float a<>, out float o<>) { o = a + 1.0; }
    reduce void sum(float a<>, reduce float r<>) { r += a; }";
    for spec in registered_backends() {
        let n = 100;
        let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut ctx = (spec.make)();
        let module = ctx.compile(src).expect("compile");
        let a = ctx.stream(&[n]).expect("a");
        let out = ctx.stream(&[n]).expect("out");
        ctx.write(&a, &data).expect("write");
        let mut g = ctx.graph();
        let tmp = g.stream(&[n]).expect("virtual");
        g.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&tmp)])
            .expect("record");
        g.run(&module, "inc", &[Arg::Stream(&tmp), Arg::Stream(&out)])
            .expect("record");
        let h = g.reduce(&module, "sum", &out).expect("record reduce");
        let report = g.execute().expect("execute");
        // dbl→inc fused; the reduce is its own pass.
        assert_eq!(report.executed_passes, 2, "{}", spec.name);
        let expected: f32 = data.iter().map(|v| v * 2.0 + 1.0).sum();
        let got = report.reduce_value(h);
        assert!(
            (got - expected).abs() <= expected.abs() * 1e-3,
            "{}: reduce over fused chain: {got} vs {expected}",
            spec.name
        );
    }
}

/// Multi-output consumers fuse too (the fused kernel keeps every
/// consumer output and still splits one pass per output downstream).
#[test]
fn multi_output_consumer_fuses() {
    let src = "kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }
    kernel void two(float a<>, out float x<>, out float y<>) { x = a + 1.0; y = a - 1.0; }";
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(src).expect("compile");
        let a = ctx.stream(&[8]).expect("a");
        let x = ctx.stream(&[8]).expect("x");
        let y = ctx.stream(&[8]).expect("y");
        ctx.write(&a, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .expect("write");
        let mut g = ctx.graph();
        let tmp = g.stream(&[8]).expect("virtual");
        g.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&tmp)])
            .expect("record");
        g.run(
            &module,
            "two",
            &[Arg::Stream(&tmp), Arg::Stream(&x), Arg::Stream(&y)],
        )
        .expect("record");
        let report = g.execute().expect("execute");
        assert_eq!(report.eager_passes, 3, "{name}"); // 1 + 2 outputs
        assert_eq!(report.executed_passes, 2, "{name}"); // fused, 2 outputs
        assert_eq!(
            ctx.read(&x).expect("x"),
            vec![3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0, 17.0],
            "{name}"
        );
        assert_eq!(
            ctx.read(&y).expect("y"),
            vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0],
            "{name}"
        );
    }
}

/// The graph executor composes with the data-parallel CPU backend at
/// degenerate and oversubscribed worker counts.
#[test]
fn graph_execution_under_extreme_worker_counts() {
    for workers in [1usize, 17] {
        let mut ctx = BrookContext::with_backend(
            Box::new(ParallelCpuBackend::with_workers(workers)),
            CertConfig::default(),
        );
        let module = ctx.compile(CHAIN2).expect("compile");
        let n = 1000; // > PARALLEL_THRESHOLD so the fan-out path runs
        let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let a = ctx.stream(&[n]).expect("a");
        let out = ctx.stream(&[n]).expect("out");
        ctx.write(&a, &data).expect("write");
        let mut g = ctx.graph();
        let tmp = g.stream(&[n]).expect("virtual");
        g.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&tmp)])
            .expect("record");
        g.run(&module, "inc", &[Arg::Stream(&tmp), Arg::Stream(&out)])
            .expect("record");
        let report = g.execute().expect("execute");
        assert_eq!(report.executed_passes, 1, "workers={workers}");
        let expected: Vec<f32> = data.iter().map(|v| v * 2.0 + 1.0).collect();
        assert_eq!(ctx.read(&out).expect("read"), expected, "workers={workers}");
    }
}

/// Virtual streams are recording-scoped: the context refuses them, and a
/// graph refuses another context's streams.
#[test]
fn virtual_streams_cannot_escape_their_recording() {
    let mut ctx = BrookContext::cpu();
    let module = ctx.compile(CHAIN2).expect("compile");
    let a = ctx.stream(&[4]).expect("a");
    ctx.write(&a, &[0.0; 4]).expect("write");
    let virt = {
        let mut g = ctx.graph();
        let v = g.stream(&[4]).expect("virtual");
        g.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&v)])
            .expect("record");
        g.execute().expect("execute");
        v
    };
    assert!(matches!(ctx.read(&virt), Err(BrookError::Usage(_))));
    assert!(matches!(ctx.write(&virt, &[0.0; 4]), Err(BrookError::Usage(_))));

    let mut other = BrookContext::cpu();
    let foreign = other.stream(&[4]).expect("foreign");
    let out = ctx.stream(&[4]).expect("out");
    let mut g = ctx.graph();
    let err = g
        .run(&module, "dbl", &[Arg::Stream(&foreign), Arg::Stream(&out)])
        .unwrap_err();
    assert!(matches!(err, BrookError::Usage(_)));
    // Foreign modules are rejected at record time too.
    let foreign_module = other.compile(CHAIN2).expect("compile");
    let err = g
        .run(&foreign_module, "dbl", &[Arg::Stream(&a), Arg::Stream(&out)])
        .unwrap_err();
    assert!(matches!(err, BrookError::Usage(_)));
}

/// The fused IR text is deterministic — the contract the golden GLSL
/// snapshot (and any triage of a fused kernel) rests on. Since the
/// planner inlines at the BrookIR level, the pinned "source" is the
/// canonical IR rendering: the producer's body writing the chain
/// register `r0`, then the consumer's body reading it.
#[test]
fn fused_source_is_deterministic() {
    let expected = "kernel fused_dbl_inc(float in0<>, out float o0<>) {
    r0: float = const 0.0
    r1: float = elem in0
    r2: float = const 2.0
    r3: float = r1 * r2
    r0 = r3
    r4: float = r0
    r5: float = const 1.0
    r6: float = r4 + r5
    out o0 = r6
}
";
    let (_, _, report) = run_chain2(BrookContext::cpu);
    assert_eq!(report.fused.len(), 1);
    assert_eq!(report.fused[0].name, "fused_dbl_inc");
    assert_eq!(report.fused[0].source, expected);
}

/// Golden snapshot of the GLSL generated for a fused kernel — the fused
/// BrookIR flows through the IR shader generator like any user kernel,
/// so the shader is pinned the same way `crates/codegen/tests/golden.rs`
/// pins eager ones.
/// Re-bless with `BROOK_BLESS=1 cargo test -p brook-auto --test graph`.
#[test]
fn fused_kernel_glsl_matches_golden_fixture() {
    use brook_codegen::{generate_ir_kernel_shader, KernelShapes, StorageMode, StreamRank};

    let (_, _, report) = run_chain2(BrookContext::cpu);
    let shapes = KernelShapes::default()
        .with("in0", StreamRank::Linear)
        .with("o0", StreamRank::Linear);
    let generated = generate_ir_kernel_shader(
        &report.fused[0].ir,
        "fused_dbl_inc",
        "o0",
        &shapes,
        StorageMode::Native,
    )
    .expect("codegen");
    glsl_es::compile(&generated.glsl).expect("fused GLSL must compile");

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("fused_dbl_inc.glsl");
    if std::env::var_os("BROOK_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &generated.glsl).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with BROOK_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        generated.glsl, expected,
        "fused GLSL drifted from its golden fixture; if intentional, re-bless with BROOK_BLESS=1"
    );
}

/// On the GL backend the saving is observable in device counters: fused
/// execution issues fewer draw calls than eager.
#[test]
fn gles2_draw_calls_drop_under_fusion() {
    let make = || BrookContext::gles2(gles2_sim::DeviceProfile::videocore_iv());
    let data: Vec<f32> = (0..256).map(|i| i as f32 * 0.01).collect();

    let mut eager = make();
    let module = eager.compile(CHAIN3).expect("compile");
    let a = eager.stream(&[256]).expect("a");
    let t1 = eager.stream(&[256]).expect("t1");
    let t2 = eager.stream(&[256]).expect("t2");
    let out = eager.stream(&[256]).expect("out");
    eager.write(&a, &data).expect("write");
    eager.reset_counters();
    eager
        .run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&t1)])
        .expect("dbl");
    eager
        .run(
            &module,
            "addk",
            &[Arg::Stream(&t1), Arg::Float(1.0), Arg::Stream(&t2)],
        )
        .expect("addk");
    eager
        .run(&module, "square", &[Arg::Stream(&t2), Arg::Stream(&out)])
        .expect("square");
    let eager_draws = eager.gpu_counters().draw_calls;

    let mut ctx = make();
    let module = ctx.compile(CHAIN3).expect("compile");
    let a = ctx.stream(&[256]).expect("a");
    let out = ctx.stream(&[256]).expect("out");
    ctx.write(&a, &data).expect("write");
    ctx.reset_counters();
    let mut g = ctx.graph();
    let t1 = g.stream(&[256]).expect("t1");
    let t2 = g.stream(&[256]).expect("t2");
    g.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&t1)])
        .expect("record");
    g.run(
        &module,
        "addk",
        &[Arg::Stream(&t1), Arg::Float(1.0), Arg::Stream(&t2)],
    )
    .expect("record");
    g.run(&module, "square", &[Arg::Stream(&t2), Arg::Stream(&out)])
        .expect("record");
    g.execute().expect("execute");
    let fused_draws = ctx.gpu_counters().draw_calls;

    assert_eq!(eager_draws, 3);
    assert_eq!(fused_draws, 1, "fused chain must be one draw call");
}
