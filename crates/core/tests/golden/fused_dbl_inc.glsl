precision highp float;
varying vec2 v_texcoord;
uniform vec2 _ba_vp;
uniform sampler2D _tex_in0;
uniform vec4 _meta_in0;
uniform vec4 _meta_o0;
float _fetch_in0() {
    vec2 _pcf = floor(v_texcoord * _ba_vp);
    float _l = _pcf.y * _ba_vp.x + _pcf.x;
    float _row = floor(_l / _meta_in0.x);
    float _col = _l - _row * _meta_in0.x;
    return texture2D(_tex_in0, (vec2(_col, _row) + 0.5) / _meta_in0.xy).x;
}

void main() {
    vec2 _pc = floor(v_texcoord * _ba_vp);
    float _lin = _pc.y * _ba_vp.x + _pc.x;
    float b_in0 = _fetch_in0();
    float _out_o0 = 0.0;
    float _r0 = 0.0;
    float _r1 = 0.0;
    float _r2 = 0.0;
    float _r3 = 0.0;
    float _r4 = 0.0;
    float _r5 = 0.0;
    float _r6 = 0.0;
    _r0 = 0.0;
    _r1 = b_in0;
    _r2 = 2.0;
    _r3 = (_r1 * _r2);
    _r0 = _r3;
    _r4 = _r0;
    _r5 = 1.0;
    _r6 = (_r4 + _r5);
    _out_o0 = _r6;
    gl_FragColor = vec4(_out_o0, 0.0, 0.0, 0.0);
}
