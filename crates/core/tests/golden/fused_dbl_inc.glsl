precision highp float;
varying vec2 v_texcoord;
uniform vec2 _ba_vp;
uniform sampler2D _tex_in0;
uniform vec4 _meta_in0;
uniform vec4 _meta_o0;
float _fetch_in0() {
    vec2 _pcf = floor(v_texcoord * _ba_vp);
    float _l = _pcf.y * _ba_vp.x + _pcf.x;
    float _row = floor(_l / _meta_in0.x);
    float _col = _l - _row * _meta_in0.x;
    return texture2D(_tex_in0, (vec2(_col, _row) + 0.5) / _meta_in0.xy).x;
}

void main() {
    vec2 _pc = floor(v_texcoord * _ba_vp);
    float _lin = _pc.y * _ba_vp.x + _pc.x;
    float b_in0 = _fetch_in0();
    float _out_o0 = 0.0;
    float b_t0 = 0.0;
    b_t0 = (b_in0 * 2.0);
    _out_o0 = (b_t0 + 1.0);
    gl_FragColor = vec4(_out_o0, 0.0, 0.0, 0.0);
}
