//! Block-remainder and fallback edge cases of the lane-vectorized
//! engine: domain sizes straddling the block size (L−1 / L / L+1 /
//! 2L+1), zero-length domains, worker counts around the block count on
//! the parallel backend, planner-rejection fallback, and the recorded
//! lane-plan provenance — all bit-exact against the scalar IR
//! interpreter.

use brook_auto::{Arg, BrookContext, CertConfig, ParallelCpuBackend};
use brook_ir::lanes::LANES;

/// A context on the serial CPU backend with lane execution disabled —
/// the scalar-IR baseline every lane result must match bitwise.
fn cpu_scalar() -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.lane_execution = false;
    ctx
}

/// Divergent control flow + multiple outputs: a kernel that exercises
/// masked branches, a data-dependent loop and two output buffers.
const DIVERGENT: &str = "kernel void f(float a<>, out float x<>, out float y<>) {
    float s = a;
    int i;
    for (i = 0; i < 24; i++) {
        if (s < 6.0) { s = s * 1.7 + 0.3; }
    }
    if (a > 2.5) { x = s * 2.0; } else { x = s - 1.0; }
    y = sin(a) + s * 0.125;
}";

fn run_divergent(mut ctx: BrookContext, data: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let n = data.len();
    let module = ctx.compile(DIVERGENT).expect("compile");
    let a = ctx.stream(&[n]).expect("a");
    let x = ctx.stream(&[n]).expect("x");
    let y = ctx.stream(&[n]).expect("y");
    ctx.write(&a, data).expect("write");
    ctx.run(&module, "f", &[Arg::Stream(&a), Arg::Stream(&x), Arg::Stream(&y)])
        .expect("run");
    (ctx.read(&x).expect("x"), ctx.read(&y).expect("y"))
}

/// Every remainder shape around the block size must be bit-exact with
/// the scalar interpreter on the serial backend.
#[test]
fn block_remainders_match_scalar_on_cpu() {
    for n in [1, LANES - 1, LANES, LANES + 1, 2 * LANES + 1, 5 * LANES + 3] {
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37) % 5.0).collect();
        let reference = run_divergent(cpu_scalar(), &data);
        let lanes = run_divergent(BrookContext::cpu(), &data);
        assert_eq!(reference.0.len(), n);
        for (i, (r, l)) in reference.0.iter().zip(&lanes.0).enumerate() {
            assert_eq!(r.to_bits(), l.to_bits(), "n={n} output x element {i}");
        }
        for (i, (r, l)) in reference.1.iter().zip(&lanes.1).enumerate() {
            assert_eq!(r.to_bits(), l.to_bits(), "n={n} output y element {i}");
        }
    }
}

/// The parallel backend aligns worker chunks to lane blocks; every
/// worker count — one, a few, and more workers than there are blocks —
/// must stay bit-exact with the serial scalar run, for domains both
/// below and above the parallel threshold.
#[test]
fn block_remainders_match_scalar_on_cpu_parallel() {
    for n in [LANES + 1, 2 * LANES + 1, 16 * LANES + 1, 16 * LANES + LANES - 1] {
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.61) % 4.5).collect();
        let reference = run_divergent(cpu_scalar(), &data);
        // 16*LANES+1 = 257 elements span 17 blocks; 33 workers exceed
        // the block count, so trailing chunks must come out empty.
        for workers in [1usize, 3, 7, 33] {
            let ctx = BrookContext::with_backend(
                Box::new(ParallelCpuBackend::with_workers(workers)),
                CertConfig::default(),
            );
            let lanes = run_divergent(ctx, &data);
            assert_eq!(reference, lanes, "n={n} workers={workers}");
        }
    }
}

/// A zero-length domain produces zero blocks: the lane engine runs no
/// ops, touches no outputs and succeeds. The public API rejects
/// zero-sized streams, so this pins the internal entry point directly.
#[test]
fn zero_length_domain_runs_no_blocks() {
    let checked = brook_lang::parse_and_check("kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }")
        .expect("check");
    let kdef = checked.program.kernels().next().expect("kernel");
    let kernel = brook_ir::lower::lower_kernel(&checked, kdef).expect("lower");
    let lane = brook_ir::lanes::plan(&kernel).expect("plan");
    let shape: Vec<usize> = vec![0];
    let bindings = vec![
        brook_ir::interp::Binding::Elem {
            data: &[],
            shape: &shape,
            width: 1,
        },
        brook_ir::interp::Binding::Out(0),
    ];
    let mut buf = Vec::<f32>::new();
    let mut outs: Vec<&mut [f32]> = vec![&mut buf];
    brook_ir::lanes::run_kernel_range(&lane, &kernel, &bindings, &mut outs, &shape, 0..0)
        .expect("zero-length domain");
    assert!(buf.is_empty());
}

/// The compile-time planning decision is recorded in the compliance
/// report: admitted kernels as vectorized, rejected ones with a reason,
/// and a lane-disabled context records nothing.
#[test]
fn lane_plans_are_recorded_in_the_report() {
    let mut ctx = BrookContext::cpu();
    let module = ctx
        .compile(
            "kernel void ok(float a<>, out float o<>) { o = a + 1.0; }
             kernel void mixed(float a<>, out float o<>) { o = a > 0.0 ? 1 : a * 0.5; }",
        )
        .expect("compile");
    let plans = &module.report.lane_plans;
    assert_eq!(plans.len(), 2, "{plans:?}");
    let ok = plans.iter().find(|p| p.kernel == "ok").expect("ok plan");
    assert!(ok.vectorized);
    assert_eq!(ok.detail, "lane-vectorized");
    let mixed = plans.iter().find(|p| p.kernel == "mixed").expect("mixed plan");
    assert!(!mixed.vectorized, "lane-divergent arm types must be rejected");
    assert!(!mixed.detail.is_empty());

    let mut off = cpu_scalar();
    let module = off
        .compile("kernel void ok(float a<>, out float o<>) { o = a + 1.0; }")
        .expect("compile");
    assert!(module.report.lane_plans.is_empty());
}

/// A planner-rejected kernel still executes — through the scalar
/// fallback — and agrees bitwise with the lane-disabled context.
#[test]
fn planner_rejected_kernel_falls_back_bit_exactly() {
    let src = "kernel void mixed(float a<>, out float o<>) { o = a > 1.0 ? 1 : a * 0.5; }";
    let n = 3 * LANES + 2;
    let data: Vec<f32> = (0..n).map(|i| i as f32 * 0.21).collect();
    let mut outs = Vec::new();
    for mut ctx in [cpu_scalar(), BrookContext::cpu(), BrookContext::cpu_parallel()] {
        let module = ctx.compile(src).expect("compile");
        if ctx.lane_execution {
            let plan = &module.report.lane_plans[0];
            assert!(!plan.vectorized, "test premise: planner rejects this kernel");
        }
        let a = ctx.stream(&[n]).expect("a");
        let o = ctx.stream(&[n]).expect("o");
        ctx.write(&a, &data).expect("write");
        ctx.run(&module, "mixed", &[Arg::Stream(&a), Arg::Stream(&o)])
            .expect("run");
        outs.push(ctx.read(&o).expect("read"));
    }
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[0], outs[2]);
}

/// 2-D domains: lane blocks cross row boundaries mid-block; `indexof`
/// and proportional input indexing must match the scalar path exactly.
#[test]
fn two_d_domains_match_scalar_across_row_boundaries() {
    let src = "kernel void idx(float a<>, out float o<>) {
        float2 p = indexof(o);
        o = p.y * 1000.0 + p.x + a * 0.5;
    }";
    // 7 columns: every 16-lane block spans two or three rows.
    let (rows, cols) = (9usize, 7usize);
    let data: Vec<f32> = (0..rows * cols).map(|i| i as f32 * 0.11).collect();
    let mut results = Vec::new();
    for mut ctx in [cpu_scalar(), BrookContext::cpu()] {
        let module = ctx.compile(src).expect("compile");
        let a = ctx.stream(&[rows, cols]).expect("a");
        let o = ctx.stream(&[rows, cols]).expect("o");
        ctx.write(&a, &data).expect("write");
        ctx.run(&module, "idx", &[Arg::Stream(&a), Arg::Stream(&o)])
            .expect("run");
        results.push(ctx.read(&o).expect("read"));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0][cols + 1], 1001.0 + data[cols + 1] * 0.5);
}

/// Vector-width streams (float4 elements) stage in and out of the
/// block slabs correctly at every remainder.
#[test]
fn vector_width_outputs_match_scalar() {
    let src = "kernel void v(float4 a<>, out float4 o<>) {
        float4 t = a * 2.0;
        t.yz += float2(1.0, 2.0);
        o = t;
    }";
    for n in [LANES - 1, LANES, 2 * LANES + 5] {
        let data: Vec<f32> = (0..n * 4).map(|i| i as f32 * 0.17 - 2.0).collect();
        let mut results = Vec::new();
        for mut ctx in [cpu_scalar(), BrookContext::cpu()] {
            let module = ctx.compile(src).expect("compile");
            let a = ctx.stream_with_width(&[n], 4).expect("a");
            let o = ctx.stream_with_width(&[n], 4).expect("o");
            ctx.write(&a, &data).expect("write");
            ctx.run(&module, "v", &[Arg::Stream(&a), Arg::Stream(&o)])
                .expect("run");
            results.push(ctx.read(&o).expect("read"));
        }
        assert_eq!(results[0], results[1], "n={n}");
    }
}
