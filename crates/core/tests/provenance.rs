//! Diagnostic provenance through the IR: faults raised *after* lowering
//! — runtime faults in the flat interpreter, certification decisions in
//! the pass pipeline — must point at the original source line, not at
//! synthesized IR positions.

use brook_auto::{Arg, BrookContext, CertConfig, ParallelCpuBackend};
use brook_cert::PassAction;

/// A runaway loop caught by the interpreter's iteration budget reports
/// the loop's source line (line 3 below), on both CPU backends.
#[test]
fn runtime_fault_reports_the_offending_source_line() {
    let src = "kernel void spin(float a<>, out float o<>) {\n    float s = a + 1.0;\n    while (s > 0.0) { s += 1.0; }\n    o = s;\n}";
    type ContextFactory = Box<dyn Fn() -> BrookContext>;
    let make: Vec<(&str, ContextFactory)> = vec![
        ("cpu", Box::new(BrookContext::cpu)),
        (
            "cpu-parallel",
            Box::new(|| {
                BrookContext::with_backend(
                    Box::new(ParallelCpuBackend::with_workers(4)),
                    CertConfig::default(),
                )
            }),
        ),
    ];
    for (name, make) in make {
        let mut ctx = make();
        ctx.enforce_certification = false;
        let module = ctx.compile(src).expect("compile (uncertified)");
        let n = 1024;
        let a = ctx.stream(&[n]).expect("a");
        let o = ctx.stream(&[n]).expect("o");
        ctx.write(&a, &vec![1.0; n]).expect("write");
        let err = ctx
            .run(&module, "spin", &[Arg::Stream(&a), Arg::Stream(&o)])
            .expect_err("must exhaust the budget");
        let msg = err.to_string();
        assert!(msg.contains("iteration budget"), "{name}: {msg}");
        assert!(
            msg.contains("source line 3:"),
            "{name}: fault must cite the while-loop's source line, got: {msg}"
        );
    }
}

/// The pass pipeline's provenance lands in the module's
/// `ComplianceReport`: one record per (kernel, pass), all applied for a
/// well-behaved program.
#[test]
fn compile_records_pass_provenance_in_the_report() {
    let mut ctx = BrookContext::cpu();
    let module = ctx
        .compile("kernel void f(float a<>, out float o<>) { o = a * 1.0 + 2.0 * 3.0; }")
        .expect("compile");
    let passes = &module.report.passes;
    assert_eq!(passes.len(), 4, "{passes:?}"); // const-fold, algebraic, cse, dce
    assert!(passes.iter().all(|r| r.kernel == "f"));
    assert!(
        passes
            .iter()
            .all(|r| matches!(r.action, PassAction::Applied { .. })),
        "{passes:?}"
    );
    assert!(
        passes
            .iter()
            .any(|r| matches!(r.action, PassAction::Applied { changed: true })),
        "the pipeline must have simplified something: {passes:?}"
    );
    let names: Vec<&str> = passes.iter().map(|r| r.pass.as_str()).collect();
    assert_eq!(names, vec!["const-fold", "algebraic", "cse", "dce"]);
}

/// Disabling the pipeline yields an unoptimized module with no pass
/// records — the knob the optimized-vs-unoptimized differential
/// campaign relies on.
#[test]
fn ir_optimize_toggle_controls_the_pipeline() {
    let src = "kernel void f(float a<>, out float o<>) { o = a * 1.0; }";
    let mut on = BrookContext::cpu();
    let m_on = on.compile(src).expect("compile");
    assert!(!m_on.report.passes.is_empty());

    let mut off = BrookContext::cpu();
    off.ir_optimize = false;
    let m_off = off.compile(src).expect("compile");
    assert!(m_off.report.passes.is_empty());
    // Both still execute through the IR and agree bitwise.
    let run = |ctx: &mut BrookContext, m| {
        let a = ctx.stream(&[8]).unwrap();
        let o = ctx.stream(&[8]).unwrap();
        ctx.write(&a, &[0.5; 8]).unwrap();
        ctx.run(m, "f", &[Arg::Stream(&a), Arg::Stream(&o)]).unwrap();
        ctx.read(&o).unwrap()
    };
    assert_eq!(run(&mut on, &m_on), run(&mut off, &m_off));
}

/// The optimized IR is observable through `emit_ir`: the multiply by
/// one is gone from the optimized module but present in the
/// unoptimized one.
#[test]
fn emit_ir_shows_the_optimization_effect() {
    let src = "kernel void f(float a<>, out float o<>) { o = a * 1.0; }";
    let mut on = BrookContext::cpu();
    let m_on = on.compile(src).expect("compile");
    let ir_on = on.emit_ir(&m_on).expect("emit");
    assert!(!ir_on.contains(" * "), "x*1.0 must be simplified away:\n{ir_on}");

    let mut off = BrookContext::cpu();
    off.ir_optimize = false;
    let m_off = off.compile(src).expect("compile");
    let ir_off = off.emit_ir(&m_off).expect("emit");
    assert!(
        ir_off.contains(" * "),
        "unoptimized IR keeps the multiply:\n{ir_off}"
    );
}

/// Budget exhaustion raised out of a lane block must cite the faulting
/// *element's* index and source line — not the block. Covers the first
/// lane of the first block, the last lane of the last (partial) block,
/// and a lone diverged lane mid-block, on both CPU backends; with a
/// single faulting element the lane engine's scalar re-run must name
/// exactly that element.
#[test]
fn lane_fault_cites_the_faulting_element_and_source_line() {
    use brook_ir::lanes::LANES;
    let src = "kernel void spin(float a<>, out float o<>) {\n    float s = a;\n    while (s > 0.5) { }\n    o = s;\n}";
    let n = 2 * LANES + 7; // three blocks, the last one partial
    type ContextFactory = Box<dyn Fn() -> BrookContext>;
    let make: Vec<(&str, ContextFactory)> = vec![
        ("cpu", Box::new(BrookContext::cpu)),
        (
            "cpu-parallel",
            Box::new(|| {
                BrookContext::with_backend(
                    Box::new(ParallelCpuBackend::with_workers(4)),
                    CertConfig::default(),
                )
            }),
        ),
    ];
    for (name, make) in &make {
        for bad in [0usize, n - 1, LANES + 3] {
            let mut ctx = make();
            ctx.enforce_certification = false;
            let module = ctx.compile(src).expect("compile (uncertified)");
            // The planner must still admit the kernel: data-dependent
            // loops run masked-until-all-exit, and only the diverged
            // lane exhausts the budget.
            let plan = &module.report.lane_plans[0];
            assert!(plan.vectorized, "{name}: {plan:?}");
            let a = ctx.stream(&[n]).expect("a");
            let o = ctx.stream(&[n]).expect("o");
            let data: Vec<f32> = (0..n).map(|i| if i == bad { 1.0 } else { 0.0 }).collect();
            ctx.write(&a, &data).expect("write");
            let err = ctx
                .run(&module, "spin", &[Arg::Stream(&a), Arg::Stream(&o)])
                .expect_err("must exhaust the budget");
            let msg = err.to_string();
            assert!(msg.contains("iteration budget"), "{name} bad={bad}: {msg}");
            assert!(
                msg.contains(&format!("element {bad},")),
                "{name}: fault must cite element {bad}, got: {msg}"
            );
            assert!(
                msg.contains("source line 3:"),
                "{name}: fault must cite the while-loop's source line, got: {msg}"
            );
        }
    }
}

/// The same fault on the lane engine and on a lane-disabled (scalar IR)
/// context must render identically — the lane engine's fault surface is
/// the scalar interpreter's, verbatim.
#[test]
fn lane_fault_is_the_scalar_fault_verbatim() {
    use brook_ir::lanes::LANES;
    let src = "kernel void spin(float a<>, out float o<>) {\n    float s = a;\n    while (s > 0.5) { }\n    o = s;\n}";
    let n = LANES + 5;
    let bad = LANES + 2;
    let render = |lane_execution: bool| {
        let mut ctx = BrookContext::cpu();
        ctx.lane_execution = lane_execution;
        ctx.enforce_certification = false;
        let module = ctx.compile(src).expect("compile (uncertified)");
        let a = ctx.stream(&[n]).expect("a");
        let o = ctx.stream(&[n]).expect("o");
        let data: Vec<f32> = (0..n).map(|i| if i == bad { 2.0 } else { 0.0 }).collect();
        ctx.write(&a, &data).expect("write");
        ctx.run(&module, "spin", &[Arg::Stream(&a), Arg::Stream(&o)])
            .expect_err("must exhaust the budget")
            .to_string()
    };
    assert_eq!(render(true), render(false));
}
