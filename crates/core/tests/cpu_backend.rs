//! Direct tests of the CPU interpreter backend (`brook_auto::cpu`) —
//! the reference semantics every GPU backend is validated against.

use brook_auto::cpu::{run_kernel, run_kernel_shaped, run_reduce, CpuBinding};
use brook_lang::parse_and_check;
use std::collections::HashMap;

#[test]
fn elementwise_kernel_over_2d_domain() {
    let checked = parse_and_check("kernel void f(float a<>, out float o<>) { o = a * 3.0 + 1.0; }").unwrap();
    let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
    let shape = [3usize, 4];
    let mut bindings: HashMap<String, CpuBinding<'_>> = HashMap::new();
    bindings.insert(
        "a".into(),
        CpuBinding::Elem {
            data: &data,
            shape: &shape,
            width: 1,
        },
    );
    bindings.insert("o".into(), CpuBinding::Out(0));
    let mut outputs = vec![vec![0.0f32; 12]];
    run_kernel(&checked, "f", &bindings, &mut outputs).unwrap();
    for (i, v) in outputs[0].iter().enumerate() {
        assert_eq!(*v, i as f32 * 3.0 + 1.0);
    }
}

#[test]
fn shaped_run_without_elementwise_inputs() {
    // Mandelbrot-style: the domain comes from the caller.
    let checked = parse_and_check(
        "kernel void f(float k, out float o<>) { float2 p = indexof(o); o = p.x * 10.0 + p.y + k; }",
    )
    .unwrap();
    let mut bindings: HashMap<String, CpuBinding<'_>> = HashMap::new();
    bindings.insert("k".into(), CpuBinding::Scalar(glsl_es::Value::Float(0.5)));
    bindings.insert("o".into(), CpuBinding::Out(0));
    let mut outputs = vec![vec![0.0f32; 6]];
    run_kernel_shaped(&checked, "f", &bindings, &mut outputs, &[2, 3]).unwrap();
    // Row-major 2x3: element (row 1, col 2) = 2*10 + 1 + 0.5.
    assert_eq!(outputs[0][5], 21.5);
    assert_eq!(outputs[0][0], 0.5);
}

#[test]
fn gather_with_clamping() {
    let checked =
        parse_and_check("kernel void f(float t[], float a<>, out float o<>) { o = t[int(a)]; }").unwrap();
    let table: Vec<f32> = vec![10.0, 20.0, 30.0];
    let idx: Vec<f32> = vec![-5.0, 0.0, 2.0, 99.0];
    let tshape = [3usize];
    let ishape = [4usize];
    let mut bindings: HashMap<String, CpuBinding<'_>> = HashMap::new();
    bindings.insert(
        "t".into(),
        CpuBinding::Gather {
            data: &table,
            shape: &tshape,
            width: 1,
        },
    );
    bindings.insert(
        "a".into(),
        CpuBinding::Elem {
            data: &idx,
            shape: &ishape,
            width: 1,
        },
    );
    bindings.insert("o".into(), CpuBinding::Out(0));
    let mut outputs = vec![vec![0.0f32; 4]];
    run_kernel(&checked, "f", &bindings, &mut outputs).unwrap();
    assert_eq!(
        outputs[0],
        vec![10.0, 10.0, 30.0, 30.0],
        "out-of-range gathers clamp to the edge"
    );
}

#[test]
fn reduce_runs_the_actual_kernel_body() {
    // A reduce kernel with extra arithmetic in the body: the fold must
    // execute it, not just apply the canonical op.
    let checked = parse_and_check(
        "reduce void s(float a<>, reduce float r<>) { float scaled = a * 2.0; r += scaled; }",
    )
    .unwrap();
    let data = vec![1.0f32, 2.0, 3.0];
    let total = run_reduce(&checked, "s", &data).unwrap();
    assert_eq!(total, 12.0);
}

#[test]
fn reduce_min_identity_on_empty_and_singleton() {
    let checked = parse_and_check("reduce void m(float a<>, reduce float r<>) { r = min(r, a); }").unwrap();
    assert_eq!(
        run_reduce(&checked, "m", &[]).unwrap(),
        f32::INFINITY,
        "empty fold yields the identity"
    );
    assert_eq!(run_reduce(&checked, "m", &[5.0]).unwrap(), 5.0);
}

#[test]
fn vector_locals_and_swizzle_writes() {
    let checked = parse_and_check(
        "kernel void f(float a<>, out float o<>) {
            float4 v = float4(a, a + 1.0, a + 2.0, a + 3.0);
            v.xy = v.zw;
            o = v.x + v.y + v.z + v.w;
        }",
    )
    .unwrap();
    let data = vec![1.0f32];
    let shape = [1usize];
    let mut bindings: HashMap<String, CpuBinding<'_>> = HashMap::new();
    bindings.insert(
        "a".into(),
        CpuBinding::Elem {
            data: &data,
            shape: &shape,
            width: 1,
        },
    );
    bindings.insert("o".into(), CpuBinding::Out(0));
    let mut outputs = vec![vec![0.0f32; 1]];
    run_kernel(&checked, "f", &bindings, &mut outputs).unwrap();
    // v becomes (3,4,3,4): sum 14.
    assert_eq!(outputs[0][0], 14.0);
}

#[test]
fn missing_binding_is_a_usage_error() {
    let checked = parse_and_check("kernel void f(float a<>, out float o<>) { o = a; }").unwrap();
    let bindings: HashMap<String, CpuBinding<'_>> = HashMap::new();
    let mut outputs = vec![vec![0.0f32; 4]];
    let err = run_kernel(&checked, "f", &bindings, &mut outputs).unwrap_err();
    assert!(err.to_string().contains("missing binding"));
}

#[test]
fn unknown_kernel_is_a_usage_error() {
    let checked = parse_and_check("kernel void f(float a<>, out float o<>) { o = a; }").unwrap();
    let bindings: HashMap<String, CpuBinding<'_>> = HashMap::new();
    let mut outputs = vec![];
    assert!(run_kernel(&checked, "nope", &bindings, &mut outputs).is_err());
}

#[test]
fn integer_semantics_match_c() {
    let checked = parse_and_check(
        "kernel void f(float a<>, out float o<>) {
            int i;
            int acc;
            acc = 0;
            for (i = 1; i <= 7; i++) { acc += i / 2; }
            o = a + acc;
        }",
    )
    .unwrap();
    let data = vec![0.0f32];
    let shape = [1usize];
    let mut bindings: HashMap<String, CpuBinding<'_>> = HashMap::new();
    bindings.insert(
        "a".into(),
        CpuBinding::Elem {
            data: &data,
            shape: &shape,
            width: 1,
        },
    );
    bindings.insert("o".into(), CpuBinding::Out(0));
    let mut outputs = vec![vec![0.0f32; 1]];
    run_kernel(&checked, "f", &bindings, &mut outputs).unwrap();
    // 0+1+1+2+2+3+3 = 12 (truncating integer division).
    assert_eq!(outputs[0][0], 12.0);
}
