//! Negative-path validation of `BrookContext`: every misuse must fail
//! with the *same, specific* `BrookError` variant on every registered
//! backend — a clean `Usage`/`Certification` error, never a
//! backend-dependent panic, GL fault or silent wrong answer. This is the
//! runtime half of the certification story: the static gate rejects bad
//! programs, the context rejects bad launches.

use brook_auto::{registered_backends, Arg, BrookContext, BrookError};

const ADD: &str = "kernel void add(float a<>, float b<>, out float c<>) { c = a + b; }";
const SAXPY: &str = "kernel void saxpy(float x<>, float alpha, out float r<>) { r = alpha * x; }";
const SUM: &str = "reduce void sum(float a<>, reduce float r<>) { r += a; }";

fn all_contexts() -> Vec<BrookContext> {
    registered_backends().iter().map(|b| (b.make)()).collect()
}

/// Asserts the error is the `Usage` variant, tagged with the backend.
fn assert_usage(err: BrookError, backend: &str, what: &str) {
    assert!(
        matches!(err, BrookError::Usage(_)),
        "{backend}: {what}: expected BrookError::Usage, got: {err}"
    );
}

#[test]
fn too_few_arguments_rejected_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(ADD).unwrap();
        let a = ctx.stream(&[4]).unwrap();
        let c = ctx.stream(&[4]).unwrap();
        let err = ctx
            .run(&module, "add", &[Arg::Stream(&a), Arg::Stream(&c)])
            .unwrap_err();
        assert_usage(err, name, "2 args for 3 params");
    }
}

#[test]
fn too_many_arguments_rejected_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(ADD).unwrap();
        let a = ctx.stream(&[4]).unwrap();
        let b = ctx.stream(&[4]).unwrap();
        let c = ctx.stream(&[4]).unwrap();
        let err = ctx
            .run(
                &module,
                "add",
                &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&c), Arg::Float(1.0)],
            )
            .unwrap_err();
        assert_usage(err, name, "4 args for 3 params");
    }
}

#[test]
fn stream_passed_for_scalar_parameter_rejected_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(SAXPY).unwrap();
        let x = ctx.stream(&[4]).unwrap();
        let bogus = ctx.stream(&[4]).unwrap();
        let r = ctx.stream(&[4]).unwrap();
        let err = ctx
            .run(
                &module,
                "saxpy",
                &[Arg::Stream(&x), Arg::Stream(&bogus), Arg::Stream(&r)],
            )
            .unwrap_err();
        assert_usage(err, name, "stream bound to scalar param");
    }
}

#[test]
fn scalar_passed_for_stream_parameter_rejected_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(ADD).unwrap();
        let b = ctx.stream(&[4]).unwrap();
        let c = ctx.stream(&[4]).unwrap();
        let err = ctx
            .run(
                &module,
                "add",
                &[Arg::Float(1.0), Arg::Stream(&b), Arg::Stream(&c)],
            )
            .unwrap_err();
        assert_usage(err, name, "scalar bound to stream param");
    }
}

#[test]
fn scalar_width_mismatch_rejected_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(SAXPY).unwrap();
        let x = ctx.stream(&[4]).unwrap();
        let r = ctx.stream(&[4]).unwrap();
        let err = ctx
            .run(
                &module,
                "saxpy",
                &[Arg::Stream(&x), Arg::Float4([1.0; 4]), Arg::Stream(&r)],
            )
            .unwrap_err();
        assert_usage(err, name, "float4 for float scalar");
    }
}

#[test]
fn unknown_kernel_rejected_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(ADD).unwrap();
        let err = ctx.run(&module, "nonsense", &[]).unwrap_err();
        assert_usage(err, name, "unknown kernel name");
    }
}

#[test]
fn run_on_reduce_kernel_rejected_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(SUM).unwrap();
        let a = ctx.stream(&[4]).unwrap();
        let r = ctx.stream(&[1]).unwrap();
        let err = ctx
            .run(&module, "sum", &[Arg::Stream(&a), Arg::Stream(&r)])
            .unwrap_err();
        assert_usage(err, name, "run() on a reduce kernel");
    }
}

#[test]
fn reduce_on_map_kernel_rejected_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(ADD).unwrap();
        let a = ctx.stream(&[4]).unwrap();
        let err = ctx.reduce(&module, "add", &a).unwrap_err();
        assert_usage(err, name, "reduce() on a map kernel");
    }
}

#[test]
fn in_place_kernel_rejected_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(ADD).unwrap();
        let a = ctx.stream(&[4]).unwrap();
        let b = ctx.stream(&[4]).unwrap();
        ctx.write(&a, &[0.0; 4]).unwrap();
        ctx.write(&b, &[0.0; 4]).unwrap();
        let err = ctx
            .run(
                &module,
                "add",
                &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&a)],
            )
            .unwrap_err();
        assert_usage(err, name, "output aliases an input");
    }
}

#[test]
fn gather_aliasing_output_rejected_everywhere() {
    let src = "kernel void g(float t[], float i<>, out float o<>) { o = t[int(i)]; }";
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(src).unwrap();
        let t = ctx.stream(&[4]).unwrap();
        let i = ctx.stream(&[4]).unwrap();
        ctx.write(&t, &[0.0; 4]).unwrap();
        ctx.write(&i, &[0.0; 4]).unwrap();
        let err = ctx
            .run(&module, "g", &[Arg::Stream(&t), Arg::Stream(&i), Arg::Stream(&t)])
            .unwrap_err();
        assert_usage(err, name, "output aliases a gather");
    }
}

#[test]
fn gather_rank_mismatch_rejected_everywhere() {
    // A rank-2 gather bound to a 1-D stream (and vice versa) has no
    // consistent cross-backend index translation; the context must
    // refuse the binding instead of letting backends disagree.
    let rank2 = "kernel void g(float t[][], float i<>, out float o<>) { o = t[int(i)][0]; }";
    let rank1 = "kernel void g(float t[], float i<>, out float o<>) { o = t[int(i)]; }";
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(rank2).unwrap();
        let t = ctx.stream(&[10]).unwrap(); // 1-D stream for a 2-D gather
        let i = ctx.stream(&[4]).unwrap();
        let o = ctx.stream(&[4]).unwrap();
        let err = ctx
            .run(&module, "g", &[Arg::Stream(&t), Arg::Stream(&i), Arg::Stream(&o)])
            .unwrap_err();
        assert_usage(err, name, "rank-2 gather bound to 1-D stream");

        let module = ctx.compile(rank1).unwrap();
        let t2 = ctx.stream(&[3, 5]).unwrap(); // 2-D stream for a 1-D gather
        let err = ctx
            .run(
                &module,
                "g",
                &[Arg::Stream(&t2), Arg::Stream(&i), Arg::Stream(&o)],
            )
            .unwrap_err();
        assert_usage(err, name, "rank-1 gather bound to 2-D stream");
    }
}

#[test]
fn duplicate_output_streams_rejected_everywhere() {
    let src = "kernel void two(float a<>, out float x<>, out float y<>) { x = a; y = a + 1.0; }";
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(src).unwrap();
        let a = ctx.stream(&[4]).unwrap();
        let o = ctx.stream(&[4]).unwrap();
        ctx.write(&a, &[0.0; 4]).unwrap();
        let err = ctx
            .run(
                &module,
                "two",
                &[Arg::Stream(&a), Arg::Stream(&o), Arg::Stream(&o)],
            )
            .unwrap_err();
        assert_usage(err, name, "same stream bound to two outputs");
    }
}

#[test]
fn foreign_stream_rejected_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(ADD).unwrap();
        let mut other = BrookContext::cpu();
        let foreign = other.stream(&[4]).unwrap();
        let b = ctx.stream(&[4]).unwrap();
        let c = ctx.stream(&[4]).unwrap();
        let err = ctx
            .run(
                &module,
                "add",
                &[Arg::Stream(&foreign), Arg::Stream(&b), Arg::Stream(&c)],
            )
            .unwrap_err();
        assert_usage(err, name, "stream from another context");
    }
}

#[test]
fn wrong_size_write_rejected_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let s = ctx.stream(&[8]).unwrap();
        let err = ctx.write(&s, &[1.0, 2.0]).unwrap_err();
        assert_usage(err, name, "2 values into an 8-element stream");
    }
}

#[test]
fn noncompliant_program_yields_certification_variant_everywhere() {
    let src = "kernel void f(float a<>, out float o<>) {
        float s = 0.0;
        while (s < 10.0) { s += a; }
        o = s;
    }";
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let err = ctx.compile(src).unwrap_err();
        match err {
            BrookError::Certification(report) => {
                assert!(
                    report.violation_count() >= 1,
                    "{name}: report must carry the violations"
                );
            }
            other => panic!("{name}: expected Certification, got: {other}"),
        }
    }
}

#[test]
fn front_end_error_yields_frontend_variant_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let err = ctx.compile("kernel void broken(float a<> { }").unwrap_err();
        assert!(
            matches!(err, BrookError::FrontEnd(_)),
            "{name}: expected FrontEnd, got: {err}"
        );
    }
}

/// `Arg::Float` for an `int` parameter must be an exact integral value
/// in `i32` range — `Arg::Float(2.9)` used to truncate silently to `2`.
#[test]
fn non_integral_float_for_int_scalar_rejected_everywhere() {
    let src = "kernel void scl(float a<>, int n, out float o<>) { o = a * float(n); }";
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(src).unwrap();
        let a = ctx.stream(&[4]).unwrap();
        let o = ctx.stream(&[4]).unwrap();
        ctx.write(&a, &[1.0, 2.0, 3.0, 4.0]).unwrap();

        // Exact integral values convert.
        ctx.run(
            &module,
            "scl",
            &[Arg::Stream(&a), Arg::Float(2.0), Arg::Stream(&o)],
        )
        .unwrap_or_else(|e| panic!("{name}: Float(2.0) must convert: {e}"));
        assert_eq!(ctx.read(&o).unwrap(), vec![2.0, 4.0, 6.0, 8.0], "{name}");

        // Fractional values are an error, not a truncation.
        let err = ctx
            .run(
                &module,
                "scl",
                &[Arg::Stream(&a), Arg::Float(2.5), Arg::Stream(&o)],
            )
            .unwrap_err();
        assert_usage(err, name, "Float(2.5) for int param");

        // i32::MIN is exactly representable in f32 and accepted...
        ctx.run(
            &module,
            "scl",
            &[Arg::Stream(&a), Arg::Float(-2147483648.0), Arg::Stream(&o)],
        )
        .unwrap_or_else(|e| panic!("{name}: Float(i32::MIN) must convert: {e}"));

        // ...but 2^31 (what `i32::MAX as f32` rounds to) is out of range
        // and used to saturate silently.
        let err = ctx
            .run(
                &module,
                "scl",
                &[Arg::Stream(&a), Arg::Float(2147483648.0), Arg::Stream(&o)],
            )
            .unwrap_err();
        assert_usage(err, name, "Float(2^31) for int param");

        // Non-finite values cannot name an integer at all.
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let err = ctx
                .run(
                    &module,
                    "scl",
                    &[Arg::Stream(&a), Arg::Float(bad), Arg::Stream(&o)],
                )
                .unwrap_err();
            assert_usage(err, name, &format!("Float({bad}) for int param"));
        }
    }
}

/// `Arg::Int` remains the precise path for int parameters, including
/// both `i32` extremes.
#[test]
fn int_argument_edges_accepted_everywhere() {
    let src = "kernel void pick(float a<>, int n, out float o<>) {
        o = (n < 0) ? (a - 1.0) : (a + 1.0);
    }";
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(src).unwrap();
        let a = ctx.stream(&[2]).unwrap();
        let o = ctx.stream(&[2]).unwrap();
        ctx.write(&a, &[5.0, 6.0]).unwrap();
        ctx.run(
            &module,
            "pick",
            &[Arg::Stream(&a), Arg::Int(i32::MIN), Arg::Stream(&o)],
        )
        .unwrap_or_else(|e| panic!("{name}: Int(i32::MIN): {e}"));
        assert_eq!(ctx.read(&o).unwrap(), vec![4.0, 5.0], "{name}");
        ctx.run(
            &module,
            "pick",
            &[Arg::Stream(&a), Arg::Int(i32::MAX), Arg::Stream(&o)],
        )
        .unwrap_or_else(|e| panic!("{name}: Int(i32::MAX): {e}"));
        assert_eq!(ctx.read(&o).unwrap(), vec![6.0, 7.0], "{name}");
    }
}

/// `stream_len` routes through the foreign-stream check like
/// `read`/`write` do — it used to index another backend's stream table
/// directly, returning a wrong length or panicking out of bounds.
#[test]
fn stream_len_on_foreign_stream_rejected_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let own = ctx.stream(&[6]).unwrap();
        assert_eq!(ctx.stream_len(&own).unwrap(), 6, "{name}");
        for mut other in all_contexts() {
            let foreign = other.stream(&[2, 2]).unwrap();
            let err = ctx.stream_len(&foreign).unwrap_err();
            assert_usage(err, name, "stream_len on a foreign stream");
        }
    }
}

/// An elem-stream parameter's width must match the bound stream's
/// width: a `float4` param over a `float` stream used to slice the
/// input buffer out of bounds (CPU panic) or silently truncate (GL).
#[test]
fn elem_width_mismatch_rejected_everywhere() {
    let src = "kernel void quad(float4 a<>, out float4 o<>) { o = a; }";
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(src).unwrap();
        let a = ctx.stream(&[4]).unwrap(); // width 1 for a float4 param
        let Ok(o) = ctx.stream_with_width(&[4], 4) else {
            continue; // packed storage has no width-4 streams
        };
        let err = ctx
            .run(&module, "quad", &[Arg::Stream(&a), Arg::Stream(&o)])
            .unwrap_err();
        assert_usage(err, name, "float stream bound to float4 param");
    }
}

/// Same check on the output side: a narrow output stream under a wide
/// out-param was an out-of-bounds write on the CPU engines.
#[test]
fn out_width_mismatch_rejected_everywhere() {
    let src = "kernel void widen(float a<>, out float4 o<>) { o = float4(a, a, a, a); }";
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(src).unwrap();
        let a = ctx.stream(&[4]).unwrap();
        let o = ctx.stream(&[4]).unwrap(); // width 1 for an out float4
        ctx.write(&a, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let err = ctx
            .run(&module, "widen", &[Arg::Stream(&a), Arg::Stream(&o)])
            .unwrap_err();
        assert_usage(err, name, "float stream bound to out float4 param");
    }
}

/// Gather parameters carry a width too.
#[test]
fn gather_width_mismatch_rejected_everywhere() {
    let src = "kernel void g(float4 t[], float i<>, out float o<>) { o = t[int(i)].x; }";
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(src).unwrap();
        let t = ctx.stream(&[4]).unwrap(); // width 1 for a float4 gather
        let i = ctx.stream(&[4]).unwrap();
        let o = ctx.stream(&[4]).unwrap();
        let err = ctx
            .run(&module, "g", &[Arg::Stream(&t), Arg::Stream(&i), Arg::Stream(&o)])
            .unwrap_err();
        assert_usage(err, name, "float stream bound to float4 gather");
    }
}

/// All outputs of one launch execute over a single domain (the first
/// output's shape); a smaller second output used to be written out of
/// bounds by the CPU engines.
#[test]
fn mismatched_output_shapes_rejected_everywhere() {
    let src = "kernel void two(float a<>, out float x<>, out float y<>) { x = a; y = a + 1.0; }";
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(src).unwrap();
        let a = ctx.stream(&[8]).unwrap();
        let x = ctx.stream(&[8]).unwrap();
        let y = ctx.stream(&[4]).unwrap(); // smaller than the domain
        ctx.write(&a, &[0.5; 8]).unwrap();
        let err = ctx
            .run(
                &module,
                "two",
                &[Arg::Stream(&a), Arg::Stream(&x), Arg::Stream(&y)],
            )
            .unwrap_err();
        assert_usage(err, name, "outputs with different shapes");
    }
}

/// `reduce` folds lanes differently on the host (all lanes) and the GL
/// ladder (one channel per step); a width mismatch between kernel and
/// stream is rejected instead of letting the backends diverge.
#[test]
fn reduce_width_mismatch_rejected_everywhere() {
    for mut ctx in all_contexts() {
        let name = ctx.backend_name();
        let module = ctx.compile(SUM).unwrap();
        let Ok(wide) = ctx.stream_with_width(&[4], 4) else {
            continue; // packed storage has no width-4 streams
        };
        ctx.write(&wide, &[1.0; 16]).unwrap();
        let err = ctx.reduce(&module, "sum", &wide).unwrap_err();
        assert_usage(err, name, "float4 stream into a float reduce");
    }
}
