//! The refined (post-pass) admission estimate: execution runs the
//! optimized IR, so admission must bill that IR, not the pre-pass AST.
//! A DCE-heavy kernel's `admission_cost` drops once the analyzer's
//! reachability-pruned walk replaces the AST figure, while staying at
//! or above the instruction count the interpreter actually executes.

use brook_auto::BrookContext;

/// Straight-line kernel where most of the work is dead: two locals are
/// computed and never used, so DCE deletes them from the executed IR
/// while the AST-level estimate still bills them.
const DCE_HEAVY: &str = "kernel void heavy(float a<>, out float o<>) {
    float dead = sqrt(abs(a)) * (a + 1.0) - (a * 0.5 + 2.0);
    float dead2 = (dead * dead + dead) * 0.25 + sqrt(abs(dead));
    o = a + 1.0;
}";

/// Counts instructions per element from the printed flat IR — every
/// non-structural line is one instruction the scalar interpreter
/// executes for a straight-line kernel.
fn measured_insts(ir: &str) -> u64 {
    ir.lines()
        .map(str::trim)
        .filter(|l| {
            !l.is_empty()
                && !l.starts_with("kernel ")
                && !l.starts_with('}')
                && !l.starts_with("loop ")
                && !l.ends_with(':')
        })
        .count() as u64
}

#[test]
fn dce_heavy_kernel_bills_the_optimized_ir_not_the_ast() {
    let mut ctx = BrookContext::cpu();
    let module = ctx.compile(DCE_HEAVY).unwrap_or_else(|e| panic!("{e}"));
    let kr = module.report.kernel("heavy").expect("kernel report");
    let ast = kr.instruction_estimate.expect("AST estimate");
    let refined = kr.refined_estimate.expect("refined estimate");
    assert!(
        refined < ast,
        "DCE removed two dead locals, so the refined estimate must drop: {refined} vs {ast}"
    );
    // The refined figure must still cover what actually executes.
    let printed = ctx.emit_ir(&module).unwrap();
    let measured = measured_insts(&printed);
    assert!(
        refined >= measured,
        "refined estimate {refined} under-bills the {measured} executed instructions:\n{printed}"
    );
    // `admission_cost` — the figure serve-side admission charges — is
    // the before/after of the bugfix: it now bills the refined
    // estimate, where it used to bill the AST one.
    let elems = 1000u64;
    let passes = u64::from(kr.passes_required.max(1));
    let after = kr.admission_cost(elems).expect("admission cost");
    let before = ast * elems * passes;
    assert_eq!(after, refined * elems * passes);
    assert!(
        after < before,
        "admission still bills dead code: {after} vs {before}"
    );
}

#[test]
fn refined_estimate_never_exceeds_the_ast_estimate() {
    // The AST estimate is the certification-visible upper bound; the
    // refined figure tightens it and must never exceed it, or
    // admission could charge more than the certified worst case.
    let sources = [
        DCE_HEAVY,
        "kernel void loopy(float a<>, out float o<>) {
            float s = 0.0;
            int i;
            for (i = 0; i < 8; i++) { s += a * float(i); }
            o = s;
        }",
        "kernel void branchy(float a<>, out float o<>) {
            float v = a;
            if (a > 0.5) { v = v * 2.0; } else { v = v + 1.0; }
            o = v;
        }",
    ];
    for source in sources {
        let mut ctx = BrookContext::cpu();
        let module = ctx.compile(source).unwrap_or_else(|e| panic!("{e}"));
        for kr in &module.report.kernels {
            let (Some(refined), Some(ast)) = (kr.refined_estimate, kr.instruction_estimate) else {
                panic!("both estimates must be populated for `{}`", kr.kernel);
            };
            assert!(
                refined <= ast,
                "`{}`: refined {refined} above AST {ast}",
                kr.kernel
            );
        }
    }
}

#[test]
fn unoptimized_pipeline_still_gets_a_refined_estimate() {
    // With passes disabled the refined walk runs over the unoptimized
    // IR — still present, still capped by the AST figure.
    let mut ctx = BrookContext::cpu();
    ctx.ir_optimize = false;
    let module = ctx.compile(DCE_HEAVY).unwrap_or_else(|e| panic!("{e}"));
    let kr = module.report.kernel("heavy").expect("kernel report");
    let refined = kr.refined_estimate.expect("refined estimate");
    let ast = kr.instruction_estimate.expect("AST estimate");
    assert!(refined <= ast);
}
