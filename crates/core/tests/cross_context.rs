//! Cross-context identity enforcement: modules and streams are only
//! valid on the context that created them. Before these fixes a module
//! compiled under one context's lax `CertConfig` would `run()` on a
//! stricter context (silently bypassing the certification gate, and
//! poisoning the GLES2 program cache with colliding per-context module
//! ids), and `stream_len` indexed another backend's stream table.

use brook_auto::{registered_backends, Arg, BrookContext, BrookError, CertConfig, CpuBackend};
use gles2_sim::DeviceProfile;

const ADD: &str = "kernel void add(float a<>, float b<>, out float c<>) { c = a + b; }";
const SUM: &str = "reduce void sum(float a<>, reduce float r<>) { r += a; }";

fn assert_usage(err: BrookError, backend: &str, what: &str) {
    assert!(
        matches!(err, BrookError::Usage(_)),
        "{backend}: {what}: expected BrookError::Usage, got: {err}"
    );
}

/// A module compiled on context A must be rejected by context B's `run`,
/// on every registered backend (including two contexts of the *same*
/// backend, where per-context module-id counters used to collide).
#[test]
fn foreign_module_rejected_in_run_on_every_backend() {
    for spec in registered_backends() {
        let mut compiler: BrookContext = (spec.make)();
        let module = compiler.compile(ADD).expect("compile");
        for runner_spec in registered_backends() {
            let mut runner: BrookContext = (runner_spec.make)();
            let a = runner.stream(&[4]).expect("a");
            let b = runner.stream(&[4]).expect("b");
            let c = runner.stream(&[4]).expect("c");
            runner.write(&a, &[0.0; 4]).expect("write");
            runner.write(&b, &[0.0; 4]).expect("write");
            let err = runner
                .run(
                    &module,
                    "add",
                    &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&c)],
                )
                .unwrap_err();
            assert_usage(
                err,
                runner_spec.name,
                &format!("module from {} must be foreign", spec.name),
            );
        }
    }
}

#[test]
fn foreign_module_rejected_in_reduce_on_every_backend() {
    for spec in registered_backends() {
        let mut compiler: BrookContext = (spec.make)();
        let module = compiler.compile(SUM).expect("compile");
        for runner_spec in registered_backends() {
            let mut runner: BrookContext = (runner_spec.make)();
            let s = runner.stream(&[4]).expect("s");
            runner.write(&s, &[1.0; 4]).expect("write");
            let err = runner.reduce(&module, "sum", &s).unwrap_err();
            assert_usage(err, runner_spec.name, "foreign module in reduce");
        }
    }
}

/// The exact bypass scenario: a kernel with more inputs than an embedded
/// device has texture units, compiled on a lax CPU context, must not be
/// runnable on the strict GLES2 context — and the strict context's own
/// gate proves it would never have compiled it.
#[test]
fn lax_module_cannot_bypass_strict_contexts_gate() {
    // 10 elementwise inputs: past the VideoCore's 8 texture units but
    // comfortably within the default CPU limits... make the CPU config
    // explicitly lax so the test does not depend on defaults.
    let src = "kernel void wide(float a<>, float b<>, float c<>, float d<>, float e<>, \
                float f<>, float g<>, float h<>, float i<>, float j<>, out float o<>) { \
                o = a + b + c + d + e + f + g + h + i + j; }";
    let lax = CertConfig {
        max_inputs: 32,
        ..CertConfig::default()
    };
    let mut lax_ctx = BrookContext::with_backend(Box::new(CpuBackend::new()), lax);
    let module = lax_ctx.compile(src).expect("lax context accepts 10 inputs");

    let mut strict = BrookContext::gles2(DeviceProfile::videocore_iv());
    assert!(
        matches!(strict.compile(src), Err(BrookError::Certification(_))),
        "the strict gate itself must reject this kernel"
    );
    let streams: Vec<_> = (0..11).map(|_| strict.stream(&[4]).expect("stream")).collect();
    let args: Vec<Arg<'_>> = streams.iter().map(Arg::Stream).collect();
    let err = strict.run(&module, "wide", &args).unwrap_err();
    assert_usage(err, "gles2-packed", "lax module on strict context");
}

/// Recompiling the same source on the running context is the sanctioned
/// path and still works.
#[test]
fn recompiling_on_the_running_context_is_fine() {
    let mut a = BrookContext::cpu();
    let _elsewhere = a.compile(ADD).expect("compile");
    let mut b = BrookContext::cpu_parallel();
    let module = b.compile(ADD).expect("recompile");
    let x = b.stream(&[2]).expect("x");
    let y = b.stream(&[2]).expect("y");
    let z = b.stream(&[2]).expect("z");
    b.write(&x, &[1.0, 2.0]).expect("write");
    b.write(&y, &[10.0, 20.0]).expect("write");
    b.run(
        &module,
        "add",
        &[Arg::Stream(&x), Arg::Stream(&y), Arg::Stream(&z)],
    )
    .expect("run");
    assert_eq!(b.read(&z).expect("read"), vec![11.0, 22.0]);
}

/// Two same-backend contexts with interleaved compiles: module ids are
/// globally unique, so even if a foreign module slipped past (it cannot),
/// artifact caches could never alias. Observable contract: each context
/// runs its own module correctly after the other context compiled a
/// *different* kernel that would have received the same per-context id
/// under the old counter scheme.
#[test]
fn interleaved_contexts_do_not_alias_module_identity() {
    let mut c1 = BrookContext::gles2(DeviceProfile::videocore_iv());
    let mut c2 = BrookContext::gles2(DeviceProfile::videocore_iv());
    let m1 = c1
        .compile("kernel void f(float a<>, out float o<>) { o = a * 2.0; }")
        .expect("m1");
    let m2 = c2
        .compile("kernel void f(float a<>, out float o<>) { o = a * 3.0; }")
        .expect("m2");
    for (ctx, module, factor) in [(&mut c1, &m1, 2.0f32), (&mut c2, &m2, 3.0f32)] {
        let a = ctx.stream(&[4]).expect("a");
        let o = ctx.stream(&[4]).expect("o");
        ctx.write(&a, &[1.0, 2.0, 3.0, 4.0]).expect("write");
        ctx.run(module, "f", &[Arg::Stream(&a), Arg::Stream(&o)])
            .expect("run");
        assert_eq!(
            ctx.read(&o).expect("read"),
            vec![factor, 2.0 * factor, 3.0 * factor, 4.0 * factor]
        );
    }
}

/// `stream_len` is fallible now: a foreign stream is a `Usage` error
/// (it used to answer from the wrong backend's stream table, or panic).
#[test]
fn stream_len_rejects_foreign_streams() {
    let mut a = BrookContext::cpu();
    let mut b = BrookContext::cpu();
    let s_a = a.stream(&[3, 5]).expect("a stream");
    assert_eq!(a.stream_len(&s_a).expect("own stream"), 15);
    let err = b.stream_len(&s_a).unwrap_err();
    assert!(matches!(err, BrookError::Usage(_)), "{err}");
    // In particular: a handle whose index is out of range for the other
    // backend's table must error, not panic.
    let _ = b.stream(&[2]).expect("b stream");
    let s_a2 = a.stream(&[7]).expect("a second stream");
    assert!(matches!(b.stream_len(&s_a2), Err(BrookError::Usage(_))));
}
