//! Hand-built malformed BrookIR must be rejected by the IR verifier on
//! *every* backend path — launch-time verification sits between the
//! context and `BackendExecutor::dispatch`, so no substrate can ever
//! receive (and miscompute on) broken IR, whether it came from a buggy
//! pass, a corrupted module or a hostile caller.

use brook_auto::{registered_backends, Arg, BrookContext, BrookError};
use brook_ir::{BinOp, Inst, IrProgram, LoopNode, Node};
use brook_lang::parse_and_check;

const SRC: &str = "kernel void f(float a<>, out float o<>) { o = a + 1.0; }";

const LOOP_SRC: &str = "kernel void f(float a<>, out float o<>) {
    float s = 0.0;
    int i;
    for (i = 0; i < 4; i++) { s += a; }
    o = s;
}";

fn lowered(src: &str) -> IrProgram {
    let checked = parse_and_check(src).expect("front-end");
    let (p, errs) = brook_ir::lower::lower_program(&checked);
    assert!(errs.is_empty(), "{errs:?}");
    p
}

/// Runs `f` on a module carrying `ir` on every registered backend and
/// asserts the launch is rejected with an IR-verification usage error.
fn assert_rejected_everywhere(src: &str, ir: IrProgram, what: &str) {
    for spec in registered_backends() {
        let mut ctx: BrookContext = (spec.make)();
        let module = ctx.module_with_raw_ir(src, ir.clone()).expect("module");
        let a = ctx.stream(&[4]).expect("a");
        let o = ctx.stream(&[4]).expect("o");
        ctx.write(&a, &[1.0; 4]).expect("write");
        let err = ctx
            .run(&module, "f", &[Arg::Stream(&a), Arg::Stream(&o)])
            .expect_err(&format!("{}: {what} must be rejected", spec.name));
        match err {
            BrookError::Usage(m) => assert!(
                m.contains("IR verification failed"),
                "{}: {what}: unexpected message {m}",
                spec.name
            ),
            other => panic!("{}: {what}: unexpected error {other}", spec.name),
        }
        // The context stays usable after the rejected launch.
        assert_eq!(ctx.read(&a).expect("read"), vec![1.0; 4], "{}", spec.name);
    }
}

#[test]
fn type_mismatch_rejected_on_every_backend() {
    let mut ir = lowered(SRC);
    // Turn the float add into a logical AND over float registers.
    for inst in &mut ir.kernels[0].insts {
        if let Inst::Bin { op, .. } = inst {
            *op = BinOp::And;
        }
    }
    assert_rejected_everywhere(SRC, ir, "logical op on float registers");
}

#[test]
fn read_own_output_rejected_on_every_backend() {
    let mut ir = lowered(SRC);
    // Retarget the elementwise read at the `out` parameter — the
    // read-own-output shape the launch layer forbids for streams.
    for inst in &mut ir.kernels[0].insts {
        if let Inst::ReadElem { param, .. } = inst {
            *param = 1; // `o`
        }
    }
    assert_rejected_everywhere(SRC, ir, "ReadElem of an output parameter");
}

#[test]
fn unbounded_loop_region_rejected_on_every_backend() {
    let mut ir = lowered(LOOP_SRC);
    // Point the loop's exit branch back into the region: structurally,
    // the loop can never terminate.
    fn find_loop(nodes: &mut [Node]) -> Option<&mut LoopNode> {
        for n in nodes {
            if let Node::Loop(l) = n {
                return Some(l);
            }
        }
        None
    }
    let exit_at = find_loop(&mut ir.kernels[0].body).expect("loop node").exit_at;
    if let Inst::BranchIfFalse { target, .. } = &mut ir.kernels[0].insts[exit_at as usize] {
        *target = exit_at;
    } else {
        panic!("exit_at does not point at a branch");
    }
    assert_rejected_everywhere(LOOP_SRC, ir, "loop region without an exit");
}

#[test]
fn out_of_range_register_rejected_on_every_backend() {
    let mut ir = lowered(SRC);
    if let Some(Inst::Bin { lhs, .. }) = ir.kernels[0]
        .insts
        .iter_mut()
        .find(|i| matches!(i, Inst::Bin { .. }))
    {
        *lhs = 10_000;
    }
    assert_rejected_everywhere(SRC, ir, "register out of range");
}

/// The same malformed IR is rejected on the graph (deferred) path too —
/// record succeeds, execution verifies at launch.
#[test]
fn malformed_ir_rejected_on_graph_path() {
    let mut ir = lowered(SRC);
    for inst in &mut ir.kernels[0].insts {
        if let Inst::Bin { op, .. } = inst {
            *op = BinOp::And;
        }
    }
    let mut ctx = BrookContext::cpu();
    let module = ctx.module_with_raw_ir(SRC, ir).expect("module");
    let a = ctx.stream(&[4]).expect("a");
    let o = ctx.stream(&[4]).expect("o");
    ctx.write(&a, &[1.0; 4]).expect("write");
    let mut g = ctx.graph();
    g.run(&module, "f", &[Arg::Stream(&a), Arg::Stream(&o)])
        .expect("recording succeeds");
    let err = g.execute().expect_err("execution must verify the IR");
    assert!(
        err.to_string().contains("IR verification failed"),
        "unexpected error: {err}"
    );
}
