//! Property tests for the Brook Auto runtime: stream roundtrips over
//! arbitrary shapes, reduction correctness against serial folds, and
//! layout invariants.

use brook_auto::stream::layout_for;
use brook_auto::{Arg, BrookContext, DeviceProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Write/read roundtrips are exact for any shape that fits the
    /// device, on both backends (the packed format is bit-exact).
    #[test]
    fn stream_roundtrip_any_shape(
        rows in 1usize..40,
        cols in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut data = Vec::with_capacity(rows * cols);
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        for _ in 0..rows * cols {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            data.push((s % 100000) as f32 * 0.01 - 500.0);
        }
        for mut ctx in [BrookContext::cpu(), BrookContext::gles2(DeviceProfile::videocore_iv())] {
            let st = ctx.stream(&[rows, cols]).expect("stream");
            ctx.write(&st, &data).expect("write");
            prop_assert_eq!(&ctx.read(&st).expect("read"), &data);
        }
    }

    /// GPU tree reductions equal serial folds for every op, any length
    /// (including lengths that wrap texture rows and partial tails).
    #[test]
    fn reductions_match_serial_fold(
        len in 1usize..3000,
        seed in 0u64..100,
    ) {
        let mut data = Vec::with_capacity(len);
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(7);
        for _ in 0..len {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            data.push(((s % 2000) as f32 - 1000.0) * 0.25);
        }
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        let module = ctx.compile(
            "reduce void mn(float a<>, reduce float m<>) { m = min(m, a); }
             reduce void mx(float a<>, reduce float m<>) { m = max(m, a); }",
        ).expect("compile");
        let st = ctx.stream(&[len]).expect("stream");
        ctx.write(&st, &data).expect("write");
        let got_min = ctx.reduce(&module, "mn", &st).expect("min");
        let got_max = ctx.reduce(&module, "mx", &st).expect("max");
        let want_min = data.iter().fold(f32::INFINITY, |a, b| a.min(*b));
        let want_max = data.iter().fold(f32::NEG_INFINITY, |a, b| a.max(*b));
        prop_assert_eq!(got_min, want_min);
        prop_assert_eq!(got_max, want_max);
    }

    /// Sum reductions: tree order differs from serial order, so compare
    /// against an f64 fold with a relative tolerance.
    #[test]
    fn sum_reduction_close_to_f64_fold(len in 1usize..2500, seed in 0u64..100) {
        let mut data = Vec::with_capacity(len);
        let mut s = seed.wrapping_mul(0x517cc1b727220a95).wrapping_add(3);
        for _ in 0..len {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            data.push(((s % 1000) as f32) * 0.125);
        }
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        let module = ctx
            .compile("reduce void sum(float a<>, reduce float r<>) { r += a; }")
            .expect("compile");
        let st = ctx.stream(&[len]).expect("stream");
        ctx.write(&st, &data).expect("write");
        let got = ctx.reduce(&module, "sum", &st).expect("sum") as f64;
        let want: f64 = data.iter().map(|v| *v as f64).sum();
        let tol = want.abs().max(1.0) * 1e-4;
        prop_assert!((got - want).abs() <= tol, "sum {got} vs {want}");
    }

    /// Layout invariants for every accepted shape: the allocation covers
    /// the logical extent, respects power-of-two and the texture limit.
    #[test]
    fn layout_invariants(shape in proptest::collection::vec(1usize..3000, 1..3)) {
        match layout_for(&shape, true, 2048) {
            Ok(l) => {
                prop_assert!(l.alloc_w.is_power_of_two());
                prop_assert!(l.alloc_h.is_power_of_two());
                prop_assert!(l.alloc_w <= 2048 && l.alloc_h <= 2048);
                let capacity = l.alloc_w as usize * l.alloc_h as usize;
                let len: usize = shape.iter().product();
                prop_assert!(capacity >= len, "allocation {capacity} smaller than {len}");
                let (vw, vh) = l.viewport;
                prop_assert!(vw <= l.alloc_w && vh <= l.alloc_h);
            }
            Err(_) => {
                // Must only fail when the shape genuinely cannot fit.
                let len: usize = shape.iter().product();
                prop_assert!(len > 2048 * 2048 || shape.iter().any(|d| *d > 2048));
            }
        }
    }

    /// Elementwise kernels commute with permutations of the input
    /// streams' roles (a + b == b + a through the whole GPU pipeline).
    #[test]
    fn kernel_argument_symmetry(seed in 0u64..50) {
        let n = 16usize;
        let mut va = Vec::new();
        let mut vb = Vec::new();
        let mut s = seed.wrapping_mul(48271).wrapping_add(11);
        for _ in 0..n * n {
            s ^= s << 13;
            s ^= s >> 7;
            va.push((s % 97) as f32 * 0.5);
            s ^= s << 17;
            vb.push((s % 89) as f32 * 0.25);
        }
        let mut ctx = BrookContext::gles2(DeviceProfile::videocore_iv());
        let module = ctx
            .compile("kernel void add(float a<>, float b<>, out float o<>) { o = a + b; }")
            .expect("compile");
        let sa = ctx.stream(&[n, n]).expect("a");
        let sb = ctx.stream(&[n, n]).expect("b");
        let so = ctx.stream(&[n, n]).expect("o");
        ctx.write(&sa, &va).expect("write");
        ctx.write(&sb, &vb).expect("write");
        ctx.run(&module, "add", &[Arg::Stream(&sa), Arg::Stream(&sb), Arg::Stream(&so)]).expect("run");
        let ab = ctx.read(&so).expect("read");
        ctx.run(&module, "add", &[Arg::Stream(&sb), Arg::Stream(&sa), Arg::Stream(&so)]).expect("run");
        let ba = ctx.read(&so).expect("read");
        prop_assert_eq!(ab, ba);
    }
}
