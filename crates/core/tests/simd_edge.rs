//! Edge behavior of the explicit-SIMD execution layer: block
//! remainders around the lane width, the `BROOK_SIMD` / `SimdMode`
//! override surface, zero-length and single-element reduce domains,
//! and mid-block faults — every case pinned to the forced-scalar
//! result bit for bit (outputs, partial writes and error text alike).

use brook_auto::{Arg, BrookContext};
use brook_ir::lanes::LANES;
use brook_ir::simd::{self, SimdLevel, SimdMode};

/// Arithmetic kernel exercising the vectorized step repertoire:
/// mul/add, min/max, sqrt, compare and select — everything the SSE2
/// and AVX2 block kernels implement.
const EDGE_SRC: &str = "kernel void edge(float a<>, float b<>, out float o<>) {
    float t = a * b + 0.5;
    float u = max(min(t, b), a * 0.25);
    float s = sqrt(abs(t) + 0.125);
    o = t > u ? s - u : s + u;
}";

/// 2-D gather kernel: hits the AVX2 gather-index kernel (address
/// computation for 16 lanes at once) including its clamped edges.
const GATHER_SRC: &str = "kernel void gsum(float t[][], out float o<>) {
    float2 p = indexof(o);
    o = t[p.y][p.x] * 2.0 + t[p.y + 1.0][p.x + 1.0];
}";

/// The admitted reduce: `clamp` bounds the combine operand to
/// [0.5, 2.0], so the analyzer proves it NaN-free and sign-definite.
const REDUCE_MIN_SRC: &str =
    "reduce void rmin(float a<>, reduce float r<>) { r = min(r, clamp(a, 0.5, 2.0)); }";

fn context_with(mode: SimdMode) -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.simd_mode = mode;
    ctx
}

/// Compiles and runs `src` on a context at `mode` over an `n`-element
/// domain with two deterministic input ramps, returning the output.
fn run_edge(mode: SimdMode, n: usize) -> Vec<f32> {
    let mut ctx = context_with(mode);
    let module = ctx.compile(EDGE_SRC).expect("compile");
    let plan = &module.report.tier_plans[0];
    assert!(plan.compiled, "tier must admit the kernel: {}", plan.detail);
    match mode {
        SimdMode::Off => assert!(
            plan.detail.contains("simd scalar"),
            "forced-scalar compile must record scalar block steps: {}",
            plan.detail
        ),
        _ if mode.resolve() != SimdLevel::Scalar => assert!(
            !plan.detail.contains("simd scalar"),
            "SIMD compile must record non-scalar block steps: {}",
            plan.detail
        ),
        _ => {}
    }
    let a = ctx.stream(&[n]).expect("a");
    let b = ctx.stream(&[n]).expect("b");
    let o = ctx.stream(&[n]).expect("o");
    let va: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() * 3.0 - 0.8).collect();
    let vb: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos() * 2.0 + 0.3).collect();
    ctx.write(&a, &va).expect("write a");
    ctx.write(&b, &vb).expect("write b");
    ctx.run(
        &module,
        "edge",
        &[Arg::Stream(&a), Arg::Stream(&b), Arg::Stream(&o)],
    )
    .expect("run");
    ctx.read(&o).expect("read")
}

/// Forced-scalar, forced-SSE2 and auto-detected contexts must agree
/// bit for bit on every block-remainder shape: a lone element, one
/// short of a block, exactly one block, one past it, and partial
/// final blocks of multi-block domains.
#[test]
fn forced_levels_agree_bitwise_across_block_remainders() {
    for n in [1, LANES - 1, LANES, LANES + 1, 2 * LANES + 1, 5 * LANES + 3] {
        let scalar = run_edge(SimdMode::Off, n);
        for mode in [SimdMode::Sse2, SimdMode::Avx2, SimdMode::Auto] {
            let simd = run_edge(mode, n);
            assert_eq!(scalar.len(), simd.len());
            for (i, (x, y)) in scalar.iter().zip(&simd).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "n={n} mode={mode:?} element {i}: scalar {x} vs simd {y}"
                );
            }
        }
    }
}

/// Same contract for the gather-index kernel: 2-D domains whose flat
/// size straddles block boundaries, with edge rows clamping.
#[test]
fn gather_remainders_agree_bitwise_with_forced_scalar() {
    for cols in [1, LANES - 1, LANES + 1, 2 * LANES + 5] {
        let rows = 3usize;
        let run = |mode: SimdMode| -> Vec<f32> {
            let mut ctx = context_with(mode);
            let module = ctx.compile(GATHER_SRC).expect("compile");
            let t = ctx.stream(&[rows, cols]).expect("t");
            let o = ctx.stream(&[rows, cols]).expect("o");
            let data: Vec<f32> = (0..rows * cols).map(|i| (i as f32 * 0.19).sin() + 1.25).collect();
            ctx.write(&t, &data).expect("write");
            ctx.run(&module, "gsum", &[Arg::Stream(&t), Arg::Stream(&o)])
                .expect("run");
            ctx.read(&o).expect("read")
        };
        let scalar = run(SimdMode::Off);
        for mode in [SimdMode::Sse2, SimdMode::Avx2, SimdMode::Auto] {
            let simd = run(mode);
            for (i, (x, y)) in scalar.iter().zip(&simd).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "cols={cols} mode={mode:?} element {i}: scalar {x} vs simd {y}"
                );
            }
        }
    }
}

/// The `BROOK_SIMD` override surface: recognized spellings parse to
/// their levels, unrecognized ones fall back to detection, and a live
/// environment override reaches `from_env`/`auto` (capped at what the
/// host supports). The env round-trip only ever sets a real SIMD
/// level so concurrently running `SimdMode::Auto` tests stay valid.
#[test]
fn brook_simd_env_override_parses_and_applies() {
    assert_eq!(simd::parse_level("off"), Some(SimdLevel::Scalar));
    assert_eq!(simd::parse_level("scalar"), Some(SimdLevel::Scalar));
    assert_eq!(simd::parse_level("0"), Some(SimdLevel::Scalar));
    assert_eq!(simd::parse_level("sse2"), Some(SimdLevel::Sse2));
    assert_eq!(simd::parse_level("SSE2"), Some(SimdLevel::Sse2));
    assert_eq!(simd::parse_level("avx2"), Some(SimdLevel::Avx2));
    assert_eq!(simd::parse_level("bogus"), None);
    assert_eq!(simd::parse_level(""), None);

    assert!(simd::auto() <= simd::detect(), "auto never exceeds the host");
    assert_eq!(SimdMode::Off.resolve(), SimdLevel::Scalar);
    assert!(SimdMode::Sse2.resolve() <= SimdLevel::Sse2);
    assert!(SimdMode::Avx2.resolve() <= simd::detect());

    std::env::set_var("BROOK_SIMD", "sse2");
    let seen = simd::from_env();
    let resolved = simd::auto();
    std::env::remove_var("BROOK_SIMD");
    assert_eq!(seen, Some(SimdLevel::Sse2));
    assert_eq!(resolved, SimdLevel::Sse2.min(simd::detect()));
}

/// Zero-length and single-element reduce domains through the
/// vectorized path: the empty fold yields the combine identity and a
/// singleton folds to its own mapped value — both bit-identical to
/// the serial scalar interpreter.
#[test]
fn reduce_zero_length_and_singleton_domains_match_scalar() {
    use brook_cert::absint::analyze_and_annotate_program;
    use brook_ir::simd::ReduceProgram;
    let checked = brook_lang::parse_and_check(REDUCE_MIN_SRC).expect("check");
    let (mut ir, errs) = brook_ir::lower::lower_program(&checked);
    assert!(errs.is_empty(), "{errs:?}");
    let (_, facts) = analyze_and_annotate_program(&mut ir, true);
    let plans = ReduceProgram::plan_program_with(&ir, &facts, simd::detect());
    let rk = plans
        .kernel("rmin")
        .unwrap_or_else(|| panic!("rmin must be admitted: {:?}", plans.decision("rmin")));
    let k = &ir.kernels[0];
    for data in [&[][..], &[7.5f32][..], &[0.25f32][..], &[f32::NAN][..]] {
        let vectorized = brook_ir::simd::run_reduce(rk, k, data).expect("vectorized reduce");
        let serial = brook_ir::interp::run_reduce(k, data).expect("serial reduce");
        assert_eq!(
            vectorized.to_bits(),
            serial.to_bits(),
            "data={data:?}: vectorized {vectorized} vs serial {serial}"
        );
    }

    // The public API end to end on the smallest legal domain.
    let fold_one = |mode: SimdMode| -> f32 {
        let mut ctx = context_with(mode);
        let module = ctx.compile(REDUCE_MIN_SRC).expect("compile");
        let s = ctx.stream(&[1]).expect("stream");
        ctx.write(&s, &[9.75]).expect("write");
        ctx.reduce(&module, "rmin", &s).expect("reduce")
    };
    assert_eq!(
        fold_one(SimdMode::Off).to_bits(),
        fold_one(SimdMode::Auto).to_bits()
    );
    assert_eq!(
        fold_one(SimdMode::Auto),
        2.0,
        "clamp bounds the operand to [0.5, 2.0]"
    );
}

/// A fault in the middle of a SIMD block must surface the scalar
/// interpreter's error verbatim — same message, element attribution
/// and source line — and leave the same partial writes behind:
/// outputs assigned before the faulting statement keep their values
/// for every element, exactly as the scalar path leaves them.
#[test]
fn mid_block_fault_matches_scalar_error_and_partial_writes() {
    use brook_ir::interp::Binding;
    let src = "kernel void f(float a<>, out float o<>) {
            o = a * 2.0;
            float s = a;
            while (s > 0.5) { s = s + 0.0; }
        }";
    let checked = brook_lang::parse_and_check(src).expect("check");
    let kdef = checked.program.kernels().next().expect("kernel");
    let k = brook_ir::lower::lower_kernel(&checked, kdef).expect("lower");
    let lane = brook_ir::lanes::plan(&k).expect("lane plan");
    let n = 2 * LANES + 7;
    let bad = LANES + 5; // mid-lane of the second block
    let input: Vec<f32> = (0..n)
        .map(|i| if i == bad { 1.0 } else { 0.01 * i as f32 })
        .collect();
    let shape = [n];
    let run = |level: SimdLevel| {
        let tier = brook_ir::tier::compile_simd(&lane, &k, None, level).expect("tier compiles");
        let bindings = vec![
            Binding::Elem {
                data: &input,
                shape: &shape,
                width: 1,
            },
            Binding::Out(0),
        ];
        let mut buf = vec![0.0f32; n];
        let err = {
            let mut outs: Vec<&mut [f32]> = vec![&mut buf];
            brook_ir::tier::run_kernel_range(&tier, &lane, &k, &bindings, &mut outs, &shape, 0..n)
                .expect_err("must exhaust the budget")
        };
        (buf, err)
    };
    let (sbuf, serr) = run(SimdLevel::Scalar);
    for level in [SimdLevel::Sse2, simd::detect()] {
        let (vbuf, verr) = run(level);
        assert_eq!(
            serr, verr,
            "level {level}: fault must be the scalar fault verbatim"
        );
        assert_eq!(
            sbuf, vbuf,
            "level {level}: partial writes must match the scalar path"
        );
    }
    assert_eq!(serr.element, Some(bad));
    assert!(
        serr.render().contains(&format!("element {bad}")),
        "{}",
        serr.render()
    );
}

/// The same fault through the public API: a SIMD context and a
/// forced-scalar context render the identical error string.
#[test]
fn public_api_fault_renders_identically_with_and_without_simd() {
    let src = "kernel void spin(float a<>, out float o<>) {\n    float s = a;\n    while (s > 0.5) { }\n    o = s;\n}";
    let n = LANES + 5;
    let bad = LANES + 2;
    let render = |mode: SimdMode| {
        let mut ctx = context_with(mode);
        ctx.enforce_certification = false;
        let module = ctx.compile(src).expect("compile (uncertified)");
        let a = ctx.stream(&[n]).expect("a");
        let o = ctx.stream(&[n]).expect("o");
        let data: Vec<f32> = (0..n).map(|i| if i == bad { 2.0 } else { 0.0 }).collect();
        ctx.write(&a, &data).expect("write");
        ctx.run(&module, "spin", &[Arg::Stream(&a), Arg::Stream(&o)])
            .expect_err("must exhaust the budget")
            .to_string()
    };
    let scalar = render(SimdMode::Off);
    assert_eq!(scalar, render(SimdMode::Auto));
    assert_eq!(scalar, render(SimdMode::Sse2));
    assert!(scalar.contains(&format!("element {bad},")), "{scalar}");
    assert!(scalar.contains("source line 3:"), "{scalar}");
}
