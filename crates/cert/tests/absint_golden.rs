//! Golden snapshots of the abstract interpreter's per-kernel facts.
//!
//! The analyzer's output — definite assignment, type stability, gather
//! bounds proofs, reachability, the pruned estimate, and every
//! span-attributed instruction fact — is a certification artifact: the
//! evidence package a reviewer reads to see *why* a clamp was elided or
//! an estimate tightened. These tests pin that rendering for the same
//! four structurally distinct apps the IR goldens cover, so any change
//! to the domain, the fixpoint, or the fact wording is a reviewed diff.
//!
//! Re-bless with `BROOK_BLESS=1 cargo test -p brook-cert --test absint_golden`.

use brook_cert::absint::{AnalysisReport, KernelAnalysis};
use brook_cert::CertConfig;
use std::path::PathBuf;

/// Runs the cert-side pipeline (front end → lower → optimize →
/// analyze) exactly as `BrookContext::compile` sequences it, with
/// elision on.
fn analyze(source: &str) -> AnalysisReport {
    let checked = brook_lang::parse_and_check(source).unwrap_or_else(|e| panic!("front end: {e}"));
    let (mut ir, errs) = brook_ir::lower::lower_program(&checked);
    assert!(errs.is_empty(), "lowering: {errs:?}");
    brook_cert::ir_check::optimize_program(
        &mut ir,
        &CertConfig::default(),
        &brook_ir::passes::default_passes(),
    );
    let (analysis, _) = brook_cert::absint::analyze_and_annotate_program(&mut ir, true);
    analysis
}

/// Renders one kernel's analysis deterministically, spans included —
/// a finding that drifts to the wrong line is a real regression.
fn render(ka: &KernelAnalysis) -> String {
    let mut out = String::new();
    out.push_str(&format!("kernel {}\n", ka.kernel));
    out.push_str(&format!("  def_before_use_ok: {}\n", ka.def_before_use_ok));
    out.push_str(&format!("  type_stable: {}\n", ka.type_stable));
    out.push_str(&format!(
        "  gathers: {} proven of {}\n",
        ka.proven_gathers, ka.total_gathers
    ));
    out.push_str(&format!("  unreachable_insts: {}\n", ka.unreachable_insts));
    match ka.pruned_estimate {
        Some(e) => out.push_str(&format!("  pruned_estimate: {e}\n")),
        None => out.push_str("  pruned_estimate: -\n"),
    }
    out.push_str("  facts:\n");
    for f in &ka.facts {
        out.push_str(&format!("    pc {:>3} @ {}: {}\n", f.pc, f.span, f.fact));
    }
    out.push_str("  faults:\n");
    for f in &ka.faults {
        out.push_str(&format!("    [{}] @ {}: {}\n", f.rule.code(), f.span, f.message));
    }
    out
}

fn check_golden(name: &str, source: &str) {
    let analysis = analyze(source);
    let text: String = analysis.kernels.iter().map(render).collect::<Vec<_>>().join("\n");
    // The evidence surface must be deterministic.
    let again: String = analyze(source)
        .kernels
        .iter()
        .map(render)
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(text, again, "{name}: analysis rendering is nondeterministic");
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_absint")
        .join(format!("{name}.facts"));
    if std::env::var_os("BROOK_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with BROOK_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        text, expected,
        "{name}: analysis facts drifted from the golden fixture; if intentional, \
         re-bless with BROOK_BLESS=1"
    );
}

#[test]
fn sgemm_facts_match_golden() {
    check_golden("sgemm", &brook_apps::sgemm::kernel_source(8));
}

#[test]
fn mandelbrot_facts_match_golden() {
    check_golden("mandelbrot", &brook_apps::mandelbrot::kernel_source());
}

#[test]
fn prefix_sum_facts_match_golden() {
    check_golden("prefix_sum", brook_apps::prefix_sum::KERNEL);
}

#[test]
fn image_filter_facts_match_golden() {
    check_golden("image_filter", brook_apps::image_filter::KERNEL);
}

/// The flagship gather apps must keep their full-proof status: every
/// gather proven, clamps elided. A lost proof silently reverts the
/// fast path, so it fails here rather than only in a benchmark.
#[test]
fn gather_apps_keep_full_bounds_proofs() {
    for (name, source) in [
        ("sgemm", brook_apps::sgemm::kernel_source(8)),
        ("image_filter", brook_apps::image_filter::KERNEL.to_string()),
    ] {
        let analysis = analyze(&source);
        for ka in &analysis.kernels {
            assert!(ka.total_gathers > 0, "{name}/{}: no gathers seen", ka.kernel);
            assert_eq!(
                ka.proven_gathers, ka.total_gathers,
                "{name}/{}: lost a bounds proof",
                ka.kernel
            );
            assert!(ka.faults.is_empty(), "{name}/{}: spurious fault", ka.kernel);
        }
    }
}
