//! Text rendering of compliance reports, in the style of a certification
//! data package table.

use crate::engine::{ComplianceReport, KernelReport};
use crate::rules::{rule_meta, RuleId, RULES};
use brook_lang::diag::Severity;
use std::fmt::Write;

/// Renders the full rule catalogue (for documentation and the
/// `certification_report` example).
pub fn render_rule_catalogue() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Brook Auto certification rule catalogue (ISO 26262 / MISRA C motivated)"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for m in RULES {
        let _ = writeln!(out, "{}  {}", m.id.code(), m.title);
        let _ = writeln!(out, "       {}", m.motivation);
        let _ = writeln!(out, "       discharge: {:?}", m.discharge);
    }
    out
}

/// Renders a per-kernel compliance report.
pub fn render_report(report: &ComplianceReport) -> String {
    let mut out = String::new();
    for k in &report.kernels {
        render_kernel(&mut out, k);
        out.push('\n');
    }
    render_resilience(&mut out, report);
    let _ = writeln!(
        out,
        "OVERALL: {} ({} violation(s))",
        if report.is_compliant() {
            "COMPLIANT"
        } else {
            "NOT COMPLIANT"
        },
        report.violation_count()
    );
    out
}

/// Renders the runtime resilience-evidence section (fault response,
/// paper §2 rules d/e). Omitted entirely when no launches were recorded
/// — compile-time reports stay unchanged.
fn render_resilience(out: &mut String, report: &ComplianceReport) {
    let r = &report.resilience;
    if r.is_empty() {
        return;
    }
    let _ = writeln!(out, "resilience evidence ({} launch(es)):", r.launches);
    let _ = writeln!(out, "  faults injected    : {}", r.injected_faults);
    let _ = writeln!(out, "  transient retries  : {}", r.retries);
    let _ = writeln!(out, "  panics contained   : {}", r.panics_caught);
    let _ = writeln!(out, "  corruptions caught : {}", r.corruptions_detected);
    let _ = writeln!(out, "  verified failovers : {}", r.failovers);
    let _ = writeln!(out, "  deadline misses    : {}", r.deadline_misses);
    if let Some(m) = r.min_deadline_margin_ms {
        let _ = writeln!(out, "  tightest margin    : {m:.3} ms");
    }
    out.push('\n');
}

fn render_kernel(out: &mut String, k: &KernelReport) {
    let _ = writeln!(
        out,
        "kernel `{}`: {}",
        k.kernel,
        if k.is_compliant() {
            "compliant"
        } else {
            "NOT compliant"
        }
    );
    let _ = writeln!(out, "  passes required : {}", k.passes_required);
    let _ = writeln!(
        out,
        "  call depth      : {}",
        if k.call_depth == u32::MAX {
            "unbounded".to_owned()
        } else {
            k.call_depth.to_string()
        }
    );
    match k.instruction_estimate {
        Some(est) => {
            let _ = writeln!(out, "  instruction est.: {est}");
        }
        None => {
            let _ = writeln!(out, "  instruction est.: unbounded");
        }
    }
    if let Some(refined) = k.refined_estimate {
        if Some(refined) != k.instruction_estimate {
            let _ = writeln!(out, "  refined est.    : {refined} (reachability-pruned)");
        }
    }
    for f in &k.findings {
        let marker = match f.severity {
            Severity::Error => "VIOLATION",
            Severity::Warning => "warning  ",
            Severity::Note => "note     ",
        };
        let _ = writeln!(
            out,
            "  [{}] {} {} — {}",
            f.rule.code(),
            marker,
            rule_meta(f.rule).title,
            f.message
        );
    }
}

/// Renders a one-line-per-rule summary matrix: rule x kernel compliance.
pub fn render_matrix(report: &ComplianceReport) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:<8}", "rule");
    for k in &report.kernels {
        let _ = write!(out, " {:>12.12}", k.kernel);
    }
    out.push('\n');
    for rule in RuleId::all() {
        let _ = write!(out, "{:<8}", rule.code());
        for k in &report.kernels {
            let violated = k
                .findings
                .iter()
                .any(|f| f.rule == *rule && f.severity == Severity::Error);
            let _ = write!(out, " {:>12}", if violated { "FAIL" } else { "pass" });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{certify_source, CertConfig};

    #[test]
    fn catalogue_mentions_every_rule() {
        let cat = render_rule_catalogue();
        for r in RuleId::all() {
            assert!(cat.contains(r.code()), "catalogue missing {r}");
        }
    }

    #[test]
    fn report_render_includes_verdict() {
        let (_, r) = certify_source(
            "kernel void f(float a<>, out float o<>) { o = a; }",
            &CertConfig::default(),
        )
        .unwrap();
        let text = render_report(&r);
        assert!(text.contains("COMPLIANT"));
        assert!(text.contains("kernel `f`"));
    }

    #[test]
    fn matrix_has_row_per_rule() {
        let (_, r) = certify_source(
            "kernel void f(float a<>, out float o<>) { o = a; }",
            &CertConfig::default(),
        )
        .unwrap();
        let m = render_matrix(&r);
        assert_eq!(m.lines().count(), RuleId::all().len() + 1);
        assert!(m.contains("pass"));
    }

    #[test]
    fn violation_shows_fail_in_matrix() {
        let (_, r) = certify_source(
            "kernel void f(float a<>, out float o<>) { while (a > 0.0) { } o = a; }",
            &CertConfig::default(),
        )
        .unwrap();
        let m = render_matrix(&r);
        assert!(m.contains("FAIL"));
    }
}
