//! IR-level certification re-check and the cert-gated pass pipeline.
//!
//! Lowering and optimization are *transformations*, and a transformed
//! program is a different program: the gate that certified the source
//! AST says nothing about what a buggy pass produced. This module closes
//! that hole (the paper's certification argument, §4, applied at the IR
//! layer):
//!
//! * [`check_kernel`] re-derives the syntactic certification artifacts
//!   from the IR itself — loop bounds from the region metadata, a
//!   worst-case instruction estimate from the (possibly optimized)
//!   instruction stream, I/O counts from the parameter list — and
//!   checks them against the same [`CertConfig`] limits the AST gate
//!   enforced. Findings carry the *source* spans threaded through
//!   lowering, so a violation detected after transformation still
//!   points at the offending source line.
//!
//! * [`optimize_program`] runs a pass pipeline under a rollback gate:
//!   after every pass, the kernel is re-verified
//!   ([`brook_ir::verify::verify`]) and re-checked; a pass whose output
//!   is malformed, or that turned a compliant kernel non-compliant, is
//!   **rolled back** and the decision recorded as a [`PassRecord`] in
//!   the `ComplianceReport` — optimization can never bypass
//!   certification, it can only be refused by it.

use crate::engine::{CertConfig, Finding};
use crate::rules::RuleId;
use brook_ir::passes::Pass;
use brook_ir::verify::verify;
use brook_ir::{Inst, IrKernel, IrProgram, Node};
use brook_lang::ast::ParamKind;
use brook_lang::builtins::BUILTINS;
use brook_lang::diag::Severity;

/// What happened to one kernel under one pass.
#[derive(Debug, Clone, PartialEq)]
pub enum PassAction {
    /// The pass ran and its output survived the re-check.
    Applied {
        /// Whether the pass changed anything.
        changed: bool,
    },
    /// The pass's output failed the re-check and was discarded.
    RolledBack {
        /// Why (verifier error or the first new violation).
        reason: String,
    },
}

/// Provenance record of one (kernel, pass) pipeline step, stored in the
/// `ComplianceReport` so the certification data package shows exactly
/// which transformations ran and which were refused.
#[derive(Debug, Clone, PartialEq)]
pub struct PassRecord {
    /// Pass name (e.g. `"const-fold"`).
    pub pass: String,
    /// Kernel the pass ran on.
    pub kernel: String,
    /// Outcome.
    pub action: PassAction,
}

/// IR-level compliance result for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct IrKernelCheck {
    /// Kernel name.
    pub kernel: String,
    /// Violations and notes (error severity means non-compliant).
    pub findings: Vec<Finding>,
    /// Worst-case instruction estimate over the IR (None with unbounded
    /// loops).
    pub instruction_estimate: Option<u64>,
}

impl IrKernelCheck {
    /// True when no finding is an error.
    pub fn is_compliant(&self) -> bool {
        self.findings.iter().all(|f| f.severity != Severity::Error)
    }
}

/// Per-instruction cost mirroring the AST estimator's units (builtin
/// cost table, texture fetches dominating).
pub(crate) fn inst_cost(inst: &Inst) -> u64 {
    match inst {
        Inst::Nop => 0,
        Inst::Builtin { which, .. } => BUILTINS[*which as usize].cost as u64,
        Inst::Gather { .. } => 4,
        _ => 1,
    }
}

fn nodes_estimate(k: &IrKernel, nodes: &[Node]) -> Option<u64> {
    let mut total = 0u64;
    for n in nodes {
        let c = match n {
            Node::Seq { start, end } => (*start..*end)
                .map(|i| inst_cost(&k.insts[i as usize]))
                .sum::<u64>(),
            Node::If { then, els, .. } => {
                // GPU predication executes both sides.
                1 + nodes_estimate(k, then)? + nodes_estimate(k, els)?
            }
            Node::Loop(l) => {
                let trips = l.bound.trips()?;
                let per_iter = nodes_estimate(k, &l.header)? + nodes_estimate(k, &l.body)? + 1;
                trips.checked_mul(per_iter)?
            }
        };
        total = total.checked_add(c)?;
    }
    Some(total)
}

fn collect_loops<'a>(nodes: &'a [Node], out: &mut Vec<&'a brook_ir::LoopNode>) {
    for n in nodes {
        match n {
            Node::Loop(l) => {
                out.push(l);
                collect_loops(&l.header, out);
                collect_loops(&l.body, out);
            }
            Node::If { then, els, .. } => {
                collect_loops(then, out);
                collect_loops(els, out);
            }
            Node::Seq { .. } => {}
        }
    }
}

/// Re-checks one lowered (and possibly transformed) kernel against the
/// gate limits. Findings point at the original source via the spans
/// lowering threaded through.
pub fn check_kernel(k: &IrKernel, config: &CertConfig) -> IrKernelCheck {
    check_kernel_impl(k, config, true)
}

fn check_kernel_impl(k: &IrKernel, config: &CertConfig, run_verify: bool) -> IrKernelCheck {
    let mut findings = Vec::new();
    // Structural well-formedness first: malformed IR is never compliant.
    // (Callers that just verified — the pass pipeline — skip the
    // duplicate walk.)
    if run_verify {
        if let Err(e) = verify(k) {
            findings.push(Finding {
                rule: RuleId::NoFaultPropagation,
                severity: Severity::Error,
                message: e.to_string(),
                span: k.span,
            });
            // Malformed IR is never compliant, and walking it further
            // would chase the very out-of-range indices the verifier
            // just reported.
            return IrKernelCheck {
                kernel: k.name.clone(),
                findings,
                instruction_estimate: None,
            };
        }
    }
    // BA003 — loop bounds, from the region metadata.
    let mut loops = Vec::new();
    collect_loops(&k.body, &mut loops);
    for l in &loops {
        match l.bound.trips() {
            Some(trips) if trips > config.max_loop_trips => findings.push(Finding {
                rule: RuleId::BoundedLoops,
                severity: Severity::Error,
                message: format!(
                    "loop trip count {trips} exceeds the target limit {}",
                    config.max_loop_trips
                ),
                span: l.span,
            }),
            Some(trips) => findings.push(Finding {
                rule: RuleId::BoundedLoops,
                severity: Severity::Note,
                message: format!("loop bound carried through lowering: {trips} iterations"),
                span: l.span,
            }),
            None => findings.push(Finding {
                rule: RuleId::BoundedLoops,
                severity: Severity::Error,
                message: match &l.bound {
                    brook_lang::loopbound::LoopBound::Unbounded { reason } => {
                        format!("loop trip count cannot be deduced: {reason}")
                    }
                    _ => "loop trip count cannot be deduced".into(),
                },
                span: l.span,
            }),
        }
    }
    // BA005 / BA006 — I/O limits from the parameter list.
    let outputs = k
        .params
        .iter()
        .filter(|p| matches!(p.kind, ParamKind::OutStream | ParamKind::ReduceOut))
        .count() as u32;
    if outputs > config.max_outputs {
        findings.push(Finding {
            rule: RuleId::OutputLimit,
            severity: Severity::Error,
            message: format!(
                "kernel declares {outputs} outputs but the target supports at most {} passes",
                config.max_outputs
            ),
            span: k.span,
        });
    }
    let inputs = k
        .params
        .iter()
        .filter(|p| matches!(p.kind, ParamKind::Stream | ParamKind::Gather { .. }))
        .count() as u32;
    if inputs > config.max_inputs {
        findings.push(Finding {
            rule: RuleId::InputLimit,
            severity: Severity::Error,
            message: format!(
                "kernel reads {inputs} streams/gathers but the target has {} texture units",
                config.max_inputs
            ),
            span: k.span,
        });
    }
    // BA010 — instruction budget over the flat stream.
    let estimate = nodes_estimate(k, &k.body);
    match estimate {
        Some(est) if est > config.max_instructions => findings.push(Finding {
            rule: RuleId::InstructionBudget,
            severity: Severity::Error,
            message: format!(
                "worst-case IR instruction estimate {est} exceeds the target budget {}",
                config.max_instructions
            ),
            span: k.span,
        }),
        Some(est) => findings.push(Finding {
            rule: RuleId::InstructionBudget,
            severity: Severity::Note,
            message: format!("worst-case IR instruction estimate: {est}"),
            span: k.span,
        }),
        None => findings.push(Finding {
            rule: RuleId::InstructionBudget,
            severity: Severity::Error,
            message: "instruction count cannot be bounded because a loop is unbounded".into(),
            span: k.span,
        }),
    }
    IrKernelCheck {
        kernel: k.name.clone(),
        findings,
        instruction_estimate: estimate,
    }
}

/// Re-checks every kernel of a program; `true` when all are compliant.
pub fn check_program(p: &IrProgram, config: &CertConfig) -> (Vec<IrKernelCheck>, bool) {
    let checks: Vec<IrKernelCheck> = p.kernels.iter().map(|k| check_kernel(k, config)).collect();
    let ok = checks.iter().all(|c| c.is_compliant());
    (checks, ok)
}

/// Runs `passes` over every kernel under the rollback gate. Returns the
/// provenance records (store them in `ComplianceReport::passes`).
pub fn optimize_program(p: &mut IrProgram, config: &CertConfig, passes: &[Box<dyn Pass>]) -> Vec<PassRecord> {
    let mut records = Vec::new();
    for k in &mut p.kernels {
        let baseline_ok = check_kernel(k, config).is_compliant();
        for pass in passes {
            let snapshot = k.clone();
            // Gate on the actual diff, not the pass's self-reported
            // flag: a buggy pass that mutates but returns false is
            // exactly the threat this pipeline exists to contain.
            let changed = pass.run(k) || *k != snapshot;
            let action = if !changed {
                PassAction::Applied { changed: false }
            } else {
                match verify(k) {
                    Err(e) => {
                        *k = snapshot;
                        PassAction::RolledBack {
                            reason: e.to_string(),
                        }
                    }
                    Ok(()) => {
                        // The verifier just ran; skip its second walk.
                        let after = check_kernel_impl(k, config, false);
                        if baseline_ok && !after.is_compliant() {
                            let first = after
                                .findings
                                .iter()
                                .find(|f| f.severity == Severity::Error)
                                .map(|f| format!("[{}] {} (source {})", f.rule.code(), f.message, f.span))
                                .unwrap_or_else(|| "unspecified violation".into());
                            *k = snapshot;
                            PassAction::RolledBack { reason: first }
                        } else {
                            PassAction::Applied { changed: true }
                        }
                    }
                }
            };
            records.push(PassRecord {
                pass: pass.name().to_owned(),
                kernel: k.name.clone(),
                action,
            });
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use brook_ir::lower::lower_kernel;
    use brook_ir::passes::default_passes;
    use brook_lang::parse_and_check;

    fn lower_src(src: &str) -> IrProgram {
        let checked = parse_and_check(src).expect("front-end");
        let (p, errs) = brook_ir::lower::lower_program(&checked);
        assert!(errs.is_empty(), "{errs:?}");
        p
    }

    #[test]
    fn compliant_kernel_recertifies_after_lowering() {
        let p = lower_src(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 16; i++) { s += a; }
                o = s;
            }",
        );
        let (checks, ok) = check_program(&p, &CertConfig::default());
        assert!(ok, "{:?}", checks[0].findings);
        assert!(checks[0].instruction_estimate.is_some());
    }

    #[test]
    fn over_limit_loop_flagged_with_source_span() {
        let src = "kernel void f(float a<>, out float o<>) {\n    float s = 0.0;\n    int i;\n    for (i = 0; i < 16; i++) { s += a; }\n    o = s;\n}";
        let p = lower_src(src);
        let cfg = CertConfig {
            max_loop_trips: 8,
            ..CertConfig::default()
        };
        let (checks, ok) = check_program(&p, &cfg);
        assert!(!ok);
        let f = checks[0]
            .findings
            .iter()
            .find(|f| f.rule == RuleId::BoundedLoops && f.severity == Severity::Error)
            .expect("BA003 violation");
        assert_eq!(f.span.line, 4, "finding must point at the for-loop's source line");
    }

    #[test]
    fn default_pipeline_applies_cleanly() {
        let mut p = lower_src("kernel void f(float a<>, out float o<>) { o = a * 1.0 + 2.0 * 3.0; }");
        let recs = optimize_program(&mut p, &CertConfig::default(), &default_passes());
        assert_eq!(recs.len(), 4);
        assert!(
            recs.iter()
                .all(|r| matches!(r.action, PassAction::Applied { .. })),
            "{recs:?}"
        );
        assert!(recs
            .iter()
            .any(|r| matches!(r.action, PassAction::Applied { changed: true })));
    }

    /// A sabotaging pass whose output is malformed IR: the gate must
    /// roll it back and record why.
    struct Saboteur;
    impl Pass for Saboteur {
        fn name(&self) -> &'static str {
            "saboteur"
        }
        fn run(&self, k: &mut IrKernel) -> bool {
            // Retarget the first elementwise read at the output
            // parameter — the read-own-output malformation.
            for inst in &mut k.insts {
                if let Inst::ReadElem { param, .. } = inst {
                    *param = (k.params.len() - 1) as u16;
                    return true;
                }
            }
            false
        }
    }

    #[test]
    fn malformed_pass_output_is_rolled_back() {
        let src = "kernel void f(float a<>, out float o<>) { o = a + 1.0; }";
        let mut p = lower_src(src);
        let original = p.kernels[0].clone();
        let recs = optimize_program(
            &mut p,
            &CertConfig::default(),
            &[Box::new(Saboteur) as Box<dyn Pass>],
        );
        assert_eq!(recs.len(), 1);
        let PassAction::RolledBack { reason } = &recs[0].action else {
            panic!("saboteur must be rolled back: {recs:?}");
        };
        assert!(reason.contains("read-own-output"), "{reason}");
        assert_eq!(p.kernels[0], original, "rollback must restore the kernel");
    }

    /// A pass that inflates the loop-bound metadata past the limit: the
    /// re-check catches the (would-be) certification violation and the
    /// finding points at the loop's source line.
    struct BoundInflater;
    impl Pass for BoundInflater {
        fn name(&self) -> &'static str {
            "bound-inflater"
        }
        fn run(&self, k: &mut IrKernel) -> bool {
            fn bump(nodes: &mut [Node]) -> bool {
                for n in nodes {
                    match n {
                        Node::Loop(l) => {
                            l.bound = brook_lang::loopbound::LoopBound::Unbounded {
                                reason: "sabotaged".into(),
                            };
                            return true;
                        }
                        Node::If { then, els, .. } => {
                            if bump(then) || bump(els) {
                                return true;
                            }
                        }
                        Node::Seq { .. } => {}
                    }
                }
                false
            }
            bump(&mut k.body)
        }
    }

    /// Malformed IR is reported non-compliant — the public check API
    /// must never chase the out-of-range indices the verifier found.
    #[test]
    fn malformed_ir_is_noncompliant_not_a_panic() {
        let mut p = lower_src("kernel void f(float a<>, out float o<>) { o = sin(a); }");
        for inst in &mut p.kernels[0].insts {
            if let Inst::Builtin { which, .. } = inst {
                *which = 9999;
            }
        }
        let (checks, ok) = check_program(&p, &CertConfig::default());
        assert!(!ok);
        assert!(checks[0]
            .findings
            .iter()
            .any(|f| f.message.contains("IR verification failed")));
        assert_eq!(checks[0].instruction_estimate, None);
    }

    /// A pass that mutates the kernel but *lies* about it (returns
    /// `false`) is still gated: the pipeline diffs against the snapshot
    /// instead of trusting the flag.
    struct LyingSaboteur;
    impl Pass for LyingSaboteur {
        fn name(&self) -> &'static str {
            "lying-saboteur"
        }
        fn run(&self, k: &mut IrKernel) -> bool {
            for inst in &mut k.insts {
                if let Inst::ReadElem { param, .. } = inst {
                    *param = (k.params.len() - 1) as u16;
                    return false; // the lie
                }
            }
            false
        }
    }

    #[test]
    fn pass_lying_about_changes_is_still_rolled_back() {
        let src = "kernel void f(float a<>, out float o<>) { o = a + 1.0; }";
        let mut p = lower_src(src);
        let original = p.kernels[0].clone();
        let recs = optimize_program(
            &mut p,
            &CertConfig::default(),
            &[Box::new(LyingSaboteur) as Box<dyn Pass>],
        );
        assert!(
            matches!(recs[0].action, PassAction::RolledBack { .. }),
            "{recs:?}"
        );
        assert_eq!(p.kernels[0], original);
    }

    #[test]
    fn cert_violating_pass_output_is_rolled_back() {
        let src = "kernel void f(float a<>, out float o<>) {\n    float s = 0.0;\n    int i;\n    for (i = 0; i < 8; i++) { s += a; }\n    o = s;\n}";
        let checked = parse_and_check(src).expect("front-end");
        let kdef = checked.program.kernels().next().expect("kernel");
        let k = lower_kernel(&checked, kdef).expect("lower");
        let mut p = IrProgram {
            kernels: vec![k.clone()],
        };
        let recs = optimize_program(
            &mut p,
            &CertConfig::default(),
            &[Box::new(BoundInflater) as Box<dyn Pass>],
        );
        let PassAction::RolledBack { reason } = &recs[0].action else {
            panic!("bound inflater must be rolled back: {recs:?}");
        };
        assert!(reason.contains("BA003"), "{reason}");
        assert!(
            reason.contains("source 4:"),
            "must cite the loop's source line: {reason}"
        );
        assert_eq!(p.kernels[0], k);
    }
}
