//! The certification engine: runs every Brook Auto rule against a checked
//! program and produces a [`ComplianceReport`].

use crate::analysis::{for_loop_bound, instruction_estimate, CallGraph, LoopBound};
use crate::rules::{Discharge, RuleId};
use brook_lang::ast::*;
use brook_lang::diag::Severity;
use brook_lang::span::Span;
use brook_lang::CheckedProgram;
use std::collections::HashMap;

/// Capability limits of the certification target, mirroring the paper's
/// OpenGL ES 2.0 constraints (§4, §6).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CertConfig {
    /// Maximum `out` streams a kernel may declare. The GLES2 backend has a
    /// single render target, but the compiler splits kernels into one pass
    /// per output (paper §6: Floyd-Warshall), so the limit constrains the
    /// number of generated passes.
    pub max_outputs: u32,
    /// Texture units available for inputs (streams + gathers).
    pub max_inputs: u32,
    /// Maximum helper-function call depth.
    pub max_call_depth: u32,
    /// Worst-case per-element instruction budget; beyond this, drivers of
    /// low-end GPUs fall back to multi-pass emulation.
    pub max_instructions: u64,
    /// Maximum statically deduced trip count for any single loop.
    pub max_loop_trips: u64,
}

impl Default for CertConfig {
    fn default() -> Self {
        // VideoCore IV-class limits used throughout the evaluation.
        CertConfig {
            max_outputs: 4,
            max_inputs: 8,
            max_call_depth: 4,
            max_instructions: 1 << 22,
            max_loop_trips: 1 << 16,
        }
    }
}

impl CertConfig {
    /// A stable 64-bit digest of the limit set — the cert-config
    /// component of a compiled-module cache key (two configs share
    /// compiled artifacts iff they certify identically).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// One rule finding for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Violated or annotated rule.
    pub rule: RuleId,
    /// Error for violations; Note for informational entries.
    pub severity: Severity,
    /// Explanation.
    pub message: String,
    /// Location, when attributable.
    pub span: Span,
}

/// Compliance result for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Kernel name.
    pub kernel: String,
    /// Violations and notes, rule order.
    pub findings: Vec<Finding>,
    /// Every loop in the kernel with its deduced bound.
    pub loop_bounds: Vec<LoopBound>,
    /// Worst-case instruction estimate (None when a loop is unbounded).
    pub instruction_estimate: Option<u64>,
    /// Worst-case estimate recomputed over the *optimized* IR with the
    /// abstract interpreter's reachability facts — never above
    /// `instruction_estimate` (DCE'd and proven-dead code stops being
    /// billed). `None` until the IR pipeline has run.
    pub refined_estimate: Option<u64>,
    /// Maximum helper call depth reached from this kernel.
    pub call_depth: u32,
    /// Number of GPU passes the backend will emit (= outputs).
    pub passes_required: u32,
}

impl KernelReport {
    /// True when no finding is an error.
    pub fn is_compliant(&self) -> bool {
        self.findings.iter().all(|f| f.severity != Severity::Error)
    }

    /// All error-severity findings.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Error)
    }

    /// Worst-case work of one launch of this kernel over `domain_elems`
    /// output elements, in estimated instructions — the unit an
    /// admission controller budgets in. `None` when the kernel carries
    /// an unbounded loop (only possible past a disabled gate): such a
    /// kernel has no static cost and must be refused admission.
    pub fn admission_cost(&self, domain_elems: u64) -> Option<u64> {
        // Prefer the post-optimization analyzer-refined estimate: the
        // AST-level figure bills code the pass pipeline already removed.
        self.refined_estimate
            .or(self.instruction_estimate)
            .map(|per_elem| {
                per_elem
                    .saturating_mul(domain_elems)
                    .saturating_mul(u64::from(self.passes_required.max(1)))
            })
    }
}

/// One kernel's lane-vectorization decision, recorded at compile time
/// when the runtime consults `brook_ir::lanes::plan`: the certification
/// data package names which kernels execute on the lane engine and why
/// the rest fall back to the scalar interpreter.
#[derive(Debug, Clone, PartialEq)]
pub struct LanePlan {
    /// Kernel name.
    pub kernel: String,
    /// True when the planner admitted the kernel to the lane engine.
    pub vectorized: bool,
    /// `"lane-vectorized"` or the planner's rejection reason.
    pub detail: String,
}

/// One kernel's Tier-2 closure-threading decision, recorded at
/// compile time when the runtime consults `brook_ir::tier::compile`:
/// which kernels execute as pre-compiled closure chains and why the
/// rest stay on the lane engine (or scalar interpreter).
#[derive(Debug, Clone, PartialEq)]
pub struct TierPlan {
    /// Kernel name.
    pub kernel: String,
    /// True when the compiler admitted the kernel to Tier-2.
    pub compiled: bool,
    /// The compilation summary or the rejection reason.
    pub detail: String,
}

/// One reduce kernel's vectorized-fold admission decision, recorded
/// at compile time when the runtime consults
/// `brook_ir::simd::ReduceProgram::plan_program_with`: which reduce
/// kernels fold through the SIMD per-lane-partials path and why the
/// rest fold serially through the scalar interpreter.
#[derive(Debug, Clone, PartialEq)]
pub struct SimdReduce {
    /// Kernel name.
    pub kernel: String,
    /// True when the planner admitted the reduce to the vectorized
    /// (reassociation-safe) fold.
    pub admitted: bool,
    /// The admission summary (proven operand range) or the reason the
    /// kernel folds serially.
    pub detail: String,
}

/// Whole-program compliance result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComplianceReport {
    /// Per-kernel reports in source order.
    pub kernels: Vec<KernelReport>,
    /// Provenance of the IR pass pipeline: one record per
    /// (kernel, pass) step, including rollbacks — the certification
    /// data package shows exactly which transformations ran
    /// (see `ir_check::optimize_program`). Empty before lowering.
    pub passes: Vec<crate::ir_check::PassRecord>,
    /// Lane-vectorization decisions, one per lowered kernel (see
    /// `brook_ir::lanes::plan`). Empty before lowering or when lane
    /// execution is disabled on the compiling context.
    pub lane_plans: Vec<LanePlan>,
    /// Tier-2 closure-threading decisions, one per lowered kernel (see
    /// `brook_ir::tier::compile`). Empty before lowering or when tier
    /// execution is disabled on the compiling context.
    pub tier_plans: Vec<TierPlan>,
    /// Vectorized-reduce admission decisions, one per reduce kernel
    /// (see `brook_ir::simd::ReduceProgram`). Empty before lowering or
    /// when lane execution is disabled on the compiling context.
    pub simd_reduces: Vec<SimdReduce>,
    /// Abstract-interpretation facts over the optimized IR (see
    /// `crate::absint`): value ranges at gathers, provable-fault
    /// findings, reachability, and pruned estimates. Empty before
    /// lowering.
    pub analysis: crate::absint::AnalysisReport,
    /// Aggregated runtime resilience evidence: faults injected, retries,
    /// contained panics, verified failovers and deadline margins over
    /// the launches executed so far (paper §2 rules d/e — fault
    /// *response*, not just fault-free behavior). Empty at compile time;
    /// the runtime fills it in when the report is re-exported through
    /// `BrookContext::compliance_with_resilience`.
    pub resilience: brook_inject::ResilienceSummary,
}

impl ComplianceReport {
    /// True when every kernel is compliant.
    pub fn is_compliant(&self) -> bool {
        self.kernels.iter().all(|k| k.is_compliant())
    }

    /// Report for one kernel.
    pub fn kernel(&self, name: &str) -> Option<&KernelReport> {
        self.kernels.iter().find(|k| k.kernel == name)
    }

    /// Total number of error findings.
    pub fn violation_count(&self) -> usize {
        self.kernels.iter().map(|k| k.violations().count()).sum()
    }

    /// [`KernelReport::admission_cost`] looked up by kernel name — the
    /// per-request admission charge of launching `kernel` over
    /// `domain_elems` output elements. `None` for unknown kernels or
    /// ones without a static bound; an admission controller treats both
    /// as inadmissible.
    pub fn admission_cost(&self, kernel: &str, domain_elems: u64) -> Option<u64> {
        self.kernel(kernel)?.admission_cost(domain_elems)
    }
}

/// Runs every certification rule against a checked program.
pub fn certify(checked: &CheckedProgram, config: &CertConfig) -> ComplianceReport {
    let cg = CallGraph::build(&checked.program);
    let helper_costs = helper_cost_table(&checked.program);
    let mut kernels = Vec::new();
    for k in checked.program.kernels() {
        kernels.push(certify_kernel(checked, k, config, &cg, &helper_costs));
    }
    ComplianceReport {
        kernels,
        passes: Vec::new(),
        lane_plans: Vec::new(),
        tier_plans: Vec::new(),
        simd_reduces: Vec::new(),
        analysis: crate::absint::AnalysisReport::default(),
        resilience: brook_inject::ResilienceSummary::default(),
    }
}

fn helper_cost_table(program: &Program) -> HashMap<String, u64> {
    // Fixed-point is unnecessary: the call graph is acyclic for compliant
    // programs; iterate a few times to propagate nested helper costs and
    // fall back to a large constant for anything recursive (BA004 flags it).
    let mut costs: HashMap<String, u64> = HashMap::new();
    for _ in 0..8 {
        for f in program.functions() {
            let c = instruction_estimate(&f.body, &costs).unwrap_or(1 << 20);
            costs.insert(f.name.clone(), c);
        }
    }
    costs
}

fn certify_kernel(
    checked: &CheckedProgram,
    k: &KernelDef,
    config: &CertConfig,
    cg: &CallGraph,
    helper_costs: &HashMap<String, u64>,
) -> KernelReport {
    let mut findings = Vec::new();
    let summary = checked.summary(&k.name);

    // BA003 — bounded loops.
    let mut loop_bounds = Vec::new();
    collect_loop_bounds(&k.body, &mut loop_bounds, &mut findings, config);

    // BA004 / BA009 — recursion and call depth.
    let roots: Vec<String> = summary.map(|s| s.called_functions.clone()).unwrap_or_default();
    let call_depth = match cg.max_depth_from(&roots) {
        Some(d) => {
            if d > config.max_call_depth {
                findings.push(Finding {
                    rule: RuleId::StackDepthBound,
                    severity: Severity::Error,
                    message: format!(
                        "helper call depth {d} exceeds the target limit {}",
                        config.max_call_depth
                    ),
                    span: k.span,
                });
            }
            d
        }
        None => {
            findings.push(Finding {
                rule: RuleId::NoRecursion,
                severity: Severity::Error,
                message: "kernel (transitively) calls a recursive helper function".into(),
                span: k.span,
            });
            u32::MAX
        }
    };

    // BA005 — output limit.
    let outputs = k.outputs().count() as u32;
    if outputs > config.max_outputs {
        findings.push(Finding {
            rule: RuleId::OutputLimit,
            severity: Severity::Error,
            message: format!(
                "kernel declares {outputs} outputs but the target supports at most {} passes",
                config.max_outputs
            ),
            span: k.span,
        });
    } else if outputs > 1 {
        findings.push(Finding {
            rule: RuleId::OutputLimit,
            severity: Severity::Note,
            message: format!(
                "kernel has {outputs} outputs: the OpenGL ES 2 backend will split it into \
                 {outputs} single-output passes"
            ),
            span: k.span,
        });
    }

    // BA006 — input limit.
    let inputs = k.stream_inputs().count() as u32;
    if inputs > config.max_inputs {
        findings.push(Finding {
            rule: RuleId::InputLimit,
            severity: Severity::Error,
            message: format!(
                "kernel reads {inputs} streams/gathers but the target has {} texture units",
                config.max_inputs
            ),
            span: k.span,
        });
    }

    // BA010 — instruction budget.
    let estimate = instruction_estimate(&k.body, helper_costs);
    match estimate {
        Some(est) if est > config.max_instructions => {
            findings.push(Finding {
                rule: RuleId::InstructionBudget,
                severity: Severity::Error,
                message: format!(
                    "worst-case instruction estimate {est} exceeds the target budget {}",
                    config.max_instructions
                ),
                span: k.span,
            });
        }
        Some(est) => {
            findings.push(Finding {
                rule: RuleId::InstructionBudget,
                severity: Severity::Note,
                message: format!("worst-case instruction estimate: {est}"),
                span: k.span,
            });
        }
        None => {
            // BA003 already reported the unbounded loop; add the BA010
            // consequence for the certification data package.
            findings.push(Finding {
                rule: RuleId::InstructionBudget,
                severity: Severity::Error,
                message: "instruction count cannot be bounded because a loop is unbounded".into(),
                span: k.span,
            });
        }
    }

    // Rules discharged by construction or runtime design are recorded as
    // notes so the report is a complete certification artifact.
    for meta in crate::rules::RULES {
        if matches!(
            meta.discharge,
            Discharge::ByConstruction | Discharge::RuntimeDesign
        ) && !findings.iter().any(|f| f.rule == meta.id)
        {
            findings.push(Finding {
                rule: meta.id,
                severity: Severity::Note,
                message: format!("satisfied: {}", meta.motivation),
                span: k.span,
            });
        }
    }
    findings.sort_by_key(|f| (f.rule, std::cmp::Reverse(f.severity)));

    KernelReport {
        kernel: k.name.clone(),
        findings,
        loop_bounds,
        instruction_estimate: estimate,
        refined_estimate: None,
        call_depth,
        passes_required: outputs.max(1),
    }
}

fn collect_loop_bounds(
    b: &Block,
    bounds: &mut Vec<LoopBound>,
    findings: &mut Vec<Finding>,
    config: &CertConfig,
) {
    for s in &b.stmts {
        match s {
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                let bound = for_loop_bound(init.as_deref(), cond.as_ref(), step.as_deref(), body);
                match &bound {
                    LoopBound::Static { trips } => {
                        if *trips > config.max_loop_trips {
                            findings.push(Finding {
                                rule: RuleId::BoundedLoops,
                                severity: Severity::Error,
                                message: format!(
                                    "loop trip count {trips} exceeds the target limit {}",
                                    config.max_loop_trips
                                ),
                                span: *span,
                            });
                        } else {
                            findings.push(Finding {
                                rule: RuleId::BoundedLoops,
                                severity: Severity::Note,
                                message: format!("loop bound deduced: {trips} iterations"),
                                span: *span,
                            });
                        }
                    }
                    LoopBound::Unbounded { reason } => {
                        findings.push(Finding {
                            rule: RuleId::BoundedLoops,
                            severity: Severity::Error,
                            message: format!("loop trip count cannot be deduced: {reason}"),
                            span: *span,
                        });
                    }
                }
                bounds.push(bound);
                collect_loop_bounds(body, bounds, findings, config);
            }
            Stmt::While { span, body, .. } => {
                findings.push(Finding {
                    rule: RuleId::BoundedLoops,
                    severity: Severity::Error,
                    message: "`while` loops have no statically deducible bound in Brook Auto; \
                              rewrite as a counted `for` loop"
                        .into(),
                    span: *span,
                });
                bounds.push(LoopBound::Unbounded {
                    reason: "while loop".into(),
                });
                collect_loop_bounds(body, bounds, findings, config);
            }
            Stmt::DoWhile { span, body, .. } => {
                findings.push(Finding {
                    rule: RuleId::BoundedLoops,
                    severity: Severity::Error,
                    message: "`do/while` loops have no statically deducible bound in Brook Auto; \
                              rewrite as a counted `for` loop"
                        .into(),
                    span: *span,
                });
                bounds.push(LoopBound::Unbounded {
                    reason: "do/while loop".into(),
                });
                collect_loop_bounds(body, bounds, findings, config);
            }
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                collect_loop_bounds(then_block, bounds, findings, config);
                if let Some(e) = else_block {
                    collect_loop_bounds(e, bounds, findings, config);
                }
            }
            Stmt::Block(inner) => collect_loop_bounds(inner, bounds, findings, config),
            _ => {}
        }
    }
}

/// Certifies source text directly: parse, type-check, run the rules.
///
/// # Errors
/// Returns the front-end error when the source does not parse or check;
/// rule violations are reported through the returned report instead.
pub fn certify_source(
    src: &str,
    config: &CertConfig,
) -> Result<(CheckedProgram, ComplianceReport), brook_lang::CompileError> {
    let checked = brook_lang::parse_and_check(src)?;
    let report = certify(&checked, config);
    Ok((checked, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_for(src: &str) -> ComplianceReport {
        let (_, report) = certify_source(src, &CertConfig::default()).expect("front-end ok");
        report
    }

    #[test]
    fn compliant_kernel_passes() {
        let r = report_for(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 16; i++) { s += a; }
                o = s;
            }",
        );
        assert!(r.is_compliant(), "{:?}", r.kernels[0].findings);
        assert_eq!(r.kernels[0].loop_bounds.len(), 1);
        assert_eq!(r.kernels[0].loop_bounds[0].trips(), Some(16));
        assert!(r.kernels[0].instruction_estimate.is_some());
    }

    #[test]
    fn while_loop_violates_ba003() {
        let r = report_for(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                while (s < 10.0) { s += a; }
                o = s;
            }",
        );
        assert!(!r.is_compliant());
        assert!(r.kernels[0].violations().any(|f| f.rule == RuleId::BoundedLoops));
        assert!(r.kernels[0]
            .violations()
            .any(|f| f.rule == RuleId::InstructionBudget));
    }

    #[test]
    fn non_constant_for_bound_violates_ba003() {
        let r = report_for(
            "kernel void f(float a<>, float n, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < int(n); i++) { s += a; }
                o = s;
            }",
        );
        assert!(!r.is_compliant());
    }

    #[test]
    fn excessive_trip_count_violates_ba003() {
        let r = report_for(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 100000; i++) { s += a; }
                o = s;
            }",
        );
        assert!(!r.is_compliant());
    }

    #[test]
    fn multi_output_kernel_noted_for_splitting() {
        let r = report_for(
            "kernel void fw(float d<>, out float dist<>, out float pred<>) {
                dist = d;
                pred = d + 1.0;
            }",
        );
        assert!(r.is_compliant());
        let k = r.kernel("fw").unwrap();
        assert_eq!(k.passes_required, 2);
        assert!(k
            .findings
            .iter()
            .any(|f| f.rule == RuleId::OutputLimit && f.severity == Severity::Note));
    }

    #[test]
    fn too_many_outputs_violates_ba005() {
        let r = report_for(
            "kernel void f(float a<>, out float o1<>, out float o2<>, out float o3<>,
                           out float o4<>, out float o5<>) {
                o1 = a; o2 = a; o3 = a; o4 = a; o5 = a;
            }",
        );
        assert!(!r.is_compliant());
        assert!(r.kernels[0].violations().any(|f| f.rule == RuleId::OutputLimit));
    }

    #[test]
    fn too_many_inputs_violates_ba006() {
        let r = report_for(
            "kernel void f(float a<>, float b<>, float c<>, float d<>, float e<>,
                           float g<>, float h<>, float i<>, float j<>, out float o<>) {
                o = a + b + c + d + e + g + h + i + j;
            }",
        );
        assert!(!r.is_compliant());
        assert!(r.kernels[0].violations().any(|f| f.rule == RuleId::InputLimit));
    }

    #[test]
    fn recursion_violates_ba004() {
        let r = report_for(
            "float f(float x) { return f(x); }
             kernel void k(float a<>, out float o<>) { o = f(a); }",
        );
        assert!(!r.is_compliant());
        assert!(r.kernels[0].violations().any(|f| f.rule == RuleId::NoRecursion));
    }

    #[test]
    fn deep_call_chain_violates_ba009() {
        let r = report_for(
            "float f1(float x) { return x; }
             float f2(float x) { return f1(x); }
             float f3(float x) { return f2(x); }
             float f4(float x) { return f3(x); }
             float f5(float x) { return f4(x); }
             kernel void k(float a<>, out float o<>) { o = f5(a); }",
        );
        assert!(!r.is_compliant());
        assert!(r.kernels[0]
            .violations()
            .any(|f| f.rule == RuleId::StackDepthBound));
    }

    #[test]
    fn by_construction_rules_are_recorded() {
        let r = report_for("kernel void f(float a<>, out float o<>) { o = a; }");
        let k = &r.kernels[0];
        for rule in [
            RuleId::NoPointers,
            RuleId::NoGoto,
            RuleId::NoFaultPropagation,
            RuleId::StaticStreamSizes,
        ] {
            assert!(
                k.findings.iter().any(|f| f.rule == rule),
                "missing by-construction record for {rule}"
            );
        }
    }

    #[test]
    fn nested_loops_all_reported() {
        let r = report_for(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                int j;
                for (i = 0; i < 4; i++) { for (j = 0; j < 8; j++) { s += a; } }
                o = s;
            }",
        );
        assert!(r.is_compliant());
        assert_eq!(r.kernels[0].loop_bounds.len(), 2);
        let est = r.kernels[0].instruction_estimate.unwrap();
        assert!(est >= 32, "nested loops should multiply: {est}");
    }

    #[test]
    fn custom_config_tightens_limits() {
        let cfg = CertConfig {
            max_loop_trips: 8,
            ..CertConfig::default()
        };
        let (_, r) = certify_source(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 16; i++) { s += a; }
                o = s;
            }",
            &cfg,
        )
        .unwrap();
        assert!(!r.is_compliant());
    }

    #[test]
    fn violation_count_aggregates() {
        let r = report_for(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                while (s < 1.0) { s += a; }
                o = s;
            }",
        );
        assert!(r.violation_count() >= 2);
    }
}
