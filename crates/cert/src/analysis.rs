//! Static analyses backing the certification rules: loop trip-count
//! deduction, call-graph recursion/depth checks and worst-case instruction
//! estimation.

use brook_lang::ast::*;
use std::collections::HashMap;

// The loop-bound deduction moved into the front-end crate so the
// BrookIR lowerer records the same bounds the engine enforces; it is
// re-exported here so certification consumers keep one import path.
pub use brook_lang::loopbound::{const_int, for_loop_bound, LoopBound};

/// Call graph over helper functions, used for recursion and depth checks.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// function name -> directly called helper functions.
    pub edges: HashMap<String, Vec<String>>,
}

impl CallGraph {
    /// Builds the call graph of a program's helper functions.
    pub fn build(program: &Program) -> Self {
        let names: Vec<String> = program.functions().map(|f| f.name.clone()).collect();
        let mut edges = HashMap::new();
        for f in program.functions() {
            let mut calls = Vec::new();
            collect_calls_block(&f.body, &mut calls);
            calls.retain(|c| names.contains(c));
            calls.sort();
            calls.dedup();
            edges.insert(f.name.clone(), calls);
        }
        CallGraph { edges }
    }

    /// Returns a cycle participant if the graph is recursive.
    pub fn find_recursion(&self) -> Option<String> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: HashMap<&str, Mark> = self.edges.keys().map(|k| (k.as_str(), Mark::White)).collect();
        fn visit<'a>(
            node: &'a str,
            edges: &'a HashMap<String, Vec<String>>,
            marks: &mut HashMap<&'a str, Mark>,
        ) -> Option<String> {
            marks.insert(node, Mark::Grey);
            for next in edges.get(node).into_iter().flatten() {
                match marks.get(next.as_str()) {
                    Some(Mark::Grey) => return Some(next.clone()),
                    Some(Mark::White) => {
                        if let Some(c) = visit(next, edges, marks) {
                            return Some(c);
                        }
                    }
                    _ => {}
                }
            }
            marks.insert(node, Mark::Black);
            None
        }
        let keys: Vec<&str> = self.edges.keys().map(|k| k.as_str()).collect();
        for k in keys {
            if marks[k] == Mark::White {
                if let Some(c) = visit(k, &self.edges, &mut marks) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// Maximum call depth starting from the given roots (1 = leaf call).
    ///
    /// Returns `None` when the graph is recursive.
    pub fn max_depth_from(&self, roots: &[String]) -> Option<u32> {
        if self.find_recursion().is_some() {
            return None;
        }
        fn depth(node: &str, edges: &HashMap<String, Vec<String>>, memo: &mut HashMap<String, u32>) -> u32 {
            if let Some(d) = memo.get(node) {
                return *d;
            }
            let d = 1 + edges
                .get(node)
                .into_iter()
                .flatten()
                .map(|n| depth(n, edges, memo))
                .max()
                .unwrap_or(0);
            memo.insert(node.to_owned(), d);
            d
        }
        let mut memo = HashMap::new();
        Some(
            roots
                .iter()
                .filter(|r| self.edges.contains_key(*r))
                .map(|r| depth(r, &self.edges, &mut memo))
                .max()
                .unwrap_or(0),
        )
    }
}

fn collect_calls_block(b: &Block, out: &mut Vec<String>) {
    for s in &b.stmts {
        collect_calls_stmt(s, out);
    }
}

fn collect_calls_stmt(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                collect_calls_expr(e, out);
            }
        }
        Stmt::Assign { target, value, .. } => {
            collect_calls_expr(target, out);
            collect_calls_expr(value, out);
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            collect_calls_expr(cond, out);
            collect_calls_block(then_block, out);
            if let Some(e) = else_block {
                collect_calls_block(e, out);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            if let Some(i) = init {
                collect_calls_stmt(i, out);
            }
            if let Some(c) = cond {
                collect_calls_expr(c, out);
            }
            if let Some(st) = step {
                collect_calls_stmt(st, out);
            }
            collect_calls_block(body, out);
        }
        Stmt::While { cond, body, .. } | Stmt::DoWhile { cond, body, .. } => {
            collect_calls_expr(cond, out);
            collect_calls_block(body, out);
        }
        Stmt::Return { value, .. } => {
            if let Some(v) = value {
                collect_calls_expr(v, out);
            }
        }
        Stmt::Expr { expr, .. } => collect_calls_expr(expr, out),
        Stmt::Block(b) => collect_calls_block(b, out),
    }
}

/// Collects every function-call callee in an expression (builtins and
/// constructors included; the caller filters).
pub fn collect_calls_expr(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Call { callee, args } => {
            out.push(callee.clone());
            for a in args {
                collect_calls_expr(a, out);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_calls_expr(lhs, out);
            collect_calls_expr(rhs, out);
        }
        ExprKind::Unary { operand, .. } => collect_calls_expr(operand, out),
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            collect_calls_expr(cond, out);
            collect_calls_expr(then_expr, out);
            collect_calls_expr(else_expr, out);
        }
        ExprKind::Index { base, indices } => {
            collect_calls_expr(base, out);
            for i in indices {
                collect_calls_expr(i, out);
            }
        }
        ExprKind::Swizzle { base, .. } => collect_calls_expr(base, out),
        _ => {}
    }
}

/// Worst-case instruction estimate for a block: straight-line ops, with
/// loop bodies multiplied by their deduced trip counts and both branches
/// of conditionals summed (GPU predication executes both sides).
///
/// Unbounded loops contribute `None` (the estimate is impossible), which
/// the engine reports through BA003/BA010.
pub fn instruction_estimate(b: &Block, helpers: &HashMap<String, u64>) -> Option<u64> {
    let mut total = 0u64;
    for s in &b.stmts {
        total = total.checked_add(stmt_estimate(s, helpers)?)?;
    }
    Some(total)
}

fn stmt_estimate(s: &Stmt, helpers: &HashMap<String, u64>) -> Option<u64> {
    Some(match s {
        Stmt::Decl { init, .. } => 1 + opt_expr_estimate(init.as_ref(), helpers)?,
        Stmt::Assign { target, value, .. } => {
            1 + expr_estimate(target, helpers)? + expr_estimate(value, helpers)?
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            expr_estimate(cond, helpers)?
                + instruction_estimate(then_block, helpers)?
                + match else_block {
                    Some(e) => instruction_estimate(e, helpers)?,
                    None => 0,
                }
                + 1
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            let bound = for_loop_bound(init.as_deref(), cond.as_ref(), step.as_deref(), body);
            let trips = bound.trips()?;
            let per_iter = instruction_estimate(body, helpers)?
                + opt_expr_estimate(cond.as_ref(), helpers)?
                + opt_stmt_estimate(step.as_deref(), helpers)?;
            opt_stmt_estimate(init.as_deref(), helpers)? + trips.checked_mul(per_iter)?
        }
        // Unbounded by definition; BA003 rejects these separately.
        Stmt::While { .. } | Stmt::DoWhile { .. } => return None,
        Stmt::Return { value, .. } => 1 + opt_expr_estimate(value.as_ref(), helpers)?,
        Stmt::Expr { expr, .. } => expr_estimate(expr, helpers)?,
        Stmt::Block(b) => instruction_estimate(b, helpers)?,
    })
}

fn opt_expr_estimate(e: Option<&Expr>, helpers: &HashMap<String, u64>) -> Option<u64> {
    match e {
        Some(e) => expr_estimate(e, helpers),
        None => Some(0),
    }
}

fn opt_stmt_estimate(s: Option<&Stmt>, helpers: &HashMap<String, u64>) -> Option<u64> {
    match s {
        Some(s) => stmt_estimate(s, helpers),
        None => Some(0),
    }
}

fn expr_estimate(e: &Expr, helpers: &HashMap<String, u64>) -> Option<u64> {
    Some(match &e.kind {
        ExprKind::FloatLit(_) | ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::Var(_) => 0,
        ExprKind::Binary { lhs, rhs, .. } => 1 + expr_estimate(lhs, helpers)? + expr_estimate(rhs, helpers)?,
        ExprKind::Unary { operand, .. } => 1 + expr_estimate(operand, helpers)?,
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            1 + expr_estimate(cond, helpers)?
                + expr_estimate(then_expr, helpers)?
                + expr_estimate(else_expr, helpers)?
        }
        ExprKind::Call { callee, args } => {
            let mut cost = if let Some(b) = brook_lang::builtins::builtin(callee) {
                b.cost as u64
            } else if let Some(h) = helpers.get(callee) {
                *h
            } else {
                1 // constructor / cast
            };
            for a in args {
                cost += expr_estimate(a, helpers)?;
            }
            cost
        }
        // Texture fetch: the dominant cost on embedded GPUs.
        ExprKind::Index { indices, .. } => {
            let mut cost = 4;
            for i in indices {
                cost += expr_estimate(i, helpers)?;
            }
            cost
        }
        ExprKind::Swizzle { base, .. } => expr_estimate(base, helpers)?,
        ExprKind::Indexof { .. } => 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use brook_lang::parse;

    type ForParts = (Option<Box<Stmt>>, Option<Expr>, Option<Box<Stmt>>, Block);

    fn first_for(src: &str) -> ForParts {
        let p = parse(src).expect("parse");
        let k = p.kernels().next().expect("kernel");
        for s in &k.body.stmts {
            if let Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } = s
            {
                return (init.clone(), cond.clone(), step.clone(), body.clone());
            }
        }
        panic!("no for loop in source");
    }

    fn bound_of(header: &str) -> LoopBound {
        let src = format!("kernel void f(float a<>, out float o<>) {{ int i; {header} {{ }} o = a; }}");
        let (init, cond, step, body) = first_for(&src);
        for_loop_bound(init.as_deref(), cond.as_ref(), step.as_deref(), &body)
    }

    #[test]
    fn canonical_ascending_loop() {
        assert_eq!(bound_of("for (i = 0; i < 16; i++)").trips(), Some(16));
        assert_eq!(bound_of("for (i = 0; i <= 16; i++)").trips(), Some(17));
        assert_eq!(bound_of("for (i = 4; i < 16; i += 4)").trips(), Some(3));
        assert_eq!(bound_of("for (i = 0; i < 17; i += 4)").trips(), Some(5));
    }

    #[test]
    fn canonical_descending_loop() {
        assert_eq!(bound_of("for (i = 16; i > 0; i--)").trips(), Some(16));
        assert_eq!(bound_of("for (i = 16; i >= 0; i -= 4)").trips(), Some(5));
    }

    #[test]
    fn reversed_comparison() {
        assert_eq!(bound_of("for (i = 0; 16 > i; i++)").trips(), Some(16));
    }

    #[test]
    fn geometric_loop() {
        assert_eq!(bound_of("for (i = 1; i < 256; i *= 2)").trips(), Some(8));
    }

    #[test]
    fn declared_induction_variable() {
        let src = "kernel void f(float a<>, out float o<>) { float s = 0.0; for (int j = 0; j < 8; j++) { s += a; } o = s; }";
        // `int j = 0` inside for-init.
        let (init, cond, step, body) = first_for(src);
        assert_eq!(
            for_loop_bound(init.as_deref(), cond.as_ref(), step.as_deref(), &body).trips(),
            Some(8)
        );
    }

    #[test]
    fn non_constant_bound_is_unbounded() {
        let src = "kernel void f(float a<>, float n, out float o<>) { int i; for (i = 0; i < int(n); i++) { } o = a; }";
        let (init, cond, step, body) = first_for(src);
        let b = for_loop_bound(init.as_deref(), cond.as_ref(), step.as_deref(), &body);
        assert!(b.trips().is_none());
    }

    #[test]
    fn induction_variable_modified_in_body_is_unbounded() {
        let src =
            "kernel void f(float a<>, out float o<>) { int i; for (i = 0; i < 8; i++) { i = 0; } o = a; }";
        let (init, cond, step, body) = first_for(src);
        assert!(
            for_loop_bound(init.as_deref(), cond.as_ref(), step.as_deref(), &body)
                .trips()
                .is_none()
        );
    }

    #[test]
    fn contradictory_direction_is_unbounded() {
        assert!(
            bound_of("for (i = 0; i > 10; i++)").trips() == Some(0)
                || bound_of("for (i = 0; i > 10; i++)").trips().is_none()
        );
        // Increasing away from an upper bound never terminates:
        assert!(bound_of("for (i = 20; i < 10; i++)").trips() == Some(0));
        // Decreasing below a `<` bound never terminates:
        assert!(bound_of("for (i = 0; i < 10; i--)").trips().is_none());
    }

    #[test]
    fn const_int_arithmetic() {
        let p = parse(
            "kernel void f(float a<>, out float o<>) { int i; for (i = 0; i < 4 * 4 - 2; i++) { } o = a; }",
        )
        .unwrap();
        let k = p.kernels().next().unwrap();
        if let Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } = &k.body.stmts[1]
        {
            let b = for_loop_bound(init.as_deref(), cond.as_ref(), step.as_deref(), body);
            assert_eq!(b.trips(), Some(14));
        } else {
            panic!("expected for");
        }
    }

    #[test]
    fn call_graph_recursion_detected() {
        let p = parse(
            "float f(float x) { return g(x); }
             float g(float x) { return f(x); }
             kernel void k(float a<>, out float o<>) { o = f(a); }",
        )
        .unwrap();
        let cg = CallGraph::build(&p);
        assert!(cg.find_recursion().is_some());
        assert!(cg.max_depth_from(&["f".into()]).is_none());
    }

    #[test]
    fn call_graph_self_recursion_detected() {
        let p = parse(
            "float f(float x) { return f(x); }
             kernel void k(float a<>, out float o<>) { o = f(a); }",
        )
        .unwrap();
        assert!(CallGraph::build(&p).find_recursion().is_some());
    }

    #[test]
    fn call_graph_depth() {
        let p = parse(
            "float h(float x) { return x; }
             float g(float x) { return h(x); }
             float f(float x) { return g(x); }
             kernel void k(float a<>, out float o<>) { o = f(a); }",
        )
        .unwrap();
        let cg = CallGraph::build(&p);
        assert_eq!(cg.find_recursion(), None);
        assert_eq!(cg.max_depth_from(&["f".into()]), Some(3));
        assert_eq!(cg.max_depth_from(&["h".into()]), Some(1));
    }

    #[test]
    fn instruction_estimate_multiplies_loops() {
        let p = parse(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 10; i++) { s += a; }
                o = s;
            }",
        )
        .unwrap();
        let k = p.kernels().next().unwrap();
        let est = instruction_estimate(&k.body, &HashMap::new()).unwrap();
        // 10 iterations of at least one add each, plus overhead.
        assert!(est >= 20, "estimate too small: {est}");
    }

    #[test]
    fn instruction_estimate_fails_on_while() {
        let p = parse(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                while (s < 10.0) { s += a; }
                o = s;
            }",
        )
        .unwrap();
        let k = p.kernels().next().unwrap();
        assert!(instruction_estimate(&k.body, &HashMap::new()).is_none());
    }
}
