//! Abstract interpretation over BrookIR (the tier-2 static analyzer).
//!
//! A forward interval analysis over each kernel's flat instruction
//! stream, driven by the structured region tree ([`brook_ir::Node`]) so
//! loops get a proper widening/narrowing fixpoint instead of a
//! flow-insensitive smear. The domain tracks:
//!
//! - integer registers as `i64` intervals (widened to the full `i32`
//!   range on potential wrap — runtime int arithmetic wraps),
//! - float registers as `f32` endpoint intervals plus a may-be-NaN
//!   flag (endpoint evaluation in `f32` is sound because every runtime
//!   float op is a monotone function of its operands composed with the
//!   monotone rounding `fl(..)`),
//! - `indexof` results symbolically (`IdxVec` / `IdxComp`): component
//!   `comp` of the launch domain plus a constant offset interval —
//!   the dominant gather-index shape in stencil and matrix kernels,
//! - booleans as three-valued constants, with a predicate side-table
//!   so branches refine the operand intervals of the comparison that
//!   produced the condition.
//!
//! Analysis facts feed four consumers (see ARCHITECTURE.md):
//! certification rules BA013/BA014 (hard rejection of provable
//! faults), clamp elision on proven-in-bounds gathers
//! ([`brook_ir::ProvenIdx`], launch-checked by
//! [`brook_ir::eval::proven_fits_dyn`]), refined WCET admission
//! estimates, and planner facts ([`brook_ir::KernelFacts`]).

use crate::engine::Finding;
use crate::ir_check::inst_cost;
use crate::rules::RuleId;
use brook_ir::{Inst, IrKernel, IrProgram, KernelFacts, LoopKind, LoopNode, Node, ProvenIdx, Value};
use brook_lang::ast::{AssignOp, BinOp, ParamKind, ScalarKind, Type, UnOp};
use brook_lang::builtins::BUILTINS;
use brook_lang::diag::Severity;
use brook_lang::span::Span;
use std::collections::HashMap;

/// Start widening unbounded-looking loops after this many rounds.
const WIDEN_AFTER: u64 = 3;
/// Hard cap on fixpoint rounds (widening converges far earlier; this
/// is a defensive backstop, after which the head state is forced to
/// top).
const MAX_ROUNDS: u64 = 64;

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

/// One register's abstract value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbsVal {
    /// Unassigned / unreachable.
    Bot,
    /// An `i32` value in `[lo, hi]` (kept as `i64`; transfer functions
    /// widen to the full `i32` range on potential wrap).
    Int { lo: i64, hi: i64 },
    /// An `f32` value in `[lo, hi]` (endpoints never NaN), possibly
    /// NaN when `nan` is set.
    Flt { lo: f32, hi: f32, nan: bool },
    /// The `float2` result of `indexof` on an output stream: both
    /// components are non-negative and bounded by the launch domain.
    IdxVec,
    /// `indexof` component `comp` (0 = x, 1 = y) plus an exact integer
    /// offset in `[off_lo, off_hi]`.
    IdxComp { comp: u8, off_lo: i64, off_hi: i64 },
    /// A boolean, known when `Some`.
    Bool(Option<bool>),
    /// Anything (vectors, type-unstable joins, unmodeled ops).
    Top,
}

impl AbsVal {
    fn flt_top() -> AbsVal {
        AbsVal::Flt {
            lo: f32::NEG_INFINITY,
            hi: f32::INFINITY,
            nan: true,
        }
    }

    fn int_full() -> AbsVal {
        AbsVal::Int {
            lo: i64::from(i32::MIN),
            hi: i64::from(i32::MAX),
        }
    }

    /// Sound float over-approximation of a scalar-float-valued abstract
    /// value (used when an op needs "this as a float interval").
    fn as_flt(self) -> Option<(f32, f32, bool)> {
        match self {
            // i64 -> f32 is monotone, so endpoint conversion preserves
            // interval containment even where the conversion rounds.
            AbsVal::Int { lo, hi } => Some((lo as f32, hi as f32, false)),
            AbsVal::Flt { lo, hi, nan } => Some((lo, hi, nan)),
            // comp >= 0, so the value is at least off_lo; the component
            // itself is only bounded by the (runtime) launch domain.
            AbsVal::IdxComp { off_lo, .. } => Some((off_lo as f32, f32::INFINITY, false)),
            _ => None,
        }
    }

    fn as_bool(self) -> Option<Option<bool>> {
        match self {
            AbsVal::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Builds a float interval, routing NaN endpoints into the `nan` flag.
fn mk_flt(lo: f32, hi: f32, nan: bool) -> AbsVal {
    if lo.is_nan() || hi.is_nan() || lo > hi {
        AbsVal::flt_top()
    } else {
        AbsVal::Flt { lo, hi, nan }
    }
}

/// Builds an int interval, widening to the full `i32` range when the
/// (i64) bounds escape it — runtime int arithmetic wraps.
fn mk_int(lo: i64, hi: i64) -> AbsVal {
    if lo < i64::from(i32::MIN) || hi > i64::from(i32::MAX) || lo > hi {
        AbsVal::int_full()
    } else {
        AbsVal::Int { lo, hi }
    }
}

/// `fl`-corner evaluation: min/max of `f` over the interval corner
/// products, NaN corners routed into the flag. Sound for ops monotone
/// per quadrant (add/sub/mul).
fn corners(f: impl Fn(f32, f32) -> f32, a: (f32, f32), b: (f32, f32), nan: bool) -> AbsVal {
    let cs = [f(a.0, b.0), f(a.0, b.1), f(a.1, b.0), f(a.1, b.1)];
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    let mut n = nan;
    for c in cs {
        if c.is_nan() {
            n = true;
        } else {
            lo = lo.min(c);
            hi = hi.max(c);
        }
    }
    if lo > hi {
        return AbsVal::flt_top();
    }
    mk_flt(lo, hi, n)
}

/// Next `f32` strictly below `x` (for strict-comparison refinement).
fn next_down(x: f32) -> f32 {
    if x.is_nan() || x == f32::NEG_INFINITY {
        return x;
    }
    let bits = x.to_bits();
    if x == 0.0 {
        return -f32::from_bits(1);
    }
    f32::from_bits(if x > 0.0 { bits - 1 } else { bits + 1 })
}

/// Next `f32` strictly above `x`.
fn next_up(x: f32) -> f32 {
    if x.is_nan() || x == f32::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    if x == 0.0 {
        return f32::from_bits(1);
    }
    f32::from_bits(if x > 0.0 { bits + 1 } else { bits - 1 })
}

// ---------------------------------------------------------------------------
// Analysis state
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct State {
    vals: Vec<AbsVal>,
    /// Value-version counters: a predicate recorded for generation `g`
    /// of a register only applies while the register still holds
    /// generation `g` (joins of differing generations refresh them).
    gens: Vec<u64>,
    /// Must-assigned flags (definite assignment; joins intersect).
    assigned: Vec<bool>,
    /// False once control provably cannot reach this point (after
    /// `Ret`/`Fail`, or a branch refinement emptied an interval).
    live: bool,
}

impl State {
    fn same_modulo_gens(&self, other: &State) -> bool {
        self.live == other.live && self.vals == other.vals && self.assigned == other.assigned
    }
}

/// A predicate attached to one generation of a boolean register.
#[derive(Clone, Copy)]
enum Pred {
    Cmp {
        op: BinOp,
        lhs: u32,
        rhs: u32,
        lhs_gen: u64,
        rhs_gen: u64,
    },
    Logic {
        op: BinOp,
        lhs: u32,
        rhs: u32,
        lhs_gen: u64,
        rhs_gen: u64,
    },
    Not {
        src: u32,
        src_gen: u64,
    },
}

/// Observed per-dimension gather-index range, join-accumulated across
/// every abstract visit of the instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DimObs {
    Const { lo: i64, hi: i64 },
    Rel { comp: u8, lo: i64, hi: i64 },
    Unknown,
}

fn join_dim(a: DimObs, b: DimObs) -> DimObs {
    match (a, b) {
        (DimObs::Const { lo: a0, hi: a1 }, DimObs::Const { lo: b0, hi: b1 }) => DimObs::Const {
            lo: a0.min(b0),
            hi: a1.max(b1),
        },
        (
            DimObs::Rel {
                comp: ca,
                lo: a0,
                hi: a1,
            },
            DimObs::Rel {
                comp: cb,
                lo: b0,
                hi: b1,
            },
        ) if ca == cb => DimObs::Rel {
            comp: ca,
            lo: a0.min(b0),
            hi: a1.max(b1),
        },
        _ => DimObs::Unknown,
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// One span-attributed analysis fact (pinned by the golden snapshots).
#[derive(Debug, Clone, PartialEq)]
pub struct InstFact {
    /// Instruction index in the kernel's flat stream.
    pub pc: u32,
    /// Source location of the instruction.
    pub span: Span,
    /// Human-readable fact, e.g. ``gather `a` in [idx.y+0..=+0, 0..=15]``.
    pub fact: String,
}

/// Per-kernel analysis results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelAnalysis {
    /// Kernel name.
    pub kernel: String,
    /// Every register is provably assigned before every use.
    pub def_before_use_ok: bool,
    /// No register ever joins values of different runtime kinds
    /// (int/float/bool) on converging paths.
    pub type_stable: bool,
    /// Number of `Gather` instructions analyzed.
    pub total_gathers: usize,
    /// Gathers whose every index dimension has a proven range.
    pub proven_gathers: usize,
    /// Instructions proven statically unreachable.
    pub unreachable_insts: usize,
    /// Reachability-pruned per-element instruction estimate over the
    /// optimized IR (never below the true worst case; `None` when a
    /// loop bound is unknown).
    pub pruned_estimate: Option<u64>,
    /// Span-attributed facts (gather ranges, unreachable code).
    pub facts: Vec<InstFact>,
    /// Provable-fault findings (BA013/BA014) — hard certification
    /// failures.
    pub faults: Vec<Finding>,
}

/// Whole-program analysis results, stored in
/// [`crate::ComplianceReport::analysis`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// One entry per kernel, in program order.
    pub kernels: Vec<KernelAnalysis>,
}

impl AnalysisReport {
    /// Analysis for a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelAnalysis> {
        self.kernels.iter().find(|k| k.kernel == name)
    }
}

/// Full per-kernel outcome: the report plus the machine-facing
/// artifacts (planner facts and gather annotations).
pub struct KernelOutcome {
    /// Report entry.
    pub analysis: KernelAnalysis,
    /// Planner facts consumed by `lanes::plan_with` /
    /// `tier::compile_with_facts`.
    pub facts: KernelFacts,
    /// Proven per-dimension ranges for each `Gather` pc whose every
    /// dimension was resolved.
    pub proven: Vec<(usize, Vec<ProvenIdx>)>,
}

// ---------------------------------------------------------------------------
// The analyzer
// ---------------------------------------------------------------------------

struct Analyzer<'a> {
    k: &'a IrKernel,
    next_gen: u64,
    preds: HashMap<u64, Pred>,
    reach: Vec<bool>,
    gather_obs: HashMap<usize, Vec<DimObs>>,
    div_obs: HashMap<usize, AbsVal>,
    /// The vectorizable reduce combine site, when the kernel matches
    /// the structural shape (`brook_ir::simd::reduce_combine_site`):
    /// `(builtin pc, operand reg)`.
    reduce_site: Option<(usize, u32)>,
    /// Joined abstract value of the combine operand over every
    /// execution of the combine — the semantic half of vectorized
    /// reduce admission.
    reduce_obs: Option<AbsVal>,
    def_ok: bool,
    type_stable: bool,
    scratch_reads: Vec<u32>,
}

impl<'a> Analyzer<'a> {
    fn new(k: &'a IrKernel) -> Self {
        Analyzer {
            k,
            next_gen: 1,
            preds: HashMap::new(),
            reach: vec![false; k.insts.len()],
            gather_obs: HashMap::new(),
            div_obs: HashMap::new(),
            reduce_site: brook_ir::simd::reduce_combine_site(k)
                .ok()
                .map(|site| (site.builtin_pc, site.operand)),
            reduce_obs: None,
            def_ok: true,
            type_stable: true,
            scratch_reads: Vec::new(),
        }
    }

    fn fresh(&mut self) -> u64 {
        self.next_gen += 1;
        self.next_gen
    }

    fn initial_state(&mut self) -> State {
        let n = self.k.regs.len();
        let mut st = State {
            vals: vec![AbsVal::Bot; n],
            gens: (0..n).map(|_| 0).collect(),
            assigned: vec![false; n],
            live: true,
        };
        for (i, g) in st.gens.iter_mut().enumerate() {
            *g = i as u64; // distinct but stable seed generations
        }
        self.next_gen = n as u64 + 1;
        // The reduce accumulator is runtime-initialized before the
        // kernel body runs.
        if let Some(acc) = self.k.acc_reg {
            st.vals[acc as usize] = AbsVal::Top;
            st.assigned[acc as usize] = true;
        }
        st
    }

    // -- lattice operations ------------------------------------------------

    fn join_val(&mut self, a: AbsVal, b: AbsVal) -> AbsVal {
        use AbsVal::*;
        match (a, b) {
            (Bot, x) | (x, Bot) => x,
            (Int { lo: a0, hi: a1 }, Int { lo: b0, hi: b1 }) => Int {
                lo: a0.min(b0),
                hi: a1.max(b1),
            },
            (
                Flt {
                    lo: a0,
                    hi: a1,
                    nan: na,
                },
                Flt {
                    lo: b0,
                    hi: b1,
                    nan: nb,
                },
            ) => Flt {
                lo: a0.min(b0),
                hi: a1.max(b1),
                nan: na || nb,
            },
            (IdxVec, IdxVec) => IdxVec,
            (
                IdxComp {
                    comp: ca,
                    off_lo: a0,
                    off_hi: a1,
                },
                IdxComp {
                    comp: cb,
                    off_lo: b0,
                    off_hi: b1,
                },
            ) if ca == cb => IdxComp {
                comp: ca,
                off_lo: a0.min(b0),
                off_hi: a1.max(b1),
            },
            (Bool(x), Bool(y)) => Bool(if x == y { x } else { None }),
            // Mixed float-ish kinds stay float; note kind instability
            // for genuinely different runtime kinds.
            (
                x @ (Flt { .. } | IdxComp { .. } | Int { .. }),
                y @ (Flt { .. } | IdxComp { .. } | Int { .. }),
            ) => {
                if matches!(x, Int { .. }) != matches!(y, Int { .. }) {
                    self.type_stable = false;
                }
                let (Some((a0, a1, na)), Some((b0, b1, nb))) = (x.as_flt(), y.as_flt()) else {
                    return Top;
                };
                mk_flt(a0.min(b0), a1.max(b1), na || nb)
            }
            _ => {
                self.type_stable = false;
                Top
            }
        }
    }

    fn join_states(&mut self, a: State, b: State) -> State {
        if !a.live {
            return b;
        }
        if !b.live {
            return a;
        }
        let mut out = a;
        for i in 0..out.vals.len() {
            out.vals[i] = self.join_val(out.vals[i], b.vals[i]);
            out.assigned[i] = out.assigned[i] && b.assigned[i];
            if out.gens[i] != b.gens[i] {
                out.gens[i] = self.fresh();
            }
        }
        out
    }

    /// Classic interval widening: escaping bounds jump to the extremes.
    fn widen_states(&mut self, prev: &State, mut next: State) -> State {
        if !prev.live || !next.live {
            return next;
        }
        for i in 0..next.vals.len() {
            use AbsVal::*;
            next.vals[i] = match (prev.vals[i], next.vals[i]) {
                (Int { lo: p0, hi: p1 }, Int { lo: n0, hi: n1 }) => Int {
                    lo: if n0 < p0 { i64::from(i32::MIN) } else { n0 },
                    hi: if n1 > p1 { i64::from(i32::MAX) } else { n1 },
                },
                (Flt { lo: p0, hi: p1, .. }, Flt { lo: n0, hi: n1, nan }) => Flt {
                    lo: if n0 < p0 { f32::NEG_INFINITY } else { n0 },
                    hi: if n1 > p1 { f32::INFINITY } else { n1 },
                    nan,
                },
                (
                    IdxComp {
                        comp: pc,
                        off_lo: p0,
                        off_hi: p1,
                    },
                    IdxComp {
                        comp: nc,
                        off_lo: n0,
                        off_hi: n1,
                    },
                ) if pc == nc && (n0 < p0 || n1 > p1) => {
                    // Drifting offsets: demote to an unbounded float
                    // (indexof components are finite and never NaN).
                    Flt {
                        lo: f32::NEG_INFINITY,
                        hi: f32::INFINITY,
                        nan: false,
                    }
                }
                (_, n) => n,
            };
        }
        next
    }

    // -- predicate refinement ----------------------------------------------

    /// Refines `st` under "`cond` evaluates to `take`". May clear
    /// `st.live` when the branch is provably not taken.
    fn refine_branch(&mut self, st: &mut State, cond: u32, take: bool) {
        if !st.live {
            return;
        }
        if let Some(Some(b)) = st.vals[cond as usize].as_bool() {
            if b != take {
                st.live = false;
            }
            // Known-matching condition: predicates add nothing new
            // beyond the refinement below, which we still apply
            // (e.g. a loop condition that is `true` for every
            // abstract state still narrows the counter).
        }
        self.refine_by_pred(st, cond, take, 0);
    }

    fn refine_by_pred(&mut self, st: &mut State, cond: u32, take: bool, depth: u8) {
        if !st.live || depth > 4 {
            return;
        }
        let Some(p) = self.preds.get(&st.gens[cond as usize]).copied() else {
            return;
        };
        match p {
            Pred::Not { src, src_gen } => {
                if st.gens[src as usize] == src_gen {
                    self.refine_by_pred(st, src, !take, depth + 1);
                }
            }
            Pred::Logic {
                op,
                lhs,
                rhs,
                lhs_gen,
                rhs_gen,
            } => {
                // `a && b == true` pins both true; `a || b == false`
                // pins both false.
                let pin = match (op, take) {
                    (BinOp::And, true) => Some(true),
                    (BinOp::Or, false) => Some(false),
                    _ => None,
                };
                if let Some(v) = pin {
                    if st.gens[lhs as usize] == lhs_gen {
                        self.refine_by_pred(st, lhs, v, depth + 1);
                    }
                    if st.live && st.gens[rhs as usize] == rhs_gen {
                        self.refine_by_pred(st, rhs, v, depth + 1);
                    }
                }
            }
            Pred::Cmp {
                op,
                lhs,
                rhs,
                lhs_gen,
                rhs_gen,
            } => {
                if st.gens[lhs as usize] != lhs_gen || st.gens[rhs as usize] != rhs_gen {
                    return;
                }
                let eff = if take { op } else { negate_cmp(op) };
                self.apply_cmp_refine(st, eff, lhs, rhs, take);
            }
        }
    }

    /// Applies comparison `lhs eff rhs` as a fact. `was_taken` is false
    /// when `eff` came from negating the original operator — float
    /// refinement must then account for unordered (NaN) outcomes.
    fn apply_cmp_refine(&mut self, st: &mut State, eff: BinOp, lhs: u32, rhs: u32, was_taken: bool) {
        use AbsVal::*;
        let a = st.vals[lhs as usize];
        let b = st.vals[rhs as usize];
        match (a, b) {
            // Pure int comparison: exact i32 semantics, no promotion.
            (Int { lo: a0, hi: a1 }, Int { lo: b0, hi: b1 }) => {
                let (na, nb) = refine_int_pair(eff, (a0, a1), (b0, b1));
                set_refined_int(st, lhs, na);
                set_refined_int(st, rhs, nb);
            }
            // Float-involved comparison (runtime promotes ints).
            _ => {
                let (Some((a0, a1, an)), Some((b0, b1, bn))) = (a.as_flt(), b.as_flt()) else {
                    return;
                };
                // A negated ordered comparison also holds when either
                // side is NaN — refine only if NaN is excluded.
                // (`Eq` from a false `Ne` is fine: NaN would have made
                // `Ne` true.)
                if !was_taken && matches!(eff, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) && (an || bn) {
                    return;
                }
                let (na, nb) = refine_flt_pair(eff, (a0, a1), (b0, b1));
                // A *taken* ordered comparison (or a proven `Eq`)
                // implies both operands compared non-NaN.
                let clears_nan = matches!(eff, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq);
                self.narrow_flt(st, lhs, na, clears_nan);
                self.narrow_flt(st, rhs, nb, clears_nan);
            }
        }
    }

    /// Intersects a register's float-ish value with `[lo, hi]`.
    fn narrow_flt(&mut self, st: &mut State, reg: u32, range: Option<(f32, f32)>, clear_nan: bool) {
        let Some((lo, hi)) = range else { return };
        if lo > hi {
            st.live = false;
            return;
        }
        match st.vals[reg as usize] {
            AbsVal::Flt { lo: c0, hi: c1, nan } => {
                let (n0, n1) = (c0.max(lo), c1.min(hi));
                if n0 > n1 && (clear_nan || !nan) {
                    st.live = false;
                    return;
                }
                st.vals[reg as usize] = if n0 > n1 {
                    // Only the NaN case survives the comparison.
                    AbsVal::flt_top()
                } else {
                    AbsVal::Flt {
                        lo: n0,
                        hi: n1,
                        nan: nan && !clear_nan,
                    }
                };
            }
            // Int compared against a float bound: sound int bounds
            // require the int's f32 image to be exact.
            AbsVal::Int { lo: c0, hi: c1 } if c0.abs() <= 1 << 24 && c1.abs() <= 1 << 24 => {
                let n0 = c0.max(lo.ceil() as i64);
                let n1 = c1.min(hi.floor() as i64);
                if n0 > n1 {
                    st.live = false;
                    return;
                }
                st.vals[reg as usize] = AbsVal::Int { lo: n0, hi: n1 };
            }
            AbsVal::IdxComp { comp, off_lo, off_hi } => {
                // Value = comp + off with comp >= 0: a float upper
                // bound never tightens the (unknown) component, but a
                // lower bound of `off` below `lo - comp_max` is not
                // recoverable either — leave offsets alone, they only
                // feed gather proofs where the launch check re-derives
                // the component bound.
                let _ = (comp, off_lo, off_hi);
            }
            _ => {}
        }
    }

    // -- transfer functions ------------------------------------------------

    fn set(&mut self, st: &mut State, dst: u32, v: AbsVal) {
        st.vals[dst as usize] = v;
        st.assigned[dst as usize] = true;
        st.gens[dst as usize] = self.fresh();
    }

    fn check_reads(&mut self, st: &State, inst: &Inst) {
        let mut reads = std::mem::take(&mut self.scratch_reads);
        reads.clear();
        inst.reads(&mut reads);
        for r in &reads {
            if !st.assigned[*r as usize] {
                self.def_ok = false;
            }
        }
        self.scratch_reads = reads;
    }

    fn record_div(&mut self, pc: usize, denom: AbsVal) {
        let j = match self.div_obs.remove(&pc) {
            Some(prev) => self.join_val(prev, denom),
            None => denom,
        };
        self.div_obs.insert(pc, j);
    }

    fn step(&mut self, st: &mut State, pc: usize, record: bool) {
        if !st.live {
            return;
        }
        let inst = self.k.insts[pc].clone();
        if record {
            self.reach[pc] = true;
            self.check_reads(st, &inst);
            if let Some((bpc, operand)) = self.reduce_site {
                if pc == bpc {
                    let v = st.vals[operand as usize];
                    self.reduce_obs = Some(match self.reduce_obs.take() {
                        Some(prev) => self.join_val(prev, v),
                        None => v,
                    });
                }
            }
        }
        match inst {
            Inst::Nop | Inst::Jump { .. } | Inst::BranchIfFalse { .. } => {}
            Inst::Ret => st.live = false,
            Inst::Fail { .. } => st.live = false,
            Inst::Const { dst, v } => {
                let av = abs_const(v);
                self.set(st, dst, av);
            }
            Inst::Mov { dst, src } => {
                // Copy the generation too: predicates survive moves.
                let (v, g, a) = (
                    st.vals[src as usize],
                    st.gens[src as usize],
                    st.assigned[src as usize],
                );
                st.vals[dst as usize] = v;
                st.gens[dst as usize] = g;
                st.assigned[dst as usize] = a;
            }
            Inst::DeclInit { dst, src, ty } => {
                let v = abs_coerce(st.vals[src as usize], ty);
                self.set(st, dst, v);
            }
            Inst::AssignLocal { dst, op, src } => {
                let cur = st.vals[dst as usize];
                let rhs = st.vals[src as usize];
                if record && matches!(op, AssignOp::DivAssign) {
                    self.record_div(pc, rhs);
                }
                let v = self.abs_assign(cur, op, rhs);
                self.set(st, dst, v);
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                let a = st.vals[lhs as usize];
                let b = st.vals[rhs as usize];
                if record && matches!(op, BinOp::Div | BinOp::Rem) {
                    self.record_div(pc, b);
                }
                let v = self.abs_bin(op, a, b);
                self.set(st, dst, v);
                if matches!(v, AbsVal::Bool(_)) {
                    let pred = if matches!(op, BinOp::And | BinOp::Or) {
                        Pred::Logic {
                            op,
                            lhs,
                            rhs,
                            lhs_gen: st.gens[lhs as usize],
                            rhs_gen: st.gens[rhs as usize],
                        }
                    } else {
                        Pred::Cmp {
                            op,
                            lhs,
                            rhs,
                            lhs_gen: st.gens[lhs as usize],
                            rhs_gen: st.gens[rhs as usize],
                        }
                    };
                    self.preds.insert(st.gens[dst as usize], pred);
                }
            }
            Inst::Un { dst, op, src } => {
                let v = match (op, st.vals[src as usize]) {
                    (UnOp::Not, AbsVal::Bool(b)) => AbsVal::Bool(b.map(|x| !x)),
                    (UnOp::Not, _) => AbsVal::Bool(None),
                    (UnOp::Neg, AbsVal::Int { lo, hi }) => mk_int(-hi, -lo),
                    (UnOp::Neg, x) => match x.as_flt() {
                        Some((lo, hi, nan)) => mk_flt(-hi, -lo, nan),
                        None => AbsVal::Top,
                    },
                };
                self.set(st, dst, v);
                if let (UnOp::Not, g) = (op, st.gens[src as usize]) {
                    let pred = Pred::Not { src, src_gen: g };
                    self.preds.insert(st.gens[dst as usize], pred);
                }
            }
            Inst::CastInt { dst, src } => {
                let v = match st.vals[src as usize] {
                    AbsVal::Int { lo, hi } => AbsVal::Int { lo, hi },
                    x => match x.as_flt() {
                        Some((lo, hi, nan)) => {
                            // `f as i32`: truncation toward zero,
                            // saturating, NaN -> 0. Monotone, so
                            // endpoint conversion is sound.
                            let mut l = lo as i32 as i64;
                            let mut h = hi as i32 as i64;
                            if nan {
                                l = l.min(0);
                                h = h.max(0);
                            }
                            AbsVal::Int { lo: l, hi: h }
                        }
                        None => AbsVal::int_full(),
                    },
                };
                self.set(st, dst, v);
            }
            Inst::Construct { dst, width, args } => {
                let v = if width == 1 && args.len() == 1 {
                    match st.vals[args[0] as usize].as_flt() {
                        Some((lo, hi, nan)) => mk_flt(lo, hi, nan),
                        None => AbsVal::Top,
                    }
                } else {
                    AbsVal::Top
                };
                self.set(st, dst, v);
            }
            Inst::Swizzle { dst, src, sel } => {
                let v = match (st.vals[src as usize], sel.as_str()) {
                    (AbsVal::IdxVec, "x") => AbsVal::IdxComp {
                        comp: 0,
                        off_lo: 0,
                        off_hi: 0,
                    },
                    (AbsVal::IdxVec, "y") => AbsVal::IdxComp {
                        comp: 1,
                        off_lo: 0,
                        off_hi: 0,
                    },
                    (AbsVal::IdxVec, "xy") => AbsVal::IdxVec,
                    (x @ (AbsVal::Flt { .. } | AbsVal::IdxComp { .. }), "x") => x,
                    (_, s) if s.len() == 1 => AbsVal::flt_top(),
                    _ => AbsVal::Top,
                };
                self.set(st, dst, v);
            }
            Inst::SwizzleStore { dst, op, src, .. } => {
                if record && matches!(op, AssignOp::DivAssign) {
                    self.record_div(pc, st.vals[src as usize]);
                }
                self.set(st, dst, AbsVal::Top);
            }
            Inst::Builtin { dst, which, args } => {
                let vals: Vec<AbsVal> = args.iter().map(|r| st.vals[*r as usize]).collect();
                let v = abs_builtin(BUILTINS[which as usize].name, &vals);
                self.set(st, dst, v);
            }
            Inst::Select { dst, cond, a, b } => {
                let v = match st.vals[cond as usize].as_bool() {
                    Some(Some(true)) => st.vals[a as usize],
                    Some(Some(false)) => st.vals[b as usize],
                    _ => {
                        let (x, y) = (st.vals[a as usize], st.vals[b as usize]);
                        self.join_val(x, y)
                    }
                };
                self.set(st, dst, v);
            }
            Inst::ReadElem { dst, param } => {
                let v = abs_stream_elem(self.k.params[param as usize].ty);
                self.set(st, dst, v);
            }
            Inst::ReadScalar { dst, param } => {
                let ty = self.k.params[param as usize].ty;
                let v = match (ty.scalar, ty.width) {
                    (ScalarKind::Float, 1) => AbsVal::flt_top(),
                    (ScalarKind::Int, _) => AbsVal::int_full(),
                    (ScalarKind::Bool, _) => AbsVal::Bool(None),
                    _ => AbsVal::Top,
                };
                self.set(st, dst, v);
            }
            Inst::ReadOut { dst, out } => {
                let pi = self.k.outputs[out as usize];
                let v = abs_stream_elem(self.k.params[pi as usize].ty);
                self.set(st, dst, v);
            }
            Inst::WriteOut { op, src, .. } => {
                if record && matches!(op, AssignOp::DivAssign) {
                    self.record_div(pc, st.vals[src as usize]);
                }
            }
            Inst::Gather { dst, param, idx, .. } => {
                if record {
                    let dims: Vec<DimObs> = idx.iter().map(|r| dim_obs(st.vals[*r as usize])).collect();
                    let joined = match self.gather_obs.remove(&pc) {
                        Some(prev) => prev.into_iter().zip(dims).map(|(a, b)| join_dim(a, b)).collect(),
                        None => dims,
                    };
                    self.gather_obs.insert(pc, joined);
                }
                let v = abs_stream_elem(self.k.params[param as usize].ty);
                self.set(st, dst, v);
            }
            Inst::Indexof { dst, param } => {
                let v = if matches!(self.k.params[param as usize].kind, ParamKind::OutStream) {
                    // `indexof(out)` is `indexof_pos` on every backend:
                    // components bounded by the launch domain.
                    AbsVal::IdxVec
                } else {
                    // Input-stream indexof resamples over the stream's
                    // *own* shape — unknown statically.
                    AbsVal::Top
                };
                self.set(st, dst, v);
            }
        }
    }

    fn abs_assign(&mut self, cur: AbsVal, op: AssignOp, rhs: AbsVal) -> AbsVal {
        use AbsVal::*;
        match op {
            AssignOp::Assign => match (cur, rhs) {
                // Unknown-width current value: may broadcast.
                (Top, _) => Top,
                (IdxVec, IdxVec) => IdxVec,
                (IdxVec, _) => Top,
                // Float current + int rhs promotes.
                (Flt { .. } | IdxComp { .. }, Int { lo, hi }) => mk_flt(lo as f32, hi as f32, false),
                (_, r) => r,
            },
            AssignOp::AddAssign => self.abs_bin(BinOp::Add, cur, rhs),
            AssignOp::SubAssign => self.abs_bin(BinOp::Sub, cur, rhs),
            AssignOp::MulAssign => self.abs_bin(BinOp::Mul, cur, rhs),
            AssignOp::DivAssign => self.abs_bin(BinOp::Div, cur, rhs),
        }
    }

    fn abs_bin(&mut self, op: BinOp, a: AbsVal, b: AbsVal) -> AbsVal {
        use AbsVal::*;
        // Pure int arithmetic stays integral (wrapping).
        if let (Int { lo: a0, hi: a1 }, Int { lo: b0, hi: b1 }) = (a, b) {
            return abs_int_bin(op, (a0, a1), (b0, b1));
        }
        if let (Bool(x), Bool(y)) = (a, b) {
            return match op {
                BinOp::And => Bool(match (x, y) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                }),
                BinOp::Or => Bool(match (x, y) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                }),
                BinOp::Eq => Bool(x.zip(y).map(|(p, q)| p == q)),
                BinOp::Ne => Bool(x.zip(y).map(|(p, q)| p != q)),
                _ => Top, // runtime error path
            };
        }
        // `indexof`-relative offset arithmetic: component plus an exact
        // small integer constant stays symbolic (the key gather shape).
        if matches!(op, BinOp::Add | BinOp::Sub) {
            let shifted = match (a, b, op) {
                (IdxComp { comp, off_lo, off_hi }, other, _) => int_singleton(other).map(|c| {
                    let c = if matches!(op, BinOp::Sub) { -c } else { c };
                    (comp, off_lo + c, off_hi + c)
                }),
                (other, IdxComp { comp, off_lo, off_hi }, BinOp::Add) => {
                    int_singleton(other).map(|c| (comp, off_lo + c, off_hi + c))
                }
                _ => None,
            };
            if let Some((comp, lo, hi)) = shifted {
                if lo.abs() <= 1 << 20 && hi.abs() <= 1 << 20 {
                    return IdxComp {
                        comp,
                        off_lo: lo,
                        off_hi: hi,
                    };
                }
            }
        }
        // Everything else: promote to float intervals.
        let (Some((a0, a1, an)), Some((b0, b1, bn))) = (a.as_flt(), b.as_flt()) else {
            return if op.is_comparison() { Bool(None) } else { Top };
        };
        if op.is_comparison() {
            return abs_flt_cmp(op, (a0, a1, an), (b0, b1, bn));
        }
        match op {
            BinOp::Add => corners(|x, y| x + y, (a0, a1), (b0, b1), an || bn),
            BinOp::Sub => corners(|x, y| x - y, (a0, a1), (b0, b1), an || bn),
            BinOp::Mul => corners(|x, y| x * y, (a0, a1), (b0, b1), an || bn),
            BinOp::Div => {
                if b0 <= 0.0 && b1 >= 0.0 {
                    AbsVal::flt_top()
                } else {
                    corners(|x, y| x / y, (a0, a1), (b0, b1), an || bn)
                }
            }
            BinOp::Rem => AbsVal::flt_top(),
            _ => Top,
        }
    }

    // -- region execution --------------------------------------------------

    fn exec_nodes(&mut self, st: &mut State, nodes: &[Node], record: bool) {
        for n in nodes {
            if !st.live {
                return;
            }
            match n {
                Node::Seq { start, end } => {
                    for pc in *start..*end {
                        if !st.live {
                            return;
                        }
                        self.step(st, pc as usize, record);
                    }
                }
                Node::If {
                    cond,
                    branch_at,
                    then,
                    jump_at,
                    els,
                } => {
                    if record {
                        self.reach[*branch_at as usize] = true;
                    }
                    let known = st.vals[*cond as usize].as_bool().flatten();
                    match known {
                        Some(true) => {
                            self.refine_branch(st, *cond, true);
                            self.exec_nodes(st, then, record);
                            if record && st.live {
                                if let Some(j) = jump_at {
                                    self.reach[*j as usize] = true;
                                }
                            }
                        }
                        Some(false) => {
                            self.refine_branch(st, *cond, false);
                            self.exec_nodes(st, els, record);
                        }
                        None => {
                            let mut then_st = st.clone();
                            self.refine_branch(&mut then_st, *cond, true);
                            if then_st.live {
                                self.exec_nodes(&mut then_st, then, record);
                                if record && then_st.live {
                                    if let Some(j) = jump_at {
                                        self.reach[*j as usize] = true;
                                    }
                                }
                            }
                            let mut els_st = std::mem::replace(st, then_st);
                            self.refine_branch(&mut els_st, *cond, false);
                            if els_st.live {
                                self.exec_nodes(&mut els_st, els, record);
                            }
                            let joined = self.join_states(
                                std::mem::replace(
                                    st,
                                    State {
                                        vals: Vec::new(),
                                        gens: Vec::new(),
                                        assigned: Vec::new(),
                                        live: false,
                                    },
                                ),
                                els_st,
                            );
                            *st = joined;
                        }
                    }
                }
                Node::Loop(l) => self.exec_loop(st, l, record),
            }
        }
    }

    fn exec_loop(&mut self, st: &mut State, l: &LoopNode, record: bool) {
        let entry = st.clone();
        // Loop-bound-aware widening: small counted loops converge
        // exactly before widening kicks in.
        let widen_after = match l.bound.trips() {
            Some(t) if t <= 8 => t + 1,
            _ => WIDEN_AFTER,
        };
        let body_first = matches!(l.kind, LoopKind::DoWhile);
        // Fixpoint on the loop-head state (the state at the top of the
        // first region in instruction order).
        let mut head = entry.clone();
        let mut round = 0u64;
        loop {
            let mut s = head.clone();
            if body_first {
                self.exec_nodes(&mut s, &l.body, false);
                if s.live {
                    self.exec_nodes(&mut s, &l.header, false);
                }
            } else {
                self.exec_nodes(&mut s, &l.header, false);
            }
            let mut again = s.clone();
            if again.live {
                self.refine_branch(&mut again, l.cond, true);
            }
            if !body_first && again.live {
                self.exec_nodes(&mut again, &l.body, false);
            }
            let mut new_head = {
                let e = entry.clone();
                self.join_states(e, again)
            };
            round += 1;
            if round >= widen_after {
                new_head = self.widen_states(&head, new_head);
            }
            if new_head.same_modulo_gens(&head) {
                break;
            }
            head = new_head;
            if round > MAX_ROUNDS {
                // Defensive backstop: force everything written in the
                // loop to top and stop.
                for v in &mut head.vals {
                    if *v != AbsVal::Bot {
                        *v = AbsVal::Top;
                    }
                }
                break;
            }
        }
        // Final (optionally recorded) pass with the stable head state,
        // which over-approximates every concrete iteration.
        let mut s = head;
        if body_first {
            self.exec_nodes(&mut s, &l.body, record);
            if s.live {
                self.exec_nodes(&mut s, &l.header, record);
            }
        } else {
            self.exec_nodes(&mut s, &l.header, record);
        }
        if record && s.live {
            self.reach[l.exit_at as usize] = true;
        }
        if !body_first {
            let mut body_st = s.clone();
            self.refine_branch(&mut body_st, l.cond, true);
            if body_st.live {
                self.exec_nodes(&mut body_st, &l.body, record);
                if record && body_st.live {
                    self.reach[l.back_at as usize] = true;
                }
            }
        } else if record && s.live {
            let mut again = s.clone();
            self.refine_branch(&mut again, l.cond, true);
            if again.live {
                self.reach[l.back_at as usize] = true;
            }
        }
        self.refine_branch(&mut s, l.cond, false);
        *st = s;
    }
}

// ---------------------------------------------------------------------------
// Free transfer helpers
// ---------------------------------------------------------------------------

fn abs_const(v: Value) -> AbsVal {
    match v {
        Value::Int(i) => AbsVal::Int {
            lo: i64::from(i),
            hi: i64::from(i),
        },
        Value::Float(f) => mk_flt(f, f, f.is_nan()),
        Value::Bool(b) => AbsVal::Bool(Some(b)),
        _ => AbsVal::Top,
    }
}

/// Stream/output elements are raw `f32` data on every backend — any
/// finite or non-finite float, but kind-stable.
fn abs_stream_elem(ty: Type) -> AbsVal {
    if ty.scalar == ScalarKind::Float && ty.width == 1 {
        AbsVal::flt_top()
    } else {
        AbsVal::Top
    }
}

fn abs_coerce(v: AbsVal, ty: Type) -> AbsVal {
    if ty.width > 1 {
        // Vectors pass through `coerce_to` unchanged; scalars broadcast.
        return if matches!(v, AbsVal::IdxVec) && ty.width == 2 {
            v
        } else {
            AbsVal::Top
        };
    }
    match (v, ty.scalar) {
        (AbsVal::Int { lo, hi }, ScalarKind::Float) => mk_flt(lo as f32, hi as f32, false),
        _ => v,
    }
}

fn int_singleton(v: AbsVal) -> Option<i64> {
    match v {
        AbsVal::Int { lo, hi } if lo == hi => Some(lo),
        // Exact integral float constant (e.g. `p.x + 1.0`).
        AbsVal::Flt { lo, hi, nan: false }
            if lo == hi && lo.fract() == 0.0 && lo.abs() <= (1 << 20) as f32 =>
        {
            Some(lo as i64)
        }
        _ => None,
    }
}

fn abs_int_bin(op: BinOp, a: (i64, i64), b: (i64, i64)) -> AbsVal {
    use BinOp::*;
    let (a0, a1) = a;
    let (b0, b1) = b;
    match op {
        Add => mk_int(a0 + b0, a1 + b1),
        Sub => mk_int(a0 - b1, a1 - b0),
        Mul => {
            let cs = [a0 * b0, a0 * b1, a1 * b0, a1 * b1];
            mk_int(*cs.iter().min().unwrap(), *cs.iter().max().unwrap())
        }
        Div => {
            // i32::MIN / -1 wraps; otherwise truncating division, with
            // division by zero defined as 0.
            if a0 == i64::from(i32::MIN) && b0 <= -1 && b1 >= -1 {
                return AbsVal::int_full();
            }
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            if b0 <= 0 && b1 >= 0 {
                lo = 0;
                hi = 0;
            }
            for d in [b0, b1, -1, 1] {
                if d == 0 || d < b0 || d > b1 {
                    continue;
                }
                for n in [a0, a1] {
                    let q = n / d;
                    lo = lo.min(q);
                    hi = hi.max(q);
                }
            }
            if lo > hi {
                AbsVal::Int { lo: 0, hi: 0 } // only d = 0 possible
            } else {
                mk_int(lo, hi)
            }
        }
        Rem => {
            let m = b0.unsigned_abs().max(b1.unsigned_abs());
            if m == 0 {
                return AbsVal::Int { lo: 0, hi: 0 };
            }
            let m = (m - 1).min(i64::MAX as u64) as i64;
            // Truncating remainder: the sign follows the numerator and
            // |r| <= min(m, |n|), so a numerator endpoint only tightens
            // the side whose sign it shares — a positive `a0` must NOT
            // raise the lower bound (12 % 3 == 0), and a negative `a1`
            // must not lower the upper one. Both bounds admit 0, which
            // also covers rem-by-zero (defined as 0) and the wrapping
            // i32::MIN % -1 case.
            let lo = if a0 < 0 { (-m).max(a0) } else { 0 };
            let hi = if a1 > 0 { m.min(a1) } else { 0 };
            debug_assert!(lo <= hi, "Rem transfer produced crossed bounds");
            mk_int(lo, hi)
        }
        Lt => abs_cmp_known(a1 < b0, a0 >= b1),
        Le => abs_cmp_known(a1 <= b0, a0 > b1),
        Gt => abs_cmp_known(a0 > b1, a1 <= b0),
        Ge => abs_cmp_known(a0 >= b1, a1 < b0),
        Eq => abs_cmp_known(a0 == a1 && b0 == b1 && a0 == b0, a1 < b0 || a0 > b1),
        Ne => abs_cmp_known(a1 < b0 || a0 > b1, a0 == a1 && b0 == b1 && a0 == b0),
        And | Or => AbsVal::Top, // runtime error path
    }
}

fn abs_cmp_known(always: bool, never: bool) -> AbsVal {
    AbsVal::Bool(if always {
        Some(true)
    } else if never {
        Some(false)
    } else {
        None
    })
}

fn abs_flt_cmp(op: BinOp, a: (f32, f32, bool), b: (f32, f32, bool)) -> AbsVal {
    let (a0, a1, an) = a;
    let (b0, b1, bn) = b;
    let no_nan = !an && !bn;
    use BinOp::*;
    // "Always" needs NaN excluded (NaN comparisons are false except Ne,
    // where NaN makes them true); "never" must hold for NaN too.
    let (always, never) = match op {
        Lt => (no_nan && a1 < b0, a0 >= b1),
        Le => (no_nan && a1 <= b0, a0 > b1),
        Gt => (no_nan && a0 > b1, a1 <= b0),
        Ge => (no_nan && a0 >= b1, a1 < b0),
        Eq => (no_nan && a0 == a1 && b0 == b1 && a0 == b0, a1 < b0 || a0 > b1),
        Ne => (a1 < b0 || a0 > b1, no_nan && a0 == a1 && b0 == b1 && a0 == b0),
        _ => (false, false),
    };
    abs_cmp_known(always, never)
}

/// The comparison that holds when `op` evaluated false (modulo NaN,
/// handled by the caller).
fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        other => other,
    }
}

/// Integer-pair comparison refinement (exact i32 semantics).
#[allow(clippy::type_complexity)]
fn refine_int_pair(op: BinOp, a: (i64, i64), b: (i64, i64)) -> (Option<(i64, i64)>, Option<(i64, i64)>) {
    use BinOp::*;
    let (a0, a1) = a;
    let (b0, b1) = b;
    match op {
        Lt => (Some((a0, a1.min(b1 - 1))), Some((b0.max(a0 + 1), b1))),
        Le => (Some((a0, a1.min(b1))), Some((b0.max(a0), b1))),
        Gt => (Some((a0.max(b0 + 1), a1)), Some((b0, b1.min(a1 - 1)))),
        Ge => (Some((a0.max(b0), a1)), Some((b0, b1.min(a1)))),
        Eq => {
            let (lo, hi) = (a0.max(b0), a1.min(b1));
            (Some((lo, hi)), Some((lo, hi)))
        }
        _ => (None, None),
    }
}

fn set_refined_int(st: &mut State, reg: u32, range: Option<(i64, i64)>) {
    let Some((lo, hi)) = range else { return };
    if lo > hi {
        st.live = false;
        return;
    }
    if let AbsVal::Int { lo: c0, hi: c1 } = st.vals[reg as usize] {
        let (n0, n1) = (c0.max(lo), c1.min(hi));
        if n0 > n1 {
            st.live = false;
        } else {
            st.vals[reg as usize] = AbsVal::Int { lo: n0, hi: n1 };
        }
    }
}

/// Float-pair comparison refinement (operands compared as `f32`).
#[allow(clippy::type_complexity)]
fn refine_flt_pair(op: BinOp, a: (f32, f32), b: (f32, f32)) -> (Option<(f32, f32)>, Option<(f32, f32)>) {
    use BinOp::*;
    let (a0, a1) = a;
    let (b0, b1) = b;
    match op {
        Lt => (Some((a0, a1.min(next_down(b1)))), Some((b0.max(next_up(a0)), b1))),
        Le => (Some((a0, a1.min(b1))), Some((b0.max(a0), b1))),
        Gt => (Some((a0.max(next_up(b0)), a1)), Some((b0, b1.min(next_down(a1))))),
        Ge => (Some((a0.max(b0), a1)), Some((b0, b1.min(a1)))),
        Eq => {
            let (lo, hi) = (a0.max(b0), a1.min(b1));
            (Some((lo, hi)), Some((lo, hi)))
        }
        _ => (None, None),
    }
}

fn abs_builtin(name: &str, args: &[AbsVal]) -> AbsVal {
    let flt = |i: usize| args.get(i).and_then(|v| v.as_flt());
    let unary_mono = |f: fn(f32) -> f32| {
        flt(0).map_or(AbsVal::Top, |(lo, hi, nan)| {
            mk_flt(f(lo), f(hi), nan || lo.is_infinite() && name == "fract")
        })
    };
    match name {
        "floor" => unary_mono(f32::floor),
        "ceil" => unary_mono(f32::ceil),
        "round" => unary_mono(|x| (x + 0.5).floor()),
        "sqrt" => flt(0).map_or(AbsVal::Top, |(lo, hi, nan)| {
            mk_flt(lo.max(0.0).sqrt(), hi.max(0.0).sqrt(), nan || lo < 0.0)
        }),
        "abs" => flt(0).map_or(AbsVal::Top, |(lo, hi, nan)| {
            let l = if lo <= 0.0 && hi >= 0.0 {
                0.0
            } else {
                lo.abs().min(hi.abs())
            };
            mk_flt(l, lo.abs().max(hi.abs()), nan)
        }),
        "saturate" => flt(0).map_or(AbsVal::Top, |(lo, hi, nan)| {
            // NaN clamps to an unspecified endpoint on GPUs; keep the
            // flag.
            mk_flt(lo.clamp(0.0, 1.0), hi.clamp(0.0, 1.0), nan)
        }),
        "sign" => flt(0).map_or(AbsVal::Top, |(_, _, nan)| mk_flt(-1.0, 1.0, nan)),
        "sin" | "cos" => flt(0).map_or(AbsVal::Top, |(lo, hi, nan)| {
            mk_flt(-1.0, 1.0, nan || lo.is_infinite() || hi.is_infinite())
        }),
        "min" => match (flt(0), flt(1)) {
            (Some(a), Some(b)) => {
                let (lo, hi, nan) = abs_min(a, b);
                mk_flt(lo, hi, nan)
            }
            _ => AbsVal::Top,
        },
        "max" => match (flt(0), flt(1)) {
            (Some(a), Some(b)) => {
                let (lo, hi, nan) = abs_max(a, b);
                mk_flt(lo, hi, nan)
            }
            _ => AbsVal::Top,
        },
        "clamp" => match (flt(0), flt(1), flt(2)) {
            (Some(x), Some(l), Some(h)) => {
                // Runtime clamp is min(max(x, l), h); composing the
                // side-aware transfers lets NaN-free bounds wash a
                // possibly-NaN input out exactly like the runtime does
                // (`max(NaN, l)` selects `l`) — which is what admits
                // `clamp`ed reduce operands to the vectorized fold.
                let (lo, hi, nan) = abs_min(abs_max(x, l), h);
                debug_assert!(lo <= hi, "clamp transfer produced crossed bounds");
                mk_flt(lo, hi, nan)
            }
            _ => AbsVal::Top,
        },
        // Scalar-valued but unmodeled: any float.
        "dot" | "length" | "distance" | "fract" | "exp" | "exp2" | "log" | "log2" | "rsqrt" | "pow"
        | "fmod" | "step" | "atan2" | "tan" | "smoothstep" => AbsVal::flt_top(),
        _ => AbsVal::Top,
    }
}

/// Side-aware transfer for runtime `f32::min`: a NaN argument selects
/// the *other* side, so the result is NaN only when **both** sides may
/// be, and a possibly-NaN side merely widens the result toward the
/// other side's interval instead of poisoning the range.
fn abs_min((a0, a1, an): (f32, f32, bool), (b0, b1, bn): (f32, f32, bool)) -> (f32, f32, bool) {
    let lo = a0.min(b0);
    let mut hi = a1.min(b1);
    if an {
        hi = hi.max(b1); // a NaN -> result is exactly b
    }
    if bn {
        hi = hi.max(a1); // b NaN -> result is exactly a
    }
    (lo, hi, an && bn)
}

/// Side-aware transfer for runtime `f32::max` (mirror of [`abs_min`]).
fn abs_max((a0, a1, an): (f32, f32, bool), (b0, b1, bn): (f32, f32, bool)) -> (f32, f32, bool) {
    let mut lo = a0.max(b0);
    let hi = a1.max(b1);
    if an {
        lo = lo.min(b0);
    }
    if bn {
        lo = lo.min(a0);
    }
    (lo, hi, an && bn)
}

fn dim_obs(v: AbsVal) -> DimObs {
    match v {
        AbsVal::Int { lo, hi } => DimObs::Const { lo, hi },
        AbsVal::Flt { lo, hi, nan } => {
            // Runtime conversion is `(f + 0.5).floor() as i64`
            // (saturating, NaN -> 0) computed in f32 — the `+ 0.5` sum
            // rounds to nearest-even *before* the floor, so the model
            // must add in f32 too (an f64 sum floors a tie like
            // 0.49999997f32 + 0.5 one lower than the runtime). f32
            // addition and floor are monotone, so endpoints are sound;
            // the `as i64` cast keeps the saturation handling.
            let mut l = (lo + 0.5).floor() as i64;
            let mut h = (hi + 0.5).floor() as i64;
            if nan {
                l = l.min(0);
                h = h.max(0);
            }
            DimObs::Const { lo: l, hi: h }
        }
        AbsVal::IdxComp { comp, off_lo, off_hi } => DimObs::Rel {
            comp,
            lo: off_lo,
            hi: off_hi,
        },
        _ => DimObs::Unknown,
    }
}

fn dim_to_proven(d: DimObs) -> Option<ProvenIdx> {
    match d {
        // Saturated endpoints mean "unbounded on that side" — a real
        // range, but useless as a proof (the launch check could never
        // accept it); don't annotate.
        DimObs::Const { lo, hi } if lo > i64::MIN && hi < i64::MAX => Some(ProvenIdx::Const { lo, hi }),
        DimObs::Rel { comp, lo, hi } => Some(ProvenIdx::IndexofRel { comp, lo, hi }),
        _ => None,
    }
}

fn dim_string(d: DimObs) -> String {
    match d {
        DimObs::Const { lo, hi } => format!("{lo}..={hi}"),
        DimObs::Rel { comp, lo, hi } => {
            let c = if comp == 0 { "x" } else { "y" };
            format!("idx.{c}{lo:+}..=idx.{c}{hi:+}")
        }
        DimObs::Unknown => "?".to_owned(),
    }
}

// ---------------------------------------------------------------------------
// Pruned estimate
// ---------------------------------------------------------------------------

fn pruned_nodes(k: &IrKernel, nodes: &[Node], reach: &[bool]) -> Option<u64> {
    let mut total = 0u64;
    for n in nodes {
        let c = match n {
            Node::Seq { start, end } => (*start..*end)
                .filter(|pc| reach[*pc as usize])
                .map(|pc| inst_cost(&k.insts[pc as usize]))
                .sum::<u64>(),
            Node::If {
                branch_at, then, els, ..
            } => {
                if reach[*branch_at as usize] {
                    1 + pruned_nodes(k, then, reach)? + pruned_nodes(k, els, reach)?
                } else {
                    0
                }
            }
            Node::Loop(l) => {
                if !reach[l.exit_at as usize] {
                    0
                } else {
                    let trips = l.bound.trips()?;
                    let per_iter = pruned_nodes(k, &l.header, reach)? + pruned_nodes(k, &l.body, reach)? + 1;
                    trips.checked_mul(per_iter)?
                }
            }
        };
        total = total.checked_add(c)?;
    }
    Some(total)
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Analyzes one kernel. The IR must already pass verification (the
/// compile pipeline runs `check_program` first).
pub fn analyze_kernel(k: &IrKernel) -> KernelOutcome {
    let mut az = Analyzer::new(k);
    let mut st = az.initial_state();
    az.exec_nodes(&mut st, &k.body, true);

    let mut analysis = KernelAnalysis {
        kernel: k.name.clone(),
        def_before_use_ok: az.def_ok,
        type_stable: az.type_stable,
        ..KernelAnalysis::default()
    };
    let mut proven = Vec::new();

    // Gather facts, BA013, and elision annotations.
    let mut gather_pcs: Vec<usize> = az.gather_obs.keys().copied().collect();
    gather_pcs.sort_unstable();
    for pc in gather_pcs {
        let dims = &az.gather_obs[&pc];
        let Inst::Gather { param, .. } = &k.insts[pc] else {
            continue;
        };
        let pname = &k.params[*param as usize].name;
        analysis.total_gathers += 1;
        let rendered: Vec<String> = dims.iter().map(|d| dim_string(*d)).collect();
        analysis.facts.push(InstFact {
            pc: pc as u32,
            span: k.spans[pc],
            fact: format!("gather `{pname}` in [{}]", rendered.join(", ")),
        });
        for (d, obs) in dims.iter().enumerate() {
            if let DimObs::Const { lo, hi } = obs {
                if *hi < 0 {
                    analysis.faults.push(Finding {
                        rule: RuleId::ProvableGatherBounds,
                        severity: Severity::Error,
                        message: format!(
                            "gather `{pname}` dimension {d} index is provably negative \
                             ([{lo}, {hi}]) — out of bounds for every stream shape"
                        ),
                        span: k.spans[pc],
                    });
                }
            }
        }
        if let Some(p) = dims.iter().map(|d| dim_to_proven(*d)).collect::<Option<Vec<_>>>() {
            analysis.proven_gathers += 1;
            proven.push((pc, p));
        }
    }

    // BA014: division whose denominator is exactly zero on every path
    // that reaches it.
    let mut div_pcs: Vec<usize> = az.div_obs.keys().copied().collect();
    div_pcs.sort_unstable();
    for pc in div_pcs {
        let zero = match az.div_obs[&pc] {
            AbsVal::Int { lo, hi } => lo == 0 && hi == 0,
            AbsVal::Flt { lo, hi, nan } => lo == 0.0 && hi == 0.0 && !nan,
            _ => false,
        };
        if zero {
            analysis.faults.push(Finding {
                rule: RuleId::ProvableDivByZero,
                severity: Severity::Error,
                message: "division denominator is provably zero on every execution".to_owned(),
                span: k.spans[pc],
            });
        }
    }

    // Unreachable instructions (skip trailing padding: `reach` covers
    // exactly `insts`).
    let unreachable: Vec<bool> = az.reach.iter().map(|r| !r).collect();
    for (pc, dead) in unreachable.iter().enumerate() {
        if *dead && !matches!(k.insts[pc], Inst::Nop) {
            analysis.unreachable_insts += 1;
            analysis.facts.push(InstFact {
                pc: pc as u32,
                span: k.spans[pc],
                fact: "unreachable".to_owned(),
            });
        }
    }
    analysis.facts.sort_by_key(|f| f.pc);

    analysis.pruned_estimate = pruned_nodes(k, &k.body, &az.reach);

    // The vectorized-reduce semantic fact: the combine operand's
    // joined range over every recorded execution of the combine.
    let reduce_combine = az.reduce_obs.and_then(|v| match v {
        AbsVal::Flt { lo, hi, nan } => Some(brook_ir::ReduceCombineFact {
            lo,
            hi,
            nan_free: !nan,
        }),
        _ => None,
    });
    if let (Some((bpc, _)), Some(fact)) = (az.reduce_site, reduce_combine.as_ref()) {
        analysis.facts.push(InstFact {
            pc: bpc as u32,
            span: k.spans[bpc],
            fact: format!(
                "reduce combine operand in [{}, {}]{}",
                fact.lo,
                fact.hi,
                if fact.nan_free {
                    ", NaN-free"
                } else {
                    ", may be NaN"
                }
            ),
        });
        analysis.facts.sort_by_key(|f| f.pc);
    }

    KernelOutcome {
        analysis,
        facts: KernelFacts {
            def_before_use_ok: az.def_ok,
            unreachable,
            reduce_combine,
        },
        proven,
    }
}

/// Analyzes every kernel of a program (no mutation).
pub fn analyze_program(ir: &IrProgram) -> Vec<KernelOutcome> {
    ir.kernels.iter().map(analyze_kernel).collect()
}

/// Analyzes every kernel and, when `elide` is set, attaches the proven
/// gather-index ranges to [`Inst::Gather`] so executors can skip the
/// per-dimension clamp after the launch-time shape check. Returns the
/// report plus per-kernel planner facts (index-aligned with
/// `ir.kernels`).
pub fn analyze_and_annotate_program(ir: &mut IrProgram, elide: bool) -> (AnalysisReport, Vec<KernelFacts>) {
    let outcomes = analyze_program(ir);
    let mut report = AnalysisReport::default();
    let mut facts = Vec::with_capacity(outcomes.len());
    for (k, out) in ir.kernels.iter_mut().zip(outcomes) {
        if elide {
            for (pc, p) in &out.proven {
                if let Inst::Gather { proven, .. } = &mut k.insts[*pc] {
                    *proven = Some(p.clone());
                }
            }
        }
        report.kernels.push(out.analysis);
        facts.push(out.facts);
    }
    (report, facts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower(src: &str) -> IrProgram {
        let checked = brook_lang::parse_and_check(src).expect("source must type-check");
        let (ir, errs) = brook_ir::lower::lower_program(&checked);
        assert!(errs.is_empty(), "lowering failed: {errs:?}");
        ir
    }

    fn outcome(src: &str, kernel: &str) -> KernelOutcome {
        let ir = lower(src);
        let k = ir.kernel(kernel).expect("kernel must exist");
        analyze_kernel(k)
    }

    #[test]
    fn counted_loop_gather_is_proven() {
        let out = outcome(
            "kernel void f(float a[], out float o<>) {\n\
             int i;\n\
             float s = 0.0;\n\
             for (i = 0; i < 16; i++) { s += a[float(i)]; }\n\
             o = s;\n\
             }",
            "f",
        );
        assert_eq!(out.analysis.total_gathers, 1);
        assert_eq!(out.analysis.proven_gathers, 1);
        let (_, p) = &out.proven[0];
        assert_eq!(p.as_slice(), &[ProvenIdx::Const { lo: 0, hi: 15 }]);
        assert!(out.analysis.faults.is_empty());
        assert!(out.facts.def_before_use_ok);
    }

    #[test]
    fn indexof_gather_is_relative() {
        let out = outcome(
            "kernel void f(float img[][], out float o<>) {\n\
             float2 p = indexof(o);\n\
             o = img[p.y - 1.0][p.x + 1.0];\n\
             }",
            "f",
        );
        assert_eq!(out.analysis.proven_gathers, 1);
        let (_, p) = &out.proven[0];
        assert_eq!(
            p.as_slice(),
            &[
                ProvenIdx::IndexofRel {
                    comp: 1,
                    lo: -1,
                    hi: -1
                },
                ProvenIdx::IndexofRel {
                    comp: 0,
                    lo: 1,
                    hi: 1
                },
            ]
        );
    }

    #[test]
    fn provably_negative_gather_is_a_fault() {
        let out = outcome(
            "kernel void f(float a[], out float o<>) {\n\
             o = a[-3.0];\n\
             }",
            "f",
        );
        assert_eq!(out.analysis.faults.len(), 1);
        assert_eq!(out.analysis.faults[0].rule, RuleId::ProvableGatherBounds);
        assert_eq!(out.analysis.faults[0].span.line, 2);
    }

    #[test]
    fn provable_div_by_zero_is_a_fault() {
        let out = outcome(
            "kernel void f(float a<>, out float o<>) {\n\
             float z = 0.0;\n\
             o = a / z;\n\
             }",
            "f",
        );
        assert!(out
            .analysis
            .faults
            .iter()
            .any(|f| f.rule == RuleId::ProvableDivByZero && f.span.line == 3));
    }

    #[test]
    fn runtime_dependent_div_is_not_a_fault() {
        let out = outcome(
            "kernel void f(float a<>, float b<>, out float o<>) {\n\
             o = a / b;\n\
             }",
            "f",
        );
        assert!(out.analysis.faults.is_empty());
    }

    #[test]
    fn const_false_branch_is_unreachable_and_prunes_estimate() {
        let src = "kernel void f(float a<>, out float o<>) {\n\
             float s = a;\n\
             if (1.0 < 0.0) { s = s * 2.0; s = s + 1.0; s = s * 3.0; }\n\
             o = s;\n\
             }";
        let out = outcome(src, "f");
        assert!(out.analysis.unreachable_insts > 0);
        assert!(out
            .analysis
            .facts
            .iter()
            .any(|f| f.fact == "unreachable" && f.span.line == 3));
        // The pruned estimate must drop below the unpruned IR walk.
        let ir = lower(src);
        let k = ir.kernel("f").unwrap();
        let full: u64 = k.insts.iter().map(inst_cost).sum();
        assert!(out.analysis.pruned_estimate.unwrap() < full);
    }

    #[test]
    fn runtime_index_stays_unproven_without_fault() {
        let out = outcome(
            "kernel void f(float v[], float idx<>, out float o<>) {\n\
             o = v[idx];\n\
             }",
            "f",
        );
        assert_eq!(out.analysis.total_gathers, 1);
        assert_eq!(out.analysis.proven_gathers, 0);
        assert!(out.analysis.faults.is_empty());
    }

    #[test]
    fn branch_bounded_index_is_proven() {
        let out = outcome(
            "kernel void f(float v[], float x<>, out float o<>) {\n\
             float i = 0.0;\n\
             if (x > 0.5) { i = 3.0; } else { i = 7.0; }\n\
             o = v[i];\n\
             }",
            "f",
        );
        assert_eq!(out.analysis.proven_gathers, 1);
        let (_, p) = &out.proven[0];
        assert_eq!(p.as_slice(), &[ProvenIdx::Const { lo: 3, hi: 7 }]);
    }

    #[test]
    fn annotate_writes_proofs_only_when_elide_is_on() {
        let src = "kernel void f(float a[], out float o<>) {\n\
             int i;\n\
             float s = 0.0;\n\
             for (i = 0; i < 8; i++) { s += a[float(i)]; }\n\
             o = s;\n\
             }";
        let mut ir = lower(src);
        let (_, facts) = analyze_and_annotate_program(&mut ir, false);
        assert!(ir.kernels[0]
            .insts
            .iter()
            .all(|i| !matches!(i, Inst::Gather { proven: Some(_), .. })));
        assert_eq!(facts.len(), 1);
        let (report, _) = analyze_and_annotate_program(&mut ir, true);
        assert!(ir.kernels[0]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Gather { proven: Some(_), .. })));
        assert_eq!(report.kernels[0].proven_gathers, 1);
    }

    #[test]
    fn rem_transfer_is_sound_for_wide_and_negative_numerators() {
        // Numerator strictly above |den| - 1: 10..=12 % 3 hits {0, 1, 2},
        // so the numerator's lower endpoint must not raise the result's
        // lower bound.
        assert_eq!(
            abs_int_bin(BinOp::Rem, (10, 12), (3, 3)),
            AbsVal::Int { lo: 0, hi: 2 }
        );
        // Strictly negative numerators: -12..=-10 % 3 hits {0, -1, -2} —
        // a claimed hi below 0 used to fire a false BA013 on valid
        // kernels.
        assert_eq!(
            abs_int_bin(BinOp::Rem, (-12, -10), (3, 3)),
            AbsVal::Int { lo: -2, hi: 0 }
        );
        // Mixed-sign numerator spanning zero.
        assert_eq!(
            abs_int_bin(BinOp::Rem, (-5, 12), (3, 3)),
            AbsVal::Int { lo: -2, hi: 2 }
        );
        // Numerator magnitude below the divisor still tightens both
        // sides (1..=2 % 5 == identity).
        assert_eq!(
            abs_int_bin(BinOp::Rem, (1, 2), (5, 5)),
            AbsVal::Int { lo: 0, hi: 2 }
        );
        // i32::MIN % -1 wraps to 0 at runtime; 0 must stay inside.
        assert_eq!(
            abs_int_bin(BinOp::Rem, (i64::from(i32::MIN), i64::from(i32::MIN)), (-1, -1)),
            AbsVal::Int { lo: 0, hi: 0 }
        );
    }

    #[test]
    fn rem_derived_gather_keeps_clamp_without_fault() {
        // i in 10..=12: i % 3 - 2 is in [-2, 0], reachable at runtime.
        // The unsound Rem transfer used to claim [0, 8] here — eliding
        // the clamp on an index that is negative at runtime.
        let out = outcome(
            "kernel void f(float v[], out float o<>) {\n\
             int i;\n\
             float s = 0.0;\n\
             for (i = 10; i < 13; i++) { s += v[float(i % 3 - 2)]; }\n\
             o = s;\n\
             }",
            "f",
        );
        assert!(out.analysis.faults.is_empty());
        let (_, p) = &out.proven[0];
        // The annotated range must cover the negative indices so the
        // launch-time check (`lo >= 0`) keeps the clamp.
        assert_eq!(p.as_slice(), &[ProvenIdx::Const { lo: -2, hi: 0 }]);
    }

    #[test]
    fn clamp_transfer_uses_matching_endpoints_of_interval_bounds() {
        let f = |lo: f32, hi: f32| AbsVal::Flt { lo, hi, nan: false };
        // clamp(-5, lo in [0,2], 10) lands anywhere in [0, 2]: the
        // result's hi must come from the lo-bound's *upper* endpoint.
        assert_eq!(
            abs_builtin("clamp", &[f(-5.0, -5.0), f(0.0, 2.0), f(10.0, 10.0)]),
            f(0.0, 2.0)
        );
        // clamp(20, 0, hi in [5,8]) lands anywhere in [5, 8]: the
        // result's lo must come from the hi-bound's *lower* endpoint.
        assert_eq!(
            abs_builtin("clamp", &[f(20.0, 20.0), f(0.0, 0.0), f(5.0, 8.0)]),
            f(5.0, 8.0)
        );
        // Constant bounds stay exact.
        assert_eq!(
            abs_builtin("clamp", &[f(-4.0, 4.0), f(0.0, 0.0), f(1.0, 1.0)]),
            f(0.0, 1.0)
        );
    }

    #[test]
    fn dim_obs_models_runtime_f32_index_conversion() {
        // 0.49999997f32 + 0.5 is a round-to-even tie in f32 that rounds
        // to 1.0 (an f64 model floors it to 0) — the model must match
        // the runtime's f32 arithmetic exactly.
        let f = 0.499_999_97_f32;
        assert_eq!((f + 0.5).floor() as i64, 1, "runtime conversion");
        assert_eq!(
            dim_obs(AbsVal::Flt {
                lo: f,
                hi: f,
                nan: false
            }),
            DimObs::Const { lo: 1, hi: 1 }
        );
    }

    #[test]
    fn nan_possible_comparison_keeps_branches_live() {
        // `a` is stream data: may be NaN, so neither branch is provable
        // and nothing is unreachable.
        let out = outcome(
            "kernel void f(float a<>, out float o<>) {\n\
             float s = 0.0;\n\
             if (a < 1.0) { s = 1.0; } else { s = 2.0; }\n\
             o = s;\n\
             }",
            "f",
        );
        assert_eq!(out.analysis.unreachable_insts, 0);
    }
}
