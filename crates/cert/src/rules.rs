//! The Brook Auto certification rule catalogue.
//!
//! Each rule records the ISO 26262 / MISRA C motivation quoted in the paper
//! (§2: restricted pointers, no dynamic allocation, static verification of
//! program properties, resilience to faults, fault propagation) and how the
//! toolchain discharges it: some rules hold *by construction* of the
//! language grammar, others are checked by the engine in this crate.

use std::fmt;

/// Identifier of one Brook Auto certification rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// BA001 — no pointers, host or device.
    NoPointers,
    /// BA002 — stream handles are statically sized.
    StaticStreamSizes,
    /// BA003 — every loop has a statically deducible trip-count bound.
    BoundedLoops,
    /// BA004 — no recursion, directly or through helper functions.
    NoRecursion,
    /// BA005 — kernel output count within the target's render capability.
    OutputLimit,
    /// BA006 — kernel input count within the target's texture units.
    InputLimit,
    /// BA007 — no `goto`, no unstructured control flow.
    NoGoto,
    /// BA008 — no dynamic memory allocation, no calls outside the unit.
    NoDynamicAllocation,
    /// BA009 — statically bounded call depth (max stack usage).
    StackDepthBound,
    /// BA010 — statically bounded kernel instruction count (no emulation).
    InstructionBudget,
    /// BA011 — gather indices are scalar integral values.
    GatherIndexTypes,
    /// BA012 — memory violations cannot crash the system (texture-unit
    /// clamping semantics; discharged by the OpenGL ES 2 backend).
    NoFaultPropagation,
    /// BA013 — no gather whose index is *provably* out of bounds for
    /// every possible stream shape (abstract interpretation over the
    /// optimized IR; the clamp would silently mask a certain logic
    /// fault).
    ProvableGatherBounds,
    /// BA014 — no division or remainder whose denominator is provably
    /// zero on every execution (abstract interpretation over the
    /// optimized IR).
    ProvableDivByZero,
}

impl RuleId {
    /// The stable textual code, e.g. `"BA003"`.
    pub fn code(&self) -> &'static str {
        match self {
            RuleId::NoPointers => "BA001",
            RuleId::StaticStreamSizes => "BA002",
            RuleId::BoundedLoops => "BA003",
            RuleId::NoRecursion => "BA004",
            RuleId::OutputLimit => "BA005",
            RuleId::InputLimit => "BA006",
            RuleId::NoGoto => "BA007",
            RuleId::NoDynamicAllocation => "BA008",
            RuleId::StackDepthBound => "BA009",
            RuleId::InstructionBudget => "BA010",
            RuleId::GatherIndexTypes => "BA011",
            RuleId::NoFaultPropagation => "BA012",
            RuleId::ProvableGatherBounds => "BA013",
            RuleId::ProvableDivByZero => "BA014",
        }
    }

    /// All rules, in code order.
    pub fn all() -> &'static [RuleId] {
        &[
            RuleId::NoPointers,
            RuleId::StaticStreamSizes,
            RuleId::BoundedLoops,
            RuleId::NoRecursion,
            RuleId::OutputLimit,
            RuleId::InputLimit,
            RuleId::NoGoto,
            RuleId::NoDynamicAllocation,
            RuleId::StackDepthBound,
            RuleId::InstructionBudget,
            RuleId::GatherIndexTypes,
            RuleId::NoFaultPropagation,
            RuleId::ProvableGatherBounds,
            RuleId::ProvableDivByZero,
        ]
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// How a rule is discharged by the toolchain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discharge {
    /// The grammar cannot express a violation; the parser rejects attempts
    /// with the rule's code.
    ByConstruction,
    /// The engine in this crate analyses the checked program.
    StaticAnalysis,
    /// The property is guaranteed by the runtime/backend design.
    RuntimeDesign,
}

/// Static metadata describing one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleMeta {
    /// Which rule.
    pub id: RuleId,
    /// One-line title.
    pub title: &'static str,
    /// The ISO 26262 / MISRA C motivation (paper §2 letters a–e).
    pub motivation: &'static str,
    /// How the toolchain discharges the rule.
    pub discharge: Discharge,
}

/// The rule catalogue.
pub const RULES: &[RuleMeta] = &[
    RuleMeta {
        id: RuleId::NoPointers,
        title: "No pointers",
        motivation: "ISO 26262 restricted use of pointers (paper §2.a); Brook passes data \
                     exclusively through stream handles",
        discharge: Discharge::ByConstruction,
    },
    RuleMeta {
        id: RuleId::StaticStreamSizes,
        title: "Statically sized streams",
        motivation: "No dynamic memory allocation (§2.b): stream handles are forced to a \
                     static size so maximum GPU memory usage is determinable",
        discharge: Discharge::RuntimeDesign,
    },
    RuleMeta {
        id: RuleId::BoundedLoops,
        title: "Bounded loop trip counts",
        motivation: "Static verification of program properties (§2.c): maximum loop bounds \
                     must be deducible so a kernel cannot deadlock or overrun",
        discharge: Discharge::StaticAnalysis,
    },
    RuleMeta {
        id: RuleId::NoRecursion,
        title: "No recursion",
        motivation: "Maximum stack depth must be statically verifiable (§2.c); recursion is \
                     already forbidden in Brook",
        discharge: Discharge::StaticAnalysis,
    },
    RuleMeta {
        id: RuleId::OutputLimit,
        title: "Output count within target capability",
        motivation: "Kernel resources exceeding the GPU's capability trigger driver emulation \
                     with multiple implicit GPU calls (§2); Brook Auto restricts outputs to \
                     what the target supports",
        discharge: Discharge::StaticAnalysis,
    },
    RuleMeta {
        id: RuleId::InputLimit,
        title: "Input count within texture units",
        motivation: "Same emulation concern as BA005, on the input side (§4)",
        discharge: Discharge::StaticAnalysis,
    },
    RuleMeta {
        id: RuleId::NoGoto,
        title: "No goto",
        motivation: "MISRA C rule 15.1: unstructured jumps defeat static verification",
        discharge: Discharge::ByConstruction,
    },
    RuleMeta {
        id: RuleId::NoDynamicAllocation,
        title: "No dynamic allocation",
        motivation: "Memory leaks can exhaust GPU memory and jeopardize the entire system \
                     (§2.b, §2.e); kernels may only call builtins and unit-local helpers",
        discharge: Discharge::ByConstruction,
    },
    RuleMeta {
        id: RuleId::StackDepthBound,
        title: "Bounded call depth",
        motivation: "Maximum stack depth must be statically verifiable (§2.c)",
        discharge: Discharge::StaticAnalysis,
    },
    RuleMeta {
        id: RuleId::InstructionBudget,
        title: "Bounded kernel instruction count",
        motivation: "Kernels exceeding GPU limits cause implicit multi-pass emulation (§2); \
                     the worst-case instruction count is computed statically",
        discharge: Discharge::StaticAnalysis,
    },
    RuleMeta {
        id: RuleId::GatherIndexTypes,
        title: "Integral gather indices",
        motivation: "Array accesses must be statically typed; the texture unit clamps any \
                     out-of-range access without raising an exception (§4)",
        discharge: Discharge::StaticAnalysis,
    },
    RuleMeta {
        id: RuleId::NoFaultPropagation,
        title: "Memory violations cannot crash the system",
        motivation: "Memory violations in kernels or transfers must not crash the driver or \
                     require a system restart (§2.d, §2.e); texture sampling clamps instead \
                     of faulting",
        discharge: Discharge::RuntimeDesign,
    },
    RuleMeta {
        id: RuleId::ProvableGatherBounds,
        title: "No provably out-of-bounds gathers",
        motivation: "Static verification of program properties (§2.c): an access the \
                     abstract interpreter proves outside every possible stream shape is a \
                     certain logic fault the BA012 clamp would silently mask",
        discharge: Discharge::StaticAnalysis,
    },
    RuleMeta {
        id: RuleId::ProvableDivByZero,
        title: "No provable division by zero",
        motivation: "Resilience to faults (§2.d): a denominator whose value interval is \
                     exactly zero on every execution is a certain fault, not a data-dependent \
                     hazard — reject it at compile time with its source line",
        discharge: Discharge::StaticAnalysis,
    },
];

/// Looks up the metadata for a rule.
pub fn rule_meta(id: RuleId) -> &'static RuleMeta {
    RULES
        .iter()
        .find(|m| m.id == id)
        .expect("every rule has metadata")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_has_metadata() {
        for id in RuleId::all() {
            let m = rule_meta(*id);
            assert_eq!(m.id, *id);
            assert!(!m.title.is_empty());
            assert!(!m.motivation.is_empty());
        }
    }

    #[test]
    fn codes_are_unique_and_sorted() {
        let codes: Vec<_> = RuleId::all().iter().map(|r| r.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes.len(), sorted.len());
    }

    #[test]
    fn display_matches_code() {
        assert_eq!(RuleId::BoundedLoops.to_string(), "BA003");
    }
}
