//! Machine-queryable certification-rule predicates.
//!
//! The report types in [`crate::engine`] answer "*is this program
//! compliant?*" after the fact; this module answers the forward question
//! a *program generator* needs: "*would a kernel with these
//! characteristics pass the gate?*". The `brook-fuzz` differential
//! fuzzer uses it in both directions — to keep random kernels inside the
//! certifiable subset, and to construct kernels that step outside it by
//! exactly one rule so the gate's rejection can be asserted.
//!
//! The predicates are deliberately defined in terms of the same
//! [`CertConfig`] fields the engine enforces, so generator and gate can
//! never drift apart silently: `kernel_limits` tests below pin each
//! predicate to the engine's behaviour on a concrete program.

use crate::engine::{CertConfig, ComplianceReport};
use crate::rules::RuleId;
use std::collections::BTreeSet;

/// Forward view of a [`CertConfig`]: for each statically analysed rule,
/// whether a candidate value stays within the gate's limit, and the
/// smallest value that violates it.
#[derive(Debug, Clone, Copy)]
pub struct CertPredicates<'a> {
    cfg: &'a CertConfig,
}

impl<'a> CertPredicates<'a> {
    /// Predicates for the given gate configuration.
    pub fn new(cfg: &'a CertConfig) -> Self {
        CertPredicates { cfg }
    }

    /// BA005: would `n` output streams pass?
    pub fn outputs_within_limit(&self, n: u32) -> bool {
        n <= self.cfg.max_outputs
    }

    /// BA006: would `n` input streams/gathers pass?
    pub fn inputs_within_limit(&self, n: u32) -> bool {
        n <= self.cfg.max_inputs
    }

    /// BA003: would a single loop of `trips` iterations pass?
    pub fn loop_trips_within_limit(&self, trips: u64) -> bool {
        trips <= self.cfg.max_loop_trips
    }

    /// BA009: would a helper call chain of depth `d` pass?
    pub fn call_depth_within_limit(&self, d: u32) -> bool {
        d <= self.cfg.max_call_depth
    }

    /// BA010: would a worst-case estimate of `est` instructions pass?
    pub fn instructions_within_limit(&self, est: u64) -> bool {
        est <= self.cfg.max_instructions
    }

    /// Kernel-fusion admissibility pre-check: would a *fused* kernel with
    /// `inputs` stream/gather parameters and `outputs` output streams
    /// still pass BA005/BA006?
    ///
    /// A fusing planner merges the parameter lists of a producer and a
    /// consumer, so the fused kernel can exceed limits both originals
    /// respected. This is the cheap forward filter; the planner must
    /// still push the fused program through the full gate (the same
    /// engine the eager path uses), because instruction budgets and loop
    /// bounds compose in ways only the analysis can decide.
    pub fn fusion_io_within_limits(&self, inputs: u32, outputs: u32) -> bool {
        self.inputs_within_limit(inputs) && self.outputs_within_limit(outputs)
    }

    /// Smallest output count the gate rejects (BA005).
    pub fn min_violating_outputs(&self) -> u32 {
        self.cfg.max_outputs + 1
    }

    /// Smallest input count the gate rejects (BA006).
    pub fn min_violating_inputs(&self) -> u32 {
        self.cfg.max_inputs + 1
    }

    /// Smallest loop trip count the gate rejects (BA003).
    pub fn min_violating_trips(&self) -> u64 {
        self.cfg.max_loop_trips + 1
    }

    /// Smallest helper call depth the gate rejects (BA009).
    pub fn min_violating_call_depth(&self) -> u32 {
        self.cfg.max_call_depth + 1
    }
}

/// The set of rules violated anywhere in a report, in code order.
pub fn violated_rules(report: &ComplianceReport) -> BTreeSet<RuleId> {
    report
        .kernels
        .iter()
        .flat_map(|k| k.violations().map(|f| f.rule))
        .collect()
}

/// True when the report carries at least one violation of `rule`.
pub fn violates(report: &ComplianceReport, rule: RuleId) -> bool {
    violated_rules(report).contains(&rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::certify_source;

    #[test]
    fn predicates_mirror_config() {
        let cfg = CertConfig::default();
        let p = CertPredicates::new(&cfg);
        assert!(p.outputs_within_limit(cfg.max_outputs));
        assert!(!p.outputs_within_limit(p.min_violating_outputs()));
        assert!(p.inputs_within_limit(cfg.max_inputs));
        assert!(!p.inputs_within_limit(p.min_violating_inputs()));
        assert!(p.loop_trips_within_limit(cfg.max_loop_trips));
        assert!(!p.loop_trips_within_limit(p.min_violating_trips()));
        assert!(p.call_depth_within_limit(cfg.max_call_depth));
        assert!(!p.call_depth_within_limit(p.min_violating_call_depth()));
        assert!(p.instructions_within_limit(cfg.max_instructions));
        assert!(!p.instructions_within_limit(cfg.max_instructions + 1));
    }

    /// The fusion pre-check is the conjunction of the input and output
    /// limits, at their exact boundaries.
    #[test]
    fn fusion_io_mirrors_both_limits() {
        let cfg = CertConfig {
            max_inputs: 4,
            max_outputs: 2,
            ..CertConfig::default()
        };
        let p = CertPredicates::new(&cfg);
        assert!(p.fusion_io_within_limits(4, 2));
        assert!(!p.fusion_io_within_limits(5, 2));
        assert!(!p.fusion_io_within_limits(4, 3));
        assert!(!p.fusion_io_within_limits(5, 3));
    }

    /// The forward predicates and the engine must agree on concrete
    /// programs at the exact boundary.
    #[test]
    fn kernel_limits_match_engine_behaviour() {
        let cfg = CertConfig {
            max_loop_trips: 8,
            ..CertConfig::default()
        };
        let p = CertPredicates::new(&cfg);
        let src_at = "kernel void f(float a<>, out float o<>) {
            float s = 0.0;
            int i;
            for (i = 0; i < 8; i += 1) { s += a; }
            o = s;
        }";
        let src_over = "kernel void f(float a<>, out float o<>) {
            float s = 0.0;
            int i;
            for (i = 0; i < 9; i += 1) { s += a; }
            o = s;
        }";
        let (_, at) = certify_source(src_at, &cfg).unwrap();
        let (_, over) = certify_source(src_over, &cfg).unwrap();
        assert!(p.loop_trips_within_limit(8));
        assert!(at.is_compliant());
        assert!(!p.loop_trips_within_limit(9));
        assert!(violates(&over, RuleId::BoundedLoops));
    }

    #[test]
    fn violated_rules_collects_in_code_order() {
        let src = "kernel void f(float a<>, out float o<>) {
            float s = 0.0;
            while (s < 1.0) { s += a; }
            o = s;
        }";
        let (_, r) = certify_source(src, &CertConfig::default()).unwrap();
        let rules: Vec<RuleId> = violated_rules(&r).into_iter().collect();
        assert_eq!(rules, vec![RuleId::BoundedLoops, RuleId::InstructionBudget]);
        assert!(violates(&r, RuleId::BoundedLoops));
        assert!(!violates(&r, RuleId::OutputLimit));
    }

    #[test]
    fn compliant_report_has_no_violated_rules() {
        let (_, r) = certify_source(
            "kernel void f(float a<>, out float o<>) { o = a; }",
            &CertConfig::default(),
        )
        .unwrap();
        assert!(violated_rules(&r).is_empty());
    }
}
