//! # brook-cert — ISO 26262 compliance engine for Brook Auto
//!
//! The paper's contribution (b) is demonstrating that the Brook Auto subset
//! complies with ISO 26262 and MISRA C style rules that CUDA and OpenCL
//! structurally violate (§2 of the paper): restricted pointer use, no
//! dynamic memory allocation, static verification of program properties,
//! resilience to faults and no fault propagation.
//!
//! This crate makes that argument *executable*: every restriction is a
//! [`rules::RuleId`] with its motivation recorded, and [`engine::certify`]
//! checks a type-checked program against the catalogue, producing a
//! [`engine::ComplianceReport`] the way a certification data package would
//! require — including deduced loop bounds, worst-case instruction
//! estimates and call-depth analysis.
//!
//! ```
//! use brook_cert::{certify_source, CertConfig};
//! let (_, report) = certify_source(
//!     "kernel void scale(float a<>, out float o<>) { o = a * 2.0; }",
//!     &CertConfig::default(),
//! )?;
//! assert!(report.is_compliant());
//! # Ok::<(), brook_lang::CompileError>(())
//! ```

pub mod absint;
pub mod analysis;
pub mod engine;
pub mod ir_check;
pub mod predicates;
pub mod report;
pub mod rules;

pub use absint::{AnalysisReport, InstFact, KernelAnalysis};
pub use analysis::{CallGraph, LoopBound};
pub use engine::{
    certify, certify_source, CertConfig, ComplianceReport, Finding, KernelReport, LanePlan, SimdReduce,
    TierPlan,
};
pub use ir_check::{
    check_kernel as check_kernel_ir, check_program as check_program_ir, optimize_program, IrKernelCheck,
    PassAction, PassRecord,
};
pub use predicates::{violated_rules, violates, CertPredicates};
pub use report::{render_matrix, render_report, render_rule_catalogue};
// The resilience-evidence schema the report embeds (fault-injection
// campaigns fill it in at runtime; see `brook-inject`).
pub use brook_inject::{LaunchResilience, ResilienceSummary};
pub use rules::{rule_meta, Discharge, RuleId, RuleMeta, RULES};
