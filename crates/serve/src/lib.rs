//! Brook as a service: sharded multi-tenant execution of certified
//! Brook Auto programs behind a length-prefixed wire protocol.
//!
//! The paper's premise — statically sized streams, a certification
//! gate, statically bounded iteration — is exactly what makes a
//! multi-tenant execution service tractable: every request's cost is
//! known *before* it runs, so admission control is a table lookup, not
//! a guess. This crate turns the (tier-compiled) execution pipeline
//! into a long-running host:
//!
//! * [`wire`] — the framed binary protocol (std-only, no serializer);
//! * [`cache`] — the shared compiled-module cache keyed by
//!   `(source hash, cert fingerprint, backend)`, handing out
//!   context-neutral artifacts that each tenant *adopts* (re-stamps),
//!   so cross-tenant module isolation survives cache hits;
//! * [`admission`] — budgets spent from static artifacts
//!   (`instruction_estimate × domain`, stream bytes): over-budget
//!   requests get a structured rejection, never a queue slot;
//! * [`server`] — the thread-per-shard execution host with bounded
//!   queues (full ⇒ `Busy`, shed not buffered), same-kernel launch
//!   coalescing, and a panic shield that converts any caught panic
//!   into a failed *request* plus a poisoned tenant — never a failed
//!   process;
//! * [`client`] — a blocking client for tests, tools and the
//!   `serve_report` load harness.

pub mod admission;
pub mod cache;
pub mod client;
pub mod server;
pub mod wire;

pub use admission::{Admission, AdmissionConfig, AdmissionError};
pub use cache::{hash_source, CacheKey, ModuleCache};
pub use client::{Client, ClientError, ClientResult, RetryPolicy, DEFAULT_SOCKET_TIMEOUT};
pub use server::{BreakerConfig, Server, ServerConfig, Stats};
pub use wire::{ErrorCode, Request, Response, WireArg};
