//! The Brook service wire protocol: length-prefixed binary frames.
//!
//! Every message is one frame: a little-endian `u32` payload length
//! followed by the payload. Payloads are hand-rolled tagged binary (no
//! serialization dependency — the container images this targets are
//! offline): strings are `u16` length + UTF-8, vectors are `u32` count
//! + elements, numbers are little-endian.
//!
//! The protocol is strictly request/response per connection; pipelining
//! happens across connections (the server shards by tenant, not by
//! socket). Every reply is either a typed payload or a structured
//! [`ErrorCode`] + message — a malformed or over-budget request fails
//! *that request*, never the connection's peer or the process.

use std::io::{self, Read, Write};

/// Upper bound on a single frame, requests and replies alike. Large
/// enough for a 4M-element stream readback, small enough that a
/// malicious length prefix cannot OOM the host.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Structured failure category carried on every error reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame decoded but the request is not well-formed (unknown
    /// tag, bad handle, wrong payload).
    Malformed = 1,
    /// Front-end (lex/parse/type) failure in submitted source.
    Compile = 2,
    /// The program violates the certification rules.
    Certification = 3,
    /// Runtime misuse (wrong argument kinds, size mismatches, ...).
    Usage = 4,
    /// Device-side failure.
    Device = 5,
    /// The request's static cost exceeds the admission budget; the
    /// request was refused *before* touching the execution pipeline.
    AdmissionRejected = 6,
    /// The shard's queue is full; back off and retry. Never queued to
    /// death: the server sheds load instead of growing latency.
    Busy = 7,
    /// The toolchain itself failed an invariant (including a caught
    /// panic). The request failed; the process did not.
    Internal = 8,
    /// The launch exceeded its deadline: the watchdog cancelled it and
    /// answered on its behalf. The tenant's state is still consistent
    /// (dispatch is idempotent); re-issuing the request is safe.
    Timeout = 9,
    /// A transient server-side condition (device loss mid-recovery, a
    /// tripped circuit breaker cooling down). Safe to retry; the reply's
    /// `retry_after_ms` hints when.
    Retryable = 10,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Compile,
            3 => ErrorCode::Certification,
            4 => ErrorCode::Usage,
            5 => ErrorCode::Device,
            6 => ErrorCode::AdmissionRejected,
            7 => ErrorCode::Busy,
            8 => ErrorCode::Internal,
            9 => ErrorCode::Timeout,
            10 => ErrorCode::Retryable,
            _ => return None,
        })
    }

    /// Whether a client may re-issue the failed request verbatim and
    /// plausibly succeed (load shedding, cooldowns, deadlines — not
    /// malformed or non-compliant programs).
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Busy | ErrorCode::Timeout | ErrorCode::Retryable)
    }
}

/// A kernel launch argument on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireArg {
    /// A tenant-scoped stream handle.
    Stream(u64),
    /// Scalar `float`.
    Float(f32),
    /// Scalar `int`.
    Int(i32),
    /// `float4` constant.
    Float4([f32; 4]),
}

/// A client request. Every request names the tenant it acts for; the
/// server routes it to that tenant's shard and context.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile (or fetch from the shared module cache) Brook source,
    /// returning a tenant-scoped module handle.
    Compile { tenant: String, source: String },
    /// Allocate a stream of `floatN` elements.
    CreateStream {
        tenant: String,
        shape: Vec<u32>,
        width: u8,
    },
    /// Upload values into a stream.
    Write {
        tenant: String,
        stream: u64,
        data: Vec<f32>,
    },
    /// Download a stream.
    Read { tenant: String, stream: u64 },
    /// Launch a kernel over its output domain.
    Run {
        tenant: String,
        module: u64,
        kernel: String,
        args: Vec<WireArg>,
    },
    /// Fold a stream to a scalar with a reduce kernel.
    Reduce {
        tenant: String,
        module: u64,
        kernel: String,
        stream: u64,
    },
    /// Release a stream (and its admission memory charge).
    DropStream { tenant: String, stream: u64 },
    /// Server-wide counters (requests, panics, cache traffic, ...).
    Stats,
}

impl Request {
    /// The tenant a request acts for; `Stats` is tenant-less and may be
    /// served by any shard.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Request::Compile { tenant, .. }
            | Request::CreateStream { tenant, .. }
            | Request::Write { tenant, .. }
            | Request::Read { tenant, .. }
            | Request::Run { tenant, .. }
            | Request::Reduce { tenant, .. }
            | Request::DropStream { tenant, .. } => Some(tenant),
            Request::Stats => None,
        }
    }
}

/// A server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success without a payload (`Write`, `Run`, `DropStream`).
    Ok,
    /// A fresh tenant-scoped handle (`Compile`, `CreateStream`).
    Handle(u64),
    /// A scalar result (`Reduce`).
    Scalar(f32),
    /// Stream contents (`Read`).
    Data(Vec<f32>),
    /// Counter name/value pairs (`Stats`).
    Stats(Vec<(String, u64)>),
    /// Structured failure. `retry_after_ms` is the server's back-off
    /// hint on shed/cooldown replies (`Busy`, `Retryable`): how long the
    /// condition is expected to last. Absent on non-retryable errors.
    Error {
        code: ErrorCode,
        message: String,
        retry_after_ms: Option<u64>,
    },
}

impl Response {
    /// An error reply without a back-off hint.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// An error reply hinting the client to retry after `retry_after_ms`.
    pub fn error_with_retry(code: ErrorCode, message: impl Into<String>, retry_after_ms: u64) -> Response {
        Response::Error {
            code,
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
        }
    }
}

// ---------------------------------------------------------------------
// Encoding primitives.

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    put_u16(buf, s.len() as u16);
    buf.extend_from_slice(s.as_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, vs: &[f32]) {
    put_u32(buf, vs.len() as u32);
    for v in vs {
        put_f32(buf, *v);
    }
}

/// Cursor-style decoder over a frame payload. Every accessor is bounds-
/// checked: a truncated or lying frame yields a decode error, never a
/// slice panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Frame decode failure (malformed payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

type Decode<T> = std::result::Result<T, DecodeError>;

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Decode<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|e| *e <= self.buf.len())
            .ok_or_else(|| DecodeError(format!("{n} bytes past end of frame")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Decode<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Decode<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Decode<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Decode<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Decode<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Decode<String> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError("string is not UTF-8".into()))
    }

    fn f32s(&mut self) -> Decode<Vec<f32>> {
        let n = self.u32()? as usize;
        // Guard the multiplication before reserving: the count must be
        // consistent with the remaining payload.
        if n.saturating_mul(4) > self.buf.len() - self.pos {
            return Err(DecodeError(format!("f32 count {n} exceeds frame")));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f32()?);
        }
        Ok(out)
    }

    fn finish(self) -> Decode<()> {
        if self.pos != self.buf.len() {
            return Err(DecodeError(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Message encoding.

impl Request {
    /// Serializes into a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Request::Compile { tenant, source } => {
                b.push(0);
                put_str(&mut b, tenant);
                put_u32(&mut b, source.len() as u32);
                b.extend_from_slice(source.as_bytes());
            }
            Request::CreateStream { tenant, shape, width } => {
                b.push(1);
                put_str(&mut b, tenant);
                b.push(*width);
                b.push(shape.len() as u8);
                for d in shape {
                    put_u32(&mut b, *d);
                }
            }
            Request::Write { tenant, stream, data } => {
                b.push(2);
                put_str(&mut b, tenant);
                put_u64(&mut b, *stream);
                put_f32s(&mut b, data);
            }
            Request::Read { tenant, stream } => {
                b.push(3);
                put_str(&mut b, tenant);
                put_u64(&mut b, *stream);
            }
            Request::Run {
                tenant,
                module,
                kernel,
                args,
            } => {
                b.push(4);
                put_str(&mut b, tenant);
                put_u64(&mut b, *module);
                put_str(&mut b, kernel);
                b.push(args.len() as u8);
                for a in args {
                    match a {
                        WireArg::Stream(h) => {
                            b.push(0);
                            put_u64(&mut b, *h);
                        }
                        WireArg::Float(v) => {
                            b.push(1);
                            put_f32(&mut b, *v);
                        }
                        WireArg::Int(v) => {
                            b.push(2);
                            b.extend_from_slice(&v.to_le_bytes());
                        }
                        WireArg::Float4(v) => {
                            b.push(3);
                            for c in v {
                                put_f32(&mut b, *c);
                            }
                        }
                    }
                }
            }
            Request::Reduce {
                tenant,
                module,
                kernel,
                stream,
            } => {
                b.push(5);
                put_str(&mut b, tenant);
                put_u64(&mut b, *module);
                put_str(&mut b, kernel);
                put_u64(&mut b, *stream);
            }
            Request::DropStream { tenant, stream } => {
                b.push(6);
                put_str(&mut b, tenant);
                put_u64(&mut b, *stream);
            }
            Request::Stats => b.push(7),
        }
        b
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    /// Any truncation, trailing garbage, unknown tag or malformed field.
    pub fn decode(buf: &[u8]) -> Decode<Request> {
        let mut c = Cursor::new(buf);
        let req = match c.u8()? {
            0 => {
                let tenant = c.str()?;
                let n = c.u32()? as usize;
                let bytes = c.take(n)?;
                let source = String::from_utf8(bytes.to_vec())
                    .map_err(|_| DecodeError("source is not UTF-8".into()))?;
                Request::Compile { tenant, source }
            }
            1 => {
                let tenant = c.str()?;
                let width = c.u8()?;
                let rank = c.u8()? as usize;
                let mut shape = Vec::with_capacity(rank.min(8));
                for _ in 0..rank {
                    shape.push(c.u32()?);
                }
                Request::CreateStream { tenant, shape, width }
            }
            2 => Request::Write {
                tenant: c.str()?,
                stream: c.u64()?,
                data: c.f32s()?,
            },
            3 => Request::Read {
                tenant: c.str()?,
                stream: c.u64()?,
            },
            4 => {
                let tenant = c.str()?;
                let module = c.u64()?;
                let kernel = c.str()?;
                let n = c.u8()? as usize;
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(match c.u8()? {
                        0 => WireArg::Stream(c.u64()?),
                        1 => WireArg::Float(c.f32()?),
                        2 => WireArg::Int(i32::from_le_bytes(c.take(4)?.try_into().unwrap())),
                        3 => WireArg::Float4([c.f32()?, c.f32()?, c.f32()?, c.f32()?]),
                        t => return Err(DecodeError(format!("unknown arg tag {t}"))),
                    });
                }
                Request::Run {
                    tenant,
                    module,
                    kernel,
                    args,
                }
            }
            5 => Request::Reduce {
                tenant: c.str()?,
                module: c.u64()?,
                kernel: c.str()?,
                stream: c.u64()?,
            },
            6 => Request::DropStream {
                tenant: c.str()?,
                stream: c.u64()?,
            },
            7 => Request::Stats,
            t => return Err(DecodeError(format!("unknown request tag {t}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes into a frame payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Response::Ok => b.push(0),
            Response::Handle(h) => {
                b.push(1);
                put_u64(&mut b, *h);
            }
            Response::Scalar(v) => {
                b.push(2);
                put_f32(&mut b, *v);
            }
            Response::Data(vs) => {
                b.push(3);
                put_f32s(&mut b, vs);
            }
            Response::Stats(pairs) => {
                b.push(4);
                put_u16(&mut b, pairs.len() as u16);
                for (k, v) in pairs {
                    put_str(&mut b, k);
                    put_u64(&mut b, *v);
                }
            }
            Response::Error {
                code,
                message,
                retry_after_ms,
            } => {
                b.push(5);
                b.push(*code as u8);
                put_str(&mut b, message);
                match retry_after_ms {
                    Some(ms) => {
                        b.push(1);
                        put_u64(&mut b, *ms);
                    }
                    None => b.push(0),
                }
            }
        }
        b
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    /// Any truncation, trailing garbage, unknown tag or malformed field.
    pub fn decode(buf: &[u8]) -> Decode<Response> {
        let mut c = Cursor::new(buf);
        let resp = match c.u8()? {
            0 => Response::Ok,
            1 => Response::Handle(c.u64()?),
            2 => Response::Scalar(c.f32()?),
            3 => Response::Data(c.f32s()?),
            4 => {
                let n = c.u16()? as usize;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = c.str()?;
                    let v = c.u64()?;
                    pairs.push((k, v));
                }
                Response::Stats(pairs)
            }
            5 => {
                let code =
                    ErrorCode::from_u8(c.u8()?).ok_or_else(|| DecodeError("unknown error code".into()))?;
                let message = c.str()?;
                let retry_after_ms = match c.u8()? {
                    0 => None,
                    1 => Some(c.u64()?),
                    t => return Err(DecodeError(format!("bad retry_after flag {t}"))),
                };
                Response::Error {
                    code,
                    message,
                    retry_after_ms,
                }
            }
            t => return Err(DecodeError(format!("unknown response tag {t}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Framing.

/// Writes one length-prefixed frame.
///
/// # Errors
/// Underlying I/O failures, or a payload above [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary (the peer closed the connection).
///
/// # Errors
/// Underlying I/O failures, a length prefix above [`MAX_FRAME`], or EOF
/// inside a frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(r: Request) {
        let enc = r.encode();
        assert_eq!(Request::decode(&enc).expect("decode"), r);
    }

    fn roundtrip_resp(r: Response) {
        let enc = r.encode();
        assert_eq!(Response::decode(&enc).expect("decode"), r);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Compile {
            tenant: "t0".into(),
            source: "kernel void k(float a<>, out float o<>) { o = a; }".into(),
        });
        roundtrip_req(Request::CreateStream {
            tenant: "t1".into(),
            shape: vec![64, 64],
            width: 4,
        });
        roundtrip_req(Request::Write {
            tenant: "t".into(),
            stream: 7,
            data: vec![1.0, -2.5, f32::MIN_POSITIVE],
        });
        roundtrip_req(Request::Read {
            tenant: "t".into(),
            stream: 9,
        });
        roundtrip_req(Request::Run {
            tenant: "t".into(),
            module: 3,
            kernel: "saxpy".into(),
            args: vec![
                WireArg::Stream(1),
                WireArg::Float(2.5),
                WireArg::Int(-7),
                WireArg::Float4([1.0, 2.0, 3.0, 4.0]),
            ],
        });
        roundtrip_req(Request::Reduce {
            tenant: "t".into(),
            module: 3,
            kernel: "sum".into(),
            stream: 1,
        });
        roundtrip_req(Request::DropStream {
            tenant: "t".into(),
            stream: 4,
        });
        roundtrip_req(Request::Stats);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Ok);
        roundtrip_resp(Response::Handle(u64::MAX));
        roundtrip_resp(Response::Scalar(-0.0));
        roundtrip_resp(Response::Data(vec![0.0; 1000]));
        roundtrip_resp(Response::Stats(vec![
            ("requests".into(), 12),
            ("panics".into(), 0),
        ]));
        roundtrip_resp(Response::Error {
            code: ErrorCode::AdmissionRejected,
            message: "cost 10 over budget 5".into(),
            retry_after_ms: None,
        });
        roundtrip_resp(Response::error_with_retry(
            ErrorCode::Retryable,
            "breaker open",
            250,
        ));
        roundtrip_resp(Response::error(ErrorCode::Timeout, "deadline exceeded"));
    }

    #[test]
    fn retryable_codes_are_classified() {
        for code in [ErrorCode::Busy, ErrorCode::Timeout, ErrorCode::Retryable] {
            assert!(code.is_retryable(), "{code:?}");
        }
        for code in [
            ErrorCode::Malformed,
            ErrorCode::Compile,
            ErrorCode::Certification,
            ErrorCode::Usage,
            ErrorCode::Device,
            ErrorCode::AdmissionRejected,
            ErrorCode::Internal,
        ] {
            assert!(!code.is_retryable(), "{code:?}");
        }
    }

    #[test]
    fn truncated_and_trailing_frames_are_decode_errors() {
        let enc = Request::Read {
            tenant: "t".into(),
            stream: 9,
        }
        .encode();
        assert!(Request::decode(&enc[..enc.len() - 1]).is_err(), "truncated");
        let mut extra = enc.clone();
        extra.push(0);
        assert!(Request::decode(&extra).is_err(), "trailing byte");
        assert!(Request::decode(&[99]).is_err(), "unknown tag");
        // A lying f32 count must not allocate or panic.
        let mut lying = vec![2u8];
        lying.extend_from_slice(&1u16.to_le_bytes());
        lying.push(b't');
        lying.extend_from_slice(&0u64.to_le_bytes());
        lying.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&lying).is_err(), "lying count");
    }

    #[test]
    fn framing_roundtrips_and_bounds() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).expect("eof"), None);
        // An oversized length prefix is rejected without allocating.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        // EOF inside a frame is an error, not a silent None.
        let partial = [5u8, 0, 0, 0, b'a'];
        assert!(read_frame(&mut &partial[..]).is_err());
    }
}
