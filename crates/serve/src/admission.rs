//! Admission control from static artifacts.
//!
//! The paper's programming model makes every stream statically sized
//! and every loop statically bounded; the certification gate turns that
//! into numbers (`instruction_estimate`, pass counts, stream shapes,
//! `plan_memory` bytes) *before* anything executes. This module spends
//! those numbers as budgets: a request whose static cost does not fit
//! is refused with a structured error at the door — it never queues,
//! never executes, never degrades the latency of admitted work.

use brook_auto::ModuleArtifact;

/// Per-tenant admission limits, fixed at tenant creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Upper bound on one launch's statically estimated instructions
    /// (`instruction_estimate × domain elements × passes`).
    pub max_instructions_per_request: u64,
    /// Upper bound on the tenant's planned stream memory, in bytes
    /// (logical element bytes on host backends; the device plan already
    /// enforces texture bytes on GL backends on top of this).
    pub max_stream_bytes: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            // One launch may spend up to ~2^26 estimated instructions —
            // a 4096-element domain of default-config worst-case kernels.
            max_instructions_per_request: 1 << 26,
            // 64 MiB of stream data per tenant.
            max_stream_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Why a request was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The kernel has no static cost (unbounded loop past a disabled
    /// gate, or an unknown kernel) — nothing to budget, so nothing to
    /// admit.
    NoStaticCost { kernel: String },
    /// The launch's static cost exceeds the per-request ceiling.
    CostOverBudget { kernel: String, cost: u64, budget: u64 },
    /// The allocation would push the tenant past its stream-memory
    /// budget.
    MemoryOverBudget {
        requested: usize,
        in_use: usize,
        budget: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::NoStaticCost { kernel } => {
                write!(f, "kernel `{kernel}` has no static cost bound; unadmittable")
            }
            AdmissionError::CostOverBudget { kernel, cost, budget } => write!(
                f,
                "kernel `{kernel}` launch costs {cost} estimated instructions, over the \
                 per-request budget of {budget}"
            ),
            AdmissionError::MemoryOverBudget {
                requested,
                in_use,
                budget,
            } => write!(
                f,
                "allocation of {requested} B would exceed the tenant stream budget \
                 ({in_use} B of {budget} B in use)"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Per-tenant admission state: the fixed limits plus the memory
/// currently charged against them.
#[derive(Debug, Clone)]
pub struct Admission {
    config: AdmissionConfig,
    stream_bytes_in_use: usize,
}

impl Admission {
    /// Fresh state under the given limits.
    pub fn new(config: AdmissionConfig) -> Self {
        Admission {
            config,
            stream_bytes_in_use: 0,
        }
    }

    /// Bytes currently charged for live streams.
    pub fn stream_bytes_in_use(&self) -> usize {
        self.stream_bytes_in_use
    }

    /// Admits (and charges) a stream allocation of `shape`/`width`.
    /// Charged bytes are the logical element bytes — the number that is
    /// backend-independent; device texture padding is enforced by the
    /// device plan and VRAM budget separately.
    ///
    /// # Errors
    /// [`AdmissionError::MemoryOverBudget`]; nothing is charged.
    pub fn admit_stream(&mut self, shape: &[usize], width: u8) -> Result<usize, AdmissionError> {
        let requested = shape
            .iter()
            .product::<usize>()
            .saturating_mul(width as usize)
            .saturating_mul(4);
        if self.stream_bytes_in_use.saturating_add(requested) > self.config.max_stream_bytes {
            return Err(AdmissionError::MemoryOverBudget {
                requested,
                in_use: self.stream_bytes_in_use,
                budget: self.config.max_stream_bytes,
            });
        }
        self.stream_bytes_in_use += requested;
        Ok(requested)
    }

    /// Releases a previous [`admit_stream`](Self::admit_stream) charge.
    pub fn release_stream(&mut self, charged: usize) {
        self.stream_bytes_in_use = self.stream_bytes_in_use.saturating_sub(charged);
    }

    /// Admits one launch of `kernel` from `artifact` over a domain of
    /// `domain_elems` output elements. Pure: compute budgets are
    /// per-request ceilings, not a depletable pool, so admitted
    /// launches do not change state.
    ///
    /// # Errors
    /// [`AdmissionError::NoStaticCost`] when the kernel carries no
    /// instruction estimate (only possible past a disabled gate);
    /// [`AdmissionError::CostOverBudget`] when the static cost exceeds
    /// the ceiling.
    pub fn admit_launch(
        &self,
        artifact: &ModuleArtifact,
        kernel: &str,
        domain_elems: u64,
    ) -> Result<u64, AdmissionError> {
        let cost = artifact
            .report()
            .admission_cost(kernel, domain_elems)
            .ok_or_else(|| AdmissionError::NoStaticCost {
                kernel: kernel.to_owned(),
            })?;
        if cost > self.config.max_instructions_per_request {
            return Err(AdmissionError::CostOverBudget {
                kernel: kernel.to_owned(),
                cost,
                budget: self.config.max_instructions_per_request,
            });
        }
        Ok(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brook_auto::BrookContext;

    fn artifact(source: &str) -> ModuleArtifact {
        BrookContext::cpu().compile_artifact(source).expect("compile")
    }

    #[test]
    fn stream_memory_is_charged_and_released() {
        let mut adm = Admission::new(AdmissionConfig {
            max_stream_bytes: 100,
            ..AdmissionConfig::default()
        });
        let charge = adm.admit_stream(&[5], 4).expect("fits"); // 5*4*4 = 80 B
        assert_eq!(charge, 80);
        let err = adm.admit_stream(&[2], 4).unwrap_err(); // 32 B over
        assert!(matches!(err, AdmissionError::MemoryOverBudget { .. }));
        assert_eq!(adm.stream_bytes_in_use(), 80, "failed admit must not charge");
        adm.release_stream(charge);
        assert_eq!(adm.stream_bytes_in_use(), 0);
        adm.admit_stream(&[2], 4).expect("fits after release");
    }

    #[test]
    fn launch_cost_scales_with_domain_and_caps() {
        let a = artifact(
            "kernel void heavy(float x<>, out float o<>) {
                float s = x;
                for (int i = 0; i < 100; i++) { s = s * 1.5 + 1.0; }
                o = s;
            }",
        );
        let adm = Admission::new(AdmissionConfig {
            max_instructions_per_request: 10_000,
            ..AdmissionConfig::default()
        });
        let small = adm.admit_launch(&a, "heavy", 10).expect("small domain fits");
        assert!(small > 0);
        let err = adm.admit_launch(&a, "heavy", 1_000_000).unwrap_err();
        match err {
            AdmissionError::CostOverBudget { cost, budget, .. } => {
                assert!(cost > budget);
            }
            other => panic!("expected CostOverBudget, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kernel_has_no_static_cost() {
        let a = artifact("kernel void id(float x<>, out float o<>) { o = x; }");
        let adm = Admission::new(AdmissionConfig::default());
        assert!(matches!(
            adm.admit_launch(&a, "nope", 1),
            Err(AdmissionError::NoStaticCost { .. })
        ));
    }
}
