//! The sharded multi-tenant execution server.
//!
//! Std-only, no async runtime: a listener thread accepts connections,
//! each connection gets a reader thread, and execution happens on a
//! fixed pool of *shard* worker threads. Tenants are hashed onto
//! shards, so all of one tenant's state — its [`BrookContext`], module
//! and stream tables, admission ledger — is owned by exactly one
//! thread and needs no locking; the only shared structures are the
//! compiled-module cache and the stats counters.
//!
//! Request flow per frame: decode → route to the tenant's shard over a
//! *bounded* queue (full queue → structured `Busy`, the client backs
//! off; requests are never queued to death) → admission control from
//! static artifacts → execute under a panic shield → reply. A shard
//! drains its queue in batches and coalesces back-to-back launches of
//! the same kernel into one batched pass over the pre-compiled
//! lane/tier chains.

use crate::admission::{Admission, AdmissionConfig, AdmissionError};
use crate::cache::{hash_source, CacheKey, ModuleCache};
use crate::wire::{read_frame, write_frame, ErrorCode, Request, Response, WireArg};
use brook_auto::{
    registered_backends, Arg, BrookContext, BrookError, BrookModule, CancelToken, FaultPlan, ModuleArtifact,
    ResiliencePolicy, Stream,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Back-off hint attached to `Busy` (shed-load) replies: the queue
/// drains in single-digit milliseconds under normal load.
const BUSY_RETRY_HINT_MS: u64 = 5;

/// Per-shard circuit breaker configuration. The breaker replaces
/// *permanent* degradation after repeated panics with a supervised
/// recovery cycle: `Closed` (healthy) → `Open` after
/// `failure_threshold` consecutive caught panics (requests are shed
/// with a `Retryable` + `retry_after_ms` reply for `cooldown`) →
/// `HalfOpen` (exactly one probe request runs) → `Closed` on probe
/// success, back to `Open` on probe failure.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive caught panics that trip the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker sheds requests before probing.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Backend every tenant context executes on — a name from
    /// [`brook_auto::registered_backends`].
    pub backend: &'static str,
    /// Number of shard worker threads (tenants are hashed across them).
    pub shards: usize,
    /// Bounded per-shard queue depth; a full queue answers `Busy`.
    pub queue_depth: usize,
    /// Per-tenant admission limits.
    pub admission: AdmissionConfig,
    /// Device memory budget installed on each tenant context
    /// (`set_memory_budget`) — the runtime half of BA002. `None` leaves
    /// the device unbudgeted.
    pub device_memory_budget: Option<usize>,
    /// Per-launch deadline enforced by the connection-side watchdog:
    /// a `Run`/`Reduce` that does not answer in time is cancelled (its
    /// context's cancel token fires) and the client gets a `Timeout`
    /// reply. `None` disables the watchdog.
    pub launch_deadline: Option<Duration>,
    /// Per-shard circuit breaker over caught panics. `None` preserves
    /// the pre-breaker behavior: a panic discards the tenant, nothing
    /// cools down, nothing probes.
    pub breaker: Option<BreakerConfig>,
    /// Deterministic fault plan armed on each tenant's *first* context
    /// (a context re-created after poisoning starts clean, so an
    /// injected fault schedule cannot wedge a tenant forever). Test
    /// harness / fault-drill knob; `None` in production.
    pub fault_plan: Option<FaultPlan>,
    /// Recovery policy installed on every tenant context: in-context
    /// retry/backoff, panic containment, verified CPU failover. `None`
    /// leaves recovery to the serve layer (panic shield + breaker).
    pub resilience: Option<ResiliencePolicy>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            backend: "cpu",
            shards: std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
            queue_depth: 64,
            admission: AdmissionConfig::default(),
            device_memory_budget: None,
            launch_deadline: None,
            breaker: None,
            fault_plan: None,
            resilience: None,
        }
    }
}

/// Service-wide counters, shared across shards and connections.
#[derive(Debug, Default)]
pub struct Stats {
    /// Frames decoded into requests.
    pub requests: AtomicU64,
    /// Replies carrying an error.
    pub errors: AtomicU64,
    /// Requests refused by admission control.
    pub admission_rejected: AtomicU64,
    /// Requests shed because a shard queue was full.
    pub busy_rejected: AtomicU64,
    /// Panics caught by the shard shield (the zero-panic gate reads
    /// this; anything nonzero is a toolchain bug surfaced as `Internal`
    /// errors, never a process abort).
    pub panics: AtomicU64,
    /// Kernel launches executed.
    pub runs: AtomicU64,
    /// Launches that rode a coalesced same-kernel batch of ≥ 2.
    pub coalesced_runs: AtomicU64,
    /// Launches cancelled by the watchdog (deadline exceeded).
    pub timeouts: AtomicU64,
    /// In-context transient retries performed by the recovery ladder.
    pub retries: AtomicU64,
    /// Verified backend failovers performed by the recovery ladder.
    pub failovers: AtomicU64,
    /// Corruptions caught by redundant execution.
    pub corruptions_detected: AtomicU64,
    /// Requests shed because a shard's breaker was open.
    pub breaker_rejected: AtomicU64,
    /// Closed/half-open → open transitions.
    pub breaker_trips: AtomicU64,
    /// Half-open probe requests admitted.
    pub breaker_probes: AtomicU64,
}

impl Stats {
    fn snapshot(&self, cache: &ModuleCache) -> Vec<(String, u64)> {
        let (hits, misses) = cache.stats();
        vec![
            ("requests".into(), self.requests.load(Ordering::Relaxed)),
            ("errors".into(), self.errors.load(Ordering::Relaxed)),
            (
                "admission_rejected".into(),
                self.admission_rejected.load(Ordering::Relaxed),
            ),
            ("busy_rejected".into(), self.busy_rejected.load(Ordering::Relaxed)),
            ("panics".into(), self.panics.load(Ordering::Relaxed)),
            ("runs".into(), self.runs.load(Ordering::Relaxed)),
            (
                "coalesced_runs".into(),
                self.coalesced_runs.load(Ordering::Relaxed),
            ),
            ("timeouts".into(), self.timeouts.load(Ordering::Relaxed)),
            ("retries".into(), self.retries.load(Ordering::Relaxed)),
            ("failovers".into(), self.failovers.load(Ordering::Relaxed)),
            (
                "corruptions_detected".into(),
                self.corruptions_detected.load(Ordering::Relaxed),
            ),
            (
                "breaker_rejected".into(),
                self.breaker_rejected.load(Ordering::Relaxed),
            ),
            ("breaker_trips".into(), self.breaker_trips.load(Ordering::Relaxed)),
            (
                "breaker_probes".into(),
                self.breaker_probes.load(Ordering::Relaxed),
            ),
            ("cache_hits".into(), hits),
            ("cache_misses".into(), misses),
        ]
    }
}

/// One queued unit of work: a decoded request plus its reply slot and
/// (for watchdog-covered launches) the cancel token the connection
/// thread fires on deadline expiry.
struct Job {
    request: Request,
    reply: SyncSender<Response>,
    cancel: Option<CancelToken>,
}

/// Per-shard circuit breaker over caught panics (see [`BreakerConfig`]).
/// Owned by the shard thread — no locking.
struct Breaker {
    config: Option<BreakerConfig>,
    consecutive_failures: u32,
    state: BreakerState,
}

#[derive(Debug, PartialEq)]
enum BreakerState {
    Closed,
    Open { until: Instant },
    HalfOpen,
}

/// Admission verdict for one job against the shard's breaker.
enum BreakerAdmit {
    /// Execute normally.
    Proceed,
    /// Execute as the half-open probe (its outcome decides the state).
    Probe,
    /// Shed: the breaker is open for `retry_after` more.
    Shed { retry_after: Duration },
}

impl Breaker {
    fn new(config: Option<BreakerConfig>) -> Breaker {
        Breaker {
            config,
            consecutive_failures: 0,
            state: BreakerState::Closed,
        }
    }

    fn admit(&mut self, now: Instant) -> BreakerAdmit {
        if self.config.is_none() {
            return BreakerAdmit::Proceed;
        }
        match self.state {
            BreakerState::Closed => BreakerAdmit::Proceed,
            BreakerState::Open { until } if now < until => BreakerAdmit::Shed {
                retry_after: until - now,
            },
            // Cooldown elapsed (or a probe is somehow already due):
            // admit exactly one probe.
            BreakerState::Open { .. } | BreakerState::HalfOpen => {
                self.state = BreakerState::HalfOpen;
                BreakerAdmit::Probe
            }
        }
    }

    /// Records a job outcome. Returns `true` when this outcome tripped
    /// the breaker (for the `breaker_trips` counter).
    fn record(&mut self, probe: bool, panicked: bool, now: Instant) -> bool {
        let Some(config) = &self.config else { return false };
        if panicked {
            self.consecutive_failures += 1;
            if probe || self.consecutive_failures >= config.failure_threshold {
                self.state = BreakerState::Open {
                    until: now + config.cooldown,
                };
                self.consecutive_failures = 0;
                return true;
            }
        } else {
            self.consecutive_failures = 0;
            if probe {
                self.state = BreakerState::Closed;
            }
        }
        false
    }
}

/// All state of one tenant, owned by its shard thread.
struct Tenant {
    ctx: BrookContext,
    /// Module handle → adopted module + the artifact it came from (the
    /// artifact carries the static report admission budgets against).
    modules: HashMap<u64, (BrookModule, Arc<ModuleArtifact>)>,
    /// Stream handle → stream + admission charge + element count.
    streams: HashMap<u64, (Stream, usize, usize)>,
    admission: Admission,
    next_handle: u64,
}

impl Tenant {
    fn fresh_handle(&mut self) -> u64 {
        self.next_handle += 1;
        self.next_handle
    }
}

/// A running service instance. Dropping the handle after
/// [`shutdown`](Server::shutdown) (or letting tests drop their clients)
/// winds the threads down.
pub struct Server {
    addr: SocketAddr,
    stats: Arc<Stats>,
    cache: Arc<ModuleCache>,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds a TCP listener (use port 0 for an ephemeral port) and
    /// starts the shard pool.
    ///
    /// # Errors
    /// Socket errors, or an unknown backend name.
    pub fn start(addr: &str, config: ServerConfig) -> io::Result<Server> {
        if !registered_backends().iter().any(|b| b.name == config.backend) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown backend `{}`", config.backend),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(Stats::default());
        let cache = Arc::new(ModuleCache::new());
        let stopping = Arc::new(AtomicBool::new(false));

        let shards: Vec<SyncSender<Job>> = (0..config.shards.max(1))
            .map(|_| {
                let (tx, rx) = sync_channel::<Job>(config.queue_depth.max(1));
                spawn_shard(rx, config.clone(), Arc::clone(&stats), Arc::clone(&cache));
                tx
            })
            .collect();

        let acceptor = {
            let stats = Arc::clone(&stats);
            let cache = Arc::clone(&cache);
            let stopping = Arc::clone(&stopping);
            let launch_deadline = config.launch_deadline;
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    // Replies are small frames in a request/reply
                    // ping-pong: without nodelay every exchange eats a
                    // delayed-ACK round (~40 ms).
                    let _ = conn.set_nodelay(true);
                    let shards = shards.clone();
                    let stats = Arc::clone(&stats);
                    let cache = Arc::clone(&cache);
                    std::thread::spawn(move || {
                        serve_connection(conn, &shards, &stats, &cache, launch_deadline);
                    });
                }
            })
        };

        Ok(Server {
            addr,
            stats,
            cache,
            stopping,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolve the ephemeral port for clients).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> Vec<(String, u64)> {
        self.stats.snapshot(&self.cache)
    }

    /// Stops accepting connections and unblocks the acceptor. Existing
    /// connections finish their in-flight request and wind down when
    /// clients disconnect.
    pub fn shutdown(mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Stable tenant → shard assignment.
fn shard_of(tenant: &str, shards: usize) -> usize {
    let mut h = DefaultHasher::new();
    tenant.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// Connection reader loop: frame → decode → route → reply. `Run` and
/// `Reduce` jobs are watched: if the shard does not answer within
/// `launch_deadline`, the connection thread fires the job's cancel
/// token (unwedging any injected hang or backoff sleep in the
/// recovery ladder) and answers `Timeout` on the shard's behalf.
fn serve_connection(
    mut conn: TcpStream,
    shards: &[SyncSender<Job>],
    stats: &Stats,
    cache: &ModuleCache,
    launch_deadline: Option<Duration>,
) {
    loop {
        let frame = match read_frame(&mut conn) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => return, // clean EOF or dead socket
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let reply = match Request::decode(&frame) {
            Err(e) => Response::error(ErrorCode::Malformed, e.to_string()),
            // Stats is tenant-less: answered here, off the shard path.
            Ok(Request::Stats) => Response::Stats(stats.snapshot(cache)),
            Ok(request) => {
                let shard = shard_of(request.tenant().unwrap_or(""), shards.len());
                let deadline = match &request {
                    Request::Run { .. } | Request::Reduce { .. } => launch_deadline,
                    _ => None,
                };
                let cancel = deadline.map(|_| CancelToken::new());
                let (tx, rx) = sync_channel::<Response>(1);
                let job = Job {
                    request,
                    reply: tx,
                    cancel: cancel.clone(),
                };
                match shards[shard].try_send(job) {
                    Ok(()) => {
                        let received = match deadline {
                            Some(d) => rx.recv_timeout(d).map_err(|e| match e {
                                RecvTimeoutError::Timeout => Some(d),
                                RecvTimeoutError::Disconnected => None,
                            }),
                            None => rx.recv().map_err(|_| None),
                        };
                        match received {
                            Ok(r) => r,
                            Err(Some(d)) => {
                                // Watchdog: cancel the in-flight launch
                                // and answer for it. The shard's late
                                // reply lands in a dropped channel.
                                if let Some(tok) = &cancel {
                                    tok.cancel();
                                }
                                stats.timeouts.fetch_add(1, Ordering::Relaxed);
                                Response::error(
                                    ErrorCode::Timeout,
                                    format!("launch exceeded its {} ms deadline", d.as_millis()),
                                )
                            }
                            Err(None) => Response::error(ErrorCode::Internal, "shard dropped the request"),
                        }
                    }
                    Err(TrySendError::Full(_)) => {
                        stats.busy_rejected.fetch_add(1, Ordering::Relaxed);
                        Response::error_with_retry(
                            ErrorCode::Busy,
                            format!("shard {shard} queue is full; retry"),
                            BUSY_RETRY_HINT_MS,
                        )
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        Response::error(ErrorCode::Internal, "shard is gone")
                    }
                }
            }
        };
        if matches!(reply, Response::Error { .. }) {
            stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        if write_frame(&mut conn, &reply.encode()).is_err() {
            return;
        }
    }
}

/// Spawns one shard worker owning its tenants and its circuit breaker.
fn spawn_shard(rx: Receiver<Job>, config: ServerConfig, stats: Arc<Stats>, cache: Arc<ModuleCache>) {
    std::thread::spawn(move || {
        let mut tenants: HashMap<String, Tenant> = HashMap::new();
        // Tenant names whose first context already consumed the
        // configured fault plan (see `ServerConfig::fault_plan`).
        let mut plan_armed: HashSet<String> = HashSet::new();
        let mut breaker = Breaker::new(config.breaker.clone());
        // Block for the first job, then drain whatever else is queued
        // so back-to-back same-kernel launches can coalesce.
        while let Ok(first) = rx.recv() {
            let mut batch = vec![first];
            while let Ok(job) = rx.try_recv() {
                batch.push(job);
            }
            // Count maximal runs of consecutive same-(tenant, module,
            // kernel) launches: those execute back-to-back over the
            // same pre-compiled lane/tier chains — one "batched pass"
            // from the pipeline's perspective. Order within the batch
            // is preserved (same-tenant requests must not reorder).
            let mut i = 0;
            while i < batch.len() {
                let mut j = i + 1;
                if let Request::Run {
                    tenant,
                    module,
                    kernel,
                    ..
                } = &batch[i].request
                {
                    while j < batch.len() {
                        match &batch[j].request {
                            Request::Run {
                                tenant: t2,
                                module: m2,
                                kernel: k2,
                                ..
                            } if t2 == tenant && m2 == module && k2 == kernel => j += 1,
                            _ => break,
                        }
                    }
                    if j - i >= 2 {
                        stats.coalesced_runs.fetch_add((j - i) as u64, Ordering::Relaxed);
                    }
                }
                for job in &batch[i..j] {
                    let response = match breaker.admit(Instant::now()) {
                        BreakerAdmit::Shed { retry_after } => {
                            stats.breaker_rejected.fetch_add(1, Ordering::Relaxed);
                            Response::error_with_retry(
                                ErrorCode::Retryable,
                                "shard breaker is open (cooling down after repeated panics)",
                                (retry_after.as_millis() as u64).max(1),
                            )
                        }
                        admit => {
                            let probe = matches!(admit, BreakerAdmit::Probe);
                            if probe {
                                stats.breaker_probes.fetch_add(1, Ordering::Relaxed);
                            }
                            let (response, panicked) =
                                shielded_handle(&mut tenants, &mut plan_armed, job, &config, &stats, &cache);
                            if breaker.record(probe, panicked, Instant::now()) {
                                stats.breaker_trips.fetch_add(1, Ordering::Relaxed);
                            }
                            response
                        }
                    };
                    let _ = job.reply.send(response);
                }
                i = j;
            }
        }
    });
}

/// Executes one request under the panic shield: a caught panic becomes
/// an `Internal` error reply and poisons (drops) the tenant whose state
/// can no longer be trusted — the *process* keeps serving. The second
/// return is the panic flag the shard's breaker records.
fn shielded_handle(
    tenants: &mut HashMap<String, Tenant>,
    plan_armed: &mut HashSet<String>,
    job: &Job,
    config: &ServerConfig,
    stats: &Stats,
    cache: &ModuleCache,
) -> (Response, bool) {
    match catch_unwind(AssertUnwindSafe(|| {
        handle_request(tenants, plan_armed, job, config, stats, cache)
    })) {
        Ok(r) => (r, false),
        Err(_) => {
            stats.panics.fetch_add(1, Ordering::Relaxed);
            if let Some(tenant) = job.request.tenant() {
                tenants.remove(tenant);
            }
            (
                Response::error(ErrorCode::Internal, "request panicked; tenant state discarded"),
                true,
            )
        }
    }
}

fn brook_error_response(e: BrookError) -> Response {
    let code = match &e {
        BrookError::FrontEnd(_) => ErrorCode::Compile,
        BrookError::Certification(_) => ErrorCode::Certification,
        BrookError::Codegen(_) | BrookError::Gl(_) => ErrorCode::Device,
        BrookError::Usage(_) => ErrorCode::Usage,
        BrookError::Internal(_) => ErrorCode::Internal,
        BrookError::Timeout(_) => ErrorCode::Timeout,
        // Device loss that escaped the in-context recovery ladder:
        // transient from the client's perspective (re-dispatch is
        // idempotent and the ladder/failover may succeed next time).
        BrookError::DeviceLost(_) => ErrorCode::Retryable,
    };
    Response::error(code, e.to_string())
}

fn admission_response(e: AdmissionError) -> Response {
    Response::error(ErrorCode::AdmissionRejected, e.to_string())
}

fn tenant_entry<'t>(
    tenants: &'t mut HashMap<String, Tenant>,
    plan_armed: &mut HashSet<String>,
    name: &str,
    config: &ServerConfig,
) -> &'t mut Tenant {
    tenants.entry(name.to_owned()).or_insert_with(|| {
        let spec = registered_backends()
            .into_iter()
            .find(|b| b.name == config.backend)
            .expect("backend validated at Server::start");
        let mut ctx = (spec.make)();
        ctx.set_memory_budget(config.device_memory_budget);
        if let Some(policy) = &config.resilience {
            ctx.set_resilience(policy.clone())
                .expect("fresh context has no streams to snapshot");
        }
        // Arm the fault plan only on the tenant's *first* context: a
        // context rebuilt after poisoning starts clean, so an injected
        // schedule cannot wedge the tenant forever.
        if let Some(plan) = &config.fault_plan {
            if plan_armed.insert(name.to_owned()) {
                ctx.set_fault_plan(plan.clone());
            }
        }
        Tenant {
            ctx,
            modules: HashMap::new(),
            streams: HashMap::new(),
            admission: Admission::new(config.admission),
            next_handle: 0,
        }
    })
}

/// Folds the recovery ladder's per-launch evidence into the service
/// counters after a `Run`/`Reduce`.
fn drain_resilience(t: &mut Tenant, stats: &Stats) {
    for rec in t.ctx.take_resilience_records() {
        stats.retries.fetch_add(rec.retries as u64, Ordering::Relaxed);
        stats
            .corruptions_detected
            .fetch_add(rec.corruptions_detected as u64, Ordering::Relaxed);
        if rec.failover.is_some() {
            stats.failovers.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn handle_request(
    tenants: &mut HashMap<String, Tenant>,
    plan_armed: &mut HashSet<String>,
    job: &Job,
    config: &ServerConfig,
    stats: &Stats,
    cache: &ModuleCache,
) -> Response {
    let request = &job.request;
    match request {
        Request::Stats => unreachable!("answered on the connection thread"),
        Request::Compile { tenant, source } => {
            let t = tenant_entry(tenants, plan_armed, tenant, config);
            let key = CacheKey {
                source_hash: hash_source(source),
                cert_fingerprint: t.ctx.cert_config().fingerprint(),
                backend: config.backend,
            };
            let artifact = match cache.get_or_compile(key, || t.ctx.compile_artifact(source)) {
                Ok(a) => a,
                Err(e) => return brook_error_response(e),
            };
            let module = match t.ctx.adopt_artifact(&artifact) {
                Ok(m) => m,
                Err(e) => return brook_error_response(e),
            };
            let handle = t.fresh_handle();
            t.modules.insert(handle, (module, artifact));
            Response::Handle(handle)
        }
        Request::CreateStream { tenant, shape, width } => {
            let t = tenant_entry(tenants, plan_armed, tenant, config);
            let shape: Vec<usize> = shape.iter().map(|d| *d as usize).collect();
            let charge = match t.admission.admit_stream(&shape, *width) {
                Ok(c) => c,
                Err(e) => {
                    stats.admission_rejected.fetch_add(1, Ordering::Relaxed);
                    return admission_response(e);
                }
            };
            match t.ctx.stream_with_width(&shape, *width) {
                Ok(s) => {
                    let elems = shape.iter().product::<usize>() * *width as usize;
                    let handle = t.fresh_handle();
                    t.streams.insert(handle, (s, charge, elems));
                    Response::Handle(handle)
                }
                Err(e) => {
                    t.admission.release_stream(charge);
                    brook_error_response(e)
                }
            }
        }
        Request::Write { tenant, stream, data } => {
            let t = tenant_entry(tenants, plan_armed, tenant, config);
            let Some((s, _, _)) = t.streams.get(stream) else {
                return unknown_handle("stream", *stream);
            };
            let s = *s;
            match t.ctx.write(&s, data) {
                Ok(()) => Response::Ok,
                Err(e) => brook_error_response(e),
            }
        }
        Request::Read { tenant, stream } => {
            let t = tenant_entry(tenants, plan_armed, tenant, config);
            let Some((s, _, _)) = t.streams.get(stream) else {
                return unknown_handle("stream", *stream);
            };
            let s = *s;
            match t.ctx.read(&s) {
                Ok(data) => Response::Data(data),
                Err(e) => brook_error_response(e),
            }
        }
        Request::Run {
            tenant,
            module,
            kernel,
            args,
        } => {
            let t = tenant_entry(tenants, plan_armed, tenant, config);
            let Some((m, artifact)) = t.modules.get(module) else {
                return unknown_handle("module", *module);
            };
            if !artifact.kernels().iter().any(|k| k == kernel) {
                return Response::error(ErrorCode::Usage, format!("module has no kernel `{kernel}`"));
            }
            // Admission: charge the launch at the largest bound
            // stream's element count — a static upper bound on the
            // output domain (every output is one of the bound streams).
            let mut domain_elems: u64 = 0;
            let mut bound: Vec<Arg<'_>> = Vec::with_capacity(args.len());
            for a in args {
                match a {
                    WireArg::Stream(h) => {
                        let Some((s, _, elems)) = t.streams.get(h) else {
                            return unknown_handle("stream", *h);
                        };
                        domain_elems = domain_elems.max(*elems as u64);
                        bound.push(Arg::Stream(s));
                    }
                    WireArg::Float(v) => bound.push(Arg::Float(*v)),
                    WireArg::Int(v) => bound.push(Arg::Int(*v)),
                    WireArg::Float4(v) => bound.push(Arg::Float4(*v)),
                }
            }
            if let Err(e) = t.admission.admit_launch(artifact, kernel, domain_elems) {
                stats.admission_rejected.fetch_add(1, Ordering::Relaxed);
                return admission_response(e);
            }
            if let Some(tok) = &job.cancel {
                t.ctx.set_cancel_token(tok.clone());
            }
            let m = m.clone();
            let result = t.ctx.run(&m, kernel, &bound);
            drain_resilience(t, stats);
            match result {
                Ok(()) => {
                    stats.runs.fetch_add(1, Ordering::Relaxed);
                    Response::Ok
                }
                Err(e) => brook_error_response(e),
            }
        }
        Request::Reduce {
            tenant,
            module,
            kernel,
            stream,
        } => {
            let t = tenant_entry(tenants, plan_armed, tenant, config);
            let Some((m, artifact)) = t.modules.get(module) else {
                return unknown_handle("module", *module);
            };
            if !artifact.kernels().iter().any(|k| k == kernel) {
                return Response::error(ErrorCode::Usage, format!("module has no kernel `{kernel}`"));
            }
            let Some((s, _, elems)) = t.streams.get(stream) else {
                return unknown_handle("stream", *stream);
            };
            if let Err(e) = t.admission.admit_launch(artifact, kernel, *elems as u64) {
                stats.admission_rejected.fetch_add(1, Ordering::Relaxed);
                return admission_response(e);
            }
            if let Some(tok) = &job.cancel {
                t.ctx.set_cancel_token(tok.clone());
            }
            let (m, s) = (m.clone(), *s);
            let result = t.ctx.reduce(&m, kernel, &s);
            drain_resilience(t, stats);
            match result {
                Ok(v) => Response::Scalar(v),
                Err(e) => brook_error_response(e),
            }
        }
        Request::DropStream { tenant, stream } => {
            let t = tenant_entry(tenants, plan_armed, tenant, config);
            match t.streams.remove(stream) {
                Some((_, charge, _)) => {
                    t.admission.release_stream(charge);
                    Response::Ok
                }
                None => unknown_handle("stream", *stream),
            }
        }
    }
}

fn unknown_handle(kind: &str, handle: u64) -> Response {
    Response::error(ErrorCode::Malformed, format!("unknown {kind} handle {handle}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenants_hash_stably_within_bounds() {
        for shards in 1..8 {
            for t in ["a", "tenant-1", "tenant-2", ""] {
                let s = shard_of(t, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(t, shards), "stable");
            }
        }
    }

    #[test]
    fn breaker_lifecycle_state_machine() {
        let t0 = Instant::now();
        let cfg = BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(100),
        };
        let mut b = Breaker::new(Some(cfg));
        // Closed: failures below the threshold don't trip.
        assert!(matches!(b.admit(t0), BreakerAdmit::Proceed));
        assert!(!b.record(false, true, t0));
        assert!(matches!(b.admit(t0), BreakerAdmit::Proceed));
        // A success in between resets the consecutive count.
        assert!(!b.record(false, false, t0));
        assert!(!b.record(false, true, t0));
        // Second consecutive panic: trip.
        assert!(b.record(false, true, t0));
        // Open: shed with a positive remaining cooldown.
        match b.admit(t0 + Duration::from_millis(10)) {
            BreakerAdmit::Shed { retry_after } => {
                assert_eq!(retry_after, Duration::from_millis(90));
            }
            _ => panic!("open breaker must shed"),
        }
        // Cooldown over: exactly one probe is admitted.
        let t1 = t0 + Duration::from_millis(150);
        assert!(matches!(b.admit(t1), BreakerAdmit::Probe));
        // Probe failure: re-trip immediately (no threshold).
        assert!(b.record(true, true, t1));
        assert!(matches!(b.admit(t1), BreakerAdmit::Shed { .. }));
        // Second probe succeeds: closed again.
        let t2 = t1 + Duration::from_millis(150);
        assert!(matches!(b.admit(t2), BreakerAdmit::Probe));
        assert!(!b.record(true, false, t2));
        assert_eq!(b.state, BreakerState::Closed);
        assert!(matches!(b.admit(t2), BreakerAdmit::Proceed));
    }

    #[test]
    fn disabled_breaker_never_sheds() {
        let mut b = Breaker::new(None);
        let now = Instant::now();
        for _ in 0..10 {
            assert!(!b.record(false, true, now));
            assert!(matches!(b.admit(now), BreakerAdmit::Proceed));
        }
    }

    #[test]
    fn unknown_backend_is_rejected_at_start() {
        let err = match Server::start(
            "127.0.0.1:0",
            ServerConfig {
                backend: "quantum",
                ..ServerConfig::default()
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("unknown backend must not start"),
        };
        assert!(err.to_string().contains("quantum"));
    }
}
