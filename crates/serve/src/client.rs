//! A blocking wire-protocol client: one request in flight per
//! connection (open several connections for pipelining — the server
//! shards by tenant, not by socket).

use crate::wire::{read_frame, write_frame, DecodeError, ErrorCode, Request, Response, WireArg};
use std::io;
use std::net::TcpStream;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's reply did not decode.
    Decode(DecodeError),
    /// The server answered with a structured error.
    Server { code: ErrorCode, message: String },
    /// The server answered with the wrong payload kind for the request.
    UnexpectedReply(Response),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Decode(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => write!(f, "server {code:?}: {message}"),
            ClientError::UnexpectedReply(r) => write!(f, "unexpected reply {r:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The structured server error code, when this is a server error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// A connected client acting for one tenant. The tenant name rides on
/// every request; two clients with the same tenant name share that
/// tenant's server-side context.
pub struct Client {
    conn: TcpStream,
    tenant: String,
}

impl Client {
    /// Connects to a server and binds this client to `tenant`.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: impl std::net::ToSocketAddrs, tenant: &str) -> io::Result<Client> {
        let conn = TcpStream::connect(addr)?;
        conn.set_nodelay(true)?;
        Ok(Client {
            conn,
            tenant: tenant.to_owned(),
        })
    }

    fn call(&mut self, req: &Request) -> ClientResult<Response> {
        write_frame(&mut self.conn, &req.encode())?;
        let frame = read_frame(&mut self.conn)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        let resp = Response::decode(&frame).map_err(ClientError::Decode)?;
        if let Response::Error { code, message } = resp {
            return Err(ClientError::Server { code, message });
        }
        Ok(resp)
    }

    /// Compiles Brook source (or fetches it from the shared cache),
    /// returning a module handle.
    ///
    /// # Errors
    /// Transport, compile, certification or admission failures.
    pub fn compile(&mut self, source: &str) -> ClientResult<u64> {
        match self.call(&Request::Compile {
            tenant: self.tenant.clone(),
            source: source.to_owned(),
        })? {
            Response::Handle(h) => Ok(h),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Allocates a stream of `floatN` elements.
    ///
    /// # Errors
    /// Transport, usage or admission failures.
    pub fn create_stream(&mut self, shape: &[u32], width: u8) -> ClientResult<u64> {
        match self.call(&Request::CreateStream {
            tenant: self.tenant.clone(),
            shape: shape.to_vec(),
            width,
        })? {
            Response::Handle(h) => Ok(h),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Uploads values into a stream.
    ///
    /// # Errors
    /// Transport or usage failures.
    pub fn write(&mut self, stream: u64, data: &[f32]) -> ClientResult<()> {
        match self.call(&Request::Write {
            tenant: self.tenant.clone(),
            stream,
            data: data.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Downloads a stream.
    ///
    /// # Errors
    /// Transport or usage failures.
    pub fn read(&mut self, stream: u64) -> ClientResult<Vec<f32>> {
        match self.call(&Request::Read {
            tenant: self.tenant.clone(),
            stream,
        })? {
            Response::Data(d) => Ok(d),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Launches a kernel over its output domain.
    ///
    /// # Errors
    /// Transport, usage, device or admission failures.
    pub fn run(&mut self, module: u64, kernel: &str, args: &[WireArg]) -> ClientResult<()> {
        match self.call(&Request::Run {
            tenant: self.tenant.clone(),
            module,
            kernel: kernel.to_owned(),
            args: args.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Folds a stream to a scalar with a reduce kernel.
    ///
    /// # Errors
    /// Transport, usage, device or admission failures.
    pub fn reduce(&mut self, module: u64, kernel: &str, stream: u64) -> ClientResult<f32> {
        match self.call(&Request::Reduce {
            tenant: self.tenant.clone(),
            module,
            kernel: kernel.to_owned(),
            stream,
        })? {
            Response::Scalar(v) => Ok(v),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Releases a stream and its admission charge.
    ///
    /// # Errors
    /// Transport failures or an unknown handle.
    pub fn drop_stream(&mut self, stream: u64) -> ClientResult<()> {
        match self.call(&Request::DropStream {
            tenant: self.tenant.clone(),
            stream,
        })? {
            Response::Ok => Ok(()),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Server-wide counters as name/value pairs.
    ///
    /// # Errors
    /// Transport failures.
    pub fn stats(&mut self) -> ClientResult<Vec<(String, u64)>> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }
}
