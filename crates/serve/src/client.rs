//! A blocking wire-protocol client: one request in flight per
//! connection (open several connections for pipelining — the server
//! shards by tenant, not by socket).
//!
//! Transport robustness: every connection carries socket read/write
//! timeouts (default [`DEFAULT_SOCKET_TIMEOUT`]), so a stalled or
//! wedged server surfaces as a typed [`ClientError::TimedOut`] instead
//! of hanging the caller forever. Shed-load and cooldown replies
//! (`Busy`, `Retryable`, `Timeout`) can be retried transparently with
//! [`Client::with_retry`], which honors the server's `retry_after_ms`
//! hint when it exceeds the policy's own jittered backoff.

use crate::wire::{read_frame, write_frame, DecodeError, ErrorCode, Request, Response, WireArg};
use brook_auto::inject::Backoff;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Socket read/write timeout applied by [`Client::connect`].
pub const DEFAULT_SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The socket timed out waiting for the server (stalled peer,
    /// unread reply). The connection's stream state is indeterminate —
    /// reconnect rather than reuse.
    TimedOut,
    /// The server's reply did not decode.
    Decode(DecodeError),
    /// The server answered with a structured error. `retry_after_ms`
    /// is its back-off hint on shed/cooldown replies.
    Server {
        code: ErrorCode,
        message: String,
        retry_after_ms: Option<u64>,
    },
    /// The server answered with the wrong payload kind for the request.
    UnexpectedReply(Response),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::TimedOut => write!(f, "timed out waiting for the server"),
            ClientError::Server { code, message, .. } => write!(f, "server {code:?}: {message}"),
            ClientError::Decode(e) => write!(f, "{e}"),
            ClientError::UnexpectedReply(r) => write!(f, "unexpected reply {r:?}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        // Read/write socket timeouts surface as WouldBlock (unix) or
        // TimedOut (windows); both mean "the peer stalled".
        if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) {
            return ClientError::TimedOut;
        }
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The structured server error code, when this is a server error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }

    /// The server's back-off hint, when the reply carried one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ClientError::Server { retry_after_ms, .. } => *retry_after_ms,
            _ => None,
        }
    }

    /// Whether re-issuing the same request may succeed (shed load,
    /// breaker cooldown, missed deadline — all with idempotent
    /// server-side semantics).
    pub fn is_retryable(&self) -> bool {
        self.code().is_some_and(ErrorCode::is_retryable)
    }
}

/// Bounded-retry policy for [`Client::with_retry`]: jittered
/// exponential backoff, overridden upward by the server's
/// `retry_after_ms` hint when present.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). 0 behaves as 1.
    pub max_attempts: u32,
    /// Backoff base in milliseconds for the first retry.
    pub backoff_base_ms: u64,
    /// Backoff cap in milliseconds.
    pub backoff_cap_ms: u64,
    /// Jitter seed — fixed seed, reproducible pause schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            backoff_base_ms: 2,
            backoff_cap_ms: 200,
            seed: 0x5eed,
        }
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = std::result::Result<T, ClientError>;

/// A connected client acting for one tenant. The tenant name rides on
/// every request; two clients with the same tenant name share that
/// tenant's server-side context.
pub struct Client {
    conn: TcpStream,
    tenant: String,
}

impl Client {
    /// Connects to a server and binds this client to `tenant`, with
    /// [`DEFAULT_SOCKET_TIMEOUT`] read/write timeouts.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect(addr: impl std::net::ToSocketAddrs, tenant: &str) -> io::Result<Client> {
        Client::connect_with_timeout(addr, tenant, Some(DEFAULT_SOCKET_TIMEOUT))
    }

    /// Connects with explicit socket read/write timeouts (`None`
    /// blocks forever — the pre-timeout behavior).
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect_with_timeout(
        addr: impl std::net::ToSocketAddrs,
        tenant: &str,
        timeout: Option<Duration>,
    ) -> io::Result<Client> {
        let conn = TcpStream::connect(addr)?;
        conn.set_nodelay(true)?;
        conn.set_read_timeout(timeout)?;
        conn.set_write_timeout(timeout)?;
        Ok(Client {
            conn,
            tenant: tenant.to_owned(),
        })
    }

    fn call(&mut self, req: &Request) -> ClientResult<Response> {
        write_frame(&mut self.conn, &req.encode())?;
        let frame = read_frame(&mut self.conn)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        let resp = Response::decode(&frame).map_err(ClientError::Decode)?;
        if let Response::Error {
            code,
            message,
            retry_after_ms,
        } = resp
        {
            return Err(ClientError::Server {
                code,
                message,
                retry_after_ms,
            });
        }
        Ok(resp)
    }

    /// Runs `op` with bounded retries on retryable server errors
    /// (`Busy`, `Timeout`, `Retryable`): sleeps the larger of the
    /// policy's jittered exponential backoff and the server's
    /// `retry_after_ms` hint between attempts. Non-retryable errors
    /// (and exhaustion) surface unchanged.
    ///
    /// Only idempotent operations belong here — every Brook service
    /// request qualifies (kernels never read their own output, so
    /// re-running a launch recomputes the same values).
    ///
    /// # Errors
    /// The last attempt's error once the budget is spent, or the first
    /// non-retryable error.
    pub fn with_retry<T>(
        &mut self,
        policy: &RetryPolicy,
        mut op: impl FnMut(&mut Client) -> ClientResult<T>,
    ) -> ClientResult<T> {
        let backoff = Backoff::new(policy.backoff_base_ms, policy.backoff_cap_ms, policy.seed);
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            match op(self) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                    let pause = backoff
                        .delay(attempt)
                        .max(Duration::from_millis(e.retry_after_ms().unwrap_or(0)));
                    std::thread::sleep(pause);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Compiles Brook source (or fetches it from the shared cache),
    /// returning a module handle.
    ///
    /// # Errors
    /// Transport, compile, certification or admission failures.
    pub fn compile(&mut self, source: &str) -> ClientResult<u64> {
        match self.call(&Request::Compile {
            tenant: self.tenant.clone(),
            source: source.to_owned(),
        })? {
            Response::Handle(h) => Ok(h),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Allocates a stream of `floatN` elements.
    ///
    /// # Errors
    /// Transport, usage or admission failures.
    pub fn create_stream(&mut self, shape: &[u32], width: u8) -> ClientResult<u64> {
        match self.call(&Request::CreateStream {
            tenant: self.tenant.clone(),
            shape: shape.to_vec(),
            width,
        })? {
            Response::Handle(h) => Ok(h),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Uploads values into a stream.
    ///
    /// # Errors
    /// Transport or usage failures.
    pub fn write(&mut self, stream: u64, data: &[f32]) -> ClientResult<()> {
        match self.call(&Request::Write {
            tenant: self.tenant.clone(),
            stream,
            data: data.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Downloads a stream.
    ///
    /// # Errors
    /// Transport or usage failures.
    pub fn read(&mut self, stream: u64) -> ClientResult<Vec<f32>> {
        match self.call(&Request::Read {
            tenant: self.tenant.clone(),
            stream,
        })? {
            Response::Data(d) => Ok(d),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Launches a kernel over its output domain.
    ///
    /// # Errors
    /// Transport, usage, device or admission failures.
    pub fn run(&mut self, module: u64, kernel: &str, args: &[WireArg]) -> ClientResult<()> {
        match self.call(&Request::Run {
            tenant: self.tenant.clone(),
            module,
            kernel: kernel.to_owned(),
            args: args.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Folds a stream to a scalar with a reduce kernel.
    ///
    /// # Errors
    /// Transport, usage, device or admission failures.
    pub fn reduce(&mut self, module: u64, kernel: &str, stream: u64) -> ClientResult<f32> {
        match self.call(&Request::Reduce {
            tenant: self.tenant.clone(),
            module,
            kernel: kernel.to_owned(),
            stream,
        })? {
            Response::Scalar(v) => Ok(v),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Releases a stream and its admission charge.
    ///
    /// # Errors
    /// Transport failures or an unknown handle.
    pub fn drop_stream(&mut self, stream: u64) -> ClientResult<()> {
        match self.call(&Request::DropStream {
            tenant: self.tenant.clone(),
            stream,
        })? {
            Response::Ok => Ok(()),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }

    /// Server-wide counters as name/value pairs.
    ///
    /// # Errors
    /// Transport failures.
    pub fn stats(&mut self) -> ClientResult<Vec<(String, u64)>> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::UnexpectedReply(other)),
        }
    }
}
