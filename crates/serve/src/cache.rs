//! The shared compiled-module cache: compile once, adopt per tenant.
//!
//! The cache stores context-neutral [`ModuleArtifact`]s keyed by
//! `(source hash, cert-config fingerprint, backend name)`. A hit hands
//! back an `Arc` to the artifact; the requesting tenant's context then
//! *adopts* it ([`brook_auto::BrookContext::adopt_artifact`]), which
//! re-stamps a fresh module id and the adopting context's identity —
//! the foreign-module rejection of PR 3 keeps holding on cache hits
//! because no stamped module ever crosses tenants, only artifacts do.

use brook_auto::ModuleArtifact;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Cache key: what must agree for two tenants to share a compilation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// 64-bit hash of the Brook source text.
    pub source_hash: u64,
    /// [`brook_cert::CertConfig::fingerprint`] of the compiling context.
    pub cert_fingerprint: u64,
    /// Backend name (`cpu`, `gles2-packed`, ...): GLSL storage modes and
    /// lane/tier admission differ per backend family, so artifacts are
    /// not shared across them.
    pub backend: &'static str,
}

/// Stable hash of Brook source text (the `source_hash` key component).
pub fn hash_source(source: &str) -> u64 {
    let mut h = DefaultHasher::new();
    source.hash(&mut h);
    h.finish()
}

/// A thread-safe compiled-module cache shared by every shard.
#[derive(Default)]
pub struct ModuleCache {
    entries: Mutex<HashMap<CacheKey, Arc<ModuleArtifact>>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl ModuleCache {
    /// Fresh empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up an artifact, or compiles it with `compile` and caches
    /// the result. Only successful compilations are inserted — a failed
    /// compile leaves no entry, so a later corrected submission under a
    /// different source hash (or even a retry after a transient
    /// internal error) starts clean.
    ///
    /// The compile closure runs *outside* the cache lock: a slow
    /// compilation must not stall unrelated tenants. Two tenants racing
    /// to compile the same key may both do the work; the first insert
    /// wins and both get a shared artifact.
    ///
    /// # Errors
    /// Whatever `compile` returns, passed through untouched.
    pub fn get_or_compile<E>(
        &self,
        key: CacheKey,
        compile: impl FnOnce() -> Result<ModuleArtifact, E>,
    ) -> Result<Arc<ModuleArtifact>, E> {
        if let Some(hit) = self.entries.lock().expect("cache lock").get(&key) {
            *self.hits.lock().expect("cache lock") += 1;
            return Ok(Arc::clone(hit));
        }
        let artifact = Arc::new(compile()?);
        let mut entries = self.entries.lock().expect("cache lock");
        let entry = entries.entry(key).or_insert_with(|| Arc::clone(&artifact));
        *self.misses.lock().expect("cache lock") += 1;
        Ok(Arc::clone(entry))
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            *self.hits.lock().expect("cache lock"),
            *self.misses.lock().expect("cache lock"),
        )
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brook_auto::BrookContext;

    const SRC: &str = "kernel void id(float a<>, out float o<>) { o = a; }";

    fn key(source: &str, backend: &'static str) -> CacheKey {
        CacheKey {
            source_hash: hash_source(source),
            cert_fingerprint: BrookContext::cpu().cert_config().fingerprint(),
            backend,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ModuleCache::new();
        let mut ctx = BrookContext::cpu();
        let a = cache
            .get_or_compile(key(SRC, "cpu"), || ctx.compile_artifact(SRC))
            .expect("compile");
        let b = cache
            .get_or_compile(key(SRC, "cpu"), || -> Result<_, brook_auto::BrookError> {
                panic!("must not recompile on a hit")
            })
            .expect("hit");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failed_compile_leaves_no_entry() {
        let cache = ModuleCache::new();
        let mut ctx = BrookContext::cpu();
        let bad = "kernel void broken(float a<> { }";
        let err = cache.get_or_compile(key(bad, "cpu"), || ctx.compile_artifact(bad));
        assert!(err.is_err());
        assert!(cache.is_empty(), "failure must not be cached");
        // Same key, corrected behaviour (e.g. a transient failure
        // cleared): compiles fresh.
        let ok = cache.get_or_compile(key(bad, "cpu"), || ctx.compile_artifact(SRC));
        assert!(ok.is_ok());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_partition_by_source_config_and_backend() {
        let other_src = "kernel void id2(float a<>, out float o<>) { o = a + 0.0; }";
        let k1 = key(SRC, "cpu");
        assert_ne!(k1, key(other_src, "cpu"));
        assert_ne!(k1, key(SRC, "gles2-packed"));
        let strict = brook_cert::CertConfig {
            max_instructions: 1,
            ..brook_cert::CertConfig::default()
        };
        assert_ne!(
            strict.fingerprint(),
            brook_cert::CertConfig::default().fingerprint()
        );
    }

    #[test]
    fn adopted_artifacts_keep_foreign_module_rejection() {
        let cache = ModuleCache::new();
        let mut t0 = BrookContext::cpu();
        let mut t1 = BrookContext::cpu();
        let artifact = cache
            .get_or_compile(key(SRC, "cpu"), || t0.compile_artifact(SRC))
            .expect("compile");
        let m0 = t0.adopt_artifact(&artifact).expect("adopt t0");
        let m1 = t1.adopt_artifact(&artifact).expect("adopt t1");
        let a0 = t0.stream(&[2]).expect("stream");
        let o0 = t0.stream(&[2]).expect("stream");
        t0.write(&a0, &[1.0, 2.0]).expect("write");
        // Own adoption runs...
        t0.run(
            &m0,
            "id",
            &[brook_auto::Arg::Stream(&a0), brook_auto::Arg::Stream(&o0)],
        )
        .expect("t0 runs its adoption");
        // ...the other tenant's adoption of the *same artifact* does not.
        let err = t0
            .run(
                &m1,
                "id",
                &[brook_auto::Arg::Stream(&a0), brook_auto::Arg::Stream(&o0)],
            )
            .unwrap_err();
        assert!(matches!(err, brook_auto::BrookError::Usage(_)));
    }
}
