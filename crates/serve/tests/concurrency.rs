//! Cross-tenant concurrency at the library level: N threads × M
//! contexts drawing the same compiled artifact from one shared
//! [`ModuleCache`], asserted bit-exact against serial single-context
//! execution — and the PR 3 foreign-module guarantee surviving cache
//! hits.

use brook_auto::{Arg, BrookContext};
use brook_serve::{hash_source, CacheKey, ModuleCache};
use std::sync::Arc;

const SOURCE: &str = "kernel void fma(float x<>, float y<>, float a, out float r<>) \
                      { r = a * x + y; }\n\
                      reduce void sum(float a<>, reduce float r<>) { r += a; }";

fn key_for(ctx: &BrookContext, backend: &'static str) -> CacheKey {
    CacheKey {
        source_hash: hash_source(SOURCE),
        cert_fingerprint: ctx.cert_config().fingerprint(),
        backend,
    }
}

fn make_ctx(backend: &str) -> BrookContext {
    let spec = brook_auto::registered_backends()
        .into_iter()
        .find(|b| b.name == backend)
        .expect("backend");
    (spec.make)()
}

/// What one worker computes, given its private inputs.
fn serial_oracle(xs: &[f32], ys: &[f32], a: f32) -> (Vec<f32>, f32) {
    let mut ctx = BrookContext::cpu();
    let m = ctx.compile(SOURCE).expect("compile");
    let x = ctx.stream(&[xs.len()]).expect("x");
    let y = ctx.stream(&[ys.len()]).expect("y");
    let r = ctx.stream(&[xs.len()]).expect("r");
    ctx.write(&x, xs).expect("write");
    ctx.write(&y, ys).expect("write");
    ctx.run(
        &m,
        "fma",
        &[Arg::Stream(&x), Arg::Stream(&y), Arg::Float(a), Arg::Stream(&r)],
    )
    .expect("run");
    let out = ctx.read(&r).expect("read");
    let total = ctx.reduce(&m, "sum", &r).expect("reduce");
    (out, total)
}

#[test]
fn n_threads_m_contexts_share_one_cache_bit_exactly() {
    const THREADS: usize = 8;
    const CONTEXTS_PER_THREAD: usize = 2;
    const N: usize = 512;
    let cache = Arc::new(ModuleCache::new());
    // Warm both keys so the threaded phase deterministically exercises
    // the concurrent-hit path (racing first-misses are legal — first
    // insert wins — but make the counters nondeterministic).
    for backend in ["cpu", "cpu-parallel"] {
        let mut ctx = make_ctx(backend);
        let key = key_for(&ctx, if backend == "cpu" { "cpu" } else { "cpu-parallel" });
        cache
            .get_or_compile(key, || ctx.compile_artifact(SOURCE))
            .expect("warm");
    }

    let workers: Vec<_> = (0..THREADS)
        .map(|ti| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let mut results = Vec::new();
                for ci in 0..CONTEXTS_PER_THREAD {
                    // Alternate backends so the cache serves several
                    // keys concurrently, not just one hot entry.
                    let backend = if (ti + ci) % 2 == 0 { "cpu" } else { "cpu-parallel" };
                    let mut ctx = make_ctx(backend);
                    let artifact = cache
                        .get_or_compile(
                            key_for(&ctx, if (ti + ci) % 2 == 0 { "cpu" } else { "cpu-parallel" }),
                            || ctx.compile_artifact(SOURCE),
                        )
                        .expect("compile");
                    let m = ctx.adopt_artifact(&artifact).expect("adopt");
                    let xs: Vec<f32> = (0..N).map(|i| (ti * 31 + ci * 7 + i) as f32 * 0.125).collect();
                    let ys: Vec<f32> = (0..N).map(|i| 1.0 + i as f32 * 0.5).collect();
                    let a = 1.0 + (ti * CONTEXTS_PER_THREAD + ci) as f32;
                    let x = ctx.stream(&[N]).expect("x");
                    let y = ctx.stream(&[N]).expect("y");
                    let r = ctx.stream(&[N]).expect("r");
                    ctx.write(&x, &xs).expect("write");
                    ctx.write(&y, &ys).expect("write");
                    ctx.run(
                        &m,
                        "fma",
                        &[Arg::Stream(&x), Arg::Stream(&y), Arg::Float(a), Arg::Stream(&r)],
                    )
                    .expect("run");
                    let out = ctx.read(&r).expect("read");
                    let total = ctx.reduce(&m, "sum", &r).expect("reduce");
                    results.push((xs, ys, a, out, total));
                }
                results
            })
        })
        .collect();

    for w in workers {
        for (xs, ys, a, out, total) in w.join().expect("worker") {
            let (want_out, want_total) = serial_oracle(&xs, &ys, a);
            assert_eq!(out, want_out, "concurrent context diverged from serial");
            assert_eq!(total.to_bits(), want_total.to_bits(), "reduction diverged");
        }
    }
    // Two backends → exactly two cache entries no matter how many
    // contexts raced, and every threaded lookup hit the warm cache.
    assert_eq!(cache.len(), 2);
    let (hits, misses) = cache.stats();
    assert_eq!(misses, 2);
    assert_eq!(hits, (THREADS * CONTEXTS_PER_THREAD) as u64);
}

#[test]
fn cache_hits_do_not_bypass_foreign_module_rejection() {
    let cache = ModuleCache::new();
    let mut a = BrookContext::cpu();
    let mut b = BrookContext::cpu();
    let artifact = cache
        .get_or_compile(key_for(&a, "cpu"), || a.compile_artifact(SOURCE))
        .expect("compile");
    let m_a = a.adopt_artifact(&artifact).expect("adopt into a");
    // Context B takes the same artifact from the cache (a hit) and gets
    // its own stamped module...
    let hit = cache
        .get_or_compile(key_for(&b, "cpu"), || b.compile_artifact(SOURCE))
        .expect("hit");
    assert!(Arc::ptr_eq(&artifact, &hit), "second lookup must be a hit");
    let m_b = b.adopt_artifact(&hit).expect("adopt into b");
    let s_b = b.stream(&[4]).expect("stream");
    b.write(&s_b, &[1.0, 2.0, 3.0, 4.0]).expect("write");
    let r_b = b.stream(&[4]).expect("stream");
    b.run(
        &m_b,
        "fma",
        &[
            Arg::Stream(&s_b),
            Arg::Stream(&s_b),
            Arg::Float(1.0),
            Arg::Stream(&r_b),
        ],
    )
    .expect("b runs its own module");
    // ...but context A's module handle is still rejected in B, cache
    // hit or not: adoption re-stamps, it does not share identity.
    let err = b
        .run(
            &m_a,
            "fma",
            &[
                Arg::Stream(&s_b),
                Arg::Stream(&s_b),
                Arg::Float(1.0),
                Arg::Stream(&r_b),
            ],
        )
        .unwrap_err();
    assert!(
        matches!(err, brook_auto::BrookError::Usage(_)),
        "foreign module must be a usage error, got {err:?}"
    );
    // And A cannot use B's streams either.
    let err = a.read(&s_b).unwrap_err();
    assert!(matches!(err, brook_auto::BrookError::Usage(_)));
}

#[test]
fn cert_config_divergence_partitions_the_cache() {
    // Two tenants with different certification configs must never share
    // an artifact, even for identical source on the same backend.
    let cache = ModuleCache::new();
    let mut a = BrookContext::cpu();
    let mut strict = BrookContext::with_backend(
        Box::new(brook_auto::CpuBackend::new()),
        brook_auto::CertConfig {
            max_loop_trips: 64,
            ..brook_auto::CertConfig::default()
        },
    );
    let k_a = key_for(&a, "cpu");
    let k_b = key_for(&strict, "cpu");
    assert_ne!(k_a, k_b, "diverged configs must produce different keys");
    let art_a = cache
        .get_or_compile(k_a, || a.compile_artifact(SOURCE))
        .expect("compile a");
    let art_b = cache
        .get_or_compile(k_b, || strict.compile_artifact(SOURCE))
        .expect("compile b");
    assert!(!Arc::ptr_eq(&art_a, &art_b));
    assert_eq!(cache.len(), 2);
}
