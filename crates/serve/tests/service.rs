//! End-to-end service tests over real sockets: multi-tenant isolation,
//! shared-cache correctness, admission control and backpressure — all
//! asserted bit-exact against serial single-tenant execution and with
//! the zero-panic gate enforced on every exit path.

use brook_serve::{AdmissionConfig, Client, ClientError, ErrorCode, Server, ServerConfig, WireArg};
use std::collections::HashMap;

const SAXPY: &str = "kernel void saxpy(float x<>, float y<>, float a, out float r<>) { r = a * x + y; }";
const SUM: &str = "reduce void sum(float a<>, reduce float r<>) { r += a; }";

fn start(config: ServerConfig) -> Server {
    Server::start("127.0.0.1:0", config).expect("server starts")
}

fn stat(stats: &[(String, u64)], name: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("stat `{name}` missing"))
        .1
}

/// The serial single-tenant oracle: what the service must reproduce
/// bit-exactly.
fn serial_saxpy(xs: &[f32], ys: &[f32], a: f32) -> Vec<f32> {
    let mut ctx = brook_auto::BrookContext::cpu();
    let module = ctx.compile(SAXPY).expect("compile");
    let x = ctx.stream(&[xs.len()]).expect("x");
    let y = ctx.stream(&[ys.len()]).expect("y");
    let r = ctx.stream(&[xs.len()]).expect("r");
    ctx.write(&x, xs).expect("write");
    ctx.write(&y, ys).expect("write");
    ctx.run(
        &module,
        "saxpy",
        &[
            brook_auto::Arg::Stream(&x),
            brook_auto::Arg::Stream(&y),
            brook_auto::Arg::Float(a),
            brook_auto::Arg::Stream(&r),
        ],
    )
    .expect("run");
    ctx.read(&r).expect("read")
}

#[test]
fn single_tenant_roundtrip() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.local_addr(), "t0").expect("connect");
    let module = c.compile(SAXPY).expect("compile");
    let x = c.create_stream(&[4], 1).expect("x");
    let y = c.create_stream(&[4], 1).expect("y");
    let r = c.create_stream(&[4], 1).expect("r");
    c.write(x, &[1.0, 2.0, 3.0, 4.0]).expect("write x");
    c.write(y, &[0.5; 4]).expect("write y");
    c.run(
        module,
        "saxpy",
        &[
            WireArg::Stream(x),
            WireArg::Stream(y),
            WireArg::Float(2.0),
            WireArg::Stream(r),
        ],
    )
    .expect("run");
    assert_eq!(c.read(r).expect("read"), vec![2.5, 4.5, 6.5, 8.5]);
    assert_eq!(
        c.read(r).expect("read"),
        serial_saxpy(&[1.0, 2.0, 3.0, 4.0], &[0.5; 4], 2.0),
        "bit-exact vs serial execution"
    );
    // Reduce through the same tenant.
    let sum_mod = c.compile(SUM).expect("compile sum");
    assert_eq!(c.reduce(sum_mod, "sum", r).expect("reduce"), 22.0);
    let stats = c.stats().expect("stats");
    assert_eq!(stat(&stats, "panics"), 0);
    assert!(stat(&stats, "requests") >= 9);
    server.shutdown();
}

#[test]
fn concurrent_tenants_are_bit_exact_and_share_the_cache() {
    // ≥2 tenants × ≥4 concurrent clients hammering the same kernel
    // through the shared module cache; every result must equal the
    // serial single-tenant oracle bit for bit.
    let server = start(ServerConfig {
        shards: 4,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    // Warm the cache from one tenant so the concurrent phase exercises
    // the hit path deterministically.
    Client::connect(addr, "warm")
        .expect("connect")
        .compile(SAXPY)
        .expect("warm compile");

    const CLIENTS: usize = 8;
    const TENANTS: usize = 4;
    const N: usize = 256;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|ci| {
            std::thread::spawn(move || {
                let tenant = format!("tenant-{}", ci % TENANTS);
                let mut c = Client::connect(addr, &tenant).expect("connect");
                let module = c.compile(SAXPY).expect("compile");
                let xs: Vec<f32> = (0..N).map(|i| (ci * N + i) as f32 * 0.25).collect();
                let ys: Vec<f32> = (0..N).map(|i| 1.0 + i as f32 * 0.5).collect();
                let a = 1.5 + ci as f32;
                let x = c.create_stream(&[N as u32], 1).expect("x");
                let y = c.create_stream(&[N as u32], 1).expect("y");
                let r = c.create_stream(&[N as u32], 1).expect("r");
                c.write(x, &xs).expect("write x");
                c.write(y, &ys).expect("write y");
                for _ in 0..10 {
                    run_with_retry(
                        &mut c,
                        module,
                        "saxpy",
                        &[
                            WireArg::Stream(x),
                            WireArg::Stream(y),
                            WireArg::Float(a),
                            WireArg::Stream(r),
                        ],
                    );
                }
                let got = c.read(r).expect("read");
                (xs, ys, a, got)
            })
        })
        .collect();
    for w in workers {
        let (xs, ys, a, got) = w.join().expect("worker");
        assert_eq!(got, serial_saxpy(&xs, &ys, a), "service result must be bit-exact");
    }
    let mut c = Client::connect(addr, "warm").expect("connect");
    let stats = c.stats().expect("stats");
    assert_eq!(stat(&stats, "panics"), 0, "zero-panic gate");
    // One artifact serves every tenant: all compiles after the warm-up
    // hit the shared cache (the warm-up itself is the only guaranteed
    // miss; concurrent same-key misses are impossible here since the
    // cache was warm before any client started).
    assert_eq!(stat(&stats, "cache_misses"), 1);
    assert_eq!(stat(&stats, "cache_hits"), CLIENTS as u64);
    server.shutdown();
}

/// Retries `Busy` shedding (the documented client contract); anything
/// else must succeed.
fn run_with_retry(c: &mut Client, module: u64, kernel: &str, args: &[WireArg]) {
    loop {
        match c.run(module, kernel, args) {
            Ok(()) => return,
            Err(e) if e.code() == Some(ErrorCode::Busy) => std::thread::yield_now(),
            Err(e) => panic!("run: {e}"),
        }
    }
}

#[test]
fn tenant_handles_are_isolated() {
    let server = start(ServerConfig::default());
    let mut a = Client::connect(server.local_addr(), "alice").expect("connect");
    let mut b = Client::connect(server.local_addr(), "bob").expect("connect");
    let s = a.create_stream(&[4], 1).expect("stream");
    a.write(s, &[1.0; 4]).expect("write");
    // Bob cannot touch Alice's handle — handles are tenant-scoped, so
    // from Bob's side it simply does not exist.
    let err = b.read(s).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Malformed), "{err}");
    // And Bob's own handle space is untouched by Alice's allocations.
    let s_b = b.create_stream(&[2], 1).expect("stream");
    b.write(s_b, &[7.0, 8.0]).expect("write");
    assert_eq!(b.read(s_b).expect("read"), vec![7.0, 8.0]);
    assert_eq!(a.read(s).expect("read"), vec![1.0; 4]);
    server.shutdown();
}

#[test]
fn admission_rejects_over_budget_requests_with_structured_errors() {
    let server = start(ServerConfig {
        admission: AdmissionConfig {
            max_instructions_per_request: 2_000,
            max_stream_bytes: 1024,
        },
        ..ServerConfig::default()
    });
    let mut c = Client::connect(server.local_addr(), "t").expect("connect");

    // Memory: 1024 B = 256 scalars; 300 do not fit.
    let err = c.create_stream(&[300], 1).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::AdmissionRejected), "{err}");
    let s = c.create_stream(&[128], 1).expect("128 fits");
    let err = c.create_stream(&[200], 1).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::AdmissionRejected), "{err}");
    // Releasing the charge re-admits.
    c.drop_stream(s).expect("drop");
    let s = c.create_stream(&[200], 1).expect("fits after release");

    // Compute: a loop-heavy kernel over 200 elements blows the 2000
    // instruction ceiling; the request is refused before execution.
    let heavy = "kernel void heavy(float x<>, out float o<>) {
        float s = x;
        for (int i = 0; i < 64; i++) { s = s * 1.0001 + 1.0; }
        o = s;
    }";
    let module = c.compile(heavy).expect("compile");
    let o = c.create_stream(&[50], 1).expect("out");
    c.write(s, &vec![0.0; 200]).expect("write");
    let err = c
        .run(module, "heavy", &[WireArg::Stream(s), WireArg::Stream(o)])
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::AdmissionRejected), "{err}");
    // The same kernel over a small domain is admitted (and runs).
    let s_small = {
        c.drop_stream(s).expect("drop big");
        c.create_stream(&[5], 1).expect("small")
    };
    c.write(s_small, &[1.0; 5]).expect("write");
    let o_small = c.create_stream(&[5], 1).expect("out small");
    c.run(
        module,
        "heavy",
        &[WireArg::Stream(s_small), WireArg::Stream(o_small)],
    )
    .expect("small domain is admitted");
    let stats = c.stats().expect("stats");
    assert!(stat(&stats, "admission_rejected") >= 3);
    assert_eq!(stat(&stats, "panics"), 0);
    server.shutdown();
}

#[test]
fn usage_errors_fail_the_request_not_the_connection() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.local_addr(), "t").expect("connect");
    let module = c.compile(SAXPY).expect("compile");
    let x = c.create_stream(&[4], 1).expect("x");
    // Too few arguments: typed Usage error...
    let err = c.run(module, "saxpy", &[WireArg::Stream(x)]).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Usage), "{err}");
    // Unknown kernel on a valid module...
    let err = c.run(module, "nope", &[]).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Usage), "{err}");
    // Certification failure from source...
    let err = c
        .compile(
            "kernel void f(float a<>, out float o<>) { float s = a; while (s > 0.0) { s -= 1.0; } o = s; }",
        )
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Certification), "{err}");
    // Parse error from source...
    let err = c.compile("kernel void broken(").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Compile), "{err}");
    // ...and after all of that the connection still serves requests.
    c.write(x, &[1.0; 4]).expect("write");
    assert_eq!(c.read(x).expect("read"), vec![1.0; 4]);
    let stats = c.stats().expect("stats");
    assert_eq!(stat(&stats, "panics"), 0);
    server.shutdown();
}

#[test]
fn malformed_frames_get_structured_errors() {
    use brook_serve::wire::{read_frame, write_frame, Response};
    use std::net::TcpStream;
    let server = start(ServerConfig::default());
    let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
    write_frame(&mut conn, &[250, 1, 2, 3]).expect("send garbage");
    let frame = read_frame(&mut conn).expect("reply").expect("frame");
    match Response::decode(&frame).expect("decode") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected error, got {other:?}"),
    }
    // The connection survives the bad frame.
    write_frame(&mut conn, &brook_serve::Request::Stats.encode()).expect("stats");
    let frame = read_frame(&mut conn).expect("reply").expect("frame");
    assert!(matches!(
        Response::decode(&frame).expect("decode"),
        Response::Stats(_)
    ));
    server.shutdown();
}

#[test]
fn same_kernel_launches_coalesce_on_a_shard() {
    // One tenant, one shard: fire a burst of identical-kernel launches
    // from several connections so the shard's drain loop sees
    // back-to-back same-kernel jobs and coalesces them.
    let server = start(ServerConfig {
        shards: 1,
        queue_depth: 256,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut setup = Client::connect(addr, "t").expect("connect");
    let module = setup.compile(SAXPY).expect("compile");
    let x = setup.create_stream(&[64], 1).expect("x");
    let y = setup.create_stream(&[64], 1).expect("y");
    let r = setup.create_stream(&[64], 1).expect("r");
    setup.write(x, &vec![1.0; 64]).expect("write");
    setup.write(y, &vec![2.0; 64]).expect("write");
    let workers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, "t").expect("connect");
                for _ in 0..50 {
                    run_with_retry(
                        &mut c,
                        module,
                        "saxpy",
                        &[
                            WireArg::Stream(x),
                            WireArg::Stream(y),
                            WireArg::Float(3.0),
                            WireArg::Stream(r),
                        ],
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    assert_eq!(setup.read(r).expect("read"), vec![5.0; 64]);
    let stats = setup.stats().expect("stats");
    let runs = stat(&stats, "runs");
    assert_eq!(runs, 200);
    assert_eq!(stat(&stats, "panics"), 0);
    server.shutdown();
}

#[test]
fn results_identical_across_tenants_for_identical_inputs() {
    // The same program + inputs through different tenants (hence
    // different contexts adopting the same cached artifact) must agree
    // exactly — the cross-tenant half of the differential story.
    let server = start(ServerConfig::default());
    let addr = server.local_addr();
    let mut results: HashMap<String, Vec<f32>> = HashMap::new();
    for tenant in ["red", "green", "blue"] {
        let mut c = Client::connect(addr, tenant).expect("connect");
        let module = c.compile(SAXPY).expect("compile");
        let x = c.create_stream(&[32], 1).expect("x");
        let y = c.create_stream(&[32], 1).expect("y");
        let r = c.create_stream(&[32], 1).expect("r");
        let xs: Vec<f32> = (0..32).map(|i| i as f32 * 0.125).collect();
        c.write(x, &xs).expect("write");
        c.write(y, &[1.0; 32]).expect("write");
        c.run(
            module,
            "saxpy",
            &[
                WireArg::Stream(x),
                WireArg::Stream(y),
                WireArg::Float(2.0),
                WireArg::Stream(r),
            ],
        )
        .expect("run");
        results.insert(tenant.to_owned(), c.read(r).expect("read"));
    }
    let first = results.values().next().expect("results").clone();
    for (tenant, got) in &results {
        assert_eq!(*got, first, "tenant {tenant} diverged");
    }
    server.shutdown();
}

#[test]
fn device_backend_serves_with_vram_budget() {
    // The service runs on the GL backend too, with the runtime memory
    // budget (BA002) installed per tenant.
    let server = start(ServerConfig {
        backend: "gles2-packed",
        device_memory_budget: Some(1 << 20),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(server.local_addr(), "t").expect("connect");
    let module = c.compile(SAXPY).expect("compile");
    let x = c.create_stream(&[8], 1).expect("x");
    let y = c.create_stream(&[8], 1).expect("y");
    let r = c.create_stream(&[8], 1).expect("r");
    c.write(x, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
        .expect("write");
    c.write(y, &[10.0; 8]).expect("write");
    c.run(
        module,
        "saxpy",
        &[
            WireArg::Stream(x),
            WireArg::Stream(y),
            WireArg::Float(2.0),
            WireArg::Stream(r),
        ],
    )
    .expect("run");
    assert_eq!(
        c.read(r).expect("read"),
        vec![12.0, 14.0, 16.0, 18.0, 20.0, 22.0, 24.0, 26.0]
    );
    // A stream the device budget cannot hold fails cleanly (Device
    // error, not a panic, not a wedged tenant).
    let err = c.create_stream(&[2048, 2048], 1).unwrap_err();
    assert!(matches!(err, ClientError::Server { .. }), "{err}");
    // Tenant still serves.
    assert_eq!(c.read(x).expect("read").len(), 8);
    let stats = c.stats().expect("stats");
    assert_eq!(stat(&stats, "panics"), 0);
    server.shutdown();
}
