//! End-to-end service tests over real sockets: multi-tenant isolation,
//! shared-cache correctness, admission control and backpressure — all
//! asserted bit-exact against serial single-tenant execution and with
//! the zero-panic gate enforced on every exit path.

use brook_serve::{AdmissionConfig, Client, ClientError, ErrorCode, Server, ServerConfig, WireArg};
use std::collections::HashMap;

const SAXPY: &str = "kernel void saxpy(float x<>, float y<>, float a, out float r<>) { r = a * x + y; }";
const SUM: &str = "reduce void sum(float a<>, reduce float r<>) { r += a; }";

fn start(config: ServerConfig) -> Server {
    Server::start("127.0.0.1:0", config).expect("server starts")
}

fn stat(stats: &[(String, u64)], name: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("stat `{name}` missing"))
        .1
}

/// The serial single-tenant oracle: what the service must reproduce
/// bit-exactly.
fn serial_saxpy(xs: &[f32], ys: &[f32], a: f32) -> Vec<f32> {
    let mut ctx = brook_auto::BrookContext::cpu();
    let module = ctx.compile(SAXPY).expect("compile");
    let x = ctx.stream(&[xs.len()]).expect("x");
    let y = ctx.stream(&[ys.len()]).expect("y");
    let r = ctx.stream(&[xs.len()]).expect("r");
    ctx.write(&x, xs).expect("write");
    ctx.write(&y, ys).expect("write");
    ctx.run(
        &module,
        "saxpy",
        &[
            brook_auto::Arg::Stream(&x),
            brook_auto::Arg::Stream(&y),
            brook_auto::Arg::Float(a),
            brook_auto::Arg::Stream(&r),
        ],
    )
    .expect("run");
    ctx.read(&r).expect("read")
}

#[test]
fn single_tenant_roundtrip() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.local_addr(), "t0").expect("connect");
    let module = c.compile(SAXPY).expect("compile");
    let x = c.create_stream(&[4], 1).expect("x");
    let y = c.create_stream(&[4], 1).expect("y");
    let r = c.create_stream(&[4], 1).expect("r");
    c.write(x, &[1.0, 2.0, 3.0, 4.0]).expect("write x");
    c.write(y, &[0.5; 4]).expect("write y");
    c.run(
        module,
        "saxpy",
        &[
            WireArg::Stream(x),
            WireArg::Stream(y),
            WireArg::Float(2.0),
            WireArg::Stream(r),
        ],
    )
    .expect("run");
    assert_eq!(c.read(r).expect("read"), vec![2.5, 4.5, 6.5, 8.5]);
    assert_eq!(
        c.read(r).expect("read"),
        serial_saxpy(&[1.0, 2.0, 3.0, 4.0], &[0.5; 4], 2.0),
        "bit-exact vs serial execution"
    );
    // Reduce through the same tenant.
    let sum_mod = c.compile(SUM).expect("compile sum");
    assert_eq!(c.reduce(sum_mod, "sum", r).expect("reduce"), 22.0);
    let stats = c.stats().expect("stats");
    assert_eq!(stat(&stats, "panics"), 0);
    assert!(stat(&stats, "requests") >= 9);
    server.shutdown();
}

#[test]
fn concurrent_tenants_are_bit_exact_and_share_the_cache() {
    // ≥2 tenants × ≥4 concurrent clients hammering the same kernel
    // through the shared module cache; every result must equal the
    // serial single-tenant oracle bit for bit.
    let server = start(ServerConfig {
        shards: 4,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    // Warm the cache from one tenant so the concurrent phase exercises
    // the hit path deterministically.
    Client::connect(addr, "warm")
        .expect("connect")
        .compile(SAXPY)
        .expect("warm compile");

    const CLIENTS: usize = 8;
    const TENANTS: usize = 4;
    const N: usize = 256;
    let workers: Vec<_> = (0..CLIENTS)
        .map(|ci| {
            std::thread::spawn(move || {
                let tenant = format!("tenant-{}", ci % TENANTS);
                let mut c = Client::connect(addr, &tenant).expect("connect");
                let module = c.compile(SAXPY).expect("compile");
                let xs: Vec<f32> = (0..N).map(|i| (ci * N + i) as f32 * 0.25).collect();
                let ys: Vec<f32> = (0..N).map(|i| 1.0 + i as f32 * 0.5).collect();
                let a = 1.5 + ci as f32;
                let x = c.create_stream(&[N as u32], 1).expect("x");
                let y = c.create_stream(&[N as u32], 1).expect("y");
                let r = c.create_stream(&[N as u32], 1).expect("r");
                c.write(x, &xs).expect("write x");
                c.write(y, &ys).expect("write y");
                for _ in 0..10 {
                    run_with_retry(
                        &mut c,
                        module,
                        "saxpy",
                        &[
                            WireArg::Stream(x),
                            WireArg::Stream(y),
                            WireArg::Float(a),
                            WireArg::Stream(r),
                        ],
                    );
                }
                let got = c.read(r).expect("read");
                (xs, ys, a, got)
            })
        })
        .collect();
    for w in workers {
        let (xs, ys, a, got) = w.join().expect("worker");
        assert_eq!(got, serial_saxpy(&xs, &ys, a), "service result must be bit-exact");
    }
    let mut c = Client::connect(addr, "warm").expect("connect");
    let stats = c.stats().expect("stats");
    assert_eq!(stat(&stats, "panics"), 0, "zero-panic gate");
    // One artifact serves every tenant: all compiles after the warm-up
    // hit the shared cache (the warm-up itself is the only guaranteed
    // miss; concurrent same-key misses are impossible here since the
    // cache was warm before any client started).
    assert_eq!(stat(&stats, "cache_misses"), 1);
    assert_eq!(stat(&stats, "cache_hits"), CLIENTS as u64);
    server.shutdown();
}

/// Retries `Busy` shedding (the documented client contract); anything
/// else must succeed.
fn run_with_retry(c: &mut Client, module: u64, kernel: &str, args: &[WireArg]) {
    loop {
        match c.run(module, kernel, args) {
            Ok(()) => return,
            Err(e) if e.code() == Some(ErrorCode::Busy) => std::thread::yield_now(),
            Err(e) => panic!("run: {e}"),
        }
    }
}

#[test]
fn tenant_handles_are_isolated() {
    let server = start(ServerConfig::default());
    let mut a = Client::connect(server.local_addr(), "alice").expect("connect");
    let mut b = Client::connect(server.local_addr(), "bob").expect("connect");
    let s = a.create_stream(&[4], 1).expect("stream");
    a.write(s, &[1.0; 4]).expect("write");
    // Bob cannot touch Alice's handle — handles are tenant-scoped, so
    // from Bob's side it simply does not exist.
    let err = b.read(s).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Malformed), "{err}");
    // And Bob's own handle space is untouched by Alice's allocations.
    let s_b = b.create_stream(&[2], 1).expect("stream");
    b.write(s_b, &[7.0, 8.0]).expect("write");
    assert_eq!(b.read(s_b).expect("read"), vec![7.0, 8.0]);
    assert_eq!(a.read(s).expect("read"), vec![1.0; 4]);
    server.shutdown();
}

#[test]
fn admission_rejects_over_budget_requests_with_structured_errors() {
    let server = start(ServerConfig {
        admission: AdmissionConfig {
            max_instructions_per_request: 2_000,
            max_stream_bytes: 1024,
        },
        ..ServerConfig::default()
    });
    let mut c = Client::connect(server.local_addr(), "t").expect("connect");

    // Memory: 1024 B = 256 scalars; 300 do not fit.
    let err = c.create_stream(&[300], 1).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::AdmissionRejected), "{err}");
    let s = c.create_stream(&[128], 1).expect("128 fits");
    let err = c.create_stream(&[200], 1).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::AdmissionRejected), "{err}");
    // Releasing the charge re-admits.
    c.drop_stream(s).expect("drop");
    let s = c.create_stream(&[200], 1).expect("fits after release");

    // Compute: a loop-heavy kernel over 200 elements blows the 2000
    // instruction ceiling; the request is refused before execution.
    let heavy = "kernel void heavy(float x<>, out float o<>) {
        float s = x;
        for (int i = 0; i < 64; i++) { s = s * 1.0001 + 1.0; }
        o = s;
    }";
    let module = c.compile(heavy).expect("compile");
    let o = c.create_stream(&[50], 1).expect("out");
    c.write(s, &vec![0.0; 200]).expect("write");
    let err = c
        .run(module, "heavy", &[WireArg::Stream(s), WireArg::Stream(o)])
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::AdmissionRejected), "{err}");
    // The same kernel over a small domain is admitted (and runs).
    let s_small = {
        c.drop_stream(s).expect("drop big");
        c.create_stream(&[5], 1).expect("small")
    };
    c.write(s_small, &[1.0; 5]).expect("write");
    let o_small = c.create_stream(&[5], 1).expect("out small");
    c.run(
        module,
        "heavy",
        &[WireArg::Stream(s_small), WireArg::Stream(o_small)],
    )
    .expect("small domain is admitted");
    let stats = c.stats().expect("stats");
    assert!(stat(&stats, "admission_rejected") >= 3);
    assert_eq!(stat(&stats, "panics"), 0);
    server.shutdown();
}

#[test]
fn usage_errors_fail_the_request_not_the_connection() {
    let server = start(ServerConfig::default());
    let mut c = Client::connect(server.local_addr(), "t").expect("connect");
    let module = c.compile(SAXPY).expect("compile");
    let x = c.create_stream(&[4], 1).expect("x");
    // Too few arguments: typed Usage error...
    let err = c.run(module, "saxpy", &[WireArg::Stream(x)]).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Usage), "{err}");
    // Unknown kernel on a valid module...
    let err = c.run(module, "nope", &[]).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Usage), "{err}");
    // Certification failure from source...
    let err = c
        .compile(
            "kernel void f(float a<>, out float o<>) { float s = a; while (s > 0.0) { s -= 1.0; } o = s; }",
        )
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Certification), "{err}");
    // Parse error from source...
    let err = c.compile("kernel void broken(").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Compile), "{err}");
    // ...and after all of that the connection still serves requests.
    c.write(x, &[1.0; 4]).expect("write");
    assert_eq!(c.read(x).expect("read"), vec![1.0; 4]);
    let stats = c.stats().expect("stats");
    assert_eq!(stat(&stats, "panics"), 0);
    server.shutdown();
}

#[test]
fn malformed_frames_get_structured_errors() {
    use brook_serve::wire::{read_frame, write_frame, Response};
    use std::net::TcpStream;
    let server = start(ServerConfig::default());
    let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
    write_frame(&mut conn, &[250, 1, 2, 3]).expect("send garbage");
    let frame = read_frame(&mut conn).expect("reply").expect("frame");
    match Response::decode(&frame).expect("decode") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected error, got {other:?}"),
    }
    // The connection survives the bad frame.
    write_frame(&mut conn, &brook_serve::Request::Stats.encode()).expect("stats");
    let frame = read_frame(&mut conn).expect("reply").expect("frame");
    assert!(matches!(
        Response::decode(&frame).expect("decode"),
        Response::Stats(_)
    ));
    server.shutdown();
}

#[test]
fn same_kernel_launches_coalesce_on_a_shard() {
    // One tenant, one shard: fire a burst of identical-kernel launches
    // from several connections so the shard's drain loop sees
    // back-to-back same-kernel jobs and coalesces them.
    let server = start(ServerConfig {
        shards: 1,
        queue_depth: 256,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut setup = Client::connect(addr, "t").expect("connect");
    let module = setup.compile(SAXPY).expect("compile");
    let x = setup.create_stream(&[64], 1).expect("x");
    let y = setup.create_stream(&[64], 1).expect("y");
    let r = setup.create_stream(&[64], 1).expect("r");
    setup.write(x, &vec![1.0; 64]).expect("write");
    setup.write(y, &vec![2.0; 64]).expect("write");
    let workers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, "t").expect("connect");
                for _ in 0..50 {
                    run_with_retry(
                        &mut c,
                        module,
                        "saxpy",
                        &[
                            WireArg::Stream(x),
                            WireArg::Stream(y),
                            WireArg::Float(3.0),
                            WireArg::Stream(r),
                        ],
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    assert_eq!(setup.read(r).expect("read"), vec![5.0; 64]);
    let stats = setup.stats().expect("stats");
    let runs = stat(&stats, "runs");
    assert_eq!(runs, 200);
    assert_eq!(stat(&stats, "panics"), 0);
    server.shutdown();
}

#[test]
fn results_identical_across_tenants_for_identical_inputs() {
    // The same program + inputs through different tenants (hence
    // different contexts adopting the same cached artifact) must agree
    // exactly — the cross-tenant half of the differential story.
    let server = start(ServerConfig::default());
    let addr = server.local_addr();
    let mut results: HashMap<String, Vec<f32>> = HashMap::new();
    for tenant in ["red", "green", "blue"] {
        let mut c = Client::connect(addr, tenant).expect("connect");
        let module = c.compile(SAXPY).expect("compile");
        let x = c.create_stream(&[32], 1).expect("x");
        let y = c.create_stream(&[32], 1).expect("y");
        let r = c.create_stream(&[32], 1).expect("r");
        let xs: Vec<f32> = (0..32).map(|i| i as f32 * 0.125).collect();
        c.write(x, &xs).expect("write");
        c.write(y, &[1.0; 32]).expect("write");
        c.run(
            module,
            "saxpy",
            &[
                WireArg::Stream(x),
                WireArg::Stream(y),
                WireArg::Float(2.0),
                WireArg::Stream(r),
            ],
        )
        .expect("run");
        results.insert(tenant.to_owned(), c.read(r).expect("read"));
    }
    let first = results.values().next().expect("results").clone();
    for (tenant, got) in &results {
        assert_eq!(*got, first, "tenant {tenant} diverged");
    }
    server.shutdown();
}

#[test]
fn device_backend_serves_with_vram_budget() {
    // The service runs on the GL backend too, with the runtime memory
    // budget (BA002) installed per tenant.
    let server = start(ServerConfig {
        backend: "gles2-packed",
        device_memory_budget: Some(1 << 20),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(server.local_addr(), "t").expect("connect");
    let module = c.compile(SAXPY).expect("compile");
    let x = c.create_stream(&[8], 1).expect("x");
    let y = c.create_stream(&[8], 1).expect("y");
    let r = c.create_stream(&[8], 1).expect("r");
    c.write(x, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
        .expect("write");
    c.write(y, &[10.0; 8]).expect("write");
    c.run(
        module,
        "saxpy",
        &[
            WireArg::Stream(x),
            WireArg::Stream(y),
            WireArg::Float(2.0),
            WireArg::Stream(r),
        ],
    )
    .expect("run");
    assert_eq!(
        c.read(r).expect("read"),
        vec![12.0, 14.0, 16.0, 18.0, 20.0, 22.0, 24.0, 26.0]
    );
    // A stream the device budget cannot hold fails cleanly (Device
    // error, not a panic, not a wedged tenant).
    let err = c.create_stream(&[2048, 2048], 1).unwrap_err();
    assert!(matches!(err, ClientError::Server { .. }), "{err}");
    // Tenant still serves.
    assert_eq!(c.read(x).expect("read").len(), 8);
    let stats = c.stats().expect("stats");
    assert_eq!(stat(&stats, "panics"), 0);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Fault injection & recovery: watchdog deadlines, tenant poisoning,
// circuit breaker lifecycle, retry hints, resilience counters.

use brook_auto::{FaultPlan, ResiliencePolicy};
use brook_serve::{BreakerConfig, RetryPolicy};
use std::time::Duration;

/// A full saxpy workflow over the wire; returns the result vector.
fn wire_saxpy(c: &mut Client, n: u32) -> Result<Vec<f32>, ClientError> {
    let module = c.compile(SAXPY)?;
    let x = c.create_stream(&[n], 1)?;
    let y = c.create_stream(&[n], 1)?;
    let r = c.create_stream(&[n], 1)?;
    let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
    c.write(x, &xs)?;
    c.write(y, &vec![0.5; n as usize])?;
    c.run(
        module,
        "saxpy",
        &[
            WireArg::Stream(x),
            WireArg::Stream(y),
            WireArg::Float(2.0),
            WireArg::Stream(r),
        ],
    )?;
    c.read(r)
}

#[test]
fn stalled_server_times_out_with_a_typed_error() {
    // A listener that accepts and then never answers: the client's
    // socket timeout must convert the stall into `TimedOut`, not a
    // forever-hang.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let stall = std::thread::spawn(move || {
        let (_conn, _) = listener.accept().expect("accept");
        std::thread::sleep(Duration::from_secs(2)); // hold the socket open, say nothing
    });
    let mut c = Client::connect_with_timeout(addr, "t", Some(Duration::from_millis(100))).expect("connect");
    let started = std::time::Instant::now();
    let err = c.stats().unwrap_err();
    assert!(matches!(err, ClientError::TimedOut), "{err}");
    assert!(started.elapsed() < Duration::from_secs(1), "timed out promptly");
    drop(c);
    stall.join().expect("stall thread");
}

#[test]
fn saturated_shard_sheds_with_hint_and_with_retry_recovers() {
    // One shard, queue depth one. Tenant t's first launch is held in a
    // 400 ms injected latency spike, a second launch fills the queue,
    // so a third is shed with `Busy` + retry_after_ms. `with_retry`
    // then rides the hint to eventual success.
    let server = start(ServerConfig {
        shards: 1,
        queue_depth: 1,
        fault_plan: Some(FaultPlan::new().with_latency(0, 400)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut c = Client::connect(addr, "t").expect("connect");
    let module = c.compile(SAXPY).expect("compile");
    let x = c.create_stream(&[8], 1).expect("x");
    let y = c.create_stream(&[8], 1).expect("y");
    let r = c.create_stream(&[8], 1).expect("r");
    c.write(x, &[1.0; 8]).expect("write x");
    c.write(y, &[2.0; 8]).expect("write y");
    let args = [
        WireArg::Stream(x),
        WireArg::Stream(y),
        WireArg::Float(3.0),
        WireArg::Stream(r),
    ];

    // Occupy the shard (hits the latency fault) ...
    let slow = {
        let args = args.to_vec();
        let mut c2 = Client::connect(addr, "t").expect("connect");
        std::thread::spawn(move || c2.run(module, "saxpy", &args))
    };
    std::thread::sleep(Duration::from_millis(100));
    // ... fill the depth-1 queue ...
    let queued = {
        let args = args.to_vec();
        let mut c3 = Client::connect(addr, "t").expect("connect");
        std::thread::spawn(move || c3.run(module, "saxpy", &args))
    };
    std::thread::sleep(Duration::from_millis(50));
    // ... and get shed, with the back-off hint.
    let err = c.run(module, "saxpy", &args).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Busy), "{err}");
    assert!(err.is_retryable());
    assert_eq!(err.retry_after_ms(), Some(5), "Busy carries the hint");

    // Bounded retries with jittered backoff ride out the saturation
    // (the spike outlasts the default 5-attempt budget, so give the
    // policy room).
    let policy = RetryPolicy {
        max_attempts: 60,
        backoff_base_ms: 5,
        backoff_cap_ms: 50,
        seed: 7,
    };
    c.with_retry(&policy, |c| c.run(module, "saxpy", &args))
        .expect("with_retry eventually succeeds");
    assert_eq!(c.read(r).expect("read"), vec![5.0; 8]);
    slow.join().expect("slow").expect("slow run ok");
    queued.join().expect("queued").expect("queued run ok");
    let stats = c.stats().expect("stats");
    assert!(stat(&stats, "busy_rejected") >= 1);
    assert_eq!(stat(&stats, "panics"), 0);
    server.shutdown();
}

#[test]
fn watchdog_cancels_a_hung_launch_within_the_deadline() {
    // An injected device hang with no in-context attempt timeout: only
    // the serve watchdog can unwedge it. The client gets a `Timeout`
    // reply at the deadline and the shard recovers for later requests.
    let server = start(ServerConfig {
        shards: 1,
        launch_deadline: Some(Duration::from_millis(200)),
        fault_plan: Some(FaultPlan::new().with_hang(0)),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(server.local_addr(), "t").expect("connect");
    let module = c.compile(SAXPY).expect("compile");
    let x = c.create_stream(&[4], 1).expect("x");
    let y = c.create_stream(&[4], 1).expect("y");
    let r = c.create_stream(&[4], 1).expect("r");
    c.write(x, &[1.0; 4]).expect("write x");
    c.write(y, &[1.0; 4]).expect("write y");
    let args = [
        WireArg::Stream(x),
        WireArg::Stream(y),
        WireArg::Float(1.0),
        WireArg::Stream(r),
    ];
    let started = std::time::Instant::now();
    let err = c.run(module, "saxpy", &args).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Timeout), "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "watchdog answered, not the hang"
    );
    // The hang was cancelled, not abandoned: the same tenant serves
    // the retried launch (the injected hang fired once).
    std::thread::sleep(Duration::from_millis(50)); // let the shard notice the cancel
    c.run(module, "saxpy", &args).expect("retried run succeeds");
    assert_eq!(c.read(r).expect("read"), vec![2.0; 4]);
    let stats = c.stats().expect("stats");
    assert!(stat(&stats, "timeouts") >= 1);
    assert_eq!(stat(&stats, "panics"), 0);
    server.shutdown();
}

#[test]
fn panic_discards_tenant_state_without_a_breaker() {
    // Pre-breaker contract, pinned: a caught panic fails the request,
    // drops the tenant (handles dangle), the process keeps serving.
    let server = start(ServerConfig {
        shards: 1,
        fault_plan: Some(FaultPlan::new().with_panic(0)),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(server.local_addr(), "t").expect("connect");
    let module = c.compile(SAXPY).expect("compile");
    let x = c.create_stream(&[4], 1).expect("x");
    let y = c.create_stream(&[4], 1).expect("y");
    let r = c.create_stream(&[4], 1).expect("r");
    c.write(x, &[1.0; 4]).expect("write x");
    c.write(y, &[1.0; 4]).expect("write y");
    let args = [
        WireArg::Stream(x),
        WireArg::Stream(y),
        WireArg::Float(1.0),
        WireArg::Stream(r),
    ];
    let err = c.run(module, "saxpy", &args).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Internal), "{err}");
    assert!(err.to_string().contains("panicked"), "{err}");
    // The tenant's handles died with its state.
    let err = c.read(r).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Malformed), "stale handle");
    // But the tenant can rebuild immediately (fault plans arm once per
    // tenant name — the fresh context starts clean) and the process
    // never stopped serving.
    assert_eq!(wire_saxpy(&mut c, 8).expect("rebuilt workflow"), {
        let xs: Vec<f32> = (0..8).map(|i| i as f32).collect();
        serial_saxpy(&xs, &[0.5; 8], 2.0)
    });
    let stats = c.stats().expect("stats");
    assert_eq!(stat(&stats, "panics"), 1);
    assert_eq!(stat(&stats, "breaker_trips"), 0, "no breaker configured");
    server.shutdown();
}

#[test]
fn breaker_trips_sheds_probes_and_recovers() {
    let server = start(ServerConfig {
        shards: 1,
        breaker: Some(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(300),
        }),
        fault_plan: Some(FaultPlan::new().with_panic(0)),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(server.local_addr(), "t").expect("connect");
    let module = c.compile(SAXPY).expect("compile");
    let x = c.create_stream(&[4], 1).expect("x");
    let r = c.create_stream(&[4], 1).expect("r");
    c.write(x, &[2.0; 4]).expect("write");
    let args = [
        WireArg::Stream(x),
        WireArg::Stream(x),
        WireArg::Float(1.0),
        WireArg::Stream(r),
    ];
    // Trip: one panic is the threshold.
    let err = c.run(module, "saxpy", &args).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Internal), "{err}");
    // Open: requests are shed with a cooldown hint, nothing executes.
    let err = c.compile(SUM).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Retryable), "{err}");
    assert!(err.is_retryable());
    let hint = err.retry_after_ms().expect("open breaker hints retry_after");
    assert!((1..=300).contains(&hint), "hint {hint} within cooldown");
    // Half-open after the cooldown: the probe succeeds and closes the
    // breaker; the tenant rebuilds and serves normally.
    std::thread::sleep(Duration::from_millis(350));
    let expected = {
        let xs: Vec<f32> = (0..8).map(|i| i as f32).collect();
        serial_saxpy(&xs, &[0.5; 8], 2.0)
    };
    assert_eq!(wire_saxpy(&mut c, 8).expect("recovered"), expected);
    let stats = c.stats().expect("stats");
    assert_eq!(stat(&stats, "breaker_trips"), 1);
    assert!(stat(&stats, "breaker_probes") >= 1);
    assert!(stat(&stats, "breaker_rejected") >= 1);
    assert_eq!(stat(&stats, "panics"), 1);
    server.shutdown();
}

#[test]
fn failed_probe_re_trips_the_breaker() {
    let server = start(ServerConfig {
        shards: 1,
        breaker: Some(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(250),
        }),
        // Both tenants' first contexts arm this plan: each panics on
        // its own launch 0.
        fault_plan: Some(FaultPlan::new().with_panic(0)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut a = Client::connect(addr, "a").expect("connect");
    let mut b = Client::connect(addr, "b").expect("connect");

    // Stage b's workflow fully (no launches yet), so its *run* can be
    // the breaker's probe later.
    let b_module = b.compile(SAXPY).expect("compile");
    let bx = b.create_stream(&[4], 1).expect("x");
    let br = b.create_stream(&[4], 1).expect("r");
    b.write(bx, &[1.0; 4]).expect("write");
    let b_args = [
        WireArg::Stream(bx),
        WireArg::Stream(bx),
        WireArg::Float(1.0),
        WireArg::Stream(br),
    ];

    // Tenant a trips the breaker.
    let a_module = a.compile(SAXPY).expect("compile");
    let ax = a.create_stream(&[4], 1).expect("x");
    let ar = a.create_stream(&[4], 1).expect("r");
    a.write(ax, &[1.0; 4]).expect("write");
    let a_args = [
        WireArg::Stream(ax),
        WireArg::Stream(ax),
        WireArg::Float(1.0),
        WireArg::Stream(ar),
    ];
    let err = a.run(a_module, "saxpy", &a_args).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Internal), "{err}");
    assert_eq!(
        a.read(ar).unwrap_err().code(),
        Some(ErrorCode::Retryable),
        "breaker open"
    );

    // After the cooldown, b's run is the probe — and it panics too
    // (b's own injected fault), so the breaker re-trips on the spot.
    std::thread::sleep(Duration::from_millis(300));
    let err = b.run(b_module, "saxpy", &b_args).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Internal), "probe panicked: {err}");
    let err = b.compile(SUM).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Retryable), "re-tripped: {err}");

    // Second cooldown, clean probe, full recovery for both tenants.
    std::thread::sleep(Duration::from_millis(300));
    let expected = {
        let xs: Vec<f32> = (0..8).map(|i| i as f32).collect();
        serial_saxpy(&xs, &[0.5; 8], 2.0)
    };
    assert_eq!(wire_saxpy(&mut a, 8).expect("a recovered"), expected);
    assert_eq!(wire_saxpy(&mut b, 8).expect("b recovered"), expected);
    let stats = a.stats().expect("stats");
    assert_eq!(stat(&stats, "breaker_trips"), 2);
    assert_eq!(stat(&stats, "panics"), 2);
    assert!(stat(&stats, "breaker_probes") >= 2);
    server.shutdown();
}

#[test]
fn resilience_evidence_flows_into_service_counters() {
    // The in-context recovery ladder (retry, redundant-execution
    // detection, verified failover) reports through the service stats.
    let server = start(ServerConfig {
        shards: 1,
        resilience: Some(ResiliencePolicy {
            redundant_check: true,
            ..ResiliencePolicy::default()
        }),
        fault_plan: Some(
            FaultPlan::new()
                .with_device_loss(0, false) // launch 0: transient, retried
                .with_corruption(1, 0, 0, 0x0040_0000) // launch 1: caught + repaired
                .with_device_loss(2, true), // launch 2: persistent, failover
        ),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(server.local_addr(), "t").expect("connect");
    let module = c.compile(SAXPY).expect("compile");
    let x = c.create_stream(&[16], 1).expect("x");
    let y = c.create_stream(&[16], 1).expect("y");
    let r = c.create_stream(&[16], 1).expect("r");
    let xs: Vec<f32> = (0..16).map(|i| i as f32 * 0.5).collect();
    c.write(x, &xs).expect("write x");
    c.write(y, &[1.0; 16]).expect("write y");
    let args = [
        WireArg::Stream(x),
        WireArg::Stream(y),
        WireArg::Float(2.0),
        WireArg::Stream(r),
    ];
    let expected = serial_saxpy(&xs, &[1.0; 16], 2.0);
    for _ in 0..3 {
        c.run(module, "saxpy", &args).expect("run rides the ladder");
        assert_eq!(c.read(r).expect("read"), expected, "bit-exact through faults");
    }
    let stats = c.stats().expect("stats");
    assert!(stat(&stats, "retries") >= 1, "transient loss retried");
    assert_eq!(stat(&stats, "corruptions_detected"), 1);
    assert_eq!(stat(&stats, "failovers"), 1);
    assert_eq!(stat(&stats, "panics"), 0, "ladder recovery needs no panics");
    server.shutdown();
}
