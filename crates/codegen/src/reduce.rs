//! Reduction pass generation (paper §5.5).
//!
//! Brook reductions execute as multi-pass two-to-one combines over a pair
//! of intermediate ping-pong textures: each pass halves the data extent
//! along one axis until the desired output size remains. Normalized
//! coordinates make this subtle on OpenGL ES 2: the *actual* data extent
//! shrinks pass by pass while the allocated texture stays fixed, so the
//! shader receives the current extent in a hidden uniform
//! (`_ba_reduce`) and computes source texel coordinates from it — the
//! same bookkeeping the paper describes for array indexing, applied to
//! the reduction ladder.

use crate::names::VIEWPORT_UNIFORM;
use crate::StorageMode;
use brook_lang::ReduceOp;
use std::fmt::Write;

/// Axis a reduction pass combines along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceAxis {
    /// Combine horizontally: `(2x, y) op (2x+1, y)`.
    X,
    /// Combine vertically: `(x, 2y) op (x, 2y+1)`.
    Y,
}

/// Generates the fragment shader for one two-to-one reduction pass.
///
/// Uniforms the runtime must set:
/// * `_tex_src` (sampler) — the texture holding the current data,
/// * `_meta_src` = `vec4(alloc_w, alloc_h, cur_w, cur_h)` — allocated
///   size and *current* data extent (paper §5.5: "we had to keep track
///   internally of the actual data size for reduction operations"),
/// * `_ba_vp` = viewport (the post-pass extent).
///
/// The second source element can fall outside the current extent when
/// the extent is odd; the shader substitutes the operation's identity
/// element so padding never corrupts the result.
pub fn reduce_pass_shader(op: ReduceOp, axis: ReduceAxis, storage: StorageMode) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "precision highp float;");
    let _ = writeln!(s, "varying vec2 v_texcoord;");
    let _ = writeln!(s, "uniform vec2 {VIEWPORT_UNIFORM};");
    let _ = writeln!(s, "uniform sampler2D _tex_src;");
    let _ = writeln!(s, "uniform vec4 _meta_src;");
    if storage == StorageMode::Packed {
        s.push_str(brook_numfmt::GLSL_DECODE);
        s.push_str(brook_numfmt::GLSL_ENCODE);
    }
    let fetch = |coord: &str| match storage {
        StorageMode::Packed => format!("ba_decode(texture2D(_tex_src, {coord}))"),
        StorageMode::Native => format!("texture2D(_tex_src, {coord}).x"),
    };
    let identity = match op {
        ReduceOp::Add => "0.0".to_owned(),
        ReduceOp::Mul => "1.0".to_owned(),
        // Large sentinels standing in for +/- infinity, which RGBA8
        // packing saturates anyway.
        ReduceOp::Min => "3.0e38".to_owned(),
        ReduceOp::Max => "-3.0e38".to_owned(),
    };
    let combine = |a: &str, b: &str| match op {
        ReduceOp::Add => format!("{a} + {b}"),
        ReduceOp::Mul => format!("{a} * {b}"),
        ReduceOp::Min => format!("min({a}, {b})"),
        ReduceOp::Max => format!("max({a}, {b})"),
    };
    s.push_str("void main() {\n");
    let _ = writeln!(s, "    vec2 _pc = floor(v_texcoord * {VIEWPORT_UNIFORM});");
    match axis {
        ReduceAxis::X => {
            let _ = writeln!(s, "    vec2 _s0 = vec2(_pc.x * 2.0, _pc.y);");
            let _ = writeln!(s, "    vec2 _s1 = vec2(_pc.x * 2.0 + 1.0, _pc.y);");
            let _ = writeln!(s, "    bool _in1 = _s1.x < _meta_src.z;");
        }
        ReduceAxis::Y => {
            let _ = writeln!(s, "    vec2 _s0 = vec2(_pc.x, _pc.y * 2.0);");
            let _ = writeln!(s, "    vec2 _s1 = vec2(_pc.x, _pc.y * 2.0 + 1.0);");
            let _ = writeln!(s, "    bool _in1 = _s1.y < _meta_src.w;");
        }
    }
    let _ = writeln!(s, "    float _a = {};", fetch("((_s0 + 0.5) / _meta_src.xy)"));
    let _ = writeln!(
        s,
        "    float _b = _in1 ? {} : {identity};",
        fetch("((_s1 + 0.5) / _meta_src.xy)")
    );
    let _ = writeln!(s, "    float _r = {};", combine("_a", "_b"));
    match storage {
        StorageMode::Packed => {
            let _ = writeln!(s, "    gl_FragColor = ba_encode(_r);");
        }
        StorageMode::Native => {
            let _ = writeln!(s, "    gl_FragColor = vec4(_r, 0.0, 0.0, 0.0);");
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_compile() {
        for op in [ReduceOp::Add, ReduceOp::Mul, ReduceOp::Min, ReduceOp::Max] {
            for axis in [ReduceAxis::X, ReduceAxis::Y] {
                for storage in [StorageMode::Packed, StorageMode::Native] {
                    let src = reduce_pass_shader(op, axis, storage);
                    glsl_es::compile(&src).unwrap_or_else(|e| {
                        panic!("reduce shader failed ({op:?},{axis:?},{storage:?}): {e}\n{src}")
                    });
                }
            }
        }
    }

    #[test]
    fn identity_matches_op() {
        let add = reduce_pass_shader(ReduceOp::Add, ReduceAxis::X, StorageMode::Packed);
        assert!(add.contains(": 0.0;"));
        let min = reduce_pass_shader(ReduceOp::Min, ReduceAxis::X, StorageMode::Packed);
        assert!(min.contains("3.0e38"));
        assert!(min.contains("min(_a, _b)"));
    }

    #[test]
    fn axis_changes_source_addressing() {
        let x = reduce_pass_shader(ReduceOp::Add, ReduceAxis::X, StorageMode::Native);
        let y = reduce_pass_shader(ReduceOp::Add, ReduceAxis::Y, StorageMode::Native);
        assert!(x.contains("_pc.x * 2.0"));
        assert!(y.contains("_pc.y * 2.0"));
        assert_ne!(x, y);
    }
}
