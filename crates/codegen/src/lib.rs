//! # brook-codegen — Brook Auto kernels to GLSL ES 1.00
//!
//! The source-to-source backend of the Brook Auto compiler (paper §5).
//! Where the original implementation drove NVIDIA's Cg 3.1 compiler
//! through its hidden GLSL ES output option, this crate generates the
//! fragment shader directly from the checked Brook AST:
//!
//! * **array indexing & `indexof`** (§5.2): OpenGL ES 2.0 only addresses
//!   textures with normalized coordinates, so the generator passes every
//!   stream's logical and allocated sizes as hidden `_meta_*` uniforms
//!   and scales indices in the emitted code — fully transparent to the
//!   kernel author;
//! * **texture size translation** (§5.3): power-of-two padded
//!   allocations and 1D/3D/4D streams living in 2D textures are handled
//!   by generated fetch helpers using the same hidden uniforms;
//! * **numerical formats** (§5.4): on devices without float textures the
//!   [`StorageMode::Packed`] path routes every stream element through the
//!   `brook-numfmt` encode/decode shader functions;
//! * **kernel splitting**: a kernel with several `out` streams compiles
//!   into one single-output shader per stream, since core OpenGL ES 2.0
//!   has a single render target (the paper's Floyd-Warshall case);
//! * **reductions** (§5.5): [`reduce::reduce_pass_shader`] emits the
//!   two-to-one combining pass executed iteratively over ping-pong
//!   textures by the runtime.

pub(crate) mod fetch;
pub mod glsl_gen;
pub mod ir_gen;
pub mod names;
pub mod reduce;

pub use glsl_gen::{generate_kernel_shader, GeneratedShader, KernelShapes, StreamRank};
pub use ir_gen::generate_ir_kernel_shader;
pub use reduce::{reduce_pass_shader, ReduceAxis};

use std::error::Error;
use std::fmt;

/// How stream elements live in texels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageMode {
    /// One float bit-packed into one RGBA8 texel via `brook-numfmt`
    /// (mandatory on the embedded target profile). Streams must have
    /// scalar `float` elements — the paper's evaluation converted vector
    /// kernels to scalar for exactly this reason (§6).
    Packed,
    /// One element per RGBA32F texel (`OES_texture_float` devices, the
    /// desktop reference platform). Vector elements use the texel's
    /// channels directly.
    Native,
}

/// Code generation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CodegenError {
    /// The requested kernel does not exist in the program.
    UnknownKernel(String),
    /// The requested output stream is not an output of the kernel.
    UnknownOutput(String),
    /// Vector-element streams cannot be stored on this profile.
    VectorStreamOnPackedTarget {
        /// Offending parameter.
        param: String,
    },
    /// A construct reached the backend that it cannot express.
    Unsupported(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::UnknownKernel(k) => write!(f, "unknown kernel `{k}`"),
            CodegenError::UnknownOutput(o) => write!(f, "kernel has no output stream `{o}`"),
            CodegenError::VectorStreamOnPackedTarget { param } => write!(
                f,
                "stream `{param}` has a vector element type, which the RGBA8 (packed) target \
                 cannot store; convert the kernel to scalar streams (paper §6)"
            ),
            CodegenError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

impl Error for CodegenError {}
