//! Texel-fetch helper emission shared by the AST shader generator
//! (`glsl_gen`, kept as the legacy/differential reference) and the
//! BrookIR shader generator (`ir_gen`, the live path).
//!
//! The emitted text is byte-identical to what `glsl_gen` historically
//! produced — the golden-GLSL fixtures pin it.

use crate::glsl_gen::{KernelShapes, StreamRank};
use crate::names::{meta_uniform, shape_uniform, tex_uniform, VIEWPORT_UNIFORM};
use crate::StorageMode;
use brook_lang::ast::Type;
use std::fmt::Write;

/// Brook type -> GLSL type spelling.
pub(crate) fn glsl_type(t: Type) -> &'static str {
    use brook_lang::ast::ScalarKind;
    match (t.scalar, t.width) {
        (ScalarKind::Float, 1) => "float",
        (ScalarKind::Float, 2) => "vec2",
        (ScalarKind::Float, 3) => "vec3",
        (ScalarKind::Float, 4) => "vec4",
        (ScalarKind::Float, _) => "vec4",
        (ScalarKind::Int, _) => "int",
        (ScalarKind::Bool, _) => "bool",
    }
}

/// Raw texel fetch expression for parameter `name` at float coordinates
/// `col`/`row`, including decode in packed mode.
pub(crate) fn texel_fetch(name: &str, ty: Type, storage: StorageMode, col: &str, row: &str) -> String {
    let tex = tex_uniform(name);
    let meta = meta_uniform(name);
    let raw = format!("texture2D({tex}, (vec2({col}, {row}) + 0.5) / {meta}.xy)");
    match storage {
        StorageMode::Packed => format!("ba_decode({raw})"),
        StorageMode::Native => match ty.width {
            1 => format!("{raw}.x"),
            2 => format!("{raw}.xy"),
            3 => format!("{raw}.xyz"),
            _ => raw,
        },
    }
}

/// Emits the `_fetch_<name>` helper for an elementwise input stream.
pub(crate) fn emit_elem_fetch(
    out: &mut String,
    name: &str,
    ty: Type,
    shapes: &KernelShapes,
    storage: StorageMode,
) {
    let gty = glsl_type(ty);
    let meta = meta_uniform(name);
    match shapes.rank(name) {
        StreamRank::Grid => {
            // Proportional resampling over the stream's own logical
            // extents (exact when shapes match the output's).
            let fetch = texel_fetch(name, ty, storage, "_i.x", "_i.y");
            let _ = writeln!(
                out,
                "{gty} _fetch_{name}() {{\n    vec2 _i = floor(v_texcoord * {meta}.zw);\n    return {fetch};\n}}"
            );
        }
        StreamRank::Linear => {
            let fetch = texel_fetch(name, ty, storage, "_col", "_row");
            let _ = writeln!(
                out,
                "{gty} _fetch_{name}() {{\n    vec2 _pcf = floor(v_texcoord * {vp});\n    float _l = _pcf.y * {vp}.x + _pcf.x;\n    float _row = floor(_l / {meta}.x);\n    float _col = _l - _row * {meta}.x;\n    return {fetch};\n}}",
                vp = VIEWPORT_UNIFORM
            );
        }
    }
}

/// Emits the `_gather_<name>` helper. Out-of-range indices clamp to the
/// nearest valid element in *logical* index space, matching the CPU
/// reference interpreter and the paper's CLAMP_TO_EDGE argument (§4,
/// BA012).
///
/// With `elide` the clamps are skipped: the abstract interpreter proved
/// every gather through this parameter in bounds and the dispatcher
/// checked the proof against the bound shape and launch domain
/// (`brook_ir::eval::proven_fits_dyn`), so the clamp is dead code on
/// the hot fragment path.
pub(crate) fn emit_gather_fetch(
    out: &mut String,
    name: &str,
    ty: Type,
    rank: u8,
    shapes: &KernelShapes,
    storage: StorageMode,
    elide: bool,
) {
    let gty = glsl_type(ty);
    let meta = meta_uniform(name);
    let shape = shape_uniform(name);
    let linear_body = |linear_expr: &str, fetch: &str| {
        format!(
            "    float _l = {linear_expr};\n    float _row = floor(_l / {meta}.x);\n    float _col = _l - _row * {meta}.x;\n    return {fetch};\n"
        )
    };
    // `cl(i, hi)` clamps logical index `i` to `[0, hi]` — or passes it
    // through untouched when the clamp is proven dead.
    let cl = |i: &str, hi: String| {
        if elide {
            i.to_owned()
        } else {
            format!("clamp({i}, 0.0, {hi} - 1.0)")
        }
    };
    let fetch = texel_fetch(name, ty, storage, "_col", "_row");
    match rank {
        1 => {
            // meta.z carries the total logical length of a
            // linear-packed stream.
            let _ = writeln!(
                out,
                "{gty} _gather_{name}(float i0) {{\n    float _i0 = {};\n{}}}",
                cl("i0", format!("{meta}.z")),
                linear_body("_i0", &fetch)
            );
        }
        2 => match shapes.rank(name) {
            StreamRank::Grid => {
                let direct = texel_fetch(name, ty, storage, "_i1", "_i0");
                let _ = writeln!(
                    out,
                    "{gty} _gather_{name}(float i0, float i1) {{\n    float _i0 = {};\n    float _i1 = {};\n    return {direct};\n}}",
                    cl("i0", format!("{meta}.w")),
                    cl("i1", format!("{meta}.z"))
                );
            }
            StreamRank::Linear => {
                // Rank-2 gather over a linear-packed stream: clamp the
                // combined index to the logical length.
                let _ = writeln!(
                    out,
                    "{gty} _gather_{name}(float i0, float i1) {{\n{}}}",
                    linear_body(&cl(&format!("i0 * {meta}.z + i1"), format!("{meta}.z")), &fetch)
                );
            }
        },
        3 => {
            let _ = writeln!(
                out,
                "{gty} _gather_{name}(float i0, float i1, float i2) {{\n    float _i0 = {};\n    float _i1 = {};\n    float _i2 = {};\n{}}}",
                cl("i0", format!("{shape}.x")),
                cl("i1", format!("{shape}.y")),
                cl("i2", format!("{shape}.z")),
                linear_body(&format!("(_i0 * {shape}.y + _i1) * {shape}.z + _i2"), &fetch)
            );
        }
        _ => {
            let _ = writeln!(
                out,
                "{gty} _gather_{name}(float i0, float i1, float i2, float i3) {{\n    float _i0 = {};\n    float _i1 = {};\n    float _i2 = {};\n    float _i3 = {};\n{}}}",
                cl("i0", format!("{shape}.x")),
                cl("i1", format!("{shape}.y")),
                cl("i2", format!("{shape}.z")),
                cl("i3", format!("{shape}.w")),
                linear_body(
                    &format!("((_i0 * {shape}.y + _i1) * {shape}.z + _i2) * {shape}.w + _i3"),
                    &fetch
                )
            );
        }
    }
}

/// Zero literal for a declaration.
pub(crate) fn zero_literal(t: Type) -> String {
    use brook_lang::ast::ScalarKind;
    match (t.scalar, t.width) {
        (ScalarKind::Float, 1) => "0.0".to_owned(),
        (ScalarKind::Float, w) => format!("vec{w}(0.0)"),
        (ScalarKind::Int, _) => "0".to_owned(),
        (ScalarKind::Bool, _) => "false".to_owned(),
    }
}

/// Float literal in the generator's canonical spelling.
pub(crate) fn float_literal(v: f32) -> String {
    if v == v.trunc() && v.is_finite() && v.abs() < 1e16 {
        format!("{v:.1}")
    } else {
        format!("{v:e}")
    }
}

/// Inserts Brook's implicit conversions explicitly for GLSL.
pub(crate) fn coerce(expr: String, from: Type, to: Type) -> String {
    use brook_lang::ast::ScalarKind;
    if from == to {
        return expr;
    }
    if to.scalar == ScalarKind::Float && from.scalar == ScalarKind::Int {
        let f = format!("float({expr})");
        if to.width > 1 {
            return format!("vec{}({f})", to.width);
        }
        return f;
    }
    if to.scalar == ScalarKind::Float && from == Type::FLOAT && to.width > 1 {
        // Scalar-to-vector assignment broadcast (Brook allows it; GLSL
        // constructors splat).
        return format!("vec{}({expr})", to.width);
    }
    expr
}
