//! BrookIR → GLSL ES 1.00 fragment shader — the live code-generation
//! path of the GL backend.
//!
//! Where the legacy `glsl_gen` pattern-matched the front-end AST, this
//! emitter consumes the same [`IrProgram`] every other layer executes:
//! the shader the device runs is generated from the *optimized,
//! re-certified* IR, so what the GPU computes is exactly what the CPU
//! interpreters computed and what the certification re-check gated —
//! helper functions arrive pre-inlined, constants pre-folded, dead code
//! pre-eliminated.
//!
//! Shape of the emitted shader:
//!
//! * the uniform/sampler header and the `_fetch_*`/`_gather_*` helpers
//!   are byte-identical to the legacy generator (shared through
//!   `crate::fetch`), so the runtime's binding contract
//!   ([`GeneratedShader`]) is unchanged;
//! * every live IR register becomes a `main()`-local `_r<N>` declared
//!   up front, instructions become single assignments — flat IR maps
//!   onto flat GLSL;
//! * structured regions map to structured GLSL: `If` nodes to
//!   `if/else`, loop regions to a gate-variable `for` pattern
//!   (`for (_lg = true; _lg; _lg = _lg) { <cond>; _lg = c; if (_lg) {
//!   <body> } }`) that needs no `break` — GLSL ES 1.00 has none — and
//!   preserves arbitrary (even certification-rejected) loop conditions,
//!   so unchecked-mode kernels behave as before (the simulator's
//!   runaway-loop guard still applies).

use crate::fetch::{coerce, emit_elem_fetch, emit_gather_fetch, float_literal, glsl_type, zero_literal};
use crate::glsl_gen::KernelShapes;
use crate::names::{meta_uniform, scalar_uniform, shape_uniform, tex_uniform, VIEWPORT_UNIFORM};
use crate::{CodegenError, GeneratedShader, StorageMode, StreamRank};
use brook_ir::{Inst, IrKernel, IrProgram, LoopKind, Node, Reg};
use brook_lang::ast::{AssignOp, BinOp, ParamKind, ScalarKind, Type, UnOp};
use brook_lang::builtins::BUILTINS;
use glsl_es::Value;
use std::fmt::Write;

/// Generates the fragment shader computing `output` for `kernel`, from
/// its BrookIR. Kernels with several `out` streams are compiled once
/// per output — call this once per pass (the splitting of paper §6).
///
/// # Errors
/// Unknown kernels/outputs, reduce kernels, vector streams on the
/// packed target, and constructs outside the GLSL ES subset (including
/// IR faults marked `codegen_fatal`).
pub fn generate_ir_kernel_shader(
    program: &IrProgram,
    kernel: &str,
    output: &str,
    shapes: &KernelShapes,
    storage: StorageMode,
) -> Result<GeneratedShader, CodegenError> {
    let k = program
        .kernel(kernel)
        .ok_or_else(|| CodegenError::UnknownKernel(kernel.to_owned()))?;
    if k.is_reduce {
        return Err(CodegenError::Unsupported(
            "reduce kernels compile through reduce_pass_shader".into(),
        ));
    }
    if !k
        .params
        .iter()
        .any(|p| p.name == output && p.kind == ParamKind::OutStream)
    {
        return Err(CodegenError::UnknownOutput(output.to_owned()));
    }
    let gen = IrGen {
        kernel: k,
        storage,
        shapes,
        out: output.to_owned(),
    };
    gen.generate()
}

struct IrGen<'a> {
    kernel: &'a IrKernel,
    storage: StorageMode,
    shapes: &'a KernelShapes,
    out: String,
}

impl IrGen<'_> {
    /// The `gl_FragColor` store for this pass's output — emitted at the
    /// end of `main()` *and* before every kernel-level `return;`, so an
    /// early-returning kernel keeps the output value written so far
    /// (matching the CPU interpreters, where the buffer simply retains
    /// its last store).
    fn epilogue(&self) -> String {
        let result = format!("_out_{}", self.out);
        if self.storage == StorageMode::Packed {
            return format!("gl_FragColor = ba_encode({result});");
        }
        let out_ty = self
            .kernel
            .params
            .iter()
            .find(|p| p.name == self.out)
            .expect("output validated at entry")
            .ty;
        let expanded = match out_ty.width {
            1 => format!("vec4({result}, 0.0, 0.0, 0.0)"),
            2 => format!("vec4({result}, 0.0, 0.0)"),
            3 => format!("vec4({result}, 0.0)"),
            _ => result,
        };
        format!("gl_FragColor = {expanded};")
    }
}

impl IrGen<'_> {
    fn generate(&self) -> Result<GeneratedShader, CodegenError> {
        let k = self.kernel;
        let packed = self.storage == StorageMode::Packed;
        let mut samplers = Vec::new();
        let mut scalars = Vec::new();
        let mut metas = Vec::new();
        let mut shapes_needed = Vec::new();
        let mut header = String::new();
        let _ = writeln!(header, "precision highp float;");
        let _ = writeln!(header, "varying vec2 v_texcoord;");
        let _ = writeln!(header, "uniform vec2 {VIEWPORT_UNIFORM};");
        for p in &k.params {
            match p.kind {
                ParamKind::Stream | ParamKind::Gather { .. } => {
                    if packed && p.ty.width > 1 {
                        return Err(CodegenError::VectorStreamOnPackedTarget {
                            param: p.name.clone(),
                        });
                    }
                    let _ = writeln!(header, "uniform sampler2D {};", tex_uniform(&p.name));
                    let _ = writeln!(header, "uniform vec4 {};", meta_uniform(&p.name));
                    samplers.push(p.name.clone());
                    metas.push(p.name.clone());
                    if let ParamKind::Gather { rank } = p.kind {
                        if rank >= 3 {
                            let _ = writeln!(header, "uniform vec4 {};", shape_uniform(&p.name));
                            shapes_needed.push(p.name.clone());
                        }
                    }
                }
                ParamKind::OutStream | ParamKind::ReduceOut => {
                    if packed && p.ty.width > 1 {
                        return Err(CodegenError::VectorStreamOnPackedTarget {
                            param: p.name.clone(),
                        });
                    }
                    if p.name == self.out {
                        let _ = writeln!(header, "uniform vec4 {};", meta_uniform(&p.name));
                        metas.push(p.name.clone());
                    }
                }
                ParamKind::Scalar => {
                    let _ = writeln!(header, "uniform {} {};", glsl_type(p.ty), scalar_uniform(&p.name));
                    scalars.push(p.name.clone());
                }
            }
        }
        if packed {
            header.push_str(brook_numfmt::GLSL_DECODE);
            header.push_str(brook_numfmt::GLSL_ENCODE);
        }
        // Fetch helpers for elementwise inputs and gathers.
        for p in &k.params {
            match p.kind {
                ParamKind::Stream => emit_elem_fetch(&mut header, &p.name, p.ty, self.shapes, self.storage),
                ParamKind::Gather { rank } => emit_gather_fetch(
                    &mut header,
                    &p.name,
                    p.ty,
                    rank,
                    self.shapes,
                    self.storage,
                    self.shapes.elide(&p.name),
                ),
                _ => {}
            }
        }
        // main(): position, input prefetch, output locals, register
        // frame, then the structured instruction stream.
        let mut body = String::new();
        body.push_str("void main() {\n");
        let _ = writeln!(body, "    vec2 _pc = floor(v_texcoord * {VIEWPORT_UNIFORM});");
        let _ = writeln!(body, "    float _lin = _pc.y * {VIEWPORT_UNIFORM}.x + _pc.x;");
        for p in &k.params {
            if p.kind == ParamKind::Stream {
                let _ = writeln!(
                    body,
                    "    {} b_{} = _fetch_{}();",
                    glsl_type(p.ty),
                    p.name,
                    p.name
                );
            }
        }
        for (_, p) in k.output_params() {
            let _ = writeln!(
                body,
                "    {} _out_{} = {};",
                glsl_type(p.ty),
                p.name,
                zero_literal(p.ty)
            );
        }
        // Register frame: one local per live register.
        let live = k.live_regs();
        for (r, ty) in k.regs.iter().enumerate() {
            if live[r] {
                let _ = writeln!(body, "    {} _r{r} = {};", glsl_type(*ty), zero_literal(*ty));
            }
        }
        // Loop gate variables, one per loop region.
        let n_loops = count_loops(&k.body);
        for g in 0..n_loops {
            let _ = writeln!(body, "    bool _lg{g} = true;");
        }
        let mut gate = 0usize;
        self.emit_nodes(&mut body, &k.body, 1, &mut gate)?;
        let _ = writeln!(body, "    {}", self.epilogue());
        body.push_str("}\n");
        Ok(GeneratedShader {
            glsl: format!("{header}\n{body}"),
            samplers,
            scalars,
            metas,
            shapes_needed,
            output: self.out.clone(),
        })
    }

    fn indent(out: &mut String, level: usize) {
        for _ in 0..level {
            out.push_str("    ");
        }
    }

    fn ty(&self, r: Reg) -> Type {
        self.kernel.regs[r as usize]
    }

    fn emit_nodes(
        &self,
        out: &mut String,
        nodes: &[Node],
        level: usize,
        gate: &mut usize,
    ) -> Result<(), CodegenError> {
        for n in nodes {
            match n {
                Node::Seq { start, end } => {
                    for i in *start..*end {
                        self.emit_inst(out, &self.kernel.insts[i as usize], level)?;
                    }
                }
                Node::If { cond, then, els, .. } => {
                    Self::indent(out, level);
                    let _ = writeln!(out, "if (_r{cond}) {{");
                    self.emit_nodes(out, then, level + 1, gate)?;
                    Self::indent(out, level);
                    if els.is_empty() {
                        out.push_str("}\n");
                    } else {
                        out.push_str("} else {\n");
                        self.emit_nodes(out, els, level + 1, gate)?;
                        Self::indent(out, level);
                        out.push_str("}\n");
                    }
                }
                Node::Loop(l) => {
                    let g = *gate;
                    *gate += 1;
                    Self::indent(out, level);
                    let _ = writeln!(out, "for (_lg{g} = true; _lg{g}; _lg{g} = _lg{g}) {{");
                    match l.kind {
                        LoopKind::For | LoopKind::While => {
                            self.emit_nodes(out, &l.header, level + 1, gate)?;
                            Self::indent(out, level + 1);
                            let _ = writeln!(out, "_lg{g} = _r{};", l.cond);
                            Self::indent(out, level + 1);
                            let _ = writeln!(out, "if (_lg{g}) {{");
                            self.emit_nodes(out, &l.body, level + 2, gate)?;
                            Self::indent(out, level + 1);
                            out.push_str("}\n");
                        }
                        LoopKind::DoWhile => {
                            // Body always runs, then the condition gates
                            // the next iteration.
                            self.emit_nodes(out, &l.body, level + 1, gate)?;
                            self.emit_nodes(out, &l.header, level + 1, gate)?;
                            Self::indent(out, level + 1);
                            let _ = writeln!(out, "_lg{g} = _r{};", l.cond);
                        }
                    }
                    Self::indent(out, level);
                    out.push_str("}\n");
                }
            }
        }
        Ok(())
    }

    fn emit_inst(&self, out: &mut String, inst: &Inst, level: usize) -> Result<(), CodegenError> {
        let k = self.kernel;
        let line: String = match inst {
            Inst::Nop | Inst::Jump { .. } | Inst::BranchIfFalse { .. } => return Ok(()),
            Inst::Const { dst, v } => format!("_r{dst} = {};", value_literal(v)),
            Inst::Mov { dst, src } => {
                let e = coerce(format!("_r{src}"), self.ty(*src), self.ty(*dst));
                format!("_r{dst} = {e};")
            }
            Inst::DeclInit { dst, src, ty } => {
                let e = coerce(format!("_r{src}"), self.ty(*src), *ty);
                format!("_r{dst} = {e};")
            }
            Inst::AssignLocal { dst, op, src } => {
                let e = coerce(format!("_r{src}"), self.ty(*src), self.ty(*dst));
                format!("_r{dst} {} {e};", assign_op(*op))
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                let e = self.bin_expr(*op, *lhs, *rhs)?;
                format!("_r{dst} = {e};")
            }
            Inst::Un { dst, op, src } => match op {
                UnOp::Neg => format!("_r{dst} = (-_r{src});"),
                UnOp::Not => format!("_r{dst} = (!_r{src});"),
            },
            Inst::CastInt { dst, src } => format!("_r{dst} = int(_r{src});"),
            Inst::Construct { dst, width, args } => {
                let glsl = match width {
                    1 => "float",
                    2 => "vec2",
                    3 => "vec3",
                    _ => "vec4",
                };
                let parts: Vec<String> = args.iter().map(|r| format!("_r{r}")).collect();
                format!("_r{dst} = {glsl}({});", parts.join(", "))
            }
            Inst::Swizzle { dst, src, sel } => format!("_r{dst} = _r{src}.{sel};"),
            Inst::SwizzleStore { dst, op, src, sel } => {
                let target_ty = Type::float(sel.len() as u8);
                let e = coerce(format!("_r{src}"), self.ty(*src), target_ty);
                format!("_r{dst}.{sel} {} {e};", assign_op(*op))
            }
            Inst::Builtin { dst, which, args } => {
                let b = &BUILTINS[*which as usize];
                let parts: Vec<String> = args
                    .iter()
                    .map(|r| {
                        if self.ty(*r).scalar == ScalarKind::Int {
                            format!("float(_r{r})")
                        } else {
                            format!("_r{r}")
                        }
                    })
                    .collect();
                let e = match b.name {
                    "saturate" => format!("clamp({}, 0.0, 1.0)", parts[0]),
                    "round" => format!("floor({} + 0.5)", parts[0]),
                    _ => format!("{}({})", b.glsl_name, parts.join(", ")),
                };
                format!("_r{dst} = {e};")
            }
            Inst::Select { dst, cond, a, b } => {
                let to = self.ty(*dst);
                let ae = coerce(format!("_r{a}"), self.ty(*a), to);
                let be = coerce(format!("_r{b}"), self.ty(*b), to);
                format!("_r{dst} = ((_r{cond}) ? ({ae}) : ({be}));")
            }
            Inst::ReadElem { dst, param } => {
                format!("_r{dst} = b_{};", k.params[*param as usize].name)
            }
            Inst::ReadScalar { dst, param } => {
                format!("_r{dst} = {};", scalar_uniform(&k.params[*param as usize].name))
            }
            Inst::ReadOut { dst, out: o } => format!("_r{dst} = _out_{};", k.out_param(*o).name),
            Inst::WriteOut { out: o, op, src } => {
                let p = k.out_param(*o);
                let e = coerce(format!("_r{src}"), self.ty(*src), p.ty);
                format!("_out_{} {} {e};", p.name, assign_op(*op))
            }
            Inst::Gather { dst, param, idx, .. } => {
                let parts: Vec<String> = idx
                    .iter()
                    .map(|r| coerce(format!("_r{r}"), self.ty(*r), Type::FLOAT))
                    .collect();
                format!(
                    "_r{dst} = _gather_{}({});",
                    k.params[*param as usize].name,
                    parts.join(", ")
                )
            }
            Inst::Indexof { dst, param } => {
                let p = &k.params[*param as usize];
                let e = match self.shapes.rank(&p.name) {
                    StreamRank::Grid => {
                        if p.name == self.out || p.kind.is_output() {
                            "_pc".to_owned()
                        } else {
                            format!("floor(v_texcoord * {}.zw)", meta_uniform(&p.name))
                        }
                    }
                    StreamRank::Linear => "vec2(_lin, 0.0)".to_owned(),
                };
                format!("_r{dst} = {e};")
            }
            // Keep the partial output on early exit — see `epilogue`.
            Inst::Ret => format!("{} return;", self.epilogue()),
            Inst::Fail { msg, codegen_fatal } => {
                if *codegen_fatal {
                    return Err(CodegenError::Unsupported(msg.clone()));
                }
                // CPU-only guard fault (helper fall-through check): the
                // legacy GLSL path had no equivalent either.
                return Ok(());
            }
        };
        Self::indent(out, level);
        out.push_str(&line);
        out.push('\n');
        Ok(())
    }

    fn bin_expr(&self, op: BinOp, lhs: Reg, rhs: Reg) -> Result<String, CodegenError> {
        let lt = self.ty(lhs);
        let rt = self.ty(rhs);
        let mut l = format!("_r{lhs}");
        let mut r = format!("_r{rhs}");
        // Brook promotes int operands of float ops implicitly; GLSL ES
        // does not.
        if lt.scalar == ScalarKind::Int && rt.scalar == ScalarKind::Float {
            l = format!("float({l})");
        }
        if rt.scalar == ScalarKind::Int && lt.scalar == ScalarKind::Float {
            r = format!("float({r})");
        }
        if op == BinOp::Rem {
            if lt.scalar == ScalarKind::Int && rt.scalar == ScalarKind::Int {
                // GLSL ES 1.00 has no `%`; integer remainder via
                // truncating division.
                return Ok(format!("(({l}) - (({l}) / ({r})) * ({r}))"));
            }
            return Ok(format!("mod({l}, {r})"));
        }
        Ok(format!("({l} {} {r})", op.as_str()))
    }
}

fn assign_op(op: AssignOp) -> &'static str {
    match op {
        AssignOp::Assign => "=",
        AssignOp::AddAssign => "+=",
        AssignOp::SubAssign => "-=",
        AssignOp::MulAssign => "*=",
        AssignOp::DivAssign => "/=",
    }
}

fn value_literal(v: &Value) -> String {
    match v {
        Value::Float(f) => float_literal(*f),
        Value::Vec2(l) => format!("vec2({}, {})", float_literal(l[0]), float_literal(l[1])),
        Value::Vec3(l) => format!(
            "vec3({}, {}, {})",
            float_literal(l[0]),
            float_literal(l[1]),
            float_literal(l[2])
        ),
        Value::Vec4(l) => format!(
            "vec4({}, {}, {}, {})",
            float_literal(l[0]),
            float_literal(l[1]),
            float_literal(l[2]),
            float_literal(l[3])
        ),
        Value::Int(i) => format!("{i}"),
        Value::Bool(b) => format!("{b}"),
    }
}

fn count_loops(nodes: &[Node]) -> usize {
    nodes
        .iter()
        .map(|n| match n {
            Node::Seq { .. } => 0,
            Node::If { then, els, .. } => count_loops(then) + count_loops(els),
            Node::Loop(l) => 1 + count_loops(&l.header) + count_loops(&l.body),
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brook_ir::lower::lower_program;
    use brook_lang::parse_and_check;

    fn lower(src: &str) -> IrProgram {
        let checked = parse_and_check(src).expect("front-end");
        let (p, errs) = lower_program(&checked);
        assert!(errs.is_empty(), "{errs:?}");
        p
    }

    fn gen(
        src: &str,
        kernel: &str,
        output: &str,
        shapes: KernelShapes,
        storage: StorageMode,
    ) -> GeneratedShader {
        let p = lower(src);
        generate_ir_kernel_shader(&p, kernel, output, &shapes, storage)
            .unwrap_or_else(|e| panic!("ir codegen: {e}"))
    }

    #[test]
    fn generates_compilable_packed_shader() {
        let g = gen(
            "kernel void add(float a<>, float b<>, out float c<>) { c = a + b; }",
            "add",
            "c",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(g.glsl.contains("ba_decode"));
        assert!(g.glsl.contains("ba_encode"));
        assert_eq!(g.samplers, vec!["a", "b"]);
        glsl_es::compile(&g.glsl)
            .unwrap_or_else(|e| panic!("generated GLSL does not compile: {e}\n{}", g.glsl));
    }

    #[test]
    fn generates_compilable_native_vector_shader() {
        let g = gen(
            "kernel void scale(float4 a<>, float k, out float4 o<>) { o = a * k; }",
            "scale",
            "o",
            KernelShapes::default(),
            StorageMode::Native,
        );
        assert_eq!(g.scalars, vec!["k"]);
        glsl_es::compile(&g.glsl)
            .unwrap_or_else(|e| panic!("generated GLSL does not compile: {e}\n{}", g.glsl));
    }

    #[test]
    fn loop_uses_gate_pattern() {
        let g = gen(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 8; i++) { s += a; }
                o = s;
            }",
            "f",
            "o",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(
            g.glsl.contains("for (_lg0 = true; _lg0; _lg0 = _lg0)"),
            "{}",
            g.glsl
        );
        glsl_es::compile(&g.glsl).unwrap();
    }

    #[test]
    fn helpers_arrive_inlined() {
        let g = gen(
            "float sq(float x) { return x * x; }
             kernel void f(float a<>, out float o<>) { o = sq(a) + sq(2.0); }",
            "f",
            "o",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(
            !g.glsl.contains("b_sq"),
            "helper must be inlined, not emitted:\n{}",
            g.glsl
        );
        glsl_es::compile(&g.glsl).unwrap();
    }

    #[test]
    fn vector_stream_rejected_on_packed() {
        let p = lower("kernel void f(float4 a<>, out float4 o<>) { o = a; }");
        let err = generate_ir_kernel_shader(&p, "f", "o", &KernelShapes::default(), StorageMode::Packed)
            .unwrap_err();
        assert!(matches!(err, CodegenError::VectorStreamOnPackedTarget { .. }));
    }

    #[test]
    fn multi_output_generates_one_shader_per_output() {
        let src = "kernel void fw(float d<>, out float dist<>, out float pred<>) { dist = d * 2.0; pred = d + 1.0; }";
        let g1 = gen(src, "fw", "dist", KernelShapes::default(), StorageMode::Packed);
        let g2 = gen(src, "fw", "pred", KernelShapes::default(), StorageMode::Packed);
        assert!(g1.glsl.contains("ba_encode(_out_dist)"));
        assert!(g2.glsl.contains("ba_encode(_out_pred)"));
        glsl_es::compile(&g1.glsl).unwrap();
        glsl_es::compile(&g2.glsl).unwrap();
    }

    #[test]
    fn fatal_ir_fault_rejected() {
        // `g` used without an index lowers to a codegen-fatal Fail.
        let p = lower("kernel void f(float g[], float a<>, out float o<>) { o = g + a; }");
        let err = generate_ir_kernel_shader(&p, "f", "o", &KernelShapes::default(), StorageMode::Packed)
            .unwrap_err();
        assert!(matches!(err, CodegenError::Unsupported(_)), "{err:?}");
    }

    #[test]
    fn indexof_variants_match_shape_classes() {
        let g = gen(
            "kernel void f(float a<>, out float o<>) { float2 p = indexof(o); o = p.x + p.y; }",
            "f",
            "o",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(g.glsl.contains("_pc"), "{}", g.glsl);
        let shapes = KernelShapes::default()
            .with("o", StreamRank::Linear)
            .with("a", StreamRank::Linear);
        let g = gen(
            "kernel void f(float a<>, out float o<>) { o = indexof(o).x; }",
            "f",
            "o",
            shapes,
            StorageMode::Packed,
        );
        assert!(g.glsl.contains("vec2(_lin, 0.0)"), "{}", g.glsl);
    }
}
