//! The hidden-uniform naming convention shared between the code
//! generator and the runtime (paper §5.2: "we pass the texture
//! dimensions as extra hidden arguments in the kernel invocation").

/// Sampler uniform for a stream/gather parameter.
pub fn tex_uniform(param: &str) -> String {
    format!("_tex_{param}")
}

/// Size uniform for a stream/gather parameter:
/// `vec4(alloc_w, alloc_h, logical_x, logical_y)` where `logical_x` is
/// the innermost extent (columns, or total length for linear-packed
/// streams) and `logical_y` the row count.
pub fn meta_uniform(param: &str) -> String {
    format!("_meta_{param}")
}

/// Extents uniform for rank-3/4 gathers: `vec4(s0, s1, s2, s3)` in index
/// order (outermost first, unused trailing extents = 1).
pub fn shape_uniform(param: &str) -> String {
    format!("_shape_{param}")
}

/// Scalar (non-stream) kernel parameter uniform.
pub fn scalar_uniform(param: &str) -> String {
    format!("_p_{param}")
}

/// The viewport-size uniform `vec2(vw, vh)` every generated shader
/// declares: fragment integer coordinates are reconstructed from
/// `v_texcoord` with it.
pub const VIEWPORT_UNIFORM: &str = "_ba_vp";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_prefixed_and_distinct() {
        assert_eq!(tex_uniform("a"), "_tex_a");
        assert_eq!(meta_uniform("a"), "_meta_a");
        assert_eq!(shape_uniform("a"), "_shape_a");
        assert_eq!(scalar_uniform("n"), "_p_n");
        assert_ne!(tex_uniform("x"), meta_uniform("x"));
    }
}
