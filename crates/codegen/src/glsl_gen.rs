//! Kernel-to-fragment-shader translation.

use crate::names::{meta_uniform, scalar_uniform, shape_uniform, tex_uniform, VIEWPORT_UNIFORM};
use crate::{CodegenError, StorageMode};
use brook_lang::ast::*;
use brook_lang::builtins::builtin;
use brook_lang::CheckedProgram;
use std::collections::HashMap;
use std::fmt::Write;

/// How a stream's logical shape maps onto its 2D texture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StreamRank {
    /// Elements packed row-major by linear index with the allocated
    /// width as stride (1D, 3D and 4D streams; paper §5.3).
    Linear,
    /// Logical 2D `(row, col)` stored at texel `(col, row)` directly.
    Grid,
}

/// Runtime-known shape classes for the kernel's streams. Sizes themselves
/// stay in uniforms so one compiled shader serves every size of the same
/// shape class.
#[derive(Debug, Clone, Default)]
pub struct KernelShapes {
    /// Shape class per elementwise stream, output stream and gather.
    pub ranks: HashMap<String, StreamRank>,
    /// Gather parameters whose `_gather_<name>` helper may skip the
    /// per-dimension clamp for this dispatch: every gather on the
    /// parameter carries an analyzer-proven range
    /// ([`brook_ir::ProvenIdx`]) and the runtime checked it against the
    /// bound stream's shape and the launch domain
    /// ([`brook_ir::eval::proven_fits_dyn`]). Part of the shader cache
    /// key — dispatches that fail the fit check compile the clamped
    /// variant.
    pub elide_gathers: std::collections::BTreeSet<String>,
}

impl KernelShapes {
    /// Shape class for a parameter; defaults to `Grid`.
    pub fn rank(&self, param: &str) -> StreamRank {
        self.ranks.get(param).copied().unwrap_or(StreamRank::Grid)
    }

    /// Whether the gather helper for `param` may skip its clamps.
    pub fn elide(&self, param: &str) -> bool {
        self.elide_gathers.contains(param)
    }

    /// Builder-style insertion.
    pub fn with(mut self, param: &str, rank: StreamRank) -> Self {
        self.ranks.insert(param.to_owned(), rank);
        self
    }
}

/// The generated shader plus everything the runtime needs to bind it.
#[derive(Debug, Clone)]
pub struct GeneratedShader {
    /// GLSL ES 1.00 fragment shader source.
    pub glsl: String,
    /// Stream/gather parameter names in texture-unit order: the runtime
    /// binds parameter `samplers[i]` to unit `i` and sets `_tex_<name>`
    /// to `i`.
    pub samplers: Vec<String>,
    /// Scalar parameter names (set via `_p_<name>` uniforms).
    pub scalars: Vec<String>,
    /// Parameters that need a `_meta_<name>` uniform.
    pub metas: Vec<String>,
    /// Parameters that need a `_shape_<name>` uniform (rank-3/4 gathers).
    pub shapes_needed: Vec<String>,
    /// The output stream this shader writes.
    pub output: String,
}

struct Gen<'a> {
    checked: &'a CheckedProgram,
    storage: StorageMode,
    shapes: &'a KernelShapes,
    /// param name -> kind, for identifier classification.
    params: HashMap<String, (Type, ParamKind)>,
    out: String,
}

/// Generates the fragment shader computing `output` for `kernel`.
///
/// Kernels with several `out` streams are compiled once per output —
/// call this once per pass (the splitting of paper §6).
///
/// # Errors
/// Fails for unknown kernels/outputs, reduce kernels (see
/// [`crate::reduce`]), vector streams on the packed target and constructs
/// outside the GLSL ES subset.
pub fn generate_kernel_shader(
    checked: &CheckedProgram,
    kernel: &str,
    output: &str,
    shapes: &KernelShapes,
    storage: StorageMode,
) -> Result<GeneratedShader, CodegenError> {
    let kdef = checked
        .program
        .kernel(kernel)
        .ok_or_else(|| CodegenError::UnknownKernel(kernel.to_owned()))?;
    if kdef.is_reduce {
        return Err(CodegenError::Unsupported(
            "reduce kernels compile through reduce_pass_shader".into(),
        ));
    }
    if !kdef
        .params
        .iter()
        .any(|p| p.name == output && p.kind == ParamKind::OutStream)
    {
        return Err(CodegenError::UnknownOutput(output.to_owned()));
    }
    let mut gen = Gen {
        checked,
        storage,
        shapes,
        params: kdef
            .params
            .iter()
            .map(|p| (p.name.clone(), (p.ty, p.kind)))
            .collect(),
        out: output.to_owned(),
    };
    gen.generate(kdef)
}

impl Gen<'_> {
    fn generate(&mut self, k: &KernelDef) -> Result<GeneratedShader, CodegenError> {
        let packed = self.storage == StorageMode::Packed;
        let mut samplers = Vec::new();
        let mut scalars = Vec::new();
        let mut metas = Vec::new();
        let mut shapes_needed = Vec::new();
        let mut header = String::new();
        let _ = writeln!(header, "precision highp float;");
        let _ = writeln!(header, "varying vec2 v_texcoord;");
        let _ = writeln!(header, "uniform vec2 {VIEWPORT_UNIFORM};");
        for p in &k.params {
            match p.kind {
                ParamKind::Stream | ParamKind::Gather { .. } => {
                    if packed && p.ty.width > 1 {
                        return Err(CodegenError::VectorStreamOnPackedTarget {
                            param: p.name.clone(),
                        });
                    }
                    let _ = writeln!(header, "uniform sampler2D {};", tex_uniform(&p.name));
                    let _ = writeln!(header, "uniform vec4 {};", meta_uniform(&p.name));
                    samplers.push(p.name.clone());
                    metas.push(p.name.clone());
                    if let ParamKind::Gather { rank } = p.kind {
                        if rank >= 3 {
                            let _ = writeln!(header, "uniform vec4 {};", shape_uniform(&p.name));
                            shapes_needed.push(p.name.clone());
                        }
                    }
                }
                ParamKind::OutStream | ParamKind::ReduceOut => {
                    if packed && p.ty.width > 1 {
                        return Err(CodegenError::VectorStreamOnPackedTarget {
                            param: p.name.clone(),
                        });
                    }
                    if p.name == self.out {
                        let _ = writeln!(header, "uniform vec4 {};", meta_uniform(&p.name));
                        metas.push(p.name.clone());
                    }
                }
                ParamKind::Scalar => {
                    let _ = writeln!(header, "uniform {} {};", glsl_type(p.ty), scalar_uniform(&p.name));
                    scalars.push(p.name.clone());
                }
            }
        }
        if packed {
            header.push_str(brook_numfmt::GLSL_DECODE);
            header.push_str(brook_numfmt::GLSL_ENCODE);
        }
        // Fetch helpers for elementwise inputs and gathers.
        for p in &k.params {
            match p.kind {
                ParamKind::Stream => self.emit_elem_fetch(&mut header, p),
                ParamKind::Gather { rank } => self.emit_gather_fetch(&mut header, p, rank),
                _ => {}
            }
        }
        // Helper functions from the Brook program (source order; Brook
        // inherits C's define-before-use discipline, which GLSL shares).
        for f in self.checked.program.functions() {
            self.emit_function(&mut header, f)?;
        }
        // main().
        let mut body = String::new();
        body.push_str("void main() {\n");
        let _ = writeln!(body, "    vec2 _pc = floor(v_texcoord * {VIEWPORT_UNIFORM});");
        let _ = writeln!(body, "    float _lin = _pc.y * {VIEWPORT_UNIFORM}.x + _pc.x;");
        for p in &k.params {
            if p.kind == ParamKind::Stream {
                let _ = writeln!(
                    body,
                    "    {} b_{} = _fetch_{}();",
                    glsl_type(p.ty),
                    p.name,
                    p.name
                );
            }
        }
        for p in &k.params {
            if p.kind == ParamKind::OutStream {
                let _ = writeln!(
                    body,
                    "    {} _out_{} = {};",
                    glsl_type(p.ty),
                    p.name,
                    zero_literal(p.ty)
                );
            }
        }
        self.emit_block(&mut body, &k.body, 1)?;
        let result = format!("_out_{}", self.out);
        let out_ty = self.params[&self.out].0;
        if packed {
            let _ = writeln!(body, "    gl_FragColor = ba_encode({result});");
        } else {
            let expanded = match out_ty.width {
                1 => format!("vec4({result}, 0.0, 0.0, 0.0)"),
                2 => format!("vec4({result}, 0.0, 0.0)"),
                3 => format!("vec4({result}, 0.0)"),
                _ => result,
            };
            let _ = writeln!(body, "    gl_FragColor = {expanded};");
        }
        body.push_str("}\n");
        Ok(GeneratedShader {
            glsl: format!("{header}\n{body}"),
            samplers,
            scalars,
            metas,
            shapes_needed,
            output: self.out.clone(),
        })
    }

    fn emit_elem_fetch(&self, out: &mut String, p: &Param) {
        crate::fetch::emit_elem_fetch(out, &p.name, p.ty, self.shapes, self.storage);
    }

    /// Emits the `_gather_<name>` helper (see `crate::fetch` for the
    /// logical-space clamping rationale). The legacy AST path has no
    /// analyzer annotations, so the clamp is never elided here.
    fn emit_gather_fetch(&self, out: &mut String, p: &Param, rank: u8) {
        crate::fetch::emit_gather_fetch(out, &p.name, p.ty, rank, self.shapes, self.storage, false);
    }

    fn emit_function(&self, out: &mut String, f: &FunctionDef) -> Result<(), CodegenError> {
        let ret = match f.return_ty {
            Some(t) => glsl_type(t),
            None => "void",
        };
        let params: Vec<String> = f
            .params
            .iter()
            .map(|(n, t)| format!("{} b_{n}", glsl_type(*t)))
            .collect();
        let _ = writeln!(out, "{ret} b_{}({}) {{", f.name, params.join(", "));
        let mut body = String::new();
        self.emit_block(&mut body, &f.body, 1)?;
        out.push_str(&body);
        out.push_str("}\n");
        Ok(())
    }

    fn emit_block(&self, out: &mut String, b: &Block, level: usize) -> Result<(), CodegenError> {
        for s in &b.stmts {
            self.emit_stmt(out, s, level)?;
        }
        Ok(())
    }

    fn indent(out: &mut String, level: usize) {
        for _ in 0..level {
            out.push_str("    ");
        }
    }

    fn emit_stmt(&self, out: &mut String, s: &Stmt, level: usize) -> Result<(), CodegenError> {
        match s {
            Stmt::Decl { name, ty, init, .. } => {
                Self::indent(out, level);
                match init {
                    Some(e) => {
                        let v = self.emit_coerced(e, *ty)?;
                        let _ = writeln!(out, "{} b_{name} = {v};", glsl_type(*ty));
                    }
                    None => {
                        let _ = writeln!(out, "{} b_{name} = {};", glsl_type(*ty), zero_literal(*ty));
                    }
                }
            }
            Stmt::Assign {
                target, op, value, ..
            } => {
                Self::indent(out, level);
                let t = self.emit_expr(target)?;
                let tt = self.type_of(target)?;
                let v = self.emit_coerced(value, tt)?;
                let op = match op {
                    AssignOp::Assign => "=",
                    AssignOp::AddAssign => "+=",
                    AssignOp::SubAssign => "-=",
                    AssignOp::MulAssign => "*=",
                    AssignOp::DivAssign => "/=",
                };
                let _ = writeln!(out, "{t} {op} {v};");
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                Self::indent(out, level);
                let c = self.emit_expr(cond)?;
                let _ = writeln!(out, "if ({c}) {{");
                self.emit_block(out, then_block, level + 1)?;
                Self::indent(out, level);
                match else_block {
                    Some(e) => {
                        out.push_str("} else {\n");
                        self.emit_block(out, e, level + 1)?;
                        Self::indent(out, level);
                        out.push_str("}\n");
                    }
                    None => out.push_str("}\n"),
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                Self::indent(out, level);
                let mut header = String::new();
                if let Some(i) = init {
                    self.emit_stmt(&mut header, i, 0)?;
                }
                let init_s = header.trim().trim_end_matches(';').to_owned();
                let cond_s = match cond {
                    Some(c) => self.emit_expr(c)?,
                    None => "true".to_owned(),
                };
                let mut step_str = String::new();
                if let Some(st) = step {
                    self.emit_stmt(&mut step_str, st, 0)?;
                }
                let step_s = step_str.trim().trim_end_matches(';').to_owned();
                let _ = writeln!(out, "for ({init_s}; {cond_s}; {step_s}) {{");
                self.emit_block(out, body, level + 1)?;
                Self::indent(out, level);
                out.push_str("}\n");
            }
            Stmt::While { .. } | Stmt::DoWhile { .. } => {
                return Err(CodegenError::Unsupported(
                    "while/do-while loops violate BA003 and have no GLSL ES 1.00 mapping".into(),
                ));
            }
            Stmt::Return { value, .. } => {
                Self::indent(out, level);
                match value {
                    Some(v) => {
                        let s = self.emit_expr(v)?;
                        let _ = writeln!(out, "return {s};");
                    }
                    None => out.push_str("return;\n"),
                }
            }
            Stmt::Expr { expr, .. } => {
                Self::indent(out, level);
                let s = self.emit_expr(expr)?;
                let _ = writeln!(out, "{s};");
            }
            Stmt::Block(b) => {
                Self::indent(out, level);
                out.push_str("{\n");
                self.emit_block(out, b, level + 1)?;
                Self::indent(out, level);
                out.push_str("}\n");
            }
        }
        Ok(())
    }

    fn type_of(&self, e: &Expr) -> Result<Type, CodegenError> {
        self.checked
            .types
            .get(&e.id)
            .copied()
            .ok_or_else(|| CodegenError::Unsupported(format!("untyped expression node {}", e.id)))
    }

    /// Emits `e`, inserting the explicit conversions GLSL ES requires
    /// where Brook allowed implicit ones (int -> float).
    fn emit_coerced(&self, e: &Expr, target: Type) -> Result<String, CodegenError> {
        let s = self.emit_expr(e)?;
        let from = self.type_of(e)?;
        Ok(coerce(s, from, target))
    }

    fn emit_expr(&self, e: &Expr) -> Result<String, CodegenError> {
        Ok(match &e.kind {
            ExprKind::FloatLit(v) => float_literal(*v),
            ExprKind::IntLit(v) => format!("{v}"),
            ExprKind::BoolLit(v) => format!("{v}"),
            ExprKind::Var(name) => match self.params.get(name) {
                Some((_, ParamKind::Scalar)) => scalar_uniform(name),
                Some((_, ParamKind::OutStream | ParamKind::ReduceOut)) => format!("_out_{name}"),
                Some((_, ParamKind::Gather { .. })) => {
                    return Err(CodegenError::Unsupported(format!(
                        "gather `{name}` used without an index"
                    )))
                }
                Some((_, ParamKind::Stream)) | None => format!("b_{name}"),
            },
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.type_of(lhs)?;
                let rt = self.type_of(rhs)?;
                let mut l = self.emit_expr(lhs)?;
                let mut r = self.emit_expr(rhs)?;
                // Brook promotes int operands of float ops implicitly;
                // GLSL ES does not.
                if lt.scalar == ScalarKind::Int && rt.scalar == ScalarKind::Float {
                    l = format!("float({l})");
                }
                if rt.scalar == ScalarKind::Int && lt.scalar == ScalarKind::Float {
                    r = format!("float({r})");
                }
                if *op == BinOp::Rem {
                    if lt.scalar == ScalarKind::Int && rt.scalar == ScalarKind::Int {
                        // GLSL ES 1.00 has no `%`; integer remainder via
                        // truncating division.
                        return Ok(format!("(({l}) - (({l}) / ({r})) * ({r}))"));
                    }
                    return Ok(format!("mod({l}, {r})"));
                }
                format!("({l} {} {r})", op.as_str())
            }
            ExprKind::Unary { op, operand } => {
                let o = self.emit_expr(operand)?;
                match op {
                    UnOp::Neg => format!("(-{o})"),
                    UnOp::Not => format!("(!{o})"),
                }
            }
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let c = self.emit_expr(cond)?;
                let tt = self.type_of(e)?;
                let t = self.emit_coerced(then_expr, tt)?;
                let f = self.emit_coerced(else_expr, tt)?;
                format!("(({c}) ? ({t}) : ({f}))")
            }
            ExprKind::Call { callee, args } => self.emit_call(e, callee, args)?,
            ExprKind::Index { base, indices } => {
                let ExprKind::Var(name) = &base.kind else {
                    return Err(CodegenError::Unsupported(
                        "indexed expression is not a gather".into(),
                    ));
                };
                let mut parts = Vec::new();
                for ix in indices {
                    let s = self.emit_expr(ix)?;
                    let t = self.type_of(ix)?;
                    parts.push(coerce(s, t, Type::FLOAT));
                }
                format!("_gather_{name}({})", parts.join(", "))
            }
            ExprKind::Swizzle { base, components } => {
                let b = self.emit_expr(base)?;
                format!("{b}.{components}")
            }
            ExprKind::Indexof { stream } => {
                // indexof over the output domain; for Linear streams the
                // linear element index goes in .x (paper §5.2).
                match self.shapes.rank(stream) {
                    StreamRank::Grid => {
                        if stream == &self.out
                            || self
                                .params
                                .get(stream)
                                .map(|(_, k)| k.is_output())
                                .unwrap_or(false)
                        {
                            "_pc".to_owned()
                        } else {
                            format!("floor(v_texcoord * {}.zw)", meta_uniform(stream))
                        }
                    }
                    StreamRank::Linear => "vec2(_lin, 0.0)".to_owned(),
                }
            }
        })
    }

    fn emit_call(&self, e: &Expr, callee: &str, args: &[Expr]) -> Result<String, CodegenError> {
        // Constructors / casts map 1:1 (float2 -> vec2 etc.).
        if let Some(glsl) = match callee {
            "float" => Some("float"),
            "float2" => Some("vec2"),
            "float3" => Some("vec3"),
            "float4" => Some("vec4"),
            "int" => Some("int"),
            _ => None,
        } {
            let parts = args
                .iter()
                .map(|a| self.emit_expr(a))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(format!("{glsl}({})", parts.join(", ")));
        }
        if let Some(b) = builtin(callee) {
            let mut parts = Vec::new();
            for a in args {
                let s = self.emit_expr(a)?;
                let t = self.type_of(a)?;
                parts.push(if t.scalar == ScalarKind::Int {
                    format!("float({s})")
                } else {
                    s
                });
            }
            // Special lowerings where GLSL lacks a direct equivalent.
            return Ok(match callee {
                "saturate" => format!("clamp({}, 0.0, 1.0)", parts[0]),
                "round" => format!("floor({} + 0.5)", parts[0]),
                _ => format!("{}({})", b.glsl_name, parts.join(", ")),
            });
        }
        // Helper function defined in the Brook program.
        if self.checked.program.function(callee).is_some() {
            let f = self.checked.program.function(callee).expect("checked above");
            let mut parts = Vec::new();
            for (a, (_, pty)) in args.iter().zip(&f.params) {
                parts.push(self.emit_coerced(a, *pty)?);
            }
            return Ok(format!("b_{callee}({})", parts.join(", ")));
        }
        Err(CodegenError::Unsupported(format!(
            "call to unknown function `{callee}` at {}",
            e.span
        )))
    }
}

/// Brook type -> GLSL type spelling (shared with the IR emitter).
fn glsl_type(t: Type) -> &'static str {
    crate::fetch::glsl_type(t)
}

fn zero_literal(t: Type) -> String {
    crate::fetch::zero_literal(t)
}

fn float_literal(v: f32) -> String {
    crate::fetch::float_literal(v)
}

/// Inserts Brook's implicit conversions explicitly for GLSL.
fn coerce(expr: String, from: Type, to: Type) -> String {
    crate::fetch::coerce(expr, from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brook_lang::parse_and_check;

    fn gen(
        src: &str,
        kernel: &str,
        output: &str,
        shapes: KernelShapes,
        storage: StorageMode,
    ) -> GeneratedShader {
        let checked = parse_and_check(src).expect("front-end");
        generate_kernel_shader(&checked, kernel, output, &shapes, storage)
            .unwrap_or_else(|e| panic!("codegen: {e}"))
    }

    #[test]
    fn generates_compilable_packed_shader() {
        let g = gen(
            "kernel void add(float a<>, float b<>, out float c<>) { c = a + b; }",
            "add",
            "c",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(g.glsl.contains("ba_decode"));
        assert!(g.glsl.contains("ba_encode"));
        assert_eq!(g.samplers, vec!["a", "b"]);
        glsl_es::compile(&g.glsl)
            .unwrap_or_else(|e| panic!("generated GLSL does not compile: {e}\n{}", g.glsl));
    }

    #[test]
    fn generates_compilable_native_shader() {
        let g = gen(
            "kernel void scale(float4 a<>, float k, out float4 o<>) { o = a * k; }",
            "scale",
            "o",
            KernelShapes::default(),
            StorageMode::Native,
        );
        assert!(!g.glsl.contains("ba_decode"));
        assert_eq!(g.scalars, vec!["k"]);
        glsl_es::compile(&g.glsl)
            .unwrap_or_else(|e| panic!("generated GLSL does not compile: {e}\n{}", g.glsl));
    }

    #[test]
    fn vector_stream_rejected_on_packed() {
        let checked = parse_and_check("kernel void f(float4 a<>, out float4 o<>) { o = a; }").unwrap();
        let err = generate_kernel_shader(&checked, "f", "o", &KernelShapes::default(), StorageMode::Packed)
            .unwrap_err();
        assert!(matches!(err, CodegenError::VectorStreamOnPackedTarget { .. }));
    }

    #[test]
    fn indexof_grid_uses_meta() {
        let g = gen(
            "kernel void f(float a<>, out float o<>) { float2 i = indexof(o); o = i.x + i.y; }",
            "f",
            "o",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(g.glsl.contains("_pc"), "{}", g.glsl);
        glsl_es::compile(&g.glsl).unwrap();
    }

    #[test]
    fn indexof_linear_uses_lin() {
        let shapes = KernelShapes::default()
            .with("o", StreamRank::Linear)
            .with("a", StreamRank::Linear);
        let g = gen(
            "kernel void f(float a<>, out float o<>) { o = indexof(o).x; }",
            "f",
            "o",
            shapes,
            StorageMode::Packed,
        );
        assert!(g.glsl.contains("_lin"), "{}", g.glsl);
        glsl_es::compile(&g.glsl).unwrap();
    }

    #[test]
    fn gather_rank2_generates_direct_fetch() {
        let g = gen(
            "kernel void f(float m[][], float v<>, out float o<>) { o = m[1][2] * v; }",
            "f",
            "o",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(g.glsl.contains("_gather_m(float(1), float(2))"), "{}", g.glsl);
        glsl_es::compile(&g.glsl).unwrap();
    }

    #[test]
    fn gather_rank1_uses_linear_translation() {
        let g = gen(
            "kernel void f(float v[], float i<>, out float o<>) { o = v[int(i)]; }",
            "f",
            "o",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(g.glsl.contains("floor(_l / _meta_v.x)"), "{}", g.glsl);
        glsl_es::compile(&g.glsl).unwrap();
    }

    #[test]
    fn rank3_gather_needs_shape_uniform() {
        let g = gen(
            "kernel void f(float v[][][], float i<>, out float o<>) { o = v[0][1][2]; }",
            "f",
            "o",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(g.shapes_needed.contains(&"v".to_string()));
        assert!(g.glsl.contains("_shape_v"));
        glsl_es::compile(&g.glsl).unwrap();
    }

    #[test]
    fn for_loop_translates() {
        let g = gen(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 8; i++) { s += a; }
                o = s;
            }",
            "f",
            "o",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(
            g.glsl.contains("for (b_i = 0; (b_i < 8); b_i += 1)"),
            "{}",
            g.glsl
        );
        glsl_es::compile(&g.glsl).unwrap();
    }

    #[test]
    fn int_promotion_inserts_casts() {
        let g = gen(
            "kernel void f(float a<>, out float o<>) { int i; i = 3; o = a + i; }",
            "f",
            "o",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(g.glsl.contains("float(b_i)"), "{}", g.glsl);
        glsl_es::compile(&g.glsl).unwrap();
    }

    #[test]
    fn int_remainder_lowered_without_percent() {
        let g = gen(
            "kernel void f(float a<>, out float o<>) { int i; i = 7; int j; j = i % 3; o = a + j; }",
            "f",
            "o",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(!g.glsl.contains('%'), "{}", g.glsl);
        glsl_es::compile(&g.glsl).unwrap();
    }

    #[test]
    fn multi_output_kernel_generates_one_shader_per_output() {
        let src = "kernel void fw(float d<>, out float dist<>, out float pred<>) { dist = d * 2.0; pred = d + 1.0; }";
        let g1 = gen(src, "fw", "dist", KernelShapes::default(), StorageMode::Packed);
        let g2 = gen(src, "fw", "pred", KernelShapes::default(), StorageMode::Packed);
        assert!(g1.glsl.contains("ba_encode(_out_dist)"));
        assert!(g2.glsl.contains("ba_encode(_out_pred)"));
        glsl_es::compile(&g1.glsl).unwrap();
        glsl_es::compile(&g2.glsl).unwrap();
    }

    #[test]
    fn helper_functions_translated() {
        let g = gen(
            "float sq(float x) { return x * x; }
             kernel void f(float a<>, out float o<>) { o = sq(a) + sq(2.0); }",
            "f",
            "o",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(g.glsl.contains("float b_sq(float b_x)"), "{}", g.glsl);
        glsl_es::compile(&g.glsl).unwrap();
    }

    #[test]
    fn builtin_renames_applied() {
        let g = gen(
            "kernel void f(float a<>, out float o<>) { o = lerp(a, 1.0, 0.5) + rsqrt(a) + fmod(a, 2.0) + saturate(a) + round(a); }",
            "f",
            "o",
            KernelShapes::default(),
            StorageMode::Packed,
        );
        assert!(g.glsl.contains("mix("));
        assert!(g.glsl.contains("inversesqrt("));
        assert!(g.glsl.contains("clamp("));
        assert!(!g.glsl.contains("lerp("));
        glsl_es::compile(&g.glsl).unwrap();
    }

    #[test]
    fn unknown_kernel_and_output_rejected() {
        let checked = parse_and_check("kernel void f(float a<>, out float o<>) { o = a; }").unwrap();
        assert!(matches!(
            generate_kernel_shader(
                &checked,
                "nope",
                "o",
                &KernelShapes::default(),
                StorageMode::Packed
            ),
            Err(CodegenError::UnknownKernel(_))
        ));
        assert!(matches!(
            generate_kernel_shader(
                &checked,
                "f",
                "nope",
                &KernelShapes::default(),
                StorageMode::Packed
            ),
            Err(CodegenError::UnknownOutput(_))
        ));
    }

    #[test]
    fn reduce_kernel_rejected_here() {
        let checked = parse_and_check("reduce void s(float a<>, reduce float r<>) { r += a; }").unwrap();
        let err = generate_kernel_shader(&checked, "s", "r", &KernelShapes::default(), StorageMode::Packed)
            .unwrap_err();
        assert!(matches!(err, CodegenError::Unsupported(_)));
    }
}
