//! Golden-snapshot tests for the **live** shader path: GLSL generated
//! from BrookIR (`generate_ir_kernel_shader`), pinned against committed
//! `.glsl` fixtures. The sibling `golden.rs` pins the legacy AST
//! generator (kept as the differential reference); these fixtures pin
//! what the GL backend actually ships since the BrookIR re-plumb.
//!
//! To update after an *intentional* change:
//!
//! ```text
//! BROOK_BLESS=1 cargo test -p brook-codegen --test golden_ir
//! ```

use brook_codegen::{generate_ir_kernel_shader, KernelShapes, StorageMode, StreamRank};
use brook_ir::lower::lower_program;
use brook_lang::parse_and_check;
use std::fs;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_ir")
        .join(format!("{name}.glsl"))
}

fn check_golden(
    name: &str,
    src: &str,
    kernel: &str,
    output: &str,
    shapes: KernelShapes,
    storage: StorageMode,
) {
    let checked = parse_and_check(src).expect("front-end");
    let (ir, errs) = lower_program(&checked);
    assert!(errs.is_empty(), "{errs:?}");
    let generated = generate_ir_kernel_shader(&ir, kernel, output, &shapes, storage).expect("ir codegen");
    // The generated shader must always be valid GLSL ES for the
    // simulator, golden or not.
    glsl_es::compile(&generated.glsl).expect("generated GLSL must compile");
    let path = fixture_path(name);
    if std::env::var_os("BROOK_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &generated.glsl).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with BROOK_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        generated.glsl, expected,
        "IR-generated GLSL for `{name}` drifted from its golden fixture; \
         if intentional, re-bless with BROOK_BLESS=1 and review the diff"
    );
}

/// The canonical elementwise kernel on the native-float desktop profile.
#[test]
fn golden_ir_saxpy_native_grid() {
    check_golden(
        "saxpy_native_grid",
        "kernel void saxpy(float x<>, float y<>, float alpha, out float r<>) { r = alpha * x + y; }",
        "saxpy",
        "r",
        KernelShapes::default()
            .with("x", StreamRank::Grid)
            .with("y", StreamRank::Grid)
            .with("r", StreamRank::Grid),
        StorageMode::Native,
    );
}

/// Packed RGBA8 storage: fetches route through `ba_decode`, the result
/// through `ba_encode` (paper §5.4).
#[test]
fn golden_ir_scale_packed_linear() {
    check_golden(
        "scale_packed_linear",
        "kernel void scale(float a<>, float k, out float o<>) { o = a * k; }",
        "scale",
        "o",
        KernelShapes::default()
            .with("a", StreamRank::Linear)
            .with("o", StreamRank::Linear),
        StorageMode::Packed,
    );
}

/// Gathers in both ranks with the hidden `_meta_*` size uniforms.
#[test]
fn golden_ir_gather_mix_packed() {
    check_golden(
        "gather_mix_packed",
        "kernel void g(float lut[], float m[][], float i<>, out float o<>) {
            o = lut[int(i)] + m[int(i) + 1][int(i)];
        }",
        "g",
        "o",
        KernelShapes::default()
            .with("lut", StreamRank::Linear)
            .with("m", StreamRank::Grid)
            .with("i", StreamRank::Linear)
            .with("o", StreamRank::Linear),
        StorageMode::Packed,
    );
}

/// Control flow, `indexof` and a helper call: the loop maps to the
/// gate-variable `for` pattern and the helper arrives pre-inlined — no
/// GLSL function definition is emitted for it.
#[test]
fn golden_ir_loop_indexof_helper_native() {
    check_golden(
        "loop_indexof_helper_native",
        "float sq(float v) { return v * v; }
         kernel void f(float a<>, out float o<>) {
            float s = 0.0;
            int i;
            for (i = 0; i < 8; i += 1) {
                if (a > 0.5) { s += sq(a); } else { s -= 0.25; }
            }
            o = s + indexof(o).x;
         }",
        "f",
        "o",
        KernelShapes::default()
            .with("a", StreamRank::Grid)
            .with("o", StreamRank::Grid),
        StorageMode::Native,
    );
}

/// Every fixture on disk corresponds to a test above (no stale goldens).
#[test]
fn no_orphan_ir_fixtures() {
    let dir = fixture_path("x");
    let dir = dir.parent().unwrap();
    let known = [
        "saxpy_native_grid.glsl",
        "scale_packed_linear.glsl",
        "gather_mix_packed.glsl",
        "loop_indexof_helper_native.glsl",
    ];
    for entry in fs::read_dir(dir).expect("golden_ir dir") {
        let name = entry.unwrap().file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(
            known.contains(&name.as_str()),
            "orphan golden fixture `{name}`: remove it or add a test"
        );
    }
}
