precision highp float;
varying vec2 v_texcoord;
uniform vec2 _ba_vp;
uniform sampler2D _tex_a;
uniform vec4 _meta_a;
uniform vec4 _meta_o;
float _fetch_a() {
    vec2 _i = floor(v_texcoord * _meta_a.zw);
    return texture2D(_tex_a, (vec2(_i.x, _i.y) + 0.5) / _meta_a.xy).x;
}

void main() {
    vec2 _pc = floor(v_texcoord * _ba_vp);
    float _lin = _pc.y * _ba_vp.x + _pc.x;
    float b_a = _fetch_a();
    float _out_o = 0.0;
    float _r0 = 0.0;
    float _r1 = 0.0;
    int _r2 = 0;
    int _r3 = 0;
    int _r4 = 0;
    bool _r5 = false;
    float _r6 = 0.0;
    float _r7 = 0.0;
    bool _r8 = false;
    float _r9 = 0.0;
    float _r10 = 0.0;
    float _r11 = 0.0;
    bool _r12 = false;
    float _r13 = 0.0;
    float _r14 = 0.0;
    int _r15 = 0;
    vec2 _r16 = vec2(0.0);
    float _r17 = 0.0;
    float _r18 = 0.0;
    bool _lg0 = true;
    _r0 = 0.0;
    _r1 = _r0;
    _r2 = 0;
    _r3 = 0;
    _r2 = _r3;
    for (_lg0 = true; _lg0; _lg0 = _lg0) {
        _r4 = 8;
        _r5 = (_r2 < _r4);
        _lg0 = _r5;
        if (_lg0) {
            _r6 = b_a;
            _r7 = 5e-1;
            _r8 = (_r6 > _r7);
            if (_r8) {
                _r9 = b_a;
                _r10 = _r9;
                _r11 = 0.0;
                _r12 = false;
                _r13 = (_r10 * _r10);
                _r11 = _r13;
                _r12 = true;
                _r1 += _r11;
            } else {
                _r14 = 2.5e-1;
                _r1 -= _r14;
            }
            _r15 = 1;
            _r2 += _r15;
        }
    }
    _r16 = _pc;
    _r17 = _r16.x;
    _r18 = (_r1 + _r17);
    _out_o = _r18;
    gl_FragColor = vec4(_out_o, 0.0, 0.0, 0.0);
}
