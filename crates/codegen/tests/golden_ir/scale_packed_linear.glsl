precision highp float;
varying vec2 v_texcoord;
uniform vec2 _ba_vp;
uniform sampler2D _tex_a;
uniform vec4 _meta_a;
uniform float _p_k;
uniform vec4 _meta_o;

float ba_decode(vec4 rgba) {
    vec4 b = floor(rgba * 255.0 + 0.5);
    float sgn = 1.0 - 2.0 * step(128.0, b.w);
    float expo = mod(b.w, 128.0) * 2.0 + step(128.0, b.z);
    float mant = mod(b.z, 128.0) * 65536.0 + b.y * 256.0 + b.x;
    if (expo == 0.0) { return 0.0; }
    return sgn * (1.0 + mant * 0.00000011920928955078125) * exp2(expo - 127.0);
}

vec4 ba_encode(float v) {
    if (v == 0.0) { return vec4(0.0); }
    float sgn = v < 0.0 ? 128.0 : 0.0;
    float av = abs(v);
    float expo = floor(log2(av));
    if (av * exp2(-expo) >= 2.0) { expo = expo + 1.0; }
    if (av * exp2(-expo) < 1.0) { expo = expo - 1.0; }
    float be = expo + 127.0;
    if (be >= 255.0) { be = 254.0; av = exp2(128.0) - exp2(104.0); expo = 127.0; }
    if (be <= 0.0) { return vec4(0.0); }
    float mant = av * exp2(-expo) - 1.0;
    float m = floor(mant * 8388608.0 + 0.5);
    if (m >= 8388608.0) { m = 8388607.0; }
    float b0 = mod(m, 256.0);
    float b1 = mod(floor(m / 256.0), 256.0);
    float b2 = floor(m / 65536.0) + mod(be, 2.0) * 128.0;
    float b3 = sgn + floor(be / 2.0);
    return vec4(b0, b1, b2, b3) / 255.0;
}
float _fetch_a() {
    vec2 _pcf = floor(v_texcoord * _ba_vp);
    float _l = _pcf.y * _ba_vp.x + _pcf.x;
    float _row = floor(_l / _meta_a.x);
    float _col = _l - _row * _meta_a.x;
    return ba_decode(texture2D(_tex_a, (vec2(_col, _row) + 0.5) / _meta_a.xy));
}

void main() {
    vec2 _pc = floor(v_texcoord * _ba_vp);
    float _lin = _pc.y * _ba_vp.x + _pc.x;
    float b_a = _fetch_a();
    float _out_o = 0.0;
    float _r0 = 0.0;
    float _r1 = 0.0;
    float _r2 = 0.0;
    _r0 = b_a;
    _r1 = _p_k;
    _r2 = (_r0 * _r1);
    _out_o = _r2;
    gl_FragColor = ba_encode(_out_o);
}
