precision highp float;
varying vec2 v_texcoord;
uniform vec2 _ba_vp;
uniform sampler2D _tex_x;
uniform vec4 _meta_x;
uniform sampler2D _tex_y;
uniform vec4 _meta_y;
uniform float _p_alpha;
uniform vec4 _meta_r;
float _fetch_x() {
    vec2 _i = floor(v_texcoord * _meta_x.zw);
    return texture2D(_tex_x, (vec2(_i.x, _i.y) + 0.5) / _meta_x.xy).x;
}
float _fetch_y() {
    vec2 _i = floor(v_texcoord * _meta_y.zw);
    return texture2D(_tex_y, (vec2(_i.x, _i.y) + 0.5) / _meta_y.xy).x;
}

void main() {
    vec2 _pc = floor(v_texcoord * _ba_vp);
    float _lin = _pc.y * _ba_vp.x + _pc.x;
    float b_x = _fetch_x();
    float b_y = _fetch_y();
    float _out_r = 0.0;
    float _r0 = 0.0;
    float _r1 = 0.0;
    float _r2 = 0.0;
    float _r3 = 0.0;
    float _r4 = 0.0;
    _r0 = _p_alpha;
    _r1 = b_x;
    _r2 = (_r0 * _r1);
    _r3 = b_y;
    _r4 = (_r2 + _r3);
    _out_r = _r4;
    gl_FragColor = vec4(_out_r, 0.0, 0.0, 0.0);
}
