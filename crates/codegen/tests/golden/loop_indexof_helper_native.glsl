precision highp float;
varying vec2 v_texcoord;
uniform vec2 _ba_vp;
uniform sampler2D _tex_a;
uniform vec4 _meta_a;
uniform vec4 _meta_o;
float _fetch_a() {
    vec2 _i = floor(v_texcoord * _meta_a.zw);
    return texture2D(_tex_a, (vec2(_i.x, _i.y) + 0.5) / _meta_a.xy).x;
}
float b_sq(float b_v) {
    return (b_v * b_v);
}

void main() {
    vec2 _pc = floor(v_texcoord * _ba_vp);
    float _lin = _pc.y * _ba_vp.x + _pc.x;
    float b_a = _fetch_a();
    float _out_o = 0.0;
    float b_s = 0.0;
    int b_i = 0;
    for (b_i = 0; (b_i < 8); b_i += 1) {
        if ((b_a > 5e-1)) {
            b_s += b_sq(b_a);
        } else {
            b_s -= 2.5e-1;
        }
    }
    _out_o = (b_s + _pc.x);
    gl_FragColor = vec4(_out_o, 0.0, 0.0, 0.0);
}
