//! Golden-snapshot tests: generated GLSL for representative kernels is
//! pinned against committed `.glsl` fixtures, so any codegen drift —
//! intended or not — shows up as a reviewable diff instead of a silent
//! behaviour change three layers down.
//!
//! To update the fixtures after an *intentional* codegen change:
//!
//! ```text
//! BROOK_BLESS=1 cargo test -p brook-codegen --test golden
//! ```
//!
//! then review the diff like any other code change.

use brook_codegen::{generate_kernel_shader, KernelShapes, StorageMode, StreamRank};
use brook_lang::parse_and_check;
use std::fs;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{name}.glsl"))
}

fn check_golden(
    name: &str,
    src: &str,
    kernel: &str,
    output: &str,
    shapes: KernelShapes,
    storage: StorageMode,
) {
    let checked = parse_and_check(src).expect("front-end");
    let generated = generate_kernel_shader(&checked, kernel, output, &shapes, storage).expect("codegen");
    // The generated shader must always be valid GLSL ES for the
    // simulator, golden or not.
    glsl_es::compile(&generated.glsl).expect("generated GLSL must compile");
    let path = fixture_path(name);
    if std::env::var_os("BROOK_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &generated.glsl).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with BROOK_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        generated.glsl, expected,
        "generated GLSL for `{name}` drifted from its golden fixture; \
         if intentional, re-bless with BROOK_BLESS=1 and review the diff"
    );
}

/// The canonical elementwise kernel on the native-float desktop profile.
#[test]
fn golden_saxpy_native_grid() {
    check_golden(
        "saxpy_native_grid",
        "kernel void saxpy(float x<>, float y<>, float alpha, out float r<>) { r = alpha * x + y; }",
        "saxpy",
        "r",
        KernelShapes::default()
            .with("x", StreamRank::Grid)
            .with("y", StreamRank::Grid)
            .with("r", StreamRank::Grid),
        StorageMode::Native,
    );
}

/// Packed RGBA8 storage: every fetch routes through `ba_decode` and the
/// result through `ba_encode` (paper §5.4).
#[test]
fn golden_scale_packed_linear() {
    check_golden(
        "scale_packed_linear",
        "kernel void scale(float a<>, float k, out float o<>) { o = a * k; }",
        "scale",
        "o",
        KernelShapes::default()
            .with("a", StreamRank::Linear)
            .with("o", StreamRank::Linear),
        StorageMode::Packed,
    );
}

/// Gathers in both ranks: logical-space edge clamping plus the hidden
/// `_meta_*` size uniforms (paper §5.2-§5.3).
#[test]
fn golden_gather_mix_packed() {
    check_golden(
        "gather_mix_packed",
        "kernel void g(float lut[], float m[][], float i<>, out float o<>) {
            o = lut[int(i)] + m[int(i) + 1][int(i)];
        }",
        "g",
        "o",
        KernelShapes::default()
            .with("lut", StreamRank::Linear)
            .with("m", StreamRank::Grid)
            .with("i", StreamRank::Linear)
            .with("o", StreamRank::Linear),
        StorageMode::Packed,
    );
}

/// Control flow, `indexof` and a helper function call in one kernel.
#[test]
fn golden_loop_indexof_helper_native() {
    check_golden(
        "loop_indexof_helper_native",
        "float sq(float v) { return v * v; }
         kernel void f(float a<>, out float o<>) {
            float s = 0.0;
            int i;
            for (i = 0; i < 8; i += 1) {
                if (a > 0.5) { s += sq(a); } else { s -= 0.25; }
            }
            o = s + indexof(o).x;
         }",
        "f",
        "o",
        KernelShapes::default()
            .with("a", StreamRank::Grid)
            .with("o", StreamRank::Grid),
        StorageMode::Native,
    );
}

/// The shape the stream-graph fuser emits (see `brook-auto`'s graph
/// planner): a producer's body inlined ahead of the consumer's, its
/// output let-bound to the zero-initialized local `t0`, every `indexof`
/// redirected to the fused output. Pinned in packed storage so the
/// let-bound intermediate demonstrably stays in registers — no
/// `ba_encode`/`ba_decode` round-trip between the fused halves.
/// (`brook-auto`'s `tests/graph.rs` pins the planner's actual output and
/// its native-mode GLSL; this fixture pins the packed codegen for the
/// same source.)
#[test]
fn golden_fused_chain_packed() {
    check_golden(
        "fused_chain_packed",
        "kernel void fused_dbl_inc(float in0<>, out float o0<>) {
    float t0 = 0.0;
    t0 = (in0 * 2.0);
    o0 = (t0 + 1.0);
}",
        "fused_dbl_inc",
        "o0",
        KernelShapes::default()
            .with("in0", StreamRank::Linear)
            .with("o0", StreamRank::Linear),
        StorageMode::Packed,
    );
}

/// Every fixture on disk corresponds to a test above (no stale goldens).
#[test]
fn no_orphan_fixtures() {
    let dir = fixture_path("x");
    let dir = dir.parent().unwrap();
    let known = [
        "saxpy_native_grid.glsl",
        "scale_packed_linear.glsl",
        "gather_mix_packed.glsl",
        "loop_indexof_helper_native.glsl",
        "fused_chain_packed.glsl",
    ];
    for entry in fs::read_dir(dir).expect("golden dir") {
        let name = entry.unwrap().file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(
            known.contains(&name.as_str()),
            "orphan golden fixture `{name}`: remove it or add a test"
        );
    }
}
