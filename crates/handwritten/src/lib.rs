//! # gles2-handwritten — hand-optimized sgemm directly on OpenGL ES 2.0
//!
//! The paper's Figure 4 compares the Brook Auto sgemm against a
//! hand-written OpenGL ES 2 GPGPU implementation — "a titanic endeavor"
//! that took over a year and 1500 lines of C versus 70 lines of Brook
//! written in two hours (§6.3). The Brook version reaches 50–90% of the
//! hand-written performance; the gap is the Brook runtime's generic code
//! (per-access index scaling, per-stream fetch helpers).
//!
//! This crate is that baseline, written directly against `gles2-sim`
//! with the optimizations a human would apply:
//!
//! * texture coordinates advance *incrementally* inside the k loop
//!   instead of being recomputed from indices each iteration;
//! * the inner loop is unrolled by the tile factor (8 in the paper's
//!   optimal configuration), amortizing loop overhead;
//! * the float decode is inlined once per operand with no generic
//!   stream-shape handling.

use brook_numfmt::{floats_to_texels, texels_to_floats, GLSL_DECODE, GLSL_ENCODE};
use gles2_sim::{DeviceProfile, DrawMode, Gl, GlError, TexFormat, Value};
use perf_model::GpuRun;

/// Unroll/tile factor of the hand-written inner loop (paper: 8x8 is the
/// hand-written version's optimum).
pub const TILE: usize = 8;

/// Generates the hand-written fragment shader for an `n x n`
/// multiplication with the default [`TILE`] factor.
pub fn shader_source(n: usize) -> String {
    shader_source_with_tile(n, TILE)
}

/// Generates the hand-written shader with an explicit unroll/tile factor
/// (used by the tile ablation bench; the paper reports results "for the
/// optimal tile size for each version").
pub fn shader_source_with_tile(n: usize, tile: usize) -> String {
    assert!(
        tile >= 1 && n.is_multiple_of(tile),
        "n must be a multiple of the tile factor"
    );
    let outer = n / tile;
    let mut body = String::new();
    for _ in 0..tile {
        body.push_str(
            "        sum += ba_decode(texture2D(texA, ca)) * ba_decode(texture2D(texB, cb));\n         \
             ca.x += astep;\n         cb.y += astep;\n",
        );
    }
    format!(
        "precision highp float;
         varying vec2 v_texcoord;
         uniform sampler2D texA;
         uniform sampler2D texB;
         uniform float n;
         uniform float astep;
         {GLSL_DECODE}
         {GLSL_ENCODE}
         void main() {{
             float col = floor(v_texcoord.x * n);
             float row = floor(v_texcoord.y * n);
             vec2 ca = vec2(0.5 * astep, (row + 0.5) * astep);
             vec2 cb = vec2((col + 0.5) * astep, 0.5 * astep);
             float sum = 0.0;
             for (int t = 0; t < {outer}; t++) {{
     {body}
             }}
             gl_FragColor = ba_encode(sum);
         }}"
    )
}

/// Result of one hand-written run.
#[derive(Debug, Clone)]
pub struct HandwrittenRun {
    /// The product matrix, row-major.
    pub c: Vec<f32>,
    /// GPU counters for the performance model.
    pub gpu: GpuRun,
}

/// Multiplies two `n x n` matrices with the hand-written pipeline on a
/// fresh simulated device.
///
/// # Errors
/// GL failures (texture limits, shader compilation) — `n` must be a
/// power of two within the device limit.
///
/// # Panics
/// Panics if `a`/`b` are not `n * n` long or `n` is not a multiple of
/// [`TILE`].
pub fn sgemm(
    a: &[f32],
    b: &[f32],
    n: usize,
    profile: DeviceProfile,
    mode: DrawMode,
) -> Result<HandwrittenRun, GlError> {
    sgemm_with_tile(a, b, n, profile, mode, TILE)
}

/// [`sgemm`] with an explicit tile factor.
///
/// # Errors
/// As [`sgemm`].
///
/// # Panics
/// As [`sgemm`], with `tile` in place of [`TILE`].
pub fn sgemm_with_tile(
    a: &[f32],
    b: &[f32],
    n: usize,
    profile: DeviceProfile,
    mode: DrawMode,
    tile: usize,
) -> Result<HandwrittenRun, GlError> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert!(n.is_power_of_two(), "hand-written path assumes power-of-two n");
    let mut gl = Gl::new(profile);
    let ta = gl.create_texture(n as u32, n as u32, TexFormat::Rgba8)?;
    let tb = gl.create_texture(n as u32, n as u32, TexFormat::Rgba8)?;
    let tc = gl.create_texture(n as u32, n as u32, TexFormat::Rgba8)?;
    gl.upload_texture(ta, &floats_to_texels(a))?;
    gl.upload_texture(tb, &floats_to_texels(b))?;
    let fbo = gl.create_framebuffer();
    gl.attach_texture(fbo, tc)?;
    gl.bind_framebuffer(fbo)?;
    gl.viewport(n as u32, n as u32);
    let prog = gl.create_program(&shader_source_with_tile(n, tile))?;
    gl.use_program(prog)?;
    gl.bind_texture(0, ta)?;
    gl.bind_texture(1, tb)?;
    gl.set_uniform(prog, "texA", Value::Int(0))?;
    gl.set_uniform(prog, "texB", Value::Int(1))?;
    gl.set_uniform(prog, "n", Value::Float(n as f32))?;
    gl.set_uniform(prog, "astep", Value::Float(1.0 / n as f32))?;
    gl.draw_fullscreen_quad(mode)?;
    let c = texels_to_floats(&gl.read_pixels()?);
    let s = gl.stats();
    let gpu = GpuRun {
        alu_ops: s.alu_ops,
        tex_fetches: s.tex_fetches,
        fragments: s.fragments_shaded,
        draw_calls: s.draw_calls,
        readbacks: 1,
        bytes_uploaded: s.bytes_uploaded,
        bytes_downloaded: s.bytes_downloaded,
    };
    Ok(HandwrittenRun { c, gpu })
}

/// Source lines of the hand-written implementation (shader + driver),
/// for the paper's §6.3 productivity comparison.
pub fn loc() -> usize {
    // The shader for a representative size plus this crate's driver code.
    shader_source(128).lines().count() + include_str!("lib.rs").lines().count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0f32;
                for k in 0..n {
                    sum += a[i * n + k] * b[k * n + j];
                }
                c[i * n + j] = sum;
            }
        }
        c
    }

    #[test]
    fn handwritten_sgemm_is_correct() {
        let n = 16;
        let a: Vec<f32> = (0..n * n).map(|i| ((i * 37) % 23) as f32 / 23.0 - 0.5).collect();
        let b: Vec<f32> = (0..n * n).map(|i| ((i * 53) % 29) as f32 / 29.0 - 0.5).collect();
        let run = sgemm(&a, &b, n, DeviceProfile::videocore_iv(), DrawMode::Full).expect("run");
        let expect = matmul(&a, &b, n);
        for (i, (g, c)) in run.c.iter().zip(&expect).enumerate() {
            assert!((g - c).abs() < 1e-3, "element {i}: {g} vs {c}");
        }
    }

    #[test]
    fn identity_matrix() {
        let n = 8;
        let mut ident = vec![0.0f32; n * n];
        for i in 0..n {
            ident[i * n + i] = 1.0;
        }
        let x: Vec<f32> = (0..n * n).map(|i| (i as f32) * 0.25 - 6.0).collect();
        let run = sgemm(&ident, &x, n, DeviceProfile::videocore_iv(), DrawMode::Full).expect("run");
        for (g, c) in run.c.iter().zip(&x) {
            assert!((g - c).abs() < 1e-4, "{g} vs {c}");
        }
    }

    #[test]
    fn uses_fewer_alu_ops_than_it_would_unoptimized() {
        // The whole point of the hand-written version: per-iteration cost
        // below the generic Brook fetch helpers. 2 fetches, 2 decodes,
        // 1 MAD, 2 coordinate adds per k — under 70 simulator units.
        let n = 32;
        let a = vec![0.5f32; n * n];
        let b = vec![0.5f32; n * n];
        let run = sgemm(&a, &b, n, DeviceProfile::videocore_iv(), DrawMode::Full).expect("run");
        let per_iter = run.gpu.alu_ops as f64 / (n * n * n) as f64;
        assert!(per_iter < 70.0, "per-iteration ALU {per_iter}");
        assert_eq!(run.gpu.tex_fetches, (n * n * n * 2) as u64);
    }

    #[test]
    fn loc_is_order_of_magnitude_above_brook_kernel() {
        assert!(
            loc() > 100,
            "hand-written implementation should be sizeable, got {}",
            loc()
        );
    }
}
