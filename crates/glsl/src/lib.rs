//! # glsl-es — GLSL ES 1.00 fragment-shader compiler and interpreter
//!
//! The OpenGL ES 2.0 simulator substrate of the Brook Auto reproduction
//! needs to actually *execute* the shader code the Brook Auto compiler
//! generates (paper §5.1: the Cg compiler's GLSL ES output path). This
//! crate implements the required GLSL ES 1.00 subset from scratch:
//!
//! * lexer/parser for `precision`, `uniform`/`varying`/`const` globals,
//!   function definitions, structured control flow and the float/vector
//!   expression language with swizzles and constructors ([`syntax`]);
//! * a resolver producing a slot-indexed IR with recursion rejected by
//!   declaration order, as the GLSL ES specification requires
//!   ([`resolve`]);
//! * a strict interpreter with per-fragment ALU/texture/branch cost
//!   counters feeding the performance model ([`interp`]).
//!
//! ```
//! use glsl_es::{compile, run_fragment, FragmentEnv, Value};
//! let shader = compile("void main() { gl_FragColor = vec4(0.5); }")?;
//! let sample = |_unit: i32, _u: f32, _v: f32| [0.0f32; 4];
//! let env = FragmentEnv { uniforms: &[], varyings: &[], sample: &sample };
//! let (color, cost) = run_fragment(&shader, &env)?;
//! assert_eq!(color, [0.5; 4]);
//! assert!(cost.alu > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod error;
pub mod interp;
pub mod resolve;
pub mod syntax;
pub mod value;

pub use error::{ExecError, ShaderError};
pub use interp::{run_fragment, Cost, FragmentEnv, SampleFn};
pub use resolve::{compile, Shader, UniformInfo};
pub use value::{GlslType, Value};
