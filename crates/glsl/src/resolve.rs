//! Name resolution: turns the parsed shader into a slot-indexed IR the
//! interpreter can execute without hash lookups.
//!
//! Every local variable and parameter gets a frame slot; uniforms,
//! varyings and const globals get table indices. `gl_FragColor` is the
//! single render target of OpenGL ES 2.0 (no MRT) and resolves to a
//! dedicated reference.

use crate::error::ShaderError;
use crate::syntax::{self, GlobalKind, PExpr, PStmt, Unit};
use crate::value::{GlslType, Value};
use std::collections::HashMap;

/// Identifier of a built-in function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinId {
    Sin,
    Cos,
    Tan,
    Exp,
    Exp2,
    Log,
    Log2,
    Sqrt,
    InverseSqrt,
    Abs,
    Floor,
    Ceil,
    Fract,
    Sign,
    Mod,
    Min,
    Max,
    Clamp,
    Mix,
    Step,
    Smoothstep,
    Dot,
    Length,
    Distance,
    Normalize,
    Pow,
    Atan,
}

impl BuiltinId {
    fn from_name(name: &str) -> Option<(BuiltinId, usize)> {
        Some(match name {
            "sin" => (BuiltinId::Sin, 1),
            "cos" => (BuiltinId::Cos, 1),
            "tan" => (BuiltinId::Tan, 1),
            "exp" => (BuiltinId::Exp, 1),
            "exp2" => (BuiltinId::Exp2, 1),
            "log" => (BuiltinId::Log, 1),
            "log2" => (BuiltinId::Log2, 1),
            "sqrt" => (BuiltinId::Sqrt, 1),
            "inversesqrt" => (BuiltinId::InverseSqrt, 1),
            "abs" => (BuiltinId::Abs, 1),
            "floor" => (BuiltinId::Floor, 1),
            "ceil" => (BuiltinId::Ceil, 1),
            "fract" => (BuiltinId::Fract, 1),
            "sign" => (BuiltinId::Sign, 1),
            "mod" => (BuiltinId::Mod, 2),
            "min" => (BuiltinId::Min, 2),
            "max" => (BuiltinId::Max, 2),
            "clamp" => (BuiltinId::Clamp, 3),
            "mix" => (BuiltinId::Mix, 3),
            "step" => (BuiltinId::Step, 2),
            "smoothstep" => (BuiltinId::Smoothstep, 3),
            "dot" => (BuiltinId::Dot, 2),
            "length" => (BuiltinId::Length, 1),
            "distance" => (BuiltinId::Distance, 2),
            "normalize" => (BuiltinId::Normalize, 1),
            "pow" => (BuiltinId::Pow, 2),
            "atan" => (BuiltinId::Atan, 2),
            _ => return None,
        })
    }

    /// ALU cost in simulator units; transcendentals are multi-cycle.
    pub fn cost(&self) -> u64 {
        match self {
            BuiltinId::Sin
            | BuiltinId::Cos
            | BuiltinId::Exp
            | BuiltinId::Exp2
            | BuiltinId::Log
            | BuiltinId::Log2 => 4,
            BuiltinId::Tan | BuiltinId::Pow | BuiltinId::Atan => 6,
            BuiltinId::Sqrt | BuiltinId::InverseSqrt => 4,
            BuiltinId::Normalize | BuiltinId::Length | BuiltinId::Distance => 5,
            BuiltinId::Smoothstep => 3,
            BuiltinId::Mix | BuiltinId::Dot | BuiltinId::Mod => 2,
            _ => 1,
        }
    }
}

/// Where a value lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ref {
    /// Function-frame slot.
    Local(u16),
    /// Uniform table index.
    Uniform(u16),
    /// Varying table index.
    Varying(u16),
    /// Evaluated const-global table index.
    Const(u16),
    /// The fragment output register.
    FragColor,
}

/// Swizzle mask: lane indices plus count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mask {
    /// Lane index per output component.
    pub lanes: [u8; 4],
    /// Number of components selected.
    pub len: u8,
}

impl Mask {
    /// Parses a normalized `xyzw` component string.
    pub fn parse(components: &str) -> Mask {
        let mut lanes = [0u8; 4];
        for (i, c) in components.bytes().enumerate().take(4) {
            lanes[i] = match c {
                b'x' => 0,
                b'y' => 1,
                b'z' => 2,
                _ => 3,
            };
        }
        Mask {
            lanes,
            len: components.len().min(4) as u8,
        }
    }
}

/// Resolved expression.
#[derive(Debug, Clone, PartialEq)]
pub enum RExpr {
    Lit(Value),
    Load(Ref),
    Bin(BinKind, Box<RExpr>, Box<RExpr>),
    Neg(Box<RExpr>),
    Not(Box<RExpr>),
    Ternary(Box<RExpr>, Box<RExpr>, Box<RExpr>),
    Builtin(BuiltinId, Vec<RExpr>),
    CallUser(usize, Vec<RExpr>),
    Construct(GlslType, Vec<RExpr>),
    Swizzle(Box<RExpr>, Mask),
    /// `texture2D(sampler, coord)` with the sampler's uniform index.
    Texture(u16, Box<RExpr>),
}

/// Binary operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinKind {
    fn from_str(s: &str) -> BinKind {
        match s {
            "+" => BinKind::Add,
            "-" => BinKind::Sub,
            "*" => BinKind::Mul,
            "/" => BinKind::Div,
            "<" => BinKind::Lt,
            "<=" => BinKind::Le,
            ">" => BinKind::Gt,
            ">=" => BinKind::Ge,
            "==" => BinKind::Eq,
            "!=" => BinKind::Ne,
            "&&" => BinKind::And,
            _ => BinKind::Or,
        }
    }
}

/// Resolved statement.
#[derive(Debug, Clone, PartialEq)]
pub enum RStmt {
    /// Store to a reference, optionally through a swizzle mask, with an
    /// optional compound op (`'='`, `'+'`, `'-'`, `'*'`, `'/'`).
    Store {
        target: Ref,
        mask: Option<Mask>,
        op: char,
        value: RExpr,
    },
    If {
        cond: RExpr,
        then_body: Vec<RStmt>,
        else_body: Vec<RStmt>,
    },
    For {
        init: Box<RStmt>,
        cond: RExpr,
        step: Box<RStmt>,
        body: Vec<RStmt>,
    },
    Return(Option<RExpr>),
    Eval(RExpr),
}

/// A resolved function.
#[derive(Debug, Clone)]
pub struct RFunction {
    /// Frame size in slots; the first `n_params` are parameters.
    pub n_slots: usize,
    /// Parameter count.
    pub n_params: usize,
    /// Body statements.
    pub body: Vec<RStmt>,
    /// Declared return type.
    pub return_ty: GlslType,
    /// Function name (diagnostics).
    pub name: String,
}

/// Description of one active uniform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformInfo {
    /// Uniform name as written in the shader.
    pub name: String,
    /// Declared type.
    pub ty: GlslType,
}

/// A compiled fragment shader, ready for per-fragment execution.
#[derive(Debug, Clone)]
pub struct Shader {
    /// Active uniforms; the index is the slot used by `set_uniform`.
    pub uniforms: Vec<UniformInfo>,
    /// Declared varyings (name, type); index is the varying slot.
    pub varyings: Vec<(String, GlslType)>,
    /// Evaluated const globals.
    pub consts: Vec<Value>,
    /// All functions; `main_index` designates the entry point.
    pub functions: Vec<RFunction>,
    /// Index of `main` in `functions`.
    pub main_index: usize,
    /// Static instruction count of the source (for reports).
    pub static_size: usize,
}

impl Shader {
    /// Index of a uniform by name.
    pub fn uniform_index(&self, name: &str) -> Option<usize> {
        self.uniforms.iter().position(|u| u.name == name)
    }

    /// Index of a varying by name.
    pub fn varying_index(&self, name: &str) -> Option<usize> {
        self.varyings.iter().position(|v| v.0 == name)
    }
}

/// Compiles GLSL ES 1.00 fragment shader source.
///
/// # Errors
/// Returns a [`ShaderError`] for syntax errors, unknown identifiers,
/// unsupported constructs, or recursion (GLSL ES forbids it).
pub fn compile(src: &str) -> Result<Shader, ShaderError> {
    // Parsing recurses with the expression depth; a dedicated stack makes
    // the parser's MAX_EXPR_DEPTH bound the only limit regardless of the
    // caller's thread stack size.
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("glsl-compiler".into())
            .stack_size(16 * 1024 * 1024)
            .spawn_scoped(scope, || {
                let unit = syntax::parse(src)?;
                resolve(&unit)
            })
            .expect("spawn compiler thread")
            .join()
            .expect("compiler thread panicked")
    })
}

struct Resolver {
    uniforms: Vec<UniformInfo>,
    varyings: Vec<(String, GlslType)>,
    const_names: Vec<String>,
    consts: Vec<Value>,
    functions: Vec<RFunction>,
    func_names: HashMap<String, usize>,
    scopes: Vec<HashMap<String, u16>>,
    next_slot: u16,
    static_size: usize,
}

fn resolve(unit: &Unit) -> Result<Shader, ShaderError> {
    let mut r = Resolver {
        uniforms: Vec::new(),
        varyings: Vec::new(),
        const_names: Vec::new(),
        consts: Vec::new(),
        functions: Vec::new(),
        func_names: HashMap::new(),
        scopes: Vec::new(),
        next_slot: 0,
        static_size: 0,
    };
    for g in &unit.globals {
        match g.kind {
            GlobalKind::Uniform => {
                r.uniforms.push(UniformInfo {
                    name: g.name.clone(),
                    ty: g.ty,
                });
            }
            GlobalKind::Varying => {
                r.varyings.push((g.name.clone(), g.ty));
            }
            GlobalKind::Const => {
                let init = g.init.as_ref().expect("parser guarantees const init");
                let rexpr = r.resolve_expr(init)?;
                let v = const_eval(&rexpr, &r.consts).ok_or_else(|| {
                    ShaderError::resolve(format!("const `{}` initializer is not constant", g.name))
                })?;
                r.const_names.push(g.name.clone());
                r.consts.push(v);
            }
        }
    }
    for f in &unit.functions {
        let rf = r.resolve_function(f)?;
        // Declaration-before-use gives recursion rejection for free: a
        // function can only call previously resolved functions.
        r.func_names.insert(f.name.clone(), r.functions.len());
        r.functions.push(rf);
    }
    let main_index = *r
        .func_names
        .get("main")
        .ok_or_else(|| ShaderError::resolve("missing main"))?;
    Ok(Shader {
        uniforms: r.uniforms,
        varyings: r.varyings,
        consts: r.consts,
        functions: r.functions,
        main_index,
        static_size: r.static_size,
    })
}

/// Best-effort constant folding for const-global initializers.
fn const_eval(e: &RExpr, consts: &[Value]) -> Option<Value> {
    match e {
        RExpr::Lit(v) => Some(*v),
        RExpr::Load(Ref::Const(i)) => consts.get(*i as usize).copied(),
        RExpr::Neg(x) => {
            let v = const_eval(x, consts)?;
            match v {
                Value::Int(i) => Some(Value::Int(-i)),
                other => other.map(|f| -f),
            }
        }
        RExpr::Bin(kind, a, b) => {
            let (a, b) = (const_eval(a, consts)?, const_eval(b, consts)?);
            if let (Value::Int(x), Value::Int(y)) = (a, b) {
                return Some(Value::Int(match kind {
                    BinKind::Add => x + y,
                    BinKind::Sub => x - y,
                    BinKind::Mul => x * y,
                    BinKind::Div => x.checked_div(y)?,
                    _ => return None,
                }));
            }
            let f = match kind {
                BinKind::Add => |x: f32, y: f32| x + y,
                BinKind::Sub => |x: f32, y: f32| x - y,
                BinKind::Mul => |x: f32, y: f32| x * y,
                BinKind::Div => |x: f32, y: f32| x / y,
                _ => return None,
            };
            a.zip(&b, f)
        }
        RExpr::Construct(ty, args) => {
            let mut lanes = Vec::new();
            for a in args {
                let v = const_eval(a, consts)?;
                match v {
                    Value::Int(i) => lanes.push(i as f32),
                    other => lanes.extend_from_slice(other.lanes()),
                }
            }
            match ty {
                GlslType::Int => Some(Value::Int(lanes.first().map(|v| *v as i32)?)),
                t if t.components() > 0 => {
                    let n = t.components();
                    if lanes.len() == 1 {
                        Some(Value::from_lanes(&vec![lanes[0]; n]))
                    } else if lanes.len() == n {
                        Some(Value::from_lanes(&lanes))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

impl Resolver {
    fn lookup_local(&self, name: &str) -> Option<u16> {
        for s in self.scopes.iter().rev() {
            if let Some(slot) = s.get(name) {
                return Some(*slot);
            }
        }
        None
    }

    fn resolve_ref(&self, name: &str) -> Result<Ref, ShaderError> {
        if name == "gl_FragColor" {
            return Ok(Ref::FragColor);
        }
        if let Some(slot) = self.lookup_local(name) {
            return Ok(Ref::Local(slot));
        }
        if let Some(i) = self.uniforms.iter().position(|u| u.name == name) {
            return Ok(Ref::Uniform(i as u16));
        }
        if let Some(i) = self.varyings.iter().position(|v| v.0 == name) {
            return Ok(Ref::Varying(i as u16));
        }
        if let Some(i) = self.const_names.iter().position(|c| c == name) {
            return Ok(Ref::Const(i as u16));
        }
        Err(ShaderError::resolve(format!("unknown identifier `{name}`")))
    }

    fn resolve_function(&mut self, f: &syntax::PFunction) -> Result<RFunction, ShaderError> {
        self.scopes.clear();
        self.next_slot = 0;
        let mut scope = HashMap::new();
        for (_, pname) in &f.params {
            scope.insert(pname.clone(), self.next_slot);
            self.next_slot += 1;
        }
        self.scopes.push(scope);
        let body = self.resolve_block(&f.body)?;
        self.scopes.pop();
        Ok(RFunction {
            n_slots: self.next_slot as usize,
            n_params: f.params.len(),
            body,
            return_ty: f.return_ty,
            name: f.name.clone(),
        })
    }

    fn resolve_block(&mut self, stmts: &[PStmt]) -> Result<Vec<RStmt>, ShaderError> {
        self.scopes.push(HashMap::new());
        let mut out = Vec::new();
        for s in stmts {
            out.extend(self.resolve_stmt(s)?);
        }
        self.scopes.pop();
        Ok(out)
    }

    fn resolve_stmt(&mut self, s: &PStmt) -> Result<Vec<RStmt>, ShaderError> {
        self.static_size += 1;
        Ok(match s {
            PStmt::Decl { ty, name, init } => {
                let value = match init {
                    Some(e) => self.resolve_expr(e)?,
                    None => RExpr::Lit(Value::zero(*ty)),
                };
                let slot = self.next_slot;
                self.next_slot += 1;
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), slot);
                vec![RStmt::Store {
                    target: Ref::Local(slot),
                    mask: None,
                    op: '=',
                    value,
                }]
            }
            PStmt::Assign { target, op, value } => {
                let value = self.resolve_expr(value)?;
                let (r, mask) = match target {
                    PExpr::Var(name) => (self.resolve_ref(name)?, None),
                    PExpr::Swizzle(base, comps) => {
                        let PExpr::Var(name) = base.as_ref() else {
                            return Err(ShaderError::resolve("swizzled store target must be a variable"));
                        };
                        (self.resolve_ref(name)?, Some(Mask::parse(comps)))
                    }
                    _ => return Err(ShaderError::resolve("assignment target is not an lvalue")),
                };
                if matches!(r, Ref::Uniform(_) | Ref::Varying(_) | Ref::Const(_)) {
                    return Err(ShaderError::resolve("cannot write to a uniform/varying/const"));
                }
                vec![RStmt::Store {
                    target: r,
                    mask,
                    op: *op,
                    value,
                }]
            }
            PStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond = self.resolve_expr(cond)?;
                let then_body = self.resolve_block(then_body)?;
                let else_body = self.resolve_block(else_body)?;
                vec![RStmt::If {
                    cond,
                    then_body,
                    else_body,
                }]
            }
            PStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                let init_r = self.resolve_stmt(init)?;
                let cond = self.resolve_expr(cond)?;
                let step_r = self.resolve_stmt(step)?;
                let body = self.resolve_block(body)?;
                self.scopes.pop();
                let single = |mut v: Vec<RStmt>| -> Result<Box<RStmt>, ShaderError> {
                    if v.len() != 1 {
                        return Err(ShaderError::resolve("for-header statements must be simple"));
                    }
                    Ok(Box::new(v.remove(0)))
                };
                vec![RStmt::For {
                    init: single(init_r)?,
                    cond,
                    step: single(step_r)?,
                    body,
                }]
            }
            PStmt::Return(v) => {
                let v = match v {
                    Some(e) => Some(self.resolve_expr(e)?),
                    None => None,
                };
                vec![RStmt::Return(v)]
            }
            PStmt::Expr(e) => vec![RStmt::Eval(self.resolve_expr(e)?)],
            PStmt::Block(b) => self.resolve_block(b)?,
        })
    }

    fn resolve_expr(&mut self, e: &PExpr) -> Result<RExpr, ShaderError> {
        self.static_size += 1;
        Ok(match e {
            PExpr::Float(v) => RExpr::Lit(Value::Float(*v)),
            PExpr::Int(v) => RExpr::Lit(Value::Int(*v)),
            PExpr::Bool(v) => RExpr::Lit(Value::Bool(*v)),
            PExpr::Var(name) => RExpr::Load(self.resolve_ref(name)?),
            PExpr::Bin(op, a, b) => RExpr::Bin(
                BinKind::from_str(op),
                Box::new(self.resolve_expr(a)?),
                Box::new(self.resolve_expr(b)?),
            ),
            PExpr::Un(op, x) => {
                let x = self.resolve_expr(x)?;
                if *op == '-' {
                    RExpr::Neg(Box::new(x))
                } else {
                    RExpr::Not(Box::new(x))
                }
            }
            PExpr::Ternary(c, t, f) => RExpr::Ternary(
                Box::new(self.resolve_expr(c)?),
                Box::new(self.resolve_expr(t)?),
                Box::new(self.resolve_expr(f)?),
            ),
            PExpr::Swizzle(base, comps) => {
                RExpr::Swizzle(Box::new(self.resolve_expr(base)?), Mask::parse(comps))
            }
            PExpr::Call(name, args) => {
                // texture2D is special: the sampler argument must resolve
                // to a sampler2D uniform.
                if name == "texture2D" {
                    if args.len() != 2 {
                        return Err(ShaderError::resolve("texture2D takes (sampler2D, vec2)"));
                    }
                    let PExpr::Var(sname) = &args[0] else {
                        return Err(ShaderError::resolve("texture2D sampler must be a uniform name"));
                    };
                    let Some(idx) = self.uniforms.iter().position(|u| u.name == *sname) else {
                        return Err(ShaderError::resolve(format!("unknown sampler `{sname}`")));
                    };
                    if self.uniforms[idx].ty != GlslType::Sampler2D {
                        return Err(ShaderError::resolve(format!("`{sname}` is not a sampler2D")));
                    }
                    let coord = self.resolve_expr(&args[1])?;
                    return Ok(RExpr::Texture(idx as u16, Box::new(coord)));
                }
                // Constructors.
                if let Some(ty) = match name.as_str() {
                    "float" => Some(GlslType::Float),
                    "vec2" => Some(GlslType::Vec2),
                    "vec3" => Some(GlslType::Vec3),
                    "vec4" => Some(GlslType::Vec4),
                    "int" => Some(GlslType::Int),
                    "bool" => Some(GlslType::Bool),
                    _ => None,
                } {
                    let args = args
                        .iter()
                        .map(|a| self.resolve_expr(a))
                        .collect::<Result<Vec<_>, _>>()?;
                    return Ok(RExpr::Construct(ty, args));
                }
                // Builtins.
                if let Some((id, arity)) = BuiltinId::from_name(name) {
                    if args.len() != arity {
                        return Err(ShaderError::resolve(format!(
                            "`{name}` takes {arity} argument(s), found {}",
                            args.len()
                        )));
                    }
                    let args = args
                        .iter()
                        .map(|a| self.resolve_expr(a))
                        .collect::<Result<Vec<_>, _>>()?;
                    return Ok(RExpr::Builtin(id, args));
                }
                // User functions: declaration-before-use (rejects recursion).
                let Some(&idx) = self.func_names.get(name) else {
                    return Err(ShaderError::resolve(format!(
                        "unknown function `{name}` (GLSL ES requires declaration before use; recursion is forbidden)"
                    )));
                };
                let expected = self.functions[idx].n_params;
                if args.len() != expected {
                    return Err(ShaderError::resolve(format!(
                        "`{name}` takes {expected} argument(s), found {}",
                        args.len()
                    )));
                }
                let args = args
                    .iter()
                    .map(|a| self.resolve_expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                RExpr::CallUser(idx, args)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_minimal_shader() {
        let s = compile("void main() { gl_FragColor = vec4(1.0, 0.0, 0.0, 1.0); }").unwrap();
        assert_eq!(s.functions[s.main_index].name, "main");
        assert!(s.uniforms.is_empty());
    }

    #[test]
    fn collects_uniforms_in_order() {
        let s = compile(
            "uniform sampler2D t0; uniform vec4 dims; uniform float alpha;
             varying vec2 v_texcoord;
             void main() { gl_FragColor = texture2D(t0, v_texcoord) * alpha + dims; }",
        )
        .unwrap();
        assert_eq!(s.uniforms.len(), 3);
        assert_eq!(s.uniform_index("dims"), Some(1));
        assert_eq!(s.varying_index("v_texcoord"), Some(0));
    }

    #[test]
    fn const_globals_evaluated() {
        let s = compile("const float K = 2.0 * 3.0; void main() { gl_FragColor = vec4(K); }").unwrap();
        assert_eq!(s.consts, vec![Value::Float(6.0)]);
    }

    #[test]
    fn unknown_identifier_rejected() {
        assert!(compile("void main() { gl_FragColor = vec4(oops); }").is_err());
    }

    #[test]
    fn recursion_rejected_by_declaration_order() {
        let e = compile(
            "float f(float x) { return f(x); }
             void main() { gl_FragColor = vec4(f(1.0)); }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("unknown function"));
    }

    #[test]
    fn forward_call_rejected() {
        assert!(compile(
            "float f(float x) { return g(x); }
             float g(float x) { return x; }
             void main() { gl_FragColor = vec4(f(1.0)); }",
        )
        .is_err());
    }

    #[test]
    fn writing_uniform_rejected() {
        let e = compile("uniform float u; void main() { u = 1.0; gl_FragColor = vec4(u); }").unwrap_err();
        assert!(e.to_string().contains("cannot write"));
    }

    #[test]
    fn texture_requires_sampler_uniform() {
        assert!(compile("void main() { gl_FragColor = texture2D(nope, vec2(0.0)); }").is_err());
        assert!(compile(
            "uniform float notsampler;
             void main() { gl_FragColor = texture2D(notsampler, vec2(0.0)); }"
        )
        .is_err());
    }

    #[test]
    fn swizzled_store_resolves() {
        let s =
            compile("void main() { vec4 c = vec4(0.0); c.xy = vec2(1.0, 2.0); gl_FragColor = c; }").unwrap();
        let f = &s.functions[s.main_index];
        assert!(matches!(&f.body[1], RStmt::Store { mask: Some(m), .. } if m.len == 2));
    }

    #[test]
    fn locals_get_distinct_slots() {
        let s = compile(
            "void main() {
                 float a = 1.0;
                 float b = 2.0;
                 { float c = 3.0; gl_FragColor = vec4(a + b + c); }
             }",
        )
        .unwrap();
        assert_eq!(s.functions[s.main_index].n_slots, 3);
    }

    #[test]
    fn mask_parse() {
        let m = Mask::parse("wzyx");
        assert_eq!(m.len, 4);
        assert_eq!(m.lanes, [3, 2, 1, 0]);
        let m = Mask::parse("y");
        assert_eq!(m.len, 1);
        assert_eq!(m.lanes[0], 1);
    }
}
