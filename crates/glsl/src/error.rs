//! Error types of the GLSL ES simulator.

use std::error::Error;
use std::fmt;

/// Compile-time error in a shader (lexical, syntactic or resolution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShaderError {
    /// Lexical error with source line.
    Lex { line: u32, message: String },
    /// Syntax error with source line.
    Parse { line: u32, message: String },
    /// Name/type resolution error.
    Resolve { message: String },
}

impl ShaderError {
    pub(crate) fn lex(line: u32, message: impl Into<String>) -> Self {
        ShaderError::Lex {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn parse(line: u32, message: impl Into<String>) -> Self {
        ShaderError::Parse {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn resolve(message: impl Into<String>) -> Self {
        ShaderError::Resolve {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShaderError::Lex { line, message } => write!(f, "lex error at line {line}: {message}"),
            ShaderError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            ShaderError::Resolve { message } => write!(f, "resolve error: {message}"),
        }
    }
}

impl Error for ShaderError {}

/// Runtime error raised while executing a fragment.
///
/// These indicate bugs in generated code (type confusion, missing
/// uniform), never user-data-dependent failures: out-of-range texture
/// reads clamp rather than fault, exactly as OpenGL ES 2.0 requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Explanation of the failure.
    pub message: String,
}

impl ExecError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ExecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shader execution error: {}", self.message)
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ShaderError::lex(7, "bad char");
        assert_eq!(e.to_string(), "lex error at line 7: bad char");
    }

    #[test]
    fn exec_error_display() {
        assert!(ExecError::new("missing uniform")
            .to_string()
            .contains("missing uniform"));
    }
}
