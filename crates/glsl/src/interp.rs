//! Per-fragment interpreter for compiled shaders, with instruction and
//! texture-fetch cost accounting.
//!
//! The interpreter is strict about types — mismatches indicate code
//! generator bugs and surface as [`ExecError`] — but it is *never* strict
//! about data: texture coordinates outside `[0, 1]` clamp to the edge,
//! mirroring OpenGL ES 2.0 `CLAMP_TO_EDGE` semantics. This is the
//! availability property Brook Auto's certification argument builds on.

use crate::error::ExecError;
use crate::resolve::{BinKind, BuiltinId, Mask, RExpr, RFunction, RStmt, Ref, Shader};
use crate::value::{GlslType, Value};

/// Per-fragment execution cost counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// ALU operations (vector ops count once: the target GPUs have vector
    /// microarchitectures, paper §5.4).
    pub alu: u64,
    /// Texture fetches.
    pub tex: u64,
    /// Taken branches / loop iterations.
    pub branch: u64,
}

impl Cost {
    /// Sum of two costs.
    pub fn add(&self, other: &Cost) -> Cost {
        Cost {
            alu: self.alu + other.alu,
            tex: self.tex + other.tex,
            branch: self.branch + other.branch,
        }
    }
}

/// Texture sampling callback: `(unit, u, v) -> RGBA`.
///
/// The callee (the GL simulator) owns wrap modes and filtering.
pub type SampleFn<'a> = dyn Fn(i32, f32, f32) -> [f32; 4] + 'a;

/// Everything a fragment invocation needs from the outside world.
pub struct FragmentEnv<'a> {
    /// Uniform values, indexed like [`Shader::uniforms`].
    pub uniforms: &'a [Value],
    /// Varying values, indexed like [`Shader::varyings`].
    pub varyings: &'a [Value],
    /// Texture sampler.
    pub sample: &'a SampleFn<'a>,
}

/// Hard cap on loop iterations per fragment: defends the simulator (and
/// the session) against generated code with runaway loops. Real GLES2
/// drivers impose comparable limits via watchdog resets; Brook Auto's
/// BA003 rule makes hitting this impossible for certified kernels.
pub const MAX_LOOP_ITERATIONS: u64 = 1 << 21;

enum Flow {
    Normal,
    Return(Option<Value>),
}

struct Interp<'a, 'e> {
    shader: &'a Shader,
    env: &'a FragmentEnv<'e>,
    frag_color: Value,
    cost: Cost,
    loop_guard: u64,
}

/// Executes the shader for one fragment.
///
/// # Errors
/// Returns [`ExecError`] on type mismatches, missing uniforms or a
/// runaway loop — all indicating toolchain bugs rather than data faults.
pub fn run_fragment(shader: &Shader, env: &FragmentEnv<'_>) -> Result<([f32; 4], Cost), ExecError> {
    if env.uniforms.len() != shader.uniforms.len() {
        return Err(ExecError::new(format!(
            "uniform count mismatch: shader declares {}, caller provided {}",
            shader.uniforms.len(),
            env.uniforms.len()
        )));
    }
    if env.varyings.len() != shader.varyings.len() {
        return Err(ExecError::new("varying count mismatch"));
    }
    let mut interp = Interp {
        shader,
        env,
        frag_color: Value::Vec4([0.0; 4]),
        cost: Cost::default(),
        loop_guard: 0,
    };
    let main = &shader.functions[shader.main_index];
    let mut frame = vec![Value::Float(0.0); main.n_slots];
    interp.exec_body(main, &mut frame)?;
    Ok((interp.frag_color.to_vec4(), interp.cost))
}

impl Interp<'_, '_> {
    fn exec_body(&mut self, f: &RFunction, frame: &mut [Value]) -> Result<Option<Value>, ExecError> {
        match self.exec_block(&f.body, frame)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(None),
        }
    }

    fn exec_block(&mut self, stmts: &[RStmt], frame: &mut [Value]) -> Result<Flow, ExecError> {
        for s in stmts {
            match self.exec_stmt(s, frame)? {
                Flow::Normal => {}
                ret => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &RStmt, frame: &mut [Value]) -> Result<Flow, ExecError> {
        match s {
            RStmt::Store {
                target,
                mask,
                op,
                value,
            } => {
                let rhs = self.eval(value, frame)?;
                self.store(*target, *mask, *op, rhs, frame)?;
                Ok(Flow::Normal)
            }
            RStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond, frame)?;
                let Some(c) = c.as_bool() else {
                    return Err(ExecError::new("if condition is not a bool"));
                };
                self.cost.branch += 1;
                if c {
                    self.exec_block(then_body, frame)
                } else {
                    self.exec_block(else_body, frame)
                }
            }
            RStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.exec_stmt(init, frame)?;
                loop {
                    let c = self.eval(cond, frame)?;
                    let Some(c) = c.as_bool() else {
                        return Err(ExecError::new("for condition is not a bool"));
                    };
                    if !c {
                        break;
                    }
                    self.loop_guard += 1;
                    self.cost.branch += 1;
                    if self.loop_guard > MAX_LOOP_ITERATIONS {
                        return Err(ExecError::new("loop iteration budget exceeded (runaway loop)"));
                    }
                    match self.exec_block(body, frame)? {
                        Flow::Normal => {}
                        ret => return Ok(ret),
                    }
                    self.exec_stmt(step, frame)?;
                }
                Ok(Flow::Normal)
            }
            RStmt::Return(v) => {
                let v = match v {
                    Some(e) => Some(self.eval(e, frame)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            RStmt::Eval(e) => {
                self.eval(e, frame)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn store(
        &mut self,
        target: Ref,
        mask: Option<Mask>,
        op: char,
        rhs: Value,
        frame: &mut [Value],
    ) -> Result<(), ExecError> {
        let current = match target {
            Ref::Local(slot) => frame[slot as usize],
            Ref::FragColor => self.frag_color,
            _ => return Err(ExecError::new("store to read-only reference")),
        };
        let combined = if op == '=' {
            rhs
        } else {
            self.cost.alu += 1;
            let kind = match op {
                '+' => BinKind::Add,
                '-' => BinKind::Sub,
                '*' => BinKind::Mul,
                _ => BinKind::Div,
            };
            // Compound ops re-read through the mask if present.
            let lhs_view = match mask {
                Some(m) => apply_mask(&current, &m)?,
                None => current,
            };
            bin_op(kind, &lhs_view, &rhs)?
        };
        let new_value = match mask {
            None => combined,
            Some(m) => {
                let mut lanes: Vec<f32> = current.lanes().to_vec();
                if lanes.is_empty() {
                    return Err(ExecError::new("swizzled store into a non-float value"));
                }
                let src = combined.lanes();
                if src.len() != m.len as usize {
                    return Err(ExecError::new("swizzled store width mismatch"));
                }
                for (i, lane) in m.lanes.iter().take(m.len as usize).enumerate() {
                    let li = *lane as usize;
                    if li >= lanes.len() {
                        return Err(ExecError::new("swizzled store lane out of range"));
                    }
                    lanes[li] = src[i];
                }
                Value::from_lanes(&lanes)
            }
        };
        match target {
            Ref::Local(slot) => frame[slot as usize] = new_value,
            Ref::FragColor => {
                if new_value.glsl_type() != GlslType::Vec4 {
                    return Err(ExecError::new("gl_FragColor must be a vec4"));
                }
                self.frag_color = new_value;
            }
            _ => unreachable!("validated above"),
        }
        Ok(())
    }

    fn load(&self, r: Ref, frame: &[Value]) -> Result<Value, ExecError> {
        Ok(match r {
            Ref::Local(slot) => frame[slot as usize],
            Ref::Uniform(i) => self.env.uniforms[i as usize],
            Ref::Varying(i) => self.env.varyings[i as usize],
            Ref::Const(i) => self.shader.consts[i as usize],
            Ref::FragColor => self.frag_color,
        })
    }

    fn eval(&mut self, e: &RExpr, frame: &mut [Value]) -> Result<Value, ExecError> {
        match e {
            RExpr::Lit(v) => Ok(*v),
            RExpr::Load(r) => self.load(*r, frame),
            RExpr::Bin(kind, a, b) => {
                let (av, bv) = (self.eval(a, frame)?, self.eval(b, frame)?);
                self.cost.alu += 1;
                bin_op(*kind, &av, &bv)
            }
            RExpr::Neg(x) => {
                let v = self.eval(x, frame)?;
                self.cost.alu += 1;
                match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    other => other
                        .map(|f| -f)
                        .ok_or_else(|| ExecError::new("cannot negate a bool")),
                }
            }
            RExpr::Not(x) => {
                let v = self.eval(x, frame)?;
                self.cost.alu += 1;
                v.as_bool()
                    .map(|b| Value::Bool(!b))
                    .ok_or_else(|| ExecError::new("`!` needs a bool"))
            }
            RExpr::Ternary(c, t, f) => {
                let cv = self.eval(c, frame)?;
                let Some(cv) = cv.as_bool() else {
                    return Err(ExecError::new("ternary condition is not a bool"));
                };
                self.cost.branch += 1;
                if cv {
                    self.eval(t, frame)
                } else {
                    self.eval(f, frame)
                }
            }
            RExpr::Builtin(id, args) => {
                let mut vals = [Value::Float(0.0); 3];
                for (i, a) in args.iter().enumerate() {
                    vals[i] = self.eval(a, frame)?;
                }
                self.cost.alu += id.cost();
                eval_builtin(*id, &vals[..args.len()])
            }
            RExpr::CallUser(idx, args) => {
                let callee = &self.shader.functions[*idx];
                let mut callee_frame = vec![Value::Float(0.0); callee.n_slots];
                for (i, a) in args.iter().enumerate() {
                    callee_frame[i] = self.eval(a, frame)?;
                }
                self.cost.branch += 1;
                let ret = self.exec_body(callee, &mut callee_frame)?;
                match ret {
                    Some(v) => Ok(v),
                    None if callee.return_ty == GlslType::Void => Ok(Value::Float(0.0)),
                    None => Err(ExecError::new(format!(
                        "function `{}` did not return a value",
                        callee.name
                    ))),
                }
            }
            RExpr::Construct(ty, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, frame)?);
                }
                self.cost.alu += 1;
                construct(*ty, &vals)
            }
            RExpr::Swizzle(base, mask) => {
                let v = self.eval(base, frame)?;
                apply_mask(&v, mask)
            }
            RExpr::Texture(unit_slot, coord) => {
                let c = self.eval(coord, frame)?;
                let Value::Vec2([u, v]) = c else {
                    return Err(ExecError::new("texture2D coordinate must be a vec2"));
                };
                let unit = self.env.uniforms[*unit_slot as usize]
                    .as_int()
                    .ok_or_else(|| ExecError::new("sampler uniform not bound to a texture unit"))?;
                self.cost.tex += 1;
                self.cost.alu += 1;
                Ok(Value::Vec4((self.env.sample)(unit, u, v)))
            }
        }
    }
}

fn apply_mask(v: &Value, m: &Mask) -> Result<Value, ExecError> {
    let lanes = v.lanes();
    if lanes.is_empty() {
        return Err(ExecError::new("cannot swizzle a non-float value"));
    }
    let mut out = [0.0f32; 4];
    for (slot, lane) in out.iter_mut().zip(m.lanes.iter().take(m.len as usize)) {
        let li = *lane as usize;
        if li >= lanes.len() {
            return Err(ExecError::new("swizzle lane out of range"));
        }
        *slot = lanes[li];
    }
    Ok(Value::from_lanes(&out[..m.len as usize]))
}

fn bin_op(kind: BinKind, a: &Value, b: &Value) -> Result<Value, ExecError> {
    use BinKind::*;
    // Integer arithmetic (loop counters).
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        return Ok(match kind {
            Add => Value::Int(x.wrapping_add(*y)),
            Sub => Value::Int(x.wrapping_sub(*y)),
            Mul => Value::Int(x.wrapping_mul(*y)),
            Div => Value::Int(if *y == 0 { 0 } else { x / y }),
            Lt => Value::Bool(x < y),
            Le => Value::Bool(x <= y),
            Gt => Value::Bool(x > y),
            Ge => Value::Bool(x >= y),
            Eq => Value::Bool(x == y),
            Ne => Value::Bool(x != y),
            And | Or => return Err(ExecError::new("logical op on ints")),
        });
    }
    if let (Value::Bool(x), Value::Bool(y)) = (a, b) {
        return Ok(match kind {
            And => Value::Bool(*x && *y),
            Or => Value::Bool(*x || *y),
            Eq => Value::Bool(x == y),
            Ne => Value::Bool(x != y),
            _ => return Err(ExecError::new("arithmetic on bools")),
        });
    }
    // Float comparisons are scalar-only in GLSL ES (vector comparisons go
    // through lessThan() etc., which the subset does not need).
    if matches!(kind, Lt | Le | Gt | Ge | Eq | Ne) {
        let (Some(x), Some(y)) = (a.as_float(), b.as_float()) else {
            return Err(ExecError::new(format!(
                "comparison requires scalar floats, found {} and {}",
                a.glsl_type(),
                b.glsl_type()
            )));
        };
        return Ok(Value::Bool(match kind {
            Lt => x < y,
            Le => x <= y,
            Gt => x > y,
            Ge => x >= y,
            Eq => x == y,
            _ => x != y,
        }));
    }
    if matches!(kind, And | Or) {
        return Err(ExecError::new("logical op on non-bools"));
    }
    let f = match kind {
        Add => |x: f32, y: f32| x + y,
        Sub => |x: f32, y: f32| x - y,
        Mul => |x: f32, y: f32| x * y,
        _ => |x: f32, y: f32| x / y,
    };
    a.zip(b, f).ok_or_else(|| {
        ExecError::new(format!(
            "operand type mismatch: {} vs {} (GLSL ES has no implicit conversions)",
            a.glsl_type(),
            b.glsl_type()
        ))
    })
}

fn construct(ty: GlslType, args: &[Value]) -> Result<Value, ExecError> {
    match ty {
        GlslType::Int => {
            let v = args
                .first()
                .ok_or_else(|| ExecError::new("int() needs an argument"))?;
            Ok(Value::Int(match v {
                Value::Float(f) => *f as i32,
                Value::Int(i) => *i,
                Value::Bool(b) => *b as i32,
                _ => return Err(ExecError::new("int() argument must be scalar")),
            }))
        }
        GlslType::Bool => {
            let v = args
                .first()
                .ok_or_else(|| ExecError::new("bool() needs an argument"))?;
            Ok(Value::Bool(match v {
                Value::Float(f) => *f != 0.0,
                Value::Int(i) => *i != 0,
                Value::Bool(b) => *b,
                _ => return Err(ExecError::new("bool() argument must be scalar")),
            }))
        }
        t => {
            let n = t.components();
            if n == 0 {
                return Err(ExecError::new("cannot construct this type"));
            }
            let mut lanes = Vec::with_capacity(4);
            for a in args {
                match a {
                    Value::Int(i) => lanes.push(*i as f32),
                    Value::Bool(b) => lanes.push(*b as i32 as f32),
                    v => lanes.extend_from_slice(v.lanes()),
                }
            }
            if args.len() == 1 && lanes.len() == 1 {
                return Ok(Value::from_lanes(&vec![lanes[0]; n]));
            }
            if lanes.len() < n {
                return Err(ExecError::new(format!(
                    "{t} constructor needs {n} components, found {}",
                    lanes.len()
                )));
            }
            lanes.truncate(n);
            Ok(Value::from_lanes(&lanes))
        }
    }
}

fn eval_builtin(id: BuiltinId, args: &[Value]) -> Result<Value, ExecError> {
    use BuiltinId::*;
    let err = || ExecError::new(format!("invalid arguments for builtin {id:?}"));
    let unary = |f: fn(f32) -> f32| args[0].map(f).ok_or_else(err);
    match id {
        Sin => unary(f32::sin),
        Cos => unary(f32::cos),
        Tan => unary(f32::tan),
        Exp => unary(f32::exp),
        Exp2 => unary(f32::exp2),
        Log => unary(f32::ln),
        Log2 => unary(f32::log2),
        Sqrt => unary(f32::sqrt),
        InverseSqrt => unary(|x| 1.0 / x.sqrt()),
        Abs => unary(f32::abs),
        Floor => unary(f32::floor),
        Ceil => unary(f32::ceil),
        Fract => unary(f32::fract),
        Sign => unary(f32::signum),
        Mod => args[0]
            .zip(&args[1], |x, y| x - y * (x / y).floor())
            .ok_or_else(err),
        Min => args[0].zip(&args[1], f32::min).ok_or_else(err),
        Max => args[0].zip(&args[1], f32::max).ok_or_else(err),
        Step => args[0]
            .zip(&args[1], |edge, x| if x < edge { 0.0 } else { 1.0 })
            .ok_or_else(err),
        Pow => args[0].zip(&args[1], f32::powf).ok_or_else(err),
        Atan => args[0].zip(&args[1], f32::atan2).ok_or_else(err),
        Clamp => {
            let lo = args[0].zip(&args[1], f32::max).ok_or_else(err)?;
            lo.zip(&args[2], f32::min).ok_or_else(err)
        }
        Mix => {
            // mix(a, b, t) = a * (1 - t) + b * t, componentwise.
            let a = &args[0];
            let b = &args[1];
            let t = &args[2];
            let bt = b.zip(t, |x, tt| x * tt).ok_or_else(err)?;
            let at = a.zip(t, |x, tt| x * (1.0 - tt)).ok_or_else(err)?;
            at.zip(&bt, |x, y| x + y).ok_or_else(err)
        }
        Smoothstep => {
            let e0 = &args[0];
            let e1 = &args[1];
            let x = &args[2];
            let num = x.zip(e0, |a, b| a - b).ok_or_else(err)?;
            let den = e1.zip(e0, |a, b| a - b).ok_or_else(err)?;
            let t = num.zip(&den, |a, b| (a / b).clamp(0.0, 1.0)).ok_or_else(err)?;
            t.map(|v| v * v * (3.0 - 2.0 * v)).ok_or_else(err)
        }
        Dot => {
            let (a, b) = (args[0].lanes(), args[1].lanes());
            if a.is_empty() || a.len() != b.len() {
                return Err(err());
            }
            Ok(Value::Float(a.iter().zip(b).map(|(x, y)| x * y).sum()))
        }
        Length => {
            let a = args[0].lanes();
            if a.is_empty() {
                return Err(err());
            }
            Ok(Value::Float(a.iter().map(|x| x * x).sum::<f32>().sqrt()))
        }
        Distance => {
            let d = args[0].zip(&args[1], |x, y| x - y).ok_or_else(err)?;
            Ok(Value::Float(d.lanes().iter().map(|x| x * x).sum::<f32>().sqrt()))
        }
        Normalize => {
            let a = args[0].lanes();
            if a.is_empty() {
                return Err(err());
            }
            let len = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            args[0].map(|x| x / len).ok_or_else(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::compile;

    fn no_tex(_: i32, _: f32, _: f32) -> [f32; 4] {
        [0.0; 4]
    }

    fn run(src: &str) -> [f32; 4] {
        run_with(src, &[], &[])
    }

    fn run_with(src: &str, uniforms: &[Value], varyings: &[Value]) -> [f32; 4] {
        let shader = compile(src).unwrap_or_else(|e| panic!("compile: {e}"));
        let env = FragmentEnv {
            uniforms,
            varyings,
            sample: &no_tex,
        };
        let (color, _) = run_fragment(&shader, &env).unwrap_or_else(|e| panic!("run: {e}"));
        color
    }

    #[test]
    fn constant_color() {
        assert_eq!(
            run("void main() { gl_FragColor = vec4(0.25, 0.5, 0.75, 1.0); }"),
            [0.25, 0.5, 0.75, 1.0]
        );
    }

    #[test]
    fn arithmetic_and_locals() {
        let c = run("void main() { float a = 2.0; float b = a * 3.0 + 1.0; gl_FragColor = vec4(b); }");
        assert_eq!(c, [7.0; 4]);
    }

    #[test]
    fn vector_ops_and_swizzles() {
        let c = run("void main() {
                 vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
                 vec2 p = v.wy;
                 gl_FragColor = vec4(p, v.x + v.z, 1.0);
             }");
        assert_eq!(c, [4.0, 2.0, 4.0, 1.0]);
    }

    #[test]
    fn for_loop_accumulates() {
        let c = run("void main() {
                 float s = 0.0;
                 for (int i = 0; i < 10; i++) { s += 2.0; }
                 gl_FragColor = vec4(s);
             }");
        assert_eq!(c[0], 20.0);
    }

    #[test]
    fn nested_loops() {
        let c = run("void main() {
                 float s = 0.0;
                 for (int i = 0; i < 4; i++) { for (int j = 0; j < 4; j++) { s += 1.0; } }
                 gl_FragColor = vec4(s);
             }");
        assert_eq!(c[0], 16.0);
    }

    #[test]
    fn if_else_branches() {
        let c = run("void main() {
                 float x = 3.0;
                 if (x > 2.0) { gl_FragColor = vec4(1.0); } else { gl_FragColor = vec4(0.0); }
             }");
        assert_eq!(c[0], 1.0);
    }

    #[test]
    fn ternary() {
        assert_eq!(
            run("void main() { gl_FragColor = vec4(2.0 < 1.0 ? 5.0 : 7.0); }")[0],
            7.0
        );
    }

    #[test]
    fn user_function_call() {
        let c = run("float sq(float x) { return x * x; }
             vec2 both(float a, float b) { return vec2(sq(a), sq(b)); }
             void main() { gl_FragColor = vec4(both(3.0, 4.0), 0.0, 0.0); }");
        assert_eq!(c, [9.0, 16.0, 0.0, 0.0]);
    }

    #[test]
    fn uniforms_and_varyings() {
        let c = run_with(
            "uniform float scale; varying vec2 v_texcoord;
             void main() { gl_FragColor = vec4(v_texcoord * scale, 0.0, 1.0); }",
            &[Value::Float(10.0)],
            &[Value::Vec2([0.25, 0.5])],
        );
        assert_eq!(c, [2.5, 5.0, 0.0, 1.0]);
    }

    #[test]
    fn texture_sampling_uses_unit() {
        let shader = compile(
            "uniform sampler2D t; varying vec2 uv;
             void main() { gl_FragColor = texture2D(t, uv); }",
        )
        .unwrap();
        let sample = |unit: i32, u: f32, v: f32| [unit as f32, u, v, 1.0];
        let env = FragmentEnv {
            uniforms: &[Value::Int(3)],
            varyings: &[Value::Vec2([0.5, 0.25])],
            sample: &sample,
        };
        let (c, cost) = run_fragment(&shader, &env).unwrap();
        assert_eq!(c, [3.0, 0.5, 0.25, 1.0]);
        assert_eq!(cost.tex, 1);
    }

    #[test]
    fn builtins() {
        assert_eq!(
            run("void main() { gl_FragColor = vec4(max(1.0, 2.0), min(1.0, 2.0), abs(-3.0), floor(1.7)); }"),
            [2.0, 1.0, 3.0, 1.0]
        );
        assert_eq!(
            run("void main() { gl_FragColor = vec4(clamp(5.0, 0.0, 1.0)); }")[0],
            1.0
        );
        assert_eq!(
            run("void main() { gl_FragColor = vec4(mix(0.0, 10.0, 0.25)); }")[0],
            2.5
        );
        assert_eq!(
            run("void main() { gl_FragColor = vec4(dot(vec2(1.0, 2.0), vec2(3.0, 4.0))); }")[0],
            11.0
        );
        assert_eq!(
            run("void main() { gl_FragColor = vec4(length(vec3(3.0, 4.0, 0.0))); }")[0],
            5.0
        );
        assert_eq!(run("void main() { gl_FragColor = vec4(mod(7.0, 3.0)); }")[0], 1.0);
        assert_eq!(
            run("void main() { gl_FragColor = vec4(step(2.0, 1.0), step(2.0, 3.0), 0.0, 0.0); }")[..2],
            [0.0, 1.0]
        );
        assert!((run("void main() { gl_FragColor = vec4(pow(2.0, 10.0)); }")[0] - 1024.0).abs() < 1e-3);
    }

    #[test]
    fn int_loop_counters_are_ints() {
        // `i / 2` on ints truncates.
        let c = run("void main() {
                 float s = 0.0;
                 for (int i = 0; i < 5; i++) { s += float(i / 2); }
                 gl_FragColor = vec4(s);
             }");
        // 0 + 0 + 1 + 1 + 2 = 4
        assert_eq!(c[0], 4.0);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let shader = compile("void main() { gl_FragColor = vec4(1.0 + vec2(1.0, 2.0).x, 0.0, 0.0, 0.0); gl_FragColor = vec4(1.0); }").unwrap();
        let env = FragmentEnv {
            uniforms: &[],
            varyings: &[],
            sample: &no_tex,
        };
        assert!(run_fragment(&shader, &env).is_ok());
        // int + float has no implicit conversion:
        let bad = compile("void main() { int i = 1; float f = 1.0; gl_FragColor = vec4(float(i) + f); float g = f; int j = i + 1; gl_FragColor = vec4(g + float(j)); }").unwrap();
        assert!(run_fragment(
            &bad,
            &FragmentEnv {
                uniforms: &[],
                varyings: &[],
                sample: &no_tex
            }
        )
        .is_ok());
    }

    #[test]
    fn strict_no_implicit_int_float() {
        let shader =
            compile("void main() { float f = 1.0; int i = 2; gl_FragColor = vec4(f * i); }").unwrap();
        let env = FragmentEnv {
            uniforms: &[],
            varyings: &[],
            sample: &no_tex,
        };
        assert!(run_fragment(&shader, &env).is_err());
    }

    #[test]
    fn swizzled_store() {
        let c = run("void main() {
                 vec4 v = vec4(0.0);
                 v.xz = vec2(1.0, 2.0);
                 v.w = 3.0;
                 gl_FragColor = v;
             }");
        assert_eq!(c, [1.0, 0.0, 2.0, 3.0]);
    }

    #[test]
    fn compound_assign_through_swizzle() {
        let c = run("void main() {
                 vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
                 v.x += 10.0;
                 gl_FragColor = v;
             }");
        assert_eq!(c, [11.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn cost_counts_loop_work() {
        let shader = compile(
            "void main() {
                 float s = 0.0;
                 for (int i = 0; i < 100; i++) { s += 1.0; }
                 gl_FragColor = vec4(s);
             }",
        )
        .unwrap();
        let env = FragmentEnv {
            uniforms: &[],
            varyings: &[],
            sample: &no_tex,
        };
        let (_, cost) = run_fragment(&shader, &env).unwrap();
        assert!(cost.alu >= 200, "alu cost {} too small", cost.alu);
        assert!(cost.branch >= 100);
    }

    #[test]
    fn runaway_loop_is_stopped() {
        // A loop whose condition never becomes false (int overflow wraps).
        let shader = compile(
            "void main() {
                 float s = 0.0;
                 for (int i = 0; i >= 0; i = i + 0) { s += 1.0; }
                 gl_FragColor = vec4(s);
             }",
        )
        .unwrap();
        let env = FragmentEnv {
            uniforms: &[],
            varyings: &[],
            sample: &no_tex,
        };
        let err = run_fragment(&shader, &env).unwrap_err();
        assert!(err.to_string().contains("runaway"), "{err}");
    }

    #[test]
    fn frag_color_must_be_vec4() {
        let shader = compile("void main() { gl_FragColor = vec4(1.0); }").unwrap();
        let env = FragmentEnv {
            uniforms: &[],
            varyings: &[],
            sample: &no_tex,
        };
        assert!(run_fragment(&shader, &env).is_ok());
    }

    #[test]
    fn uniform_count_mismatch_rejected() {
        let shader = compile("uniform float u; void main() { gl_FragColor = vec4(u); }").unwrap();
        let env = FragmentEnv {
            uniforms: &[],
            varyings: &[],
            sample: &no_tex,
        };
        assert!(run_fragment(&shader, &env).is_err());
    }
}
