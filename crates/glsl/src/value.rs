//! Runtime values of the GLSL ES 1.00 interpreter.

use std::fmt;

/// GLSL ES value types supported by the simulator.
///
/// Matrices are not implemented: the Brook Auto code generator never emits
/// them and the hand-written sgemm shader of the paper's Figure 4 does not
/// need them either.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlslType {
    Void,
    Float,
    Vec2,
    Vec3,
    Vec4,
    Int,
    Bool,
    Sampler2D,
}

impl GlslType {
    /// Number of float components for float-vector types (0 otherwise).
    pub fn components(&self) -> usize {
        match self {
            GlslType::Float => 1,
            GlslType::Vec2 => 2,
            GlslType::Vec3 => 3,
            GlslType::Vec4 => 4,
            _ => 0,
        }
    }

    /// Float type with the given number of components.
    ///
    /// # Panics
    /// Panics if `n` is not in `1..=4`.
    pub fn vec(n: usize) -> GlslType {
        match n {
            1 => GlslType::Float,
            2 => GlslType::Vec2,
            3 => GlslType::Vec3,
            4 => GlslType::Vec4,
            _ => panic!("vector width {n} out of range"),
        }
    }

    /// Source spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            GlslType::Void => "void",
            GlslType::Float => "float",
            GlslType::Vec2 => "vec2",
            GlslType::Vec3 => "vec3",
            GlslType::Vec4 => "vec4",
            GlslType::Int => "int",
            GlslType::Bool => "bool",
            GlslType::Sampler2D => "sampler2D",
        }
    }
}

impl fmt::Display for GlslType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// A runtime value. Float vectors are stored padded to four lanes; the
/// width lives in the variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Float(f32),
    Vec2([f32; 2]),
    Vec3([f32; 3]),
    Vec4([f32; 4]),
    Int(i32),
    Bool(bool),
}

impl Value {
    /// The value's GLSL type.
    pub fn glsl_type(&self) -> GlslType {
        match self {
            Value::Float(_) => GlslType::Float,
            Value::Vec2(_) => GlslType::Vec2,
            Value::Vec3(_) => GlslType::Vec3,
            Value::Vec4(_) => GlslType::Vec4,
            Value::Int(_) => GlslType::Int,
            Value::Bool(_) => GlslType::Bool,
        }
    }

    /// Zero value of a type (used for default-initialized variables).
    pub fn zero(ty: GlslType) -> Value {
        match ty {
            GlslType::Float => Value::Float(0.0),
            GlslType::Vec2 => Value::Vec2([0.0; 2]),
            GlslType::Vec3 => Value::Vec3([0.0; 3]),
            GlslType::Vec4 => Value::Vec4([0.0; 4]),
            GlslType::Int | GlslType::Sampler2D => Value::Int(0),
            GlslType::Bool => Value::Bool(false),
            GlslType::Void => Value::Float(0.0),
        }
    }

    /// Number of float lanes (1 for scalars, 0 for int/bool).
    pub fn width(&self) -> usize {
        self.glsl_type().components()
    }

    /// Float lanes as a slice (empty for int/bool).
    pub fn lanes(&self) -> &[f32] {
        match self {
            Value::Float(v) => std::slice::from_ref(v),
            Value::Vec2(v) => v,
            Value::Vec3(v) => v,
            Value::Vec4(v) => v,
            _ => &[],
        }
    }

    /// Builds a float value from lanes.
    ///
    /// # Panics
    /// Panics if `lanes` is empty or longer than 4.
    pub fn from_lanes(lanes: &[f32]) -> Value {
        match lanes {
            [a] => Value::Float(*a),
            [a, b] => Value::Vec2([*a, *b]),
            [a, b, c] => Value::Vec3([*a, *b, *c]),
            [a, b, c, d] => Value::Vec4([*a, *b, *c, *d]),
            _ => panic!("invalid lane count {}", lanes.len()),
        }
    }

    /// The scalar float, if this is a `float`.
    pub fn as_float(&self) -> Option<f32> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The int payload, if this is an `int`.
    pub fn as_int(&self) -> Option<i32> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The bool payload, if this is a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Four-lane view with missing lanes zero-filled (for gl_FragColor).
    pub fn to_vec4(&self) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        for (i, l) in self.lanes().iter().enumerate() {
            out[i] = *l;
        }
        if let Value::Int(v) = self {
            out[0] = *v as f32;
        }
        out
    }

    /// Componentwise map over float lanes.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Option<Value> {
        let lanes = self.lanes();
        if lanes.is_empty() {
            return None;
        }
        let mapped: Vec<f32> = lanes.iter().map(|v| f(*v)).collect();
        Some(Value::from_lanes(&mapped))
    }

    /// Componentwise zip of two float values, broadcasting scalars.
    ///
    /// Returns `None` when the shapes are incompatible or the values are
    /// not floats.
    pub fn zip(&self, other: &Value, f: impl Fn(f32, f32) -> f32) -> Option<Value> {
        let (a, b) = (self.lanes(), other.lanes());
        if a.is_empty() || b.is_empty() {
            return None;
        }
        let w = a.len().max(b.len());
        if a.len() != w && a.len() != 1 {
            return None;
        }
        if b.len() != w && b.len() != 1 {
            return None;
        }
        let pick = |s: &[f32], i: usize| if s.len() == 1 { s[0] } else { s[i] };
        let out: Vec<f32> = (0..w).map(|i| f(pick(a, i), pick(b, i))).collect();
        Some(Value::from_lanes(&out))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Float(v) => write!(f, "{v}"),
            Value::Vec2(v) => write!(f, "vec2({}, {})", v[0], v[1]),
            Value::Vec3(v) => write!(f, "vec3({}, {}, {})", v[0], v[1], v[2]),
            Value::Vec4(v) => write!(f, "vec4({}, {}, {}, {})", v[0], v[1], v[2], v[3]),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_roundtrip() {
        let v = Value::Vec3([1.0, 2.0, 3.0]);
        assert_eq!(Value::from_lanes(v.lanes()), v);
        assert_eq!(v.width(), 3);
    }

    #[test]
    fn zip_broadcasts_scalars() {
        let v = Value::Vec2([1.0, 2.0]);
        let s = Value::Float(10.0);
        assert_eq!(v.zip(&s, |a, b| a * b), Some(Value::Vec2([10.0, 20.0])));
        assert_eq!(s.zip(&v, |a, b| a + b), Some(Value::Vec2([11.0, 12.0])));
    }

    #[test]
    fn zip_rejects_mismatched_vectors() {
        let a = Value::Vec2([1.0, 2.0]);
        let b = Value::Vec3([1.0, 2.0, 3.0]);
        assert_eq!(a.zip(&b, |x, y| x + y), None);
    }

    #[test]
    fn zip_rejects_ints() {
        assert_eq!(Value::Int(1).zip(&Value::Float(2.0), |x, y| x + y), None);
    }

    #[test]
    fn to_vec4_pads_with_zero() {
        assert_eq!(Value::Vec2([1.0, 2.0]).to_vec4(), [1.0, 2.0, 0.0, 0.0]);
        assert_eq!(Value::Float(5.0).to_vec4(), [5.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn type_component_counts() {
        assert_eq!(GlslType::Vec4.components(), 4);
        assert_eq!(GlslType::Int.components(), 0);
        assert_eq!(GlslType::vec(3), GlslType::Vec3);
    }

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero(GlslType::Vec4), Value::Vec4([0.0; 4]));
        assert_eq!(Value::zero(GlslType::Bool), Value::Bool(false));
    }
}
