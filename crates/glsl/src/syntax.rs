//! Lexer, AST and parser for the GLSL ES 1.00 fragment-shader subset.
//!
//! The subset covers everything the Brook Auto code generator emits plus
//! what a hand-optimized GPGPU shader needs: global `precision`,
//! `uniform` / `varying` / `const` declarations, function definitions,
//! structured control flow and the full float/vector expression language
//! with swizzles and constructors. Matrices and arrays are intentionally
//! absent (see `value::GlslType`).

use crate::error::ShaderError;
use crate::value::GlslType;
use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Type(GlslType),
    FloatLit(f32),
    IntLit(i32),
    BoolLit(bool),
    Uniform,
    Varying,
    Const,
    Precision,
    If,
    Else,
    For,
    Return,
    Discard,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Dot,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Bang,
    Question,
    Colon,
    PlusPlus,
    MinusMinus,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Tokenizes GLSL source.
///
/// # Errors
/// Returns [`ShaderError::Lex`] on unknown characters or malformed
/// literals; line/column information is embedded in the message.
pub fn lex(src: &str) -> Result<Vec<(Tok, u32)>, ShaderError> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if (c as char).is_whitespace() {
            i += 1;
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            i += 2;
            while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                if b[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            if i + 1 >= b.len() {
                return Err(ShaderError::lex(line, "unterminated block comment"));
            }
            i += 2;
            continue;
        }
        // `#` preprocessor lines (e.g. #version): skipped to end of line.
        if c == b'#' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit() || (c == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit()) {
            let start = i;
            let mut is_float = false;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            if i < b.len() && b[i] == b'.' {
                is_float = true;
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                let mut j = i + 1;
                if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                    j += 1;
                }
                if j < b.len() && b[j].is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &src[start..i];
            if is_float {
                let v = text
                    .parse::<f32>()
                    .map_err(|_| ShaderError::lex(line, format!("bad float `{text}`")))?;
                toks.push((Tok::FloatLit(v), line));
            } else {
                let v = text
                    .parse::<i32>()
                    .map_err(|_| ShaderError::lex(line, format!("bad int `{text}`")))?;
                toks.push((Tok::IntLit(v), line));
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let text = &src[start..i];
            let tok = match text {
                "uniform" => Tok::Uniform,
                "varying" => Tok::Varying,
                "const" => Tok::Const,
                "precision" => Tok::Precision,
                "if" => Tok::If,
                "else" => Tok::Else,
                "for" => Tok::For,
                "return" => Tok::Return,
                "discard" => Tok::Discard,
                "true" => Tok::BoolLit(true),
                "false" => Tok::BoolLit(false),
                "void" => Tok::Type(GlslType::Void),
                "float" => Tok::Type(GlslType::Float),
                "vec2" => Tok::Type(GlslType::Vec2),
                "vec3" => Tok::Type(GlslType::Vec3),
                "vec4" => Tok::Type(GlslType::Vec4),
                "int" => Tok::Type(GlslType::Int),
                "bool" => Tok::Type(GlslType::Bool),
                "sampler2D" => Tok::Type(GlslType::Sampler2D),
                "highp" | "mediump" | "lowp" => continue, // precision qualifiers are accepted and ignored
                "while" | "do" => {
                    return Err(ShaderError::lex(
                        line,
                        "GLSL ES 1.00 appendix A: only bounded `for` loops are supported",
                    ))
                }
                _ => Tok::Ident(text.to_owned()),
            };
            toks.push((tok, line));
            continue;
        }
        let two = |a: u8, b2: u8| -> bool { c == a && i + 1 < b.len() && b[i + 1] == b2 };
        let (tok, len) = if two(b'+', b'+') {
            (Tok::PlusPlus, 2)
        } else if two(b'-', b'-') {
            (Tok::MinusMinus, 2)
        } else if two(b'+', b'=') {
            (Tok::PlusAssign, 2)
        } else if two(b'-', b'=') {
            (Tok::MinusAssign, 2)
        } else if two(b'*', b'=') {
            (Tok::StarAssign, 2)
        } else if two(b'/', b'=') {
            (Tok::SlashAssign, 2)
        } else if two(b'<', b'=') {
            (Tok::Le, 2)
        } else if two(b'>', b'=') {
            (Tok::Ge, 2)
        } else if two(b'=', b'=') {
            (Tok::EqEq, 2)
        } else if two(b'!', b'=') {
            (Tok::Ne, 2)
        } else if two(b'&', b'&') {
            (Tok::AndAnd, 2)
        } else if two(b'|', b'|') {
            (Tok::OrOr, 2)
        } else {
            let t = match c {
                b'(' => Tok::LParen,
                b')' => Tok::RParen,
                b'{' => Tok::LBrace,
                b'}' => Tok::RBrace,
                b';' => Tok::Semi,
                b',' => Tok::Comma,
                b'.' => Tok::Dot,
                b'=' => Tok::Assign,
                b'+' => Tok::Plus,
                b'-' => Tok::Minus,
                b'*' => Tok::Star,
                b'/' => Tok::Slash,
                b'<' => Tok::Lt,
                b'>' => Tok::Gt,
                b'!' => Tok::Bang,
                b'?' => Tok::Question,
                b':' => Tok::Colon,
                other => {
                    return Err(ShaderError::lex(
                        line,
                        format!("unexpected character `{}`", other as char),
                    ))
                }
            };
            (t, 1)
        };
        toks.push((tok, line));
        i += len;
    }
    toks.push((Tok::Eof, line));
    Ok(toks)
}

// ---- AST -------------------------------------------------------------

/// Storage qualifier of a global declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalKind {
    Uniform,
    Varying,
    Const,
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    pub kind: GlobalKind,
    pub ty: GlslType,
    pub name: String,
    /// Initializer (const globals only).
    pub init: Option<PExpr>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct PFunction {
    pub return_ty: GlslType,
    pub name: String,
    pub params: Vec<(GlslType, String)>,
    pub body: Vec<PStmt>,
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    pub globals: Vec<Global>,
    pub functions: Vec<PFunction>,
}

/// Parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum PStmt {
    Decl {
        ty: GlslType,
        name: String,
        init: Option<PExpr>,
    },
    Assign {
        target: PExpr,
        op: char,
        value: PExpr,
    },
    If {
        cond: PExpr,
        then_body: Vec<PStmt>,
        else_body: Vec<PStmt>,
    },
    For {
        init: Box<PStmt>,
        cond: PExpr,
        step: Box<PStmt>,
        body: Vec<PStmt>,
    },
    Return(Option<PExpr>),
    Expr(PExpr),
    Block(Vec<PStmt>),
}

/// Parsed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    Float(f32),
    Int(i32),
    Bool(bool),
    Var(String),
    Bin(String, Box<PExpr>, Box<PExpr>),
    Un(char, Box<PExpr>),
    Ternary(Box<PExpr>, Box<PExpr>, Box<PExpr>),
    Call(String, Vec<PExpr>),
    Swizzle(Box<PExpr>, String),
}

/// Parses a GLSL ES fragment shader.
///
/// # Errors
/// Returns [`ShaderError::Parse`] describing the first syntax error.
pub fn parse(src: &str) -> Result<Unit, ShaderError> {
    let toks = lex(src)?;
    let mut p = P {
        toks,
        pos: 0,
        expr_depth: 0,
    };
    p.unit()
}

/// Maximum expression nesting depth (compiler resource bound).
const MAX_EXPR_DEPTH: u32 = 256;

struct P {
    toks: Vec<(Tok, u32)>,
    pos: usize,
    expr_depth: u32,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos.min(self.toks.len() - 1)].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].0.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ShaderError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(ShaderError::parse(
                self.line(),
                format!("expected {t}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, ShaderError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(ShaderError::parse(
                self.line(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn ty(&mut self) -> Result<GlslType, ShaderError> {
        match self.bump() {
            Tok::Type(t) => Ok(t),
            other => Err(ShaderError::parse(
                self.line(),
                format!("expected type, found {other}"),
            )),
        }
    }

    fn unit(&mut self) -> Result<Unit, ShaderError> {
        let mut unit = Unit::default();
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Precision => {
                    // `precision mediump float;` — qualifier already skipped
                    // by the lexer, so: precision <type> ;
                    self.bump();
                    let _ = self.ty()?;
                    self.expect(&Tok::Semi)?;
                }
                Tok::Uniform | Tok::Varying | Tok::Const => {
                    let kind = match self.bump() {
                        Tok::Uniform => GlobalKind::Uniform,
                        Tok::Varying => GlobalKind::Varying,
                        _ => GlobalKind::Const,
                    };
                    let ty = self.ty()?;
                    let name = self.ident()?;
                    let init = if self.eat(&Tok::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    if kind == GlobalKind::Const && init.is_none() {
                        return Err(ShaderError::parse(
                            self.line(),
                            "const globals need an initializer",
                        ));
                    }
                    self.expect(&Tok::Semi)?;
                    unit.globals.push(Global { kind, ty, name, init });
                }
                Tok::Type(_) => {
                    let return_ty = self.ty()?;
                    let name = self.ident()?;
                    self.expect(&Tok::LParen)?;
                    let mut params = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            let pt = self.ty()?;
                            let pn = self.ident()?;
                            params.push((pt, pn));
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    let body = self.block()?;
                    unit.functions.push(PFunction {
                        return_ty,
                        name,
                        params,
                        body,
                    });
                }
                other => {
                    return Err(ShaderError::parse(
                        self.line(),
                        format!("unexpected token at top level: {other}"),
                    ));
                }
            }
        }
        if !unit.functions.iter().any(|f| f.name == "main") {
            return Err(ShaderError::parse(0, "fragment shader has no `main` function"));
        }
        Ok(unit)
    }

    fn block(&mut self) -> Result<Vec<PStmt>, ShaderError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if matches!(self.peek(), Tok::Eof) {
                return Err(ShaderError::parse(self.line(), "unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<PStmt, ShaderError> {
        match self.peek().clone() {
            Tok::LBrace => Ok(PStmt::Block(self.block()?)),
            Tok::If => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then_body = self.block_or_single()?;
                let else_body = if self.eat(&Tok::Else) {
                    if matches!(self.peek(), Tok::If) {
                        vec![self.stmt()?]
                    } else {
                        self.block_or_single()?
                    }
                } else {
                    Vec::new()
                };
                Ok(PStmt::If {
                    cond,
                    then_body,
                    else_body,
                })
            }
            Tok::For => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = Box::new(self.simple_stmt()?);
                self.expect(&Tok::Semi)?;
                let cond = self.expr()?;
                self.expect(&Tok::Semi)?;
                let step = Box::new(self.simple_stmt()?);
                self.expect(&Tok::RParen)?;
                let body = self.block_or_single()?;
                Ok(PStmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::Return => {
                self.bump();
                let v = if matches!(self.peek(), Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                Ok(PStmt::Return(v))
            }
            Tok::Discard => Err(ShaderError::parse(
                self.line(),
                "`discard` is not supported by the GPGPU subset",
            )),
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&Tok::Semi)?;
                Ok(s)
            }
        }
    }

    fn block_or_single(&mut self) -> Result<Vec<PStmt>, ShaderError> {
        if matches!(self.peek(), Tok::LBrace) {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn simple_stmt(&mut self) -> Result<PStmt, ShaderError> {
        if let Tok::Type(_) = self.peek() {
            let ty = self.ty()?;
            let name = self.ident()?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(PStmt::Decl { ty, name, init });
        }
        let lhs = self.expr()?;
        let op = match self.peek() {
            Tok::Assign => Some('='),
            Tok::PlusAssign => Some('+'),
            Tok::MinusAssign => Some('-'),
            Tok::StarAssign => Some('*'),
            Tok::SlashAssign => Some('/'),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let value = self.expr()?;
            return Ok(PStmt::Assign {
                target: lhs,
                op,
                value,
            });
        }
        if matches!(self.peek(), Tok::PlusPlus | Tok::MinusMinus) {
            let inc = matches!(self.bump(), Tok::PlusPlus);
            let one = PExpr::Int(1);
            return Ok(PStmt::Assign {
                target: lhs,
                op: if inc { '+' } else { '-' },
                value: one,
            });
        }
        Ok(PStmt::Expr(lhs))
    }

    fn expr(&mut self) -> Result<PExpr, ShaderError> {
        if self.expr_depth >= MAX_EXPR_DEPTH {
            return Err(ShaderError::parse(
                self.line(),
                format!("expression nesting exceeds the depth limit {MAX_EXPR_DEPTH}"),
            ));
        }
        self.expr_depth += 1;
        let result = self.expr_inner();
        self.expr_depth -= 1;
        result
    }

    fn expr_inner(&mut self) -> Result<PExpr, ShaderError> {
        let cond = self.or_expr()?;
        if self.eat(&Tok::Question) {
            let t = self.expr()?;
            self.expect(&Tok::Colon)?;
            let e = self.expr()?;
            return Ok(PExpr::Ternary(Box::new(cond), Box::new(t), Box::new(e)));
        }
        Ok(cond)
    }

    fn bin_level(
        &mut self,
        next: fn(&mut Self) -> Result<PExpr, ShaderError>,
        ops: &[(Tok, &str)],
    ) -> Result<PExpr, ShaderError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, name) in ops {
                if self.peek() == tok {
                    self.bump();
                    let rhs = next(self)?;
                    lhs = PExpr::Bin((*name).to_owned(), Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn or_expr(&mut self) -> Result<PExpr, ShaderError> {
        self.bin_level(Self::and_expr, &[(Tok::OrOr, "||")])
    }

    fn and_expr(&mut self) -> Result<PExpr, ShaderError> {
        self.bin_level(Self::eq_expr, &[(Tok::AndAnd, "&&")])
    }

    fn eq_expr(&mut self) -> Result<PExpr, ShaderError> {
        self.bin_level(Self::rel_expr, &[(Tok::EqEq, "=="), (Tok::Ne, "!=")])
    }

    fn rel_expr(&mut self) -> Result<PExpr, ShaderError> {
        self.bin_level(
            Self::add_expr,
            &[(Tok::Lt, "<"), (Tok::Le, "<="), (Tok::Gt, ">"), (Tok::Ge, ">=")],
        )
    }

    fn add_expr(&mut self) -> Result<PExpr, ShaderError> {
        self.bin_level(Self::mul_expr, &[(Tok::Plus, "+"), (Tok::Minus, "-")])
    }

    fn mul_expr(&mut self) -> Result<PExpr, ShaderError> {
        self.bin_level(Self::unary_expr, &[(Tok::Star, "*"), (Tok::Slash, "/")])
    }

    fn unary_expr(&mut self) -> Result<PExpr, ShaderError> {
        if self.eat(&Tok::Minus) {
            return Ok(PExpr::Un('-', Box::new(self.unary_expr()?)));
        }
        if self.eat(&Tok::Bang) {
            return Ok(PExpr::Un('!', Box::new(self.unary_expr()?)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<PExpr, ShaderError> {
        let mut e = self.primary_expr()?;
        while self.eat(&Tok::Dot) {
            let name = self.ident()?;
            if name.len() > 4
                || !name.bytes().all(|c| {
                    matches!(
                        c,
                        b'x' | b'y' | b'z' | b'w' | b'r' | b'g' | b'b' | b'a' | b's' | b't' | b'p' | b'q'
                    )
                })
            {
                return Err(ShaderError::parse(
                    self.line(),
                    format!("invalid swizzle `.{name}`"),
                ));
            }
            let normalized: String = name
                .bytes()
                .map(|c| match c {
                    b'x' | b'r' | b's' => 'x',
                    b'y' | b'g' | b't' => 'y',
                    b'z' | b'b' | b'p' => 'z',
                    _ => 'w',
                })
                .collect();
            e = PExpr::Swizzle(Box::new(e), normalized);
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<PExpr, ShaderError> {
        match self.bump() {
            Tok::FloatLit(v) => Ok(PExpr::Float(v)),
            Tok::IntLit(v) => Ok(PExpr::Int(v)),
            Tok::BoolLit(v) => Ok(PExpr::Bool(v)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Type(t) => {
                // Constructor call: vec4(...), float(...), int(...).
                self.expect(&Tok::LParen)?;
                let mut args = Vec::new();
                if !self.eat(&Tok::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                }
                Ok(PExpr::Call(t.as_str().to_owned(), args))
            }
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    Ok(PExpr::Call(name, args))
                } else {
                    Ok(PExpr::Var(name))
                }
            }
            other => Err(ShaderError::parse(
                self.line(),
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_and_parses_minimal_shader() {
        let u = parse("precision mediump float; void main() { gl_FragColor = vec4(1.0); }").unwrap();
        assert_eq!(u.functions.len(), 1);
        assert_eq!(u.functions[0].name, "main");
    }

    #[test]
    fn parses_uniforms_and_varyings() {
        let u = parse(
            "uniform sampler2D tex0; uniform vec4 dims; varying vec2 v_texcoord;
             void main() { gl_FragColor = texture2D(tex0, v_texcoord); }",
        )
        .unwrap();
        assert_eq!(u.globals.len(), 3);
        assert_eq!(u.globals[0].kind, GlobalKind::Uniform);
        assert_eq!(u.globals[0].ty, GlslType::Sampler2D);
        assert_eq!(u.globals[2].kind, GlobalKind::Varying);
    }

    #[test]
    fn parses_for_loop_and_functions() {
        let u = parse(
            "float acc(float x) { return x * 2.0; }
             void main() {
                 float s = 0.0;
                 for (int i = 0; i < 8; i++) { s += acc(1.0); }
                 gl_FragColor = vec4(s);
             }",
        )
        .unwrap();
        assert_eq!(u.functions.len(), 2);
    }

    #[test]
    fn requires_main() {
        let e = parse("void helper() { }").unwrap_err();
        assert!(e.to_string().contains("main"));
    }

    #[test]
    fn rejects_while() {
        assert!(parse("void main() { while (true) { } }").is_err());
    }

    #[test]
    fn rejects_discard() {
        assert!(parse("void main() { discard; }").is_err());
    }

    #[test]
    fn precision_qualifiers_ignored() {
        parse(
            "precision highp float; uniform highp vec2 d; void main() { gl_FragColor = vec4(d, 0.0, 0.0); }",
        )
        .unwrap();
    }

    #[test]
    fn swizzle_normalization_rgba() {
        let u = parse("void main() { vec4 c = vec4(1.0); gl_FragColor = vec4(c.rgb, c.a); }").unwrap();
        // .rgb normalized to .xyz
        let f = &u.functions[0];
        let PStmt::Assign { value, .. } = &f.body[1] else {
            panic!()
        };
        let PExpr::Call(_, args) = value else { panic!() };
        assert!(matches!(&args[0], PExpr::Swizzle(_, s) if s == "xyz"));
        assert!(matches!(&args[1], PExpr::Swizzle(_, s) if s == "w"));
    }

    #[test]
    fn const_global_requires_init() {
        assert!(parse("const float K; void main() { gl_FragColor = vec4(K); }").is_err());
        parse("const float K = 2.5; void main() { gl_FragColor = vec4(K); }").unwrap();
    }

    #[test]
    fn preprocessor_lines_skipped() {
        parse("#version 100\nvoid main() { gl_FragColor = vec4(0.0); }").unwrap();
    }

    #[test]
    fn reports_line_numbers() {
        let e = parse("void main() {\n\n  @bad\n}").unwrap_err();
        assert!(e.to_string().contains("3"), "{e}");
    }
}
