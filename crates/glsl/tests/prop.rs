//! Property tests for the GLSL ES substrate: totality of the compiler on
//! arbitrary input, and interpreter correctness on generated arithmetic.

use glsl_es::{compile, run_fragment, FragmentEnv, Value};
use proptest::prelude::*;

fn no_tex(_: i32, _: f32, _: f32) -> [f32; 4] {
    [0.0; 4]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiler must be total: arbitrary input produces Ok or Err,
    /// never a panic.
    #[test]
    fn compile_never_panics(src in ".*") {
        let _ = compile(&src);
    }

    /// Arbitrary fragments assembled from GLSL-ish tokens.
    #[test]
    fn compile_never_panics_on_token_soup(parts in proptest::collection::vec(
        prop_oneof![
            Just("void"), Just("main"), Just("("), Just(")"), Just("{"), Just("}"),
            Just("float"), Just("vec4"), Just("uniform"), Just("varying"),
            Just("gl_FragColor"), Just("="), Just(";"), Just("1.0"), Just("for"),
            Just("int"), Just("i"), Just("<"), Just("++"), Just("texture2D"),
            Just("."), Just("xyzw"), Just("+"), Just("*"),
        ], 0..50)) {
        let _ = compile(&parts.join(" "));
    }

    /// Interpreter arithmetic matches Rust f32 semantics exactly for
    /// +, -, *, / chains.
    #[test]
    fn scalar_arithmetic_matches_f32(a in -1.0e3f32..1.0e3, b in -1.0e3f32..1.0e3, c in 0.5f32..100.0) {
        let shader = compile(
            "uniform float a; uniform float b; uniform float c;
             void main() { gl_FragColor = vec4((a + b) * c - a / c, 0.0, 0.0, 0.0); }",
        ).expect("compile");
        let env = FragmentEnv {
            uniforms: &[Value::Float(a), Value::Float(b), Value::Float(c)],
            varyings: &[],
            sample: &no_tex,
        };
        let (out, _) = run_fragment(&shader, &env).expect("run");
        let expect = (a + b) * c - a / c;
        prop_assert_eq!(out[0], expect);
    }

    /// Swizzle algebra: (v.wzyx).wzyx == v for any vec4.
    #[test]
    fn double_reverse_swizzle_is_identity(x in -10.0f32..10.0, y in -10.0f32..10.0, z in -10.0f32..10.0, w in -10.0f32..10.0) {
        let shader = compile(
            "uniform vec4 v; void main() { vec4 r = v.wzyx; gl_FragColor = r.wzyx; }",
        ).expect("compile");
        let env = FragmentEnv { uniforms: &[Value::Vec4([x, y, z, w])], varyings: &[], sample: &no_tex };
        let (out, _) = run_fragment(&shader, &env).expect("run");
        prop_assert_eq!(out, [x, y, z, w]);
    }

    /// Loop summation equals the closed form for any trip count.
    #[test]
    fn loop_sum_matches_closed_form(n in 0i32..200) {
        let shader = compile(&format!(
            "void main() {{
                 float s = 0.0;
                 for (int i = 0; i < {n}; i++) {{ s += float(i); }}
                 gl_FragColor = vec4(s);
             }}"
        )).expect("compile");
        let env = FragmentEnv { uniforms: &[], varyings: &[], sample: &no_tex };
        let (out, cost) = run_fragment(&shader, &env).expect("run");
        prop_assert_eq!(out[0], (n * (n - 1) / 2) as f32);
        // Cost must scale with the trip count.
        prop_assert!(cost.branch >= n as u64);
    }

    /// min/max/clamp satisfy their lattice laws componentwise.
    #[test]
    fn clamp_is_min_max_composition(v in -100.0f32..100.0, lo in -50.0f32..0.0, hi in 0.0f32..50.0) {
        let shader = compile(
            "uniform float v; uniform float lo; uniform float hi;
             void main() { gl_FragColor = vec4(clamp(v, lo, hi), min(max(v, lo), hi), 0.0, 0.0); }",
        ).expect("compile");
        let env = FragmentEnv {
            uniforms: &[Value::Float(v), Value::Float(lo), Value::Float(hi)],
            varyings: &[],
            sample: &no_tex,
        };
        let (out, _) = run_fragment(&shader, &env).expect("run");
        prop_assert_eq!(out[0], out[1]);
    }
}

#[test]
fn cost_is_deterministic() {
    let shader = compile(
        "varying vec2 v_texcoord;
         void main() {
             float s = 0.0;
             for (int i = 0; i < 37; i++) { s += sin(v_texcoord.x) * 0.01; }
             gl_FragColor = vec4(s);
         }",
    )
    .expect("compile");
    let env = FragmentEnv {
        uniforms: &[],
        varyings: &[Value::Vec2([0.3, 0.7])],
        sample: &no_tex,
    };
    let (o1, c1) = run_fragment(&shader, &env).expect("run");
    let (o2, c2) = run_fragment(&shader, &env).expect("run");
    assert_eq!(o1, o2);
    assert_eq!(c1, c2);
}
