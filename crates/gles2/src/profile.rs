//! Device capability profiles for the OpenGL ES 2.0 simulator.
//!
//! The paper's two evaluation platforms are modelled: the ARM/VideoCore IV
//! target (low-end embedded GPU: power-of-two RGBA8 textures, 2048 max
//! dimension, no float render targets) and the desktop-class reference
//! (AMD Mobility Radeon HD 3400 running AMD's CAL-based Brook+, which has
//! float textures and a 4096 limit).

/// Capability limits the simulator enforces, mirroring `glGet*` queries of
/// a real driver.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// `GL_MAX_TEXTURE_SIZE`.
    pub max_texture_size: u32,
    /// True when non-power-of-two texture dimensions are supported.
    pub npot_textures: bool,
    /// True when the device only accepts square textures (paper §5.3
    /// notes several OpenGL ES 2 implementations have this restriction).
    pub square_only: bool,
    /// `OES_texture_float`: float textures can be *sampled*.
    pub float_textures: bool,
    /// Float framebuffer attachments can be *rendered to*.
    pub float_render_targets: bool,
    /// Number of texture units available to the fragment stage.
    pub texture_units: u32,
}

impl DeviceProfile {
    /// The evaluation target: a VideoCore IV-class embedded GPU behind
    /// OpenGL ES 2.0 (paper §6).
    pub fn videocore_iv() -> Self {
        DeviceProfile {
            name: "VideoCore IV (OpenGL ES 2.0)".to_owned(),
            max_texture_size: 2048,
            npot_textures: false,
            square_only: false,
            float_textures: false,
            float_render_targets: false,
            texture_units: 8,
        }
    }

    /// The x86 reference platform's GPU: an AMD Mobility Radeon HD 3400
    /// class device (used through Brook+/CAL in the paper, so float
    /// storage is native and the texture limit is 4096).
    pub fn radeon_hd3400() -> Self {
        DeviceProfile {
            name: "AMD Mobility Radeon HD 3400 (CAL class)".to_owned(),
            max_texture_size: 4096,
            npot_textures: true,
            square_only: false,
            float_textures: true,
            float_render_targets: true,
            texture_units: 16,
        }
    }

    /// A deliberately restrictive profile (square, power-of-two only)
    /// used in tests for the transparent allocation handling of §5.3.
    pub fn square_pot_only() -> Self {
        DeviceProfile {
            name: "square power-of-two only".to_owned(),
            square_only: true,
            ..DeviceProfile::videocore_iv()
        }
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile::videocore_iv()
    }
}

/// Rounds up to the next power of two (for transparent allocation on
/// pow2-only devices).
pub fn next_pow2(v: u32) -> u32 {
    v.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_profile_limits() {
        let p = DeviceProfile::videocore_iv();
        assert_eq!(p.max_texture_size, 2048);
        assert!(!p.npot_textures);
        assert!(!p.float_textures);
        assert_eq!(p.texture_units, 8);
    }

    #[test]
    fn reference_profile_has_float() {
        let p = DeviceProfile::radeon_hd3400();
        assert!(p.float_textures);
        assert!(p.float_render_targets);
        assert_eq!(p.max_texture_size, 4096);
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(100), 128);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(0), 1);
    }
}
