//! # gles2-sim — a functional OpenGL ES 2.0 simulator
//!
//! The Brook Auto paper targets physical embedded GPUs (VideoCore IV)
//! through OpenGL ES 2.0. This substrate replaces the hardware+driver with
//! a from-scratch simulator that enforces the *API-level semantics* the
//! paper's certification argument and runtime design rely on:
//!
//! * textures with device-profile constraints — power-of-two and/or square
//!   dimensions, `GL_MAX_TEXTURE_SIZE` (2048 on the target), RGBA8-only
//!   storage without the float extension (paper §5.3, §5.4);
//! * `CLAMP_TO_EDGE` nearest sampling that never faults, no matter how far
//!   out of range the coordinates are (paper §4: "memory violations do not
//!   raise exceptions");
//! * a single color attachment (no MRT), full-screen-quad fragment
//!   dispatch with the `v_texcoord` varying — Brook's kernel invocation
//!   primitive;
//! * transfer and ALU/texture-fetch accounting feeding the `perf-model`
//!   crate, including *sampled dispatch* for large benchmark sweeps;
//! * an optional VRAM budget so Brook Auto's static memory accounting is
//!   enforceable at runtime (`GL_OUT_OF_MEMORY` instead of system death).
//!
//! ```
//! use gles2_sim::{DeviceProfile, DrawMode, Gl, TexFormat};
//! let mut gl = Gl::new(DeviceProfile::videocore_iv());
//! let out = gl.create_texture(16, 16, TexFormat::Rgba8)?;
//! let fbo = gl.create_framebuffer();
//! gl.attach_texture(fbo, out)?;
//! gl.bind_framebuffer(fbo)?;
//! gl.viewport(16, 16);
//! let prog = gl.create_program("void main() { gl_FragColor = vec4(0.5); }")?;
//! gl.use_program(prog)?;
//! let stats = gl.draw_fullscreen_quad(DrawMode::Full)?;
//! assert_eq!(stats.fragments, 256);
//! # Ok::<(), gles2_sim::GlError>(())
//! ```

pub mod context;
pub mod profile;
pub mod stats;
pub mod texture;

pub use context::{DrawMode, FramebufferId, Gl, GlError, ProgramId, TextureId};
pub use profile::{next_pow2, DeviceProfile};
pub use stats::{DrawStats, GlStats};
pub use texture::{TexFormat, Texture};

// Re-export the value type users need for uniforms.
pub use glsl_es::Value;
