//! Texture objects of the simulator.

/// Texel storage formats.
///
/// OpenGL ES 2.0 core only guarantees `RGBA8`; `RGBA32F` models the
/// `OES_texture_float` extension available on the desktop-class reference
/// platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TexFormat {
    /// Four 8-bit normalized channels — the only universally supported
    /// format, and the reason the numerical transformations of paper §5.4
    /// exist.
    Rgba8,
    /// Four 32-bit float channels (extension).
    Rgba32F,
    /// One 32-bit float channel (extension; what a CAL-class runtime
    /// uses for scalar streams — 4 bytes per element on the bus).
    R32F,
}

impl TexFormat {
    /// Bytes per texel.
    pub fn bytes_per_texel(&self) -> usize {
        match self {
            TexFormat::Rgba8 => 4,
            TexFormat::Rgba32F => 16,
            TexFormat::R32F => 4,
        }
    }
}

/// A 2D texture. Storage is always RGBA; `Rgba8` data is quantized on
/// upload exactly as a real GL implementation would.
#[derive(Debug, Clone)]
pub struct Texture {
    width: u32,
    height: u32,
    format: TexFormat,
    /// Row-major RGBA texels. For `Rgba8` each channel holds a value that
    /// is exactly representable as `n/255`.
    data: Vec<[f32; 4]>,
}

impl Texture {
    /// Creates a texture filled with transparent black.
    pub fn new(width: u32, height: u32, format: TexFormat) -> Self {
        Texture {
            width,
            height,
            format,
            data: vec![[0.0; 4]; (width * height) as usize],
        }
    }

    /// Texture width in texels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Texture height in texels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Storage format.
    pub fn format(&self) -> TexFormat {
        self.format
    }

    /// Size of the backing store in bytes.
    pub fn byte_size(&self) -> usize {
        self.data.len() * self.format.bytes_per_texel()
    }

    fn quantize(format: TexFormat, texel: [f32; 4]) -> [f32; 4] {
        match format {
            TexFormat::Rgba32F => texel,
            // Single-channel float: stores .x, samples as (v, 0, 0, 1).
            TexFormat::R32F => [texel[0], 0.0, 0.0, 1.0],
            TexFormat::Rgba8 => {
                let mut out = [0.0f32; 4];
                for (o, c) in out.iter_mut().zip(texel) {
                    let q = (c.clamp(0.0, 1.0) * 255.0).round() as u32;
                    *o = q as f32 / 255.0;
                }
                out
            }
        }
    }

    /// Uploads a full image (`glTexImage2D`). `texels` is row-major RGBA.
    ///
    /// # Panics
    /// Panics if `texels.len() != width * height`; the GL front-end
    /// validates sizes before calling.
    pub fn upload(&mut self, texels: &[[f32; 4]]) {
        assert_eq!(texels.len(), self.data.len(), "upload size mismatch");
        for (dst, src) in self.data.iter_mut().zip(texels) {
            *dst = Self::quantize(self.format, *src);
        }
    }

    /// Uploads a sub-rectangle (`glTexSubImage2D`).
    ///
    /// # Panics
    /// Panics when the rectangle falls outside the texture; the GL
    /// front-end validates this and raises `GL_INVALID_VALUE` instead.
    pub fn upload_sub(&mut self, x: u32, y: u32, w: u32, h: u32, texels: &[[f32; 4]]) {
        assert!(
            x + w <= self.width && y + h <= self.height,
            "sub-upload out of range"
        );
        assert_eq!(texels.len(), (w * h) as usize);
        for row in 0..h {
            for col in 0..w {
                let dst = ((y + row) * self.width + x + col) as usize;
                self.data[dst] = Self::quantize(self.format, texels[(row * w + col) as usize]);
            }
        }
    }

    /// Writes one texel (used by the rasterizer).
    pub fn write_texel(&mut self, x: u32, y: u32, texel: [f32; 4]) {
        let idx = (y * self.width + x) as usize;
        self.data[idx] = Self::quantize(self.format, texel);
    }

    /// Reads one texel by integer coordinates (no sampling).
    pub fn texel(&self, x: u32, y: u32) -> [f32; 4] {
        self.data[(y * self.width + x) as usize]
    }

    /// Nearest-neighbour sample with `CLAMP_TO_EDGE` wrap — the key
    /// availability property (paper §4): coordinates outside `[0, 1]`
    /// clamp to the border texel, they never fault.
    pub fn sample_nearest_clamped(&self, u: f32, v: f32) -> [f32; 4] {
        // NaN coordinates clamp to zero as well: total robustness.
        let u = if u.is_nan() { 0.0 } else { u };
        let v = if v.is_nan() { 0.0 } else { v };
        let x = ((u * self.width as f32).floor() as i64).clamp(0, self.width as i64 - 1) as u32;
        let y = ((v * self.height as f32).floor() as i64).clamp(0, self.height as i64 - 1) as u32;
        self.texel(x, y)
    }

    /// Full contents, row-major RGBA (used by `glReadPixels`).
    pub fn pixels(&self) -> &[[f32; 4]] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgba8_quantizes_on_upload() {
        let mut t = Texture::new(1, 1, TexFormat::Rgba8);
        t.upload(&[[0.5, 0.001, 1.5, -0.2]]);
        let p = t.texel(0, 0);
        assert_eq!(p[0], 128.0 / 255.0);
        assert_eq!(p[1], 0.0);
        assert_eq!(p[2], 1.0); // clamped
        assert_eq!(p[3], 0.0); // clamped
    }

    #[test]
    fn float_format_is_exact() {
        let mut t = Texture::new(1, 1, TexFormat::Rgba32F);
        t.upload(&[[3.25, -7.5, 1e10, 0.1]]);
        assert_eq!(t.texel(0, 0), [3.25, -7.5, 1e10, 0.1]);
    }

    #[test]
    fn clamp_to_edge_never_faults() {
        let mut t = Texture::new(2, 2, TexFormat::Rgba32F);
        t.upload(&[[1.0; 4], [2.0; 4], [3.0; 4], [4.0; 4]]);
        // Way out of range: clamps to corners.
        assert_eq!(t.sample_nearest_clamped(-100.0, -100.0), [1.0; 4]);
        assert_eq!(t.sample_nearest_clamped(100.0, 100.0), [4.0; 4]);
        assert_eq!(t.sample_nearest_clamped(f32::NAN, 0.0), [1.0; 4]);
        assert_eq!(t.sample_nearest_clamped(f32::INFINITY, 0.0), [2.0; 4]);
    }

    #[test]
    fn nearest_sampling_hits_texel_centers() {
        let mut t = Texture::new(2, 1, TexFormat::Rgba32F);
        t.upload(&[[10.0; 4], [20.0; 4]]);
        assert_eq!(t.sample_nearest_clamped(0.25, 0.5), [10.0; 4]);
        assert_eq!(t.sample_nearest_clamped(0.75, 0.5), [20.0; 4]);
    }

    #[test]
    fn sub_upload() {
        let mut t = Texture::new(4, 4, TexFormat::Rgba32F);
        t.upload_sub(1, 2, 2, 1, &[[5.0; 4], [6.0; 4]]);
        assert_eq!(t.texel(1, 2), [5.0; 4]);
        assert_eq!(t.texel(2, 2), [6.0; 4]);
        assert_eq!(t.texel(0, 0), [0.0; 4]);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Texture::new(16, 16, TexFormat::Rgba8).byte_size(), 1024);
        assert_eq!(Texture::new(16, 16, TexFormat::Rgba32F).byte_size(), 4096);
    }
}
