//! The OpenGL ES 2.0 context state machine: textures, programs,
//! framebuffers, uniforms, draws and readback.
//!
//! The API mirrors the GL entry points a GPGPU runtime uses, in Rust
//! idiom (`Result` instead of `glGetError` polling, though the error
//! *categories* match GL's). Fragment dispatch executes the bound
//! program's fragment shader for every pixel of the viewport over a
//! full-screen quad — precisely how Brook's OpenGL backends invoke
//! kernels.

use crate::profile::DeviceProfile;
use crate::stats::{DrawStats, GlStats};
use crate::texture::{TexFormat, Texture};
use glsl_es::{ExecError, FragmentEnv, Shader, ShaderError, Value};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Handle to a texture object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TextureId(u32);

/// Handle to a linked program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgramId(u32);

/// Handle to a framebuffer object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FramebufferId(u32);

/// GL-style error categories.
#[derive(Debug, Clone, PartialEq)]
pub enum GlError {
    /// `GL_INVALID_VALUE`: numeric argument out of range (texture too
    /// large, non-power-of-two on a pow2-only device, ...).
    InvalidValue(String),
    /// `GL_INVALID_OPERATION`: operation illegal in the current state.
    InvalidOperation(String),
    /// Shader compilation/link failure (`glGetShaderInfoLog` analogue).
    Compile(ShaderError),
    /// Fragment execution failure (would be undefined behaviour on real
    /// hardware; the simulator reports it deterministically).
    Exec(ExecError),
    /// `GL_OUT_OF_MEMORY`: the configured VRAM budget was exceeded.
    OutOfMemory(String),
    /// `GL_CONTEXT_LOST` (`EXT_robustness` analogue): the device was
    /// lost; every transfer and draw fails until the context is
    /// restored. A transient loss clears on
    /// [`Gl::restore_context`]; a persistent one requires the runtime
    /// to fail over to another backend.
    ContextLost(String),
}

impl fmt::Display for GlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlError::InvalidValue(m) => write!(f, "GL_INVALID_VALUE: {m}"),
            GlError::InvalidOperation(m) => write!(f, "GL_INVALID_OPERATION: {m}"),
            GlError::Compile(e) => write!(f, "shader compile error: {e}"),
            GlError::Exec(e) => write!(f, "fragment execution error: {e}"),
            GlError::OutOfMemory(m) => write!(f, "GL_OUT_OF_MEMORY: {m}"),
            GlError::ContextLost(m) => write!(f, "GL_CONTEXT_LOST: {m}"),
        }
    }
}

impl Error for GlError {}

impl From<ShaderError> for GlError {
    fn from(e: ShaderError) -> Self {
        GlError::Compile(e)
    }
}

impl From<ExecError> for GlError {
    fn from(e: ExecError) -> Self {
        GlError::Exec(e)
    }
}

struct Program {
    shader: Shader,
    uniform_values: Vec<Value>,
}

/// How a draw executes fragments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrawMode {
    /// Execute every fragment (functional result + exact cost).
    Full,
    /// Execute a strided sample of fragments and extrapolate cost; the
    /// untouched fragments keep their previous contents. Used by the
    /// benchmark harness for large sweeps (DESIGN.md §5).
    Sampled {
        /// Execute every `stride`-th fragment in x and y.
        stride: u32,
    },
}

/// The simulated GL context.
pub struct Gl {
    profile: DeviceProfile,
    textures: HashMap<u32, Texture>,
    programs: HashMap<u32, Program>,
    framebuffers: HashMap<u32, Option<TextureId>>,
    bound_units: Vec<Option<TextureId>>,
    current_program: Option<ProgramId>,
    bound_framebuffer: Option<FramebufferId>,
    viewport: (u32, u32),
    next_id: u32,
    vram_budget: Option<usize>,
    vram_used: usize,
    vram_peak: usize,
    stats: GlStats,
    context_lost: bool,
}

impl Gl {
    /// Creates a context for the given device profile.
    pub fn new(profile: DeviceProfile) -> Self {
        let units = profile.texture_units as usize;
        Gl {
            profile,
            textures: HashMap::new(),
            programs: HashMap::new(),
            framebuffers: HashMap::new(),
            bound_units: vec![None; units],
            current_program: None,
            bound_framebuffer: None,
            viewport: (0, 0),
            next_id: 1,
            vram_budget: None,
            vram_used: 0,
            vram_peak: 0,
            stats: GlStats::default(),
            context_lost: false,
        }
    }

    /// Marks the context lost (the `EXT_robustness` reset analogue):
    /// every allocation, transfer and draw fails with
    /// [`GlError::ContextLost`] until [`restore_context`] is called.
    /// Already-resident texture contents survive a restore — the
    /// simulator models a driver reset, not VRAM decay — so a runtime
    /// that restores the context may keep its streams.
    ///
    /// [`restore_context`]: Gl::restore_context
    pub fn lose_context(&mut self) {
        self.context_lost = true;
    }

    /// Clears a context loss, making the device usable again.
    pub fn restore_context(&mut self) {
        self.context_lost = false;
    }

    /// Whether the context is currently lost.
    pub fn is_context_lost(&self) -> bool {
        self.context_lost
    }

    fn check_context(&self, op: &str) -> Result<(), GlError> {
        if self.context_lost {
            Err(GlError::ContextLost(format!("{op} on a lost context")))
        } else {
            Ok(())
        }
    }

    /// The device profile this context enforces.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Accumulated transfer/draw statistics.
    pub fn stats(&self) -> &GlStats {
        &self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = GlStats::default();
    }

    /// Installs a VRAM budget in bytes; allocations beyond it fail with
    /// `GL_OUT_OF_MEMORY`. Brook Auto's static memory accounting (BA002)
    /// uses this to prove a configuration fits the device.
    pub fn set_vram_budget(&mut self, bytes: Option<usize>) {
        self.vram_budget = bytes;
    }

    /// Bytes of texture memory currently allocated.
    pub fn vram_used(&self) -> usize {
        self.vram_used
    }

    /// High-water mark of texture memory over the context's lifetime —
    /// the number a static memory plan (BA002) must upper-bound.
    pub fn vram_peak(&self) -> usize {
        self.vram_peak
    }

    fn fresh_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    // ---- textures -----------------------------------------------------

    /// Validates texture dimensions against the device profile.
    fn validate_dims(&self, w: u32, h: u32) -> Result<(), GlError> {
        if w == 0 || h == 0 {
            return Err(GlError::InvalidValue("zero texture dimension".into()));
        }
        if w > self.profile.max_texture_size || h > self.profile.max_texture_size {
            return Err(GlError::InvalidValue(format!(
                "texture {w}x{h} exceeds GL_MAX_TEXTURE_SIZE {}",
                self.profile.max_texture_size
            )));
        }
        if !self.profile.npot_textures && (!w.is_power_of_two() || !h.is_power_of_two()) {
            return Err(GlError::InvalidValue(format!(
                "device requires power-of-two textures, got {w}x{h}"
            )));
        }
        if self.profile.square_only && w != h {
            return Err(GlError::InvalidValue(format!(
                "device requires square textures, got {w}x{h}"
            )));
        }
        Ok(())
    }

    /// Allocates a texture (`glGenTextures` + `glTexImage2D` with null
    /// data).
    ///
    /// # Errors
    /// `InvalidValue` when the dimensions violate the profile,
    /// `InvalidOperation` for float formats without the extension,
    /// `OutOfMemory` when a VRAM budget is exceeded.
    pub fn create_texture(&mut self, w: u32, h: u32, format: TexFormat) -> Result<TextureId, GlError> {
        self.check_context("glTexImage2D allocation")?;
        self.validate_dims(w, h)?;
        if format != TexFormat::Rgba8 && !self.profile.float_textures {
            return Err(GlError::InvalidOperation(
                "float textures require OES_texture_float, which this device lacks".into(),
            ));
        }
        let tex = Texture::new(w, h, format);
        let size = tex.byte_size();
        if let Some(budget) = self.vram_budget {
            if self.vram_used + size > budget {
                return Err(GlError::OutOfMemory(format!(
                    "allocation of {size} B exceeds budget ({} used of {budget})",
                    self.vram_used
                )));
            }
        }
        self.vram_used += size;
        self.vram_peak = self.vram_peak.max(self.vram_used);
        let id = self.fresh_id();
        self.textures.insert(id, tex);
        Ok(TextureId(id))
    }

    /// Frees a texture (`glDeleteTextures`).
    pub fn delete_texture(&mut self, id: TextureId) {
        if let Some(t) = self.textures.remove(&id.0) {
            self.vram_used -= t.byte_size();
        }
        for unit in &mut self.bound_units {
            if *unit == Some(id) {
                *unit = None;
            }
        }
        for fb in self.framebuffers.values_mut() {
            if *fb == Some(id) {
                *fb = None;
            }
        }
    }

    /// Texture dimensions.
    pub fn texture_size(&self, id: TextureId) -> Option<(u32, u32)> {
        self.textures.get(&id.0).map(|t| (t.width(), t.height()))
    }

    /// Uploads full texture contents (`glTexImage2D`), counting transfer
    /// bytes.
    ///
    /// # Errors
    /// `InvalidValue` if `texels` does not match the texture size or the
    /// texture does not exist.
    pub fn upload_texture(&mut self, id: TextureId, texels: &[[f32; 4]]) -> Result<(), GlError> {
        self.check_context("glTexImage2D")?;
        let tex = self
            .textures
            .get_mut(&id.0)
            .ok_or_else(|| GlError::InvalidValue("unknown texture".into()))?;
        if texels.len() != (tex.width() * tex.height()) as usize {
            return Err(GlError::InvalidValue(format!(
                "upload of {} texels into {}x{} texture",
                texels.len(),
                tex.width(),
                tex.height()
            )));
        }
        tex.upload(texels);
        self.stats.bytes_uploaded += tex.byte_size() as u64;
        Ok(())
    }

    /// Uploads a sub-rectangle (`glTexSubImage2D`).
    ///
    /// # Errors
    /// `InvalidValue` when the rectangle falls outside the texture.
    pub fn upload_texture_sub(
        &mut self,
        id: TextureId,
        x: u32,
        y: u32,
        w: u32,
        h: u32,
        texels: &[[f32; 4]],
    ) -> Result<(), GlError> {
        self.check_context("glTexSubImage2D")?;
        let tex = self
            .textures
            .get_mut(&id.0)
            .ok_or_else(|| GlError::InvalidValue("unknown texture".into()))?;
        if x + w > tex.width() || y + h > tex.height() || texels.len() != (w * h) as usize {
            return Err(GlError::InvalidValue("sub-upload rectangle out of range".into()));
        }
        tex.upload_sub(x, y, w, h, texels);
        self.stats.bytes_uploaded += (texels.len() * tex.format().bytes_per_texel()) as u64;
        Ok(())
    }

    /// Binds a texture to a unit (`glActiveTexture` + `glBindTexture`).
    ///
    /// # Errors
    /// `InvalidValue` for an out-of-range unit or unknown texture.
    pub fn bind_texture(&mut self, unit: u32, id: TextureId) -> Result<(), GlError> {
        if unit as usize >= self.bound_units.len() {
            return Err(GlError::InvalidValue(format!(
                "texture unit {unit} out of range (device has {})",
                self.bound_units.len()
            )));
        }
        if !self.textures.contains_key(&id.0) {
            return Err(GlError::InvalidValue("unknown texture".into()));
        }
        self.bound_units[unit as usize] = Some(id);
        Ok(())
    }

    // ---- programs -----------------------------------------------------

    /// Compiles and links a fragment shader into a program
    /// (`glCreateShader`/`glCompileShader`/`glLinkProgram` in one step;
    /// the vertex stage is the fixed full-screen-quad passthrough).
    ///
    /// # Errors
    /// `Compile` with the shader diagnostic on malformed GLSL.
    pub fn create_program(&mut self, fragment_src: &str) -> Result<ProgramId, GlError> {
        self.check_context("glLinkProgram")?;
        let shader = glsl_es::compile(fragment_src)?;
        for (name, _) in &shader.varyings {
            if name != "v_texcoord" {
                return Err(GlError::Compile(ShaderError::Resolve {
                    message: format!(
                        "varying `{name}` is not provided by the GPGPU vertex stage \
                         (only `v_texcoord` is interpolated)"
                    ),
                }));
            }
        }
        let uniform_values = shader.uniforms.iter().map(|u| Value::zero(u.ty)).collect();
        let id = self.fresh_id();
        self.programs.insert(
            id,
            Program {
                shader,
                uniform_values,
            },
        );
        self.stats.programs_linked += 1;
        Ok(ProgramId(id))
    }

    /// Deletes a program.
    pub fn delete_program(&mut self, id: ProgramId) {
        self.programs.remove(&id.0);
        if self.current_program == Some(id) {
            self.current_program = None;
        }
    }

    /// Makes a program current (`glUseProgram`).
    ///
    /// # Errors
    /// `InvalidValue` for an unknown program.
    pub fn use_program(&mut self, id: ProgramId) -> Result<(), GlError> {
        if !self.programs.contains_key(&id.0) {
            return Err(GlError::InvalidValue("unknown program".into()));
        }
        self.current_program = Some(id);
        Ok(())
    }

    /// Sets a uniform on a program by name (`glGetUniformLocation` +
    /// `glUniform*`).
    ///
    /// # Errors
    /// `InvalidOperation` when the uniform does not exist or the value
    /// type does not match the declaration.
    pub fn set_uniform(&mut self, id: ProgramId, name: &str, value: Value) -> Result<(), GlError> {
        let program = self
            .programs
            .get_mut(&id.0)
            .ok_or_else(|| GlError::InvalidValue("unknown program".into()))?;
        let idx = program
            .shader
            .uniform_index(name)
            .ok_or_else(|| GlError::InvalidOperation(format!("no active uniform `{name}`")))?;
        let declared = program.shader.uniforms[idx].ty;
        let ok = match declared {
            glsl_es::GlslType::Sampler2D => value.as_int().is_some(),
            t => value.glsl_type() == t,
        };
        if !ok {
            return Err(GlError::InvalidOperation(format!(
                "uniform `{name}` is declared {declared} but a {} was provided",
                value.glsl_type()
            )));
        }
        program.uniform_values[idx] = value;
        Ok(())
    }

    /// Names and types of a program's active uniforms.
    pub fn active_uniforms(&self, id: ProgramId) -> Option<&[glsl_es::UniformInfo]> {
        self.programs.get(&id.0).map(|p| p.shader.uniforms.as_slice())
    }

    // ---- framebuffers ---------------------------------------------------

    /// Creates a framebuffer object.
    pub fn create_framebuffer(&mut self) -> FramebufferId {
        let id = self.fresh_id();
        self.framebuffers.insert(id, None);
        FramebufferId(id)
    }

    /// Attaches a texture as the FBO's color attachment
    /// (`glFramebufferTexture2D`).
    ///
    /// # Errors
    /// `InvalidOperation` when rendering to float textures without the
    /// extension, `InvalidValue` for unknown objects.
    pub fn attach_texture(&mut self, fbo: FramebufferId, tex: TextureId) -> Result<(), GlError> {
        let texture = self
            .textures
            .get(&tex.0)
            .ok_or_else(|| GlError::InvalidValue("unknown texture".into()))?;
        if texture.format() != TexFormat::Rgba8 && !self.profile.float_render_targets {
            return Err(GlError::InvalidOperation(
                "device cannot render to float textures".into(),
            ));
        }
        let slot = self
            .framebuffers
            .get_mut(&fbo.0)
            .ok_or_else(|| GlError::InvalidValue("unknown framebuffer".into()))?;
        *slot = Some(tex);
        Ok(())
    }

    /// Binds a framebuffer as the render target (`glBindFramebuffer`).
    ///
    /// # Errors
    /// `InvalidValue` for an unknown framebuffer.
    pub fn bind_framebuffer(&mut self, fbo: FramebufferId) -> Result<(), GlError> {
        if !self.framebuffers.contains_key(&fbo.0) {
            return Err(GlError::InvalidValue("unknown framebuffer".into()));
        }
        self.bound_framebuffer = Some(fbo);
        Ok(())
    }

    /// Sets the viewport (`glViewport`, origin fixed at 0,0).
    pub fn viewport(&mut self, w: u32, h: u32) {
        self.viewport = (w, h);
    }

    // ---- drawing --------------------------------------------------------

    /// Renders a full-screen quad with the current program into the bound
    /// framebuffer: the GPGPU dispatch primitive. Each viewport pixel
    /// becomes one fragment; `v_texcoord` interpolates over pixel centers.
    ///
    /// # Errors
    /// `InvalidOperation` when no program/FBO is bound, the FBO has no
    /// attachment, the viewport exceeds it, or a sampler reads the texture
    /// being rendered (feedback loop); `Exec` when the shader faults.
    pub fn draw_fullscreen_quad(&mut self, mode: DrawMode) -> Result<DrawStats, GlError> {
        self.check_context("glDrawArrays")?;
        let program_id = self
            .current_program
            .ok_or_else(|| GlError::InvalidOperation("no program bound".into()))?;
        let fbo = self
            .bound_framebuffer
            .ok_or_else(|| GlError::InvalidOperation("no framebuffer bound".into()))?;
        let target_id = self.framebuffers[&fbo.0]
            .ok_or_else(|| GlError::InvalidOperation("framebuffer has no color attachment".into()))?;
        let (vw, vh) = self.viewport;
        if vw == 0 || vh == 0 {
            return Err(GlError::InvalidOperation("viewport is empty".into()));
        }
        {
            let target = &self.textures[&target_id.0];
            if vw > target.width() || vh > target.height() {
                return Err(GlError::InvalidOperation(format!(
                    "viewport {vw}x{vh} exceeds attachment {}x{}",
                    target.width(),
                    target.height()
                )));
            }
        }
        // Rendering feedback loops are undefined behaviour in GL; the
        // simulator rejects them deterministically (Brook's ping-pong
        // reduction textures exist precisely to avoid this).
        for unit in self.bound_units.iter().flatten() {
            if *unit == target_id {
                return Err(GlError::InvalidOperation(
                    "texture is bound for sampling while attached to the render target \
                     (feedback loop)"
                        .into(),
                ));
            }
        }
        let program = &self.programs[&program_id.0];
        let shader = &program.shader;
        // Snapshot sampled textures (cheap: clones only descriptors via
        // borrow discipline — we index the map immutably during the draw).
        let bound_units = self.bound_units.clone();
        let textures = &self.textures;
        let sample = move |unit: i32, u: f32, v: f32| -> [f32; 4] {
            let Some(Some(tid)) = bound_units.get(unit as usize) else {
                // Sampling an unbound unit returns opaque black, as GL does.
                return [0.0, 0.0, 0.0, 1.0];
            };
            match textures.get(&tid.0) {
                Some(t) => t.sample_nearest_clamped(u, v),
                None => [0.0, 0.0, 0.0, 1.0],
            }
        };
        let needs_texcoord = shader.varying_index("v_texcoord").is_some();
        let stride = match mode {
            DrawMode::Full => 1,
            DrawMode::Sampled { stride } => stride.max(1),
        };
        let mut cost = glsl_es::Cost::default();
        let mut executed: u64 = 0;
        let mut outputs: Vec<(u32, u32, [f32; 4])> = Vec::new();
        for y in (0..vh).step_by(stride as usize) {
            for x in (0..vw).step_by(stride as usize) {
                let tc = Value::Vec2([(x as f32 + 0.5) / vw as f32, (y as f32 + 0.5) / vh as f32]);
                let varyings: &[Value] = if needs_texcoord {
                    std::slice::from_ref(&tc)
                } else {
                    &[]
                };
                let env = FragmentEnv {
                    uniforms: &program.uniform_values,
                    varyings,
                    sample: &sample,
                };
                let (color, c) = glsl_es::run_fragment(shader, &env)?;
                cost = cost.add(&c);
                executed += 1;
                outputs.push((x, y, color));
            }
        }
        let total_fragments = (vw as u64) * (vh as u64);
        let scale = total_fragments as f64 / executed.max(1) as f64;
        let target = self.textures.get_mut(&target_id.0).expect("validated above");
        for (x, y, color) in outputs {
            target.write_texel(x, y, color);
        }
        let stats = DrawStats {
            fragments: total_fragments,
            fragments_executed: executed,
            alu: (cost.alu as f64 * scale) as u64,
            tex_fetches: (cost.tex as f64 * scale) as u64,
            branches: (cost.branch as f64 * scale) as u64,
            estimated: stride > 1,
        };
        self.stats.draw_calls += 1;
        self.stats.fragments_shaded += executed;
        self.stats.alu_ops += stats.alu;
        self.stats.tex_fetches += stats.tex_fetches;
        Ok(stats)
    }

    /// Reads back the bound framebuffer's attachment (`glReadPixels`),
    /// counting download bytes.
    ///
    /// # Errors
    /// `InvalidOperation` when no complete framebuffer is bound.
    pub fn read_pixels(&mut self) -> Result<Vec<[f32; 4]>, GlError> {
        self.check_context("glReadPixels")?;
        let fbo = self
            .bound_framebuffer
            .ok_or_else(|| GlError::InvalidOperation("no framebuffer bound".into()))?;
        let target = self.framebuffers[&fbo.0]
            .ok_or_else(|| GlError::InvalidOperation("framebuffer has no color attachment".into()))?;
        let tex = &self.textures[&target.0];
        self.stats.bytes_downloaded += tex.byte_size() as u64;
        Ok(tex.pixels().to_vec())
    }

    /// Reads back a sub-rectangle of the bound framebuffer's attachment
    /// (`glReadPixels` with a region), counting only the region's bytes.
    ///
    /// # Errors
    /// `InvalidOperation` without a complete framebuffer; `InvalidValue`
    /// when the rectangle falls outside the attachment.
    pub fn read_pixels_region(&mut self, x: u32, y: u32, w: u32, h: u32) -> Result<Vec<[f32; 4]>, GlError> {
        self.check_context("glReadPixels")?;
        let fbo = self
            .bound_framebuffer
            .ok_or_else(|| GlError::InvalidOperation("no framebuffer bound".into()))?;
        let target = self.framebuffers[&fbo.0]
            .ok_or_else(|| GlError::InvalidOperation("framebuffer has no color attachment".into()))?;
        let tex = &self.textures[&target.0];
        if x + w > tex.width() || y + h > tex.height() {
            return Err(GlError::InvalidValue("read region out of range".into()));
        }
        let mut out = Vec::with_capacity((w * h) as usize);
        for row in y..y + h {
            for col in x..x + w {
                out.push(tex.texel(col, row));
            }
        }
        self.stats.bytes_downloaded += (out.len() * tex.format().bytes_per_texel()) as u64;
        Ok(out)
    }

    /// Direct texel read for tests and validation (not part of GL; does
    /// not count as a transfer).
    pub fn debug_texel(&self, id: TextureId, x: u32, y: u32) -> Option<[f32; 4]> {
        self.textures.get(&id.0).map(|t| t.texel(x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn gl() -> Gl {
        Gl::new(DeviceProfile::videocore_iv())
    }

    fn draw_with(gl: &mut Gl, src: &str, w: u32, h: u32) -> (TextureId, DrawStats) {
        let out = gl.create_texture(w, h, TexFormat::Rgba8).unwrap();
        let fbo = gl.create_framebuffer();
        gl.attach_texture(fbo, out).unwrap();
        gl.bind_framebuffer(fbo).unwrap();
        gl.viewport(w, h);
        let prog = gl.create_program(src).unwrap();
        gl.use_program(prog).unwrap();
        let stats = gl.draw_fullscreen_quad(DrawMode::Full).unwrap();
        (out, stats)
    }

    #[test]
    fn constant_shader_fills_target() {
        let mut gl = gl();
        let (out, stats) = draw_with(
            &mut gl,
            "void main() { gl_FragColor = vec4(1.0, 0.0, 0.0, 1.0); }",
            4,
            4,
        );
        assert_eq!(stats.fragments, 16);
        assert_eq!(gl.debug_texel(out, 3, 3).unwrap(), [1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn texcoord_varies_over_pixels() {
        let mut gl = gl();
        let (out, _) = draw_with(
            &mut gl,
            "varying vec2 v_texcoord; void main() { gl_FragColor = vec4(v_texcoord, 0.0, 1.0); }",
            4,
            4,
        );
        let p00 = gl.debug_texel(out, 0, 0).unwrap();
        let p30 = gl.debug_texel(out, 3, 0).unwrap();
        assert!(p00[0] < p30[0], "u must increase along x");
        // Pixel centers: (0.5/4, ...) = 0.125 quantized to 8 bits.
        assert!((p00[0] - 0.125).abs() < 0.01);
    }

    #[test]
    fn pow2_constraint_enforced() {
        let mut gl = gl();
        let err = gl.create_texture(100, 100, TexFormat::Rgba8).unwrap_err();
        assert!(matches!(err, GlError::InvalidValue(_)));
        assert!(gl.create_texture(128, 128, TexFormat::Rgba8).is_ok());
    }

    #[test]
    fn max_size_enforced() {
        let mut gl = gl();
        assert!(gl.create_texture(4096, 4096, TexFormat::Rgba8).is_err());
        assert!(gl.create_texture(2048, 2048, TexFormat::Rgba8).is_ok());
    }

    #[test]
    fn square_only_profile() {
        let mut gl = Gl::new(DeviceProfile::square_pot_only());
        assert!(gl.create_texture(128, 64, TexFormat::Rgba8).is_err());
        assert!(gl.create_texture(64, 64, TexFormat::Rgba8).is_ok());
    }

    #[test]
    fn float_textures_rejected_on_target() {
        let mut gl = gl();
        assert!(gl.create_texture(64, 64, TexFormat::Rgba32F).is_err());
        let mut ref_gl = Gl::new(DeviceProfile::radeon_hd3400());
        assert!(ref_gl.create_texture(64, 64, TexFormat::Rgba32F).is_ok());
    }

    #[test]
    fn sampling_reads_bound_texture() {
        let mut gl = gl();
        let src_tex = gl.create_texture(2, 2, TexFormat::Rgba8).unwrap();
        gl.upload_texture(
            src_tex,
            &[
                [1.0, 0.0, 0.0, 1.0],
                [0.0, 1.0, 0.0, 1.0],
                [0.0, 0.0, 1.0, 1.0],
                [1.0, 1.0, 1.0, 1.0],
            ],
        )
        .unwrap();
        gl.bind_texture(0, src_tex).unwrap();
        let out = gl.create_texture(2, 2, TexFormat::Rgba8).unwrap();
        let fbo = gl.create_framebuffer();
        gl.attach_texture(fbo, out).unwrap();
        gl.bind_framebuffer(fbo).unwrap();
        gl.viewport(2, 2);
        let prog = gl
            .create_program(
                "uniform sampler2D t; varying vec2 v_texcoord;
                 void main() { gl_FragColor = texture2D(t, v_texcoord); }",
            )
            .unwrap();
        gl.use_program(prog).unwrap();
        gl.set_uniform(prog, "t", Value::Int(0)).unwrap();
        gl.draw_fullscreen_quad(DrawMode::Full).unwrap();
        assert_eq!(gl.debug_texel(out, 0, 0).unwrap(), [1.0, 0.0, 0.0, 1.0]);
        assert_eq!(gl.debug_texel(out, 1, 1).unwrap(), [1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn feedback_loop_rejected() {
        let mut gl = gl();
        let tex = gl.create_texture(2, 2, TexFormat::Rgba8).unwrap();
        gl.bind_texture(0, tex).unwrap();
        let fbo = gl.create_framebuffer();
        gl.attach_texture(fbo, tex).unwrap();
        gl.bind_framebuffer(fbo).unwrap();
        gl.viewport(2, 2);
        let prog = gl
            .create_program("uniform sampler2D t; void main() { gl_FragColor = texture2D(t, vec2(0.0)); }")
            .unwrap();
        gl.use_program(prog).unwrap();
        gl.set_uniform(prog, "t", Value::Int(0)).unwrap();
        let err = gl.draw_fullscreen_quad(DrawMode::Full).unwrap_err();
        assert!(matches!(err, GlError::InvalidOperation(m) if m.contains("feedback")));
    }

    #[test]
    fn uniform_type_checked() {
        let mut gl = gl();
        let prog = gl
            .create_program("uniform vec2 d; void main() { gl_FragColor = vec4(d, 0.0, 1.0); }")
            .unwrap();
        assert!(gl.set_uniform(prog, "d", Value::Float(1.0)).is_err());
        assert!(gl.set_uniform(prog, "d", Value::Vec2([1.0, 2.0])).is_ok());
        assert!(gl.set_uniform(prog, "nope", Value::Float(0.0)).is_err());
    }

    #[test]
    fn unknown_varying_rejected_at_link() {
        let mut gl = gl();
        let err = gl
            .create_program("varying vec3 v_normal; void main() { gl_FragColor = vec4(v_normal, 1.0); }")
            .unwrap_err();
        assert!(matches!(err, GlError::Compile(_)));
    }

    #[test]
    fn vram_budget_enforced() {
        let mut gl = gl();
        gl.set_vram_budget(Some(5000));
        let t1 = gl.create_texture(32, 32, TexFormat::Rgba8).unwrap(); // 4096 B
        assert!(gl.create_texture(32, 32, TexFormat::Rgba8).is_err()); // would exceed
        gl.delete_texture(t1);
        assert!(gl.create_texture(32, 32, TexFormat::Rgba8).is_ok());
    }

    #[test]
    fn transfer_stats_counted() {
        let mut gl = gl();
        let tex = gl.create_texture(4, 4, TexFormat::Rgba8).unwrap();
        gl.upload_texture(tex, &[[0.0; 4]; 16]).unwrap();
        assert_eq!(gl.stats().bytes_uploaded, 64);
        let fbo = gl.create_framebuffer();
        gl.attach_texture(fbo, tex).unwrap();
        gl.bind_framebuffer(fbo).unwrap();
        let px = gl.read_pixels().unwrap();
        assert_eq!(px.len(), 16);
        assert_eq!(gl.stats().bytes_downloaded, 64);
    }

    #[test]
    fn sampled_draw_extrapolates_cost() {
        let mut gl = gl();
        let out = gl.create_texture(64, 64, TexFormat::Rgba8).unwrap();
        let fbo = gl.create_framebuffer();
        gl.attach_texture(fbo, out).unwrap();
        gl.bind_framebuffer(fbo).unwrap();
        gl.viewport(64, 64);
        let prog = gl
            .create_program("void main() { gl_FragColor = vec4(0.5); }")
            .unwrap();
        gl.use_program(prog).unwrap();
        let full = gl.draw_fullscreen_quad(DrawMode::Full).unwrap();
        let sampled = gl.draw_fullscreen_quad(DrawMode::Sampled { stride: 8 }).unwrap();
        assert!(!full.estimated);
        assert!(sampled.estimated);
        assert_eq!(sampled.fragments, full.fragments);
        assert_eq!(sampled.fragments_executed, 64);
        // Extrapolated ALU should be close to the full count.
        let ratio = sampled.alu as f64 / full.alu as f64;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn draw_without_program_or_fbo_fails() {
        let mut gl = gl();
        assert!(matches!(
            gl.draw_fullscreen_quad(DrawMode::Full),
            Err(GlError::InvalidOperation(_))
        ));
    }

    #[test]
    fn viewport_larger_than_attachment_rejected() {
        let mut gl = gl();
        let out = gl.create_texture(4, 4, TexFormat::Rgba8).unwrap();
        let fbo = gl.create_framebuffer();
        gl.attach_texture(fbo, out).unwrap();
        gl.bind_framebuffer(fbo).unwrap();
        gl.viewport(8, 8);
        let prog = gl
            .create_program("void main() { gl_FragColor = vec4(1.0); }")
            .unwrap();
        gl.use_program(prog).unwrap();
        assert!(gl.draw_fullscreen_quad(DrawMode::Full).is_err());
    }

    #[test]
    fn out_of_bounds_sampling_clamps_no_crash() {
        // The certification-critical property: a kernel that computes wild
        // texture coordinates still completes and the system stays up.
        let mut gl = gl();
        let src_tex = gl.create_texture(2, 2, TexFormat::Rgba8).unwrap();
        gl.upload_texture(src_tex, &[[0.25; 4]; 4]).unwrap();
        gl.bind_texture(0, src_tex).unwrap();
        let out = gl.create_texture(2, 2, TexFormat::Rgba8).unwrap();
        let fbo = gl.create_framebuffer();
        gl.attach_texture(fbo, out).unwrap();
        gl.bind_framebuffer(fbo).unwrap();
        gl.viewport(2, 2);
        let prog = gl
            .create_program(
                "uniform sampler2D t;
                 void main() { gl_FragColor = texture2D(t, vec2(1000.0, -1000.0)); }",
            )
            .unwrap();
        gl.use_program(prog).unwrap();
        gl.set_uniform(prog, "t", Value::Int(0)).unwrap();
        gl.draw_fullscreen_quad(DrawMode::Full).unwrap();
        let p = gl.debug_texel(out, 0, 0).unwrap();
        assert!((p[0] - 0.25).abs() < 0.01);
    }

    #[test]
    fn lost_context_fails_everything_until_restore() {
        let mut gl = gl();
        let tex = gl.create_texture(2, 2, TexFormat::Rgba8).unwrap();
        gl.upload_texture(tex, &[[0.5; 4]; 4]).unwrap();
        let fbo = gl.create_framebuffer();
        gl.attach_texture(fbo, tex).unwrap();
        gl.bind_framebuffer(fbo).unwrap();
        gl.viewport(2, 2);
        gl.lose_context();
        assert!(gl.is_context_lost());
        assert!(matches!(
            gl.create_texture(2, 2, TexFormat::Rgba8),
            Err(GlError::ContextLost(_))
        ));
        assert!(matches!(
            gl.upload_texture(tex, &[[0.0; 4]; 4]),
            Err(GlError::ContextLost(_))
        ));
        assert!(matches!(
            gl.create_program("void main() { gl_FragColor = vec4(0.0); }"),
            Err(GlError::ContextLost(_))
        ));
        assert!(matches!(gl.read_pixels(), Err(GlError::ContextLost(_))));
        assert!(matches!(
            gl.draw_fullscreen_quad(DrawMode::Full),
            Err(GlError::ContextLost(_))
        ));
        // Restore: the device works again and resident contents survived
        // (driver reset, not VRAM decay).
        gl.restore_context();
        assert!(!gl.is_context_lost());
        let p = gl.read_pixels().unwrap();
        assert!((p[0][0] - 0.5).abs() < 0.01);
    }
}
