//! Cost and transfer statistics collected by the simulator, consumed by
//! the performance model.

/// Counters for one draw call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrawStats {
    /// Fragments covered by the viewport.
    pub fragments: u64,
    /// Fragments actually executed (smaller under sampled dispatch).
    pub fragments_executed: u64,
    /// ALU operations, extrapolated to the full fragment count.
    pub alu: u64,
    /// Texture fetches, extrapolated to the full fragment count.
    pub tex_fetches: u64,
    /// Branches/loop iterations, extrapolated.
    pub branches: u64,
    /// True when the counts were extrapolated from a sampled dispatch.
    pub estimated: bool,
}

impl DrawStats {
    /// Merges the counters of another draw into this one.
    pub fn merge(&mut self, other: &DrawStats) {
        self.fragments += other.fragments;
        self.fragments_executed += other.fragments_executed;
        self.alu += other.alu;
        self.tex_fetches += other.tex_fetches;
        self.branches += other.branches;
        self.estimated |= other.estimated;
    }
}

/// Context-lifetime counters (`glGet`-style instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GlStats {
    /// Bytes moved host -> GPU (`glTexImage2D` and friends).
    pub bytes_uploaded: u64,
    /// Bytes moved GPU -> host (`glReadPixels`).
    pub bytes_downloaded: u64,
    /// Number of draw calls issued.
    pub draw_calls: u64,
    /// Fragments executed across all draws.
    pub fragments_shaded: u64,
    /// Total ALU operations (extrapolated under sampling).
    pub alu_ops: u64,
    /// Total texture fetches (extrapolated under sampling).
    pub tex_fetches: u64,
    /// Programs linked.
    pub programs_linked: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = DrawStats {
            fragments: 10,
            alu: 100,
            ..DrawStats::default()
        };
        let b = DrawStats {
            fragments: 5,
            alu: 50,
            estimated: true,
            ..DrawStats::default()
        };
        a.merge(&b);
        assert_eq!(a.fragments, 15);
        assert_eq!(a.alu, 150);
        assert!(a.estimated);
    }
}
