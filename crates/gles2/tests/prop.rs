//! Property tests for the GL simulator: the clamp-to-edge availability
//! guarantee and texture roundtrip invariants.

use gles2_sim::{DeviceProfile, DrawMode, Gl, TexFormat, Value};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The certification-critical invariant (paper §4): sampling at ANY
    /// coordinate — including NaN and infinities — returns one of the
    /// texture's texels and never faults.
    #[test]
    fn sampling_any_coordinate_returns_a_texel(
        u in proptest::num::f32::ANY,
        v in proptest::num::f32::ANY,
    ) {
        let mut gl = Gl::new(DeviceProfile::radeon_hd3400());
        let tex = gl.create_texture(4, 4, TexFormat::Rgba32F).expect("tex");
        let texels: Vec<[f32; 4]> = (0..16).map(|i| [i as f32, 0.0, 0.0, 1.0]).collect();
        gl.upload_texture(tex, &texels).expect("upload");
        gl.bind_texture(0, tex).expect("bind");
        let out = gl.create_texture(1, 1, TexFormat::Rgba32F).expect("out");
        let fbo = gl.create_framebuffer();
        gl.attach_texture(fbo, out).expect("attach");
        gl.bind_framebuffer(fbo).expect("bind fbo");
        gl.viewport(1, 1);
        let prog = gl.create_program(
            "uniform sampler2D t; uniform vec2 c;
             void main() { gl_FragColor = texture2D(t, c); }",
        ).expect("program");
        gl.use_program(prog).expect("use");
        gl.set_uniform(prog, "t", Value::Int(0)).expect("sampler");
        gl.set_uniform(prog, "c", Value::Vec2([u, v])).expect("coord");
        gl.draw_fullscreen_quad(DrawMode::Full).expect("draw must never fault");
        let px = gl.debug_texel(out, 0, 0).expect("texel");
        let is_texel = texels.iter().any(|t| t[0] == px[0]);
        prop_assert!(is_texel, "sampled value {px:?} is not a texel");
    }

    /// RGBA8 upload/readback roundtrip: every channel quantizes to the
    /// nearest /255 step, and re-reading returns exactly that.
    #[test]
    fn rgba8_roundtrip_is_stable(vals in proptest::collection::vec(0.0f32..1.0, 4)) {
        let mut gl = Gl::new(DeviceProfile::videocore_iv());
        let tex = gl.create_texture(1, 1, TexFormat::Rgba8).expect("tex");
        gl.upload_texture(tex, &[[vals[0], vals[1], vals[2], vals[3]]]).expect("upload");
        let first = gl.debug_texel(tex, 0, 0).expect("read");
        // Idempotence: uploading the quantized value changes nothing.
        gl.upload_texture(tex, &[first]).expect("re-upload");
        let second = gl.debug_texel(tex, 0, 0).expect("read");
        prop_assert_eq!(first, second);
        for (orig, q) in vals.iter().zip(first) {
            prop_assert!((orig - q).abs() <= 0.5 / 255.0 + f32::EPSILON);
        }
    }

    /// Texture allocation respects the profile for arbitrary sizes: it
    /// either succeeds with the exact dimensions or fails cleanly.
    #[test]
    fn allocation_is_total(w in 0u32..5000, h in 0u32..5000) {
        let mut gl = Gl::new(DeviceProfile::videocore_iv());
        match gl.create_texture(w, h, TexFormat::Rgba8) {
            Ok(id) => {
                let (tw, th) = gl.texture_size(id).expect("size");
                prop_assert_eq!((tw, th), (w, h));
                prop_assert!(w.is_power_of_two() && h.is_power_of_two());
                prop_assert!(w <= 2048 && h <= 2048);
            }
            Err(_) => {
                let valid = w > 0 && h > 0 && w.is_power_of_two() && h.is_power_of_two() && w <= 2048 && h <= 2048;
                prop_assert!(!valid, "{w}x{h} should have been accepted");
            }
        }
    }
}

#[test]
fn draw_statistics_are_additive() {
    let mut gl = Gl::new(DeviceProfile::videocore_iv());
    let out = gl.create_texture(8, 8, TexFormat::Rgba8).expect("out");
    let fbo = gl.create_framebuffer();
    gl.attach_texture(fbo, out).expect("attach");
    gl.bind_framebuffer(fbo).expect("bind");
    gl.viewport(8, 8);
    let prog = gl
        .create_program("void main() { gl_FragColor = vec4(0.5); }")
        .expect("program");
    gl.use_program(prog).expect("use");
    let s1 = gl.draw_fullscreen_quad(DrawMode::Full).expect("draw");
    let after_one = *gl.stats();
    gl.draw_fullscreen_quad(DrawMode::Full).expect("draw");
    let after_two = *gl.stats();
    assert_eq!(after_two.draw_calls, 2);
    assert_eq!(after_two.fragments_shaded, 2 * s1.fragments_executed);
    assert_eq!(after_two.alu_ops, 2 * after_one.alu_ops);
}
