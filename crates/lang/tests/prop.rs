//! Property tests for the front-end: totality of the lexer/parser on
//! arbitrary input and pretty-print/reparse roundtrips on generated
//! kernels.

use brook_lang::ast::*;
use brook_lang::{lexer, parse, pretty};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lexer must be total: any byte soup produces tokens +
    /// diagnostics, never a panic.
    #[test]
    fn lexer_never_panics(src in ".*") {
        let _ = lexer::lex(&src);
    }

    /// The parser must be total as well, including on inputs assembled
    /// from language fragments (more likely to reach deep parser states
    /// than pure noise).
    #[test]
    fn parser_never_panics_on_fragment_soup(parts in proptest::collection::vec(
        prop_oneof![
            Just("kernel"), Just("void"), Just("float"), Just("float4"), Just("out"),
            Just("reduce"), Just("<>"), Just("("), Just(")"), Just("{"), Just("}"),
            Just("["), Just("]"), Just(";"), Just(","), Just("="), Just("+"),
            Just("for"), Just("if"), Just("else"), Just("indexof"), Just("x"),
            Just("1.0"), Just("42"), Just("a"), Just("o"), Just("goto"), Just("*"),
            Just("&"), Just("while"), Just("return"),
        ], 0..60)) {
        let src = parts.join(" ");
        let _ = parse(&src);
    }
}

/// Strategy producing well-formed expression source strings over the
/// identifiers `a` (input stream) and `k` (scalar param).
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_owned()),
        Just("k".to_owned()),
        (0..100u32).prop_map(|v| format!("{v}.5")),
        (1..50u32).prop_map(|v| format!("{v}.0")),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} + {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} * {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} - {r})")),
            inner.clone().prop_map(|e| format!("abs({e})")),
            inner.clone().prop_map(|e| format!("(-{e})")),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, f)| format!("((({c}) > 1.0) ? ({t}) : ({f}))")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated kernels parse, check, pretty-print and reparse to the
    /// same canonical form (the printer is a fixed point).
    #[test]
    fn pretty_print_roundtrip(body in expr_strategy()) {
        let src = format!("kernel void f(float a<>, float k, out float o<>) {{ o = {body}; }}");
        let p1 = parse(&src).expect("generated kernel must parse");
        brook_lang::check(p1.clone()).expect("generated kernel must type-check");
        let printed = pretty::print_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(pretty::print_program(&p2), printed);
    }

    /// Structural equality modulo spans/ids: kernel metadata survives the
    /// roundtrip.
    #[test]
    fn roundtrip_preserves_signature(n_inputs in 1usize..5) {
        let params: Vec<String> = (0..n_inputs).map(|i| format!("float s{i}<>")).collect();
        let sum: Vec<String> = (0..n_inputs).map(|i| format!("s{i}")).collect();
        let src = format!(
            "kernel void f({}, out float o<>) {{ o = {}; }}",
            params.join(", "),
            sum.join(" + ")
        );
        let p1 = parse(&src).expect("parse");
        let printed = pretty::print_program(&p1);
        let p2 = parse(&printed).expect("reparse");
        let k1 = p1.kernel("f").expect("kernel");
        let k2 = p2.kernel("f").expect("kernel");
        prop_assert_eq!(k1.params.len(), k2.params.len());
        for (a, b) in k1.params.iter().zip(&k2.params) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.ty, b.ty);
        }
    }
}

#[test]
fn nesting_within_the_limit_parses() {
    let mut e = String::from("a");
    for _ in 0..100 {
        e = format!("({e} + 1.0)");
    }
    let src = format!("kernel void f(float a<>, out float o<>) {{ o = {e}; }}");
    let p = parse(&src).expect("parse");
    assert_eq!(p.kernels().count(), 1);
}

#[test]
fn excessive_nesting_is_rejected_not_crashed() {
    // The parser enforces a depth bound (P011) instead of exhausting its
    // own stack — the compiler obeys the same resource discipline the
    // language imposes on kernels.
    let mut e = String::from("a");
    for _ in 0..500 {
        e = format!("({e} + 1.0)");
    }
    let src = format!("kernel void f(float a<>, out float o<>) {{ o = {e}; }}");
    let err = parse(&src).expect_err("must be rejected");
    assert!(err.has_code("P011"), "expected P011, got {:?}", err.first_error());
}

#[test]
fn node_ids_unique_across_whole_program() {
    let src = "
        float h(float x) { return x * x + 1.0; }
        kernel void f(float a<>, out float o<>) { o = h(a) + h(a * 2.0); }
        kernel void g(float a<>, out float o<>) { o = a - 1.0; }";
    let p = parse(src).expect("parse");
    let mut seen = std::collections::HashSet::new();
    fn walk_expr(e: &Expr, seen: &mut std::collections::HashSet<NodeId>) {
        assert!(seen.insert(e.id), "duplicate id {}", e.id);
        match &e.kind {
            ExprKind::Binary { lhs, rhs, .. } => {
                walk_expr(lhs, seen);
                walk_expr(rhs, seen);
            }
            ExprKind::Unary { operand, .. } => walk_expr(operand, seen),
            ExprKind::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, seen)),
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                walk_expr(cond, seen);
                walk_expr(then_expr, seen);
                walk_expr(else_expr, seen);
            }
            ExprKind::Index { base, indices } => {
                walk_expr(base, seen);
                indices.iter().for_each(|i| walk_expr(i, seen));
            }
            ExprKind::Swizzle { base, .. } => walk_expr(base, seen),
            _ => {}
        }
    }
    fn walk_stmt(s: &Stmt, seen: &mut std::collections::HashSet<NodeId>) {
        match s {
            Stmt::Decl { init: Some(e), .. } => walk_expr(e, seen),
            Stmt::Assign { target, value, .. } => {
                walk_expr(target, seen);
                walk_expr(value, seen);
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                walk_expr(cond, seen);
                then_block.stmts.iter().for_each(|s| walk_stmt(s, seen));
                if let Some(b) = else_block {
                    b.stmts.iter().for_each(|s| walk_stmt(s, seen));
                }
            }
            Stmt::Return { value: Some(e), .. } => walk_expr(e, seen),
            Stmt::Expr { expr, .. } => walk_expr(expr, seen),
            _ => {}
        }
    }
    for item in &p.items {
        match item {
            Item::Kernel(k) => k.body.stmts.iter().for_each(|s| walk_stmt(s, &mut seen)),
            Item::Function(f) => f.body.stmts.iter().for_each(|s| walk_stmt(s, &mut seen)),
        }
    }
    assert!(seen.len() > 10);
}
