//! Source locations used by every diagnostic in the Brook Auto toolchain.

use std::fmt;

/// A half-open byte range into a source string, with the 1-based line and
/// column of its start for human-readable diagnostics.
///
/// ```
/// use brook_lang::span::Span;
/// let s = Span::new(4, 7, 1, 5);
/// assert_eq!(s.len(), 3);
/// assert_eq!(format!("{s}"), "1:5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
    /// 1-based source column of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a span covering `start..end` starting at `line:col`.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// A zero-width placeholder span for synthesized nodes.
    pub fn synthetic() -> Self {
        Span::default()
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True when the span covers no bytes (synthesized nodes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(&self, other: Span) -> Span {
        let (first, last) = if self.start <= other.start {
            (*self, other)
        } else {
            (other, *self)
        };
        Span {
            start: first.start,
            end: first.end.max(last.end),
            line: first.line,
            col: first.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_spans() {
        let a = Span::new(10, 14, 2, 3);
        let b = Span::new(2, 6, 1, 3);
        let m = a.merge(b);
        assert_eq!(m.start, 2);
        assert_eq!(m.end, 14);
        assert_eq!(m.line, 1);
    }

    #[test]
    fn merge_is_commutative() {
        let a = Span::new(0, 4, 1, 1);
        let b = Span::new(8, 12, 1, 9);
        assert_eq!(a.merge(b), b.merge(a));
    }

    #[test]
    fn synthetic_is_empty() {
        assert!(Span::synthetic().is_empty());
        assert!(!Span::new(0, 1, 1, 1).is_empty());
    }
}
