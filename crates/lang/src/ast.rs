//! Abstract syntax tree for the Brook Auto kernel language.
//!
//! Every expression carries a [`NodeId`] so later passes (type checking,
//! certification analysis, code generation) can attach information without
//! mutating the tree.

use crate::span::Span;
use std::fmt;

/// Identifier for an expression node, unique within one [`Program`].
pub type NodeId = u32;

/// Scalar element categories of the type system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarKind {
    /// 32-bit IEEE float — the only GPU-storable scalar (paper §5.4).
    Float,
    /// Integer, used for loop counters and gather indices.
    Int,
    /// Boolean, used in conditions only.
    Bool,
}

/// A value type: a scalar kind plus a vector width (1..=4).
///
/// Brook's vector extensions mirror OpenCL/GLSL: `float2`..`float4`.
/// `int` and `bool` are always scalar in the Brook Auto subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Type {
    /// Element kind.
    pub scalar: ScalarKind,
    /// Number of components, 1 to 4.
    pub width: u8,
}

impl Type {
    /// Scalar `float`.
    pub const FLOAT: Type = Type {
        scalar: ScalarKind::Float,
        width: 1,
    };
    /// `float2`.
    pub const FLOAT2: Type = Type {
        scalar: ScalarKind::Float,
        width: 2,
    };
    /// `float3`.
    pub const FLOAT3: Type = Type {
        scalar: ScalarKind::Float,
        width: 3,
    };
    /// `float4`.
    pub const FLOAT4: Type = Type {
        scalar: ScalarKind::Float,
        width: 4,
    };
    /// Scalar `int`.
    pub const INT: Type = Type {
        scalar: ScalarKind::Int,
        width: 1,
    };
    /// Scalar `bool`.
    pub const BOOL: Type = Type {
        scalar: ScalarKind::Bool,
        width: 1,
    };

    /// Float type of the given width.
    ///
    /// # Panics
    /// Panics if `width` is not in `1..=4`.
    pub fn float(width: u8) -> Type {
        assert!((1..=4).contains(&width), "vector width {width} out of range");
        Type {
            scalar: ScalarKind::Float,
            width,
        }
    }

    /// True for `float`..`float4`.
    pub fn is_float(&self) -> bool {
        self.scalar == ScalarKind::Float
    }

    /// True for any width-1 type.
    pub fn is_scalar(&self) -> bool {
        self.width == 1
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.scalar, self.width) {
            (ScalarKind::Float, 1) => write!(f, "float"),
            (ScalarKind::Float, w) => write!(f, "float{w}"),
            (ScalarKind::Int, _) => write!(f, "int"),
            (ScalarKind::Bool, _) => write!(f, "bool"),
        }
    }
}

/// How a kernel parameter receives data (paper §3-§4: streams, not pointers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// `float a<>` — elementwise input stream.
    Stream,
    /// `out float b<>` — elementwise output stream.
    OutStream,
    /// `reduce float r<>` — reduction accumulator (reduce kernels only).
    ReduceOut,
    /// `float a[][]` — random-access gather array of the given rank.
    Gather {
        /// Number of dimensions (1..=4, paper §5.3).
        rank: u8,
    },
    /// Plain value argument, passed as a GPU constant (uniform).
    Scalar,
}

impl ParamKind {
    /// True for parameters the kernel may read.
    pub fn is_input(&self) -> bool {
        matches!(
            self,
            ParamKind::Stream | ParamKind::Gather { .. } | ParamKind::Scalar
        )
    }

    /// True for parameters the kernel writes.
    pub fn is_output(&self) -> bool {
        matches!(self, ParamKind::OutStream | ParamKind::ReduceOut)
    }
}

/// One kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Stream / gather / scalar role.
    pub kind: ParamKind,
    /// Source location.
    pub span: Span,
}

/// A kernel definition (`kernel void name(...) {...}`), possibly a
/// reduction kernel (`reduce void name(...) {...}`).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDef {
    /// Kernel name.
    pub name: String,
    /// True for `reduce void` kernels.
    pub is_reduce: bool,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Kernel body.
    pub body: Block,
    /// Source location of the whole definition.
    pub span: Span,
}

impl KernelDef {
    /// Output stream parameters in declaration order.
    pub fn outputs(&self) -> impl Iterator<Item = &Param> {
        self.params.iter().filter(|p| p.kind.is_output())
    }

    /// Input stream and gather parameters in declaration order.
    pub fn stream_inputs(&self) -> impl Iterator<Item = &Param> {
        self.params
            .iter()
            .filter(|p| matches!(p.kind, ParamKind::Stream | ParamKind::Gather { .. }))
    }
}

/// A non-kernel helper function callable from kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Function name.
    pub name: String,
    /// Return type; `None` is `void`.
    pub return_ty: Option<Type>,
    /// Value parameters.
    pub params: Vec<(String, Type)>,
    /// Function body.
    pub body: Block,
    /// Source location.
    pub span: Span,
}

/// Top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A GPU kernel.
    Kernel(KernelDef),
    /// A helper function.
    Function(FunctionDef),
}

/// A parsed Brook translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
    /// One past the largest [`NodeId`] used in the tree.
    pub next_node_id: NodeId,
}

impl Program {
    /// Kernels in source order.
    pub fn kernels(&self) -> impl Iterator<Item = &KernelDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Kernel(k) => Some(k),
            Item::Function(_) => None,
        })
    }

    /// Helper functions in source order.
    pub fn functions(&self) -> impl Iterator<Item = &FunctionDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Function(f) => Some(f),
            Item::Kernel(_) => None,
        })
    }

    /// Finds a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelDef> {
        self.kernels().find(|k| k.name == name)
    }

    /// Finds a helper function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions().find(|f| f.name == name)
    }
}

/// A `{ ... }` statement block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Source location.
    pub span: Span,
}

/// Assignment flavours (`=`, `+=`, `-=`, `*=`, `/=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    Assign,
    AddAssign,
    SubAssign,
    MulAssign,
    DivAssign,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration `float x = e;`.
    Decl {
        name: String,
        ty: Type,
        init: Option<Expr>,
        span: Span,
    },
    /// Assignment to an lvalue.
    Assign {
        target: Expr,
        op: AssignOp,
        value: Expr,
        span: Span,
    },
    /// `if (cond) {..} else {..}`.
    If {
        cond: Expr,
        then_block: Block,
        else_block: Option<Block>,
        span: Span,
    },
    /// C-style `for` loop.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Block,
        span: Span,
    },
    /// `while` loop (rejected by certification rule BA003 unless bounded).
    While { cond: Expr, body: Block, span: Span },
    /// `do {..} while (cond);`.
    DoWhile { body: Block, cond: Expr, span: Span },
    /// `return e;` — helper functions only.
    Return { value: Option<Expr>, span: Span },
    /// Bare expression statement (function call for effect).
    Expr { expr: Expr, span: Span },
    /// Nested block.
    Block(Block),
}

impl Stmt {
    /// Source location of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::For { span, .. }
            | Stmt::While { span, .. }
            | Stmt::DoWhile { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Expr { span, .. } => *span,
            Stmt::Block(b) => b.span,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// True for operators producing `bool`.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for `&&` / `||`.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// Source spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique node id within the program.
    pub id: NodeId,
    /// Expression payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Float literal.
    FloatLit(f32),
    /// Integer literal.
    IntLit(i64),
    /// Boolean literal.
    BoolLit(bool),
    /// Variable or parameter reference.
    Var(String),
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary { op: UnOp, operand: Box<Expr> },
    /// `cond ? a : b`.
    Ternary {
        cond: Box<Expr>,
        then_expr: Box<Expr>,
        else_expr: Box<Expr>,
    },
    /// Call of a builtin, a vector constructor (`float4(..)`) or a helper
    /// function.
    Call { callee: String, args: Vec<Expr> },
    /// Gather access `a[i]` / `a[i][j]`; one index expression per rank.
    Index { base: Box<Expr>, indices: Vec<Expr> },
    /// Component access/swizzle, e.g. `v.x`, `v.xyz`.
    Swizzle {
        base: Box<Expr>,
        /// Component letters in `xyzw`/`rgba` order, already normalized
        /// to `xyzw`.
        components: String,
    },
    /// `indexof(stream)` — index of the current element (paper §5.2).
    Indexof { stream: String },
}

impl Expr {
    /// True if the expression is a structurally valid assignment target.
    pub fn is_lvalue(&self) -> bool {
        match &self.kind {
            ExprKind::Var(_) => true,
            ExprKind::Swizzle { base, .. } => base.is_lvalue(),
            ExprKind::Index { base, .. } => base.is_lvalue(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        assert_eq!(Type::FLOAT.to_string(), "float");
        assert_eq!(Type::FLOAT3.to_string(), "float3");
        assert_eq!(Type::INT.to_string(), "int");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn float_width_validated() {
        let _ = Type::float(5);
    }

    #[test]
    fn param_kind_direction() {
        assert!(ParamKind::Stream.is_input());
        assert!(ParamKind::Gather { rank: 2 }.is_input());
        assert!(ParamKind::OutStream.is_output());
        assert!(ParamKind::ReduceOut.is_output());
        assert!(!ParamKind::OutStream.is_input());
    }

    #[test]
    fn lvalue_recognition() {
        let var = Expr {
            id: 0,
            kind: ExprKind::Var("x".into()),
            span: Span::synthetic(),
        };
        assert!(var.is_lvalue());
        let lit = Expr {
            id: 1,
            kind: ExprKind::FloatLit(1.0),
            span: Span::synthetic(),
        };
        assert!(!lit.is_lvalue());
        let sw = Expr {
            id: 2,
            kind: ExprKind::Swizzle {
                base: Box::new(var),
                components: "xy".into(),
            },
            span: Span::synthetic(),
        };
        assert!(sw.is_lvalue());
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Add.is_comparison());
        assert_eq!(BinOp::Le.as_str(), "<=");
    }
}
