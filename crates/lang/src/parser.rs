//! Recursive-descent parser for the Brook Auto kernel language.
//!
//! The grammar is a restricted C subset: kernels, helper functions,
//! declarations, structured control flow and expressions. Pointer syntax,
//! `goto` and other constructs the Brook Auto subset forbids are recognized
//! and rejected with certification-rule diagnostics (BA001/BA007) so the
//! error a user sees names the violated ISO 26262-motivated rule rather
//! than a generic syntax error.

use crate::ast::*;
use crate::diag::{CompileError, Diagnostic};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Parses a Brook translation unit.
///
/// # Errors
/// Returns a [`CompileError`] carrying every lexical and syntactic
/// diagnostic when the source is not a valid Brook Auto program.
///
/// ```
/// let src = "kernel void copy(float a<>, out float b<>) { b = a; }";
/// let program = brook_lang::parse(src)?;
/// assert_eq!(program.kernels().count(), 1);
/// # Ok::<(), brook_lang::diag::CompileError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, CompileError> {
    // Deeply nested expressions recurse through ~10 parser frames per
    // level; a dedicated stack makes the MAX_EXPR_DEPTH bound the only
    // limit, independent of the caller's (possibly small) thread stack.
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("brook-parser".into())
            .stack_size(16 * 1024 * 1024)
            .spawn_scoped(scope, || parse_on_current_stack(src))
            .expect("spawn parser thread")
            .join()
            .expect("parser thread panicked")
    })
}

fn parse_on_current_stack(src: &str) -> Result<Program, CompileError> {
    let (tokens, mut diags) = lex(src);
    let mut parser = Parser {
        tokens,
        pos: 0,
        diags: Vec::new(),
        next_id: 0,
        expr_depth: 0,
    };
    let program = parser.program();
    diags.extend(parser.diags);
    if diags.iter().any(|d| d.severity == crate::diag::Severity::Error) {
        Err(CompileError::new(diags))
    } else {
        Ok(program)
    }
}

/// Maximum expression nesting depth the parser accepts. A bound here
/// keeps the compiler itself within statically verifiable resources —
/// the same discipline the language imposes on kernels (BA003/BA009).
const MAX_EXPR_DEPTH: u32 = 128;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Vec<Diagnostic>,
    next_id: NodeId,
    expr_depth: u32,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, ahead: usize) -> &TokenKind {
        &self.tokens[(self.pos + ahead).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat(&TokenKind::Keyword(kw))
    }

    fn expect(&mut self, kind: &TokenKind) -> bool {
        if self.eat(kind) {
            true
        } else {
            self.error("P001", format!("expected {kind}, found {}", self.peek()));
            false
        }
    }

    fn error(&mut self, code: &str, msg: impl Into<String>) {
        let span = self.span();
        self.diags.push(Diagnostic::error(code, msg, span));
    }

    fn fresh_id(&mut self) -> NodeId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn expr_node(&mut self, kind: ExprKind, span: Span) -> Expr {
        Expr {
            id: self.fresh_id(),
            kind,
            span,
        }
    }

    /// Skips tokens until a likely item boundary, for error recovery.
    fn recover_to_item(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    self.bump();
                    if depth <= 1 {
                        return;
                    }
                    depth -= 1;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- items ------------------------------------------------------

    fn program(&mut self) -> Program {
        let mut items = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            let before = self.pos;
            match self.item() {
                Some(item) => items.push(item),
                None => {
                    if self.pos == before {
                        self.bump();
                    }
                    self.recover_to_item();
                }
            }
        }
        Program {
            items,
            next_node_id: self.next_id,
        }
    }

    fn item(&mut self) -> Option<Item> {
        let start = self.span();
        let is_reduce = self.eat_kw(Keyword::Reduce);
        if is_reduce || self.eat_kw(Keyword::Kernel) {
            // `reduce void` may also be written `kernel reduce void`? Brook
            // uses `reduce void name(...)`. Accept both orders.
            let is_reduce = is_reduce || self.eat_kw(Keyword::Reduce);
            if !self.eat_kw(Keyword::Void) {
                self.error("P002", "kernels must return `void`");
                return None;
            }
            let kernel = self.kernel_def(is_reduce, start)?;
            return Some(Item::Kernel(kernel));
        }
        // Helper function: `<type|void> name(params) { ... }`.
        let return_ty = if self.eat_kw(Keyword::Void) {
            None
        } else {
            Some(self.parse_type()?)
        };
        let name = self.ident()?;
        self.expect(&TokenKind::LParen);
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let ty = self.parse_type()?;
                let pname = self.ident()?;
                params.push((pname, ty));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen);
        }
        let body = self.block()?;
        let span = start.merge(self.prev_span());
        Some(Item::Function(FunctionDef {
            name,
            return_ty,
            params,
            body,
            span,
        }))
    }

    fn kernel_def(&mut self, is_reduce: bool, start: Span) -> Option<KernelDef> {
        let name = self.ident()?;
        self.expect(&TokenKind::LParen);
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.param()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen);
        }
        let body = self.block()?;
        let span = start.merge(self.prev_span());
        Some(KernelDef {
            name,
            is_reduce,
            params,
            body,
            span,
        })
    }

    fn param(&mut self) -> Option<Param> {
        let start = self.span();
        let is_out = self.eat_kw(Keyword::Out);
        let is_reduce = self.eat_kw(Keyword::Reduce);
        self.eat_kw(Keyword::Const);
        let ty = self.parse_type()?;
        if self.eat(&TokenKind::Star) {
            self.error(
                "BA001",
                "pointer parameters are forbidden in Brook Auto (ISO 26262 restricted pointer use)",
            );
            return None;
        }
        let name = self.ident()?;
        let kind = if self.eat(&TokenKind::Lt) {
            // `<>` stream marker.
            self.expect(&TokenKind::Gt);
            if is_reduce {
                ParamKind::ReduceOut
            } else if is_out {
                ParamKind::OutStream
            } else {
                ParamKind::Stream
            }
        } else if matches!(self.peek(), TokenKind::LBracket) {
            let mut rank: u8 = 0;
            while self.eat(&TokenKind::LBracket) {
                // Optional extent expression is ignored: Brook gathers are
                // unsized in the signature; sizes come from the runtime.
                while !matches!(self.peek(), TokenKind::RBracket | TokenKind::Eof) {
                    self.bump();
                }
                self.expect(&TokenKind::RBracket);
                rank += 1;
            }
            if rank > 4 {
                self.error("P005", "gather arrays support at most 4 dimensions");
                rank = 4;
            }
            ParamKind::Gather { rank }
        } else if is_out || is_reduce {
            self.error("P006", "`out`/`reduce` parameters must be streams (`<>`)");
            ParamKind::Scalar
        } else {
            ParamKind::Scalar
        };
        let span = start.merge(self.prev_span());
        Some(Param { name, ty, kind, span })
    }

    fn parse_type(&mut self) -> Option<Type> {
        let t = match self.peek() {
            TokenKind::Keyword(Keyword::Float) => Type::FLOAT,
            TokenKind::Keyword(Keyword::Float2) => Type::FLOAT2,
            TokenKind::Keyword(Keyword::Float3) => Type::FLOAT3,
            TokenKind::Keyword(Keyword::Float4) => Type::FLOAT4,
            TokenKind::Keyword(Keyword::Int) => Type::INT,
            TokenKind::Keyword(Keyword::Bool) => Type::BOOL,
            other => {
                let msg = format!("expected type, found {other}");
                self.error("P003", msg);
                return None;
            }
        };
        self.bump();
        Some(t)
    }

    fn ident(&mut self) -> Option<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Some(s)
            }
            other => {
                let msg = format!("expected identifier, found {other}");
                self.error("P004", msg);
                None
            }
        }
    }

    // ---- statements --------------------------------------------------

    fn block(&mut self) -> Option<Block> {
        let start = self.span();
        if !self.expect(&TokenKind::LBrace) {
            return None;
        }
        let mut stmts = Vec::new();
        while !matches!(self.peek(), TokenKind::RBrace | TokenKind::Eof) {
            let before = self.pos;
            match self.stmt() {
                Some(s) => stmts.push(s),
                None => {
                    // Recover to the next `;` or `}`.
                    if self.pos == before {
                        self.bump();
                    }
                    while !matches!(
                        self.peek(),
                        TokenKind::Semicolon | TokenKind::RBrace | TokenKind::Eof
                    ) {
                        self.bump();
                    }
                    self.eat(&TokenKind::Semicolon);
                }
            }
        }
        self.expect(&TokenKind::RBrace);
        Some(Block {
            stmts,
            span: start.merge(self.prev_span()),
        })
    }

    fn stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        match self.peek() {
            TokenKind::Keyword(Keyword::Goto) => {
                self.error("BA007", "`goto` is forbidden in Brook Auto (MISRA C rule 15.1)");
                None
            }
            TokenKind::LBrace => Some(Stmt::Block(self.block()?)),
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect(&TokenKind::LParen);
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen);
                let then_block = self.block_or_single()?;
                let else_block = if self.eat_kw(Keyword::Else) {
                    if matches!(self.peek(), TokenKind::Keyword(Keyword::If)) {
                        // `else if` chains become a single-statement block.
                        let nested = self.stmt()?;
                        let span = nested.span();
                        Some(Block {
                            stmts: vec![nested],
                            span,
                        })
                    } else {
                        Some(self.block_or_single()?)
                    }
                } else {
                    None
                };
                Some(Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect(&TokenKind::LParen);
                let init = if self.eat(&TokenKind::Semicolon) {
                    None
                } else {
                    let s = self.simple_stmt()?;
                    self.expect(&TokenKind::Semicolon);
                    Some(Box::new(s))
                };
                let cond = if matches!(self.peek(), TokenKind::Semicolon) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semicolon);
                let step = if matches!(self.peek(), TokenKind::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(&TokenKind::RParen);
                let body = self.block_or_single()?;
                Some(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                self.expect(&TokenKind::LParen);
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen);
                let body = self.block_or_single()?;
                Some(Stmt::While {
                    cond,
                    body,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = self.block()?;
                if !self.eat_kw(Keyword::While) {
                    self.error("P007", "expected `while` after `do` body");
                    return None;
                }
                self.expect(&TokenKind::LParen);
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen);
                self.expect(&TokenKind::Semicolon);
                Some(Stmt::DoWhile {
                    body,
                    cond,
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if matches!(self.peek(), TokenKind::Semicolon) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semicolon);
                Some(Stmt::Return {
                    value,
                    span: start.merge(self.prev_span()),
                })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&TokenKind::Semicolon);
                Some(s)
            }
        }
    }

    /// A single statement used as a loop body is wrapped in a block.
    fn block_or_single(&mut self) -> Option<Block> {
        if matches!(self.peek(), TokenKind::LBrace) {
            self.block()
        } else {
            let s = self.stmt()?;
            let span = s.span();
            Some(Block { stmts: vec![s], span })
        }
    }

    /// Declaration, assignment, increment or expression — the statement
    /// forms allowed in `for` headers.
    fn simple_stmt(&mut self) -> Option<Stmt> {
        let start = self.span();
        if matches!(
            self.peek(),
            TokenKind::Keyword(
                Keyword::Float
                    | Keyword::Float2
                    | Keyword::Float3
                    | Keyword::Float4
                    | Keyword::Int
                    | Keyword::Bool
                    | Keyword::Const
            )
        ) {
            self.eat_kw(Keyword::Const);
            let ty = self.parse_type()?;
            if self.eat(&TokenKind::Star) {
                self.error(
                    "BA001",
                    "pointer declarations are forbidden in Brook Auto (ISO 26262 restricted pointer use)",
                );
                return None;
            }
            let name = self.ident()?;
            if matches!(self.peek(), TokenKind::LBracket) {
                self.error(
                    "BA008",
                    "local arrays are forbidden in Brook Auto (no statically unverifiable storage)",
                );
                return None;
            }
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            return Some(Stmt::Decl {
                name,
                ty,
                init,
                span: start.merge(self.prev_span()),
            });
        }
        // Assignment / inc-dec / expression.
        let lhs = self.expr()?;
        let op = match self.peek() {
            TokenKind::Assign => Some(AssignOp::Assign),
            TokenKind::PlusAssign => Some(AssignOp::AddAssign),
            TokenKind::MinusAssign => Some(AssignOp::SubAssign),
            TokenKind::StarAssign => Some(AssignOp::MulAssign),
            TokenKind::SlashAssign => Some(AssignOp::DivAssign),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let value = self.expr()?;
            if !lhs.is_lvalue() {
                self.error("P008", "left-hand side of assignment is not assignable");
            }
            return Some(Stmt::Assign {
                target: lhs,
                op,
                value,
                span: start.merge(self.prev_span()),
            });
        }
        if matches!(self.peek(), TokenKind::PlusPlus | TokenKind::MinusMinus) {
            let inc = matches!(self.bump(), TokenKind::PlusPlus);
            if !lhs.is_lvalue() {
                self.error("P008", "increment target is not assignable");
            }
            let span = start.merge(self.prev_span());
            let one = self.expr_node(ExprKind::IntLit(1), span);
            let op = if inc {
                AssignOp::AddAssign
            } else {
                AssignOp::SubAssign
            };
            return Some(Stmt::Assign {
                target: lhs,
                op,
                value: one,
                span,
            });
        }
        Some(Stmt::Expr {
            span: start.merge(lhs.span),
            expr: lhs,
        })
    }

    // ---- expressions --------------------------------------------------

    fn expr(&mut self) -> Option<Expr> {
        if self.expr_depth >= MAX_EXPR_DEPTH {
            self.error(
                "P011",
                format!("expression nesting exceeds the depth limit {MAX_EXPR_DEPTH}"),
            );
            return None;
        }
        self.expr_depth += 1;
        let result = self.ternary();
        self.expr_depth -= 1;
        result
    }

    fn ternary(&mut self) -> Option<Expr> {
        let cond = self.logic_or()?;
        if self.eat(&TokenKind::Question) {
            let then_expr = self.expr()?;
            self.expect(&TokenKind::Colon);
            let else_expr = self.expr()?;
            let span = cond.span.merge(else_expr.span);
            return Some(self.expr_node(
                ExprKind::Ternary {
                    cond: Box::new(cond),
                    then_expr: Box::new(then_expr),
                    else_expr: Box::new(else_expr),
                },
                span,
            ));
        }
        Some(cond)
    }

    fn binary_level(
        &mut self,
        next: fn(&mut Self) -> Option<Expr>,
        table: &[(TokenKind, BinOp)],
    ) -> Option<Expr> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in table {
                if self.peek() == tok {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span.merge(rhs.span);
                    lhs = self.expr_node(
                        ExprKind::Binary {
                            op: *op,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                        span,
                    );
                    continue 'outer;
                }
            }
            return Some(lhs);
        }
    }

    fn logic_or(&mut self) -> Option<Expr> {
        self.binary_level(Self::logic_and, &[(TokenKind::PipePipe, BinOp::Or)])
    }

    fn logic_and(&mut self) -> Option<Expr> {
        self.binary_level(Self::equality, &[(TokenKind::AmpAmp, BinOp::And)])
    }

    fn equality(&mut self) -> Option<Expr> {
        self.binary_level(
            Self::relational,
            &[(TokenKind::EqEq, BinOp::Eq), (TokenKind::Ne, BinOp::Ne)],
        )
    }

    fn relational(&mut self) -> Option<Expr> {
        self.binary_level(
            Self::additive,
            &[
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Gt, BinOp::Gt),
                (TokenKind::Ge, BinOp::Ge),
            ],
        )
    }

    fn additive(&mut self) -> Option<Expr> {
        self.binary_level(
            Self::multiplicative,
            &[(TokenKind::Plus, BinOp::Add), (TokenKind::Minus, BinOp::Sub)],
        )
    }

    fn multiplicative(&mut self) -> Option<Expr> {
        self.binary_level(
            Self::unary,
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::Percent, BinOp::Rem),
            ],
        )
    }

    fn unary(&mut self) -> Option<Expr> {
        let start = self.span();
        if self.eat(&TokenKind::Minus) {
            let operand = self.unary()?;
            let span = start.merge(operand.span);
            return Some(self.expr_node(
                ExprKind::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        if self.eat(&TokenKind::Bang) {
            let operand = self.unary()?;
            let span = start.merge(operand.span);
            return Some(self.expr_node(
                ExprKind::Unary {
                    op: UnOp::Not,
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        if self.eat(&TokenKind::Amp) {
            self.error(
                "BA001",
                "address-of is forbidden in Brook Auto (ISO 26262 restricted pointer use)",
            );
            return None;
        }
        if matches!(self.peek(), TokenKind::Star) && !matches!(self.peek_at(1), TokenKind::Eof) {
            // A leading `*` can only be a dereference attempt here.
            self.error(
                "BA001",
                "pointer dereference is forbidden in Brook Auto (ISO 26262 restricted pointer use)",
            );
            return None;
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Option<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::LBracket => {
                    let mut indices = Vec::new();
                    while self.eat(&TokenKind::LBracket) {
                        indices.push(self.expr()?);
                        self.expect(&TokenKind::RBracket);
                    }
                    let span = e.span.merge(self.prev_span());
                    e = self.expr_node(
                        ExprKind::Index {
                            base: Box::new(e),
                            indices,
                        },
                        span,
                    );
                }
                TokenKind::Dot => {
                    self.bump();
                    let name = self.ident()?;
                    let norm = normalize_swizzle(&name);
                    match norm {
                        Some(components) => {
                            let span = e.span.merge(self.prev_span());
                            e = self.expr_node(
                                ExprKind::Swizzle {
                                    base: Box::new(e),
                                    components,
                                },
                                span,
                            );
                        }
                        None => {
                            self.error(
                                "P009",
                                format!("invalid swizzle `{name}` (components must be from xyzw/rgba)"),
                            );
                            return None;
                        }
                    }
                }
                _ => return Some(e),
            }
        }
    }

    fn primary(&mut self) -> Option<Expr> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::FloatLit(v) => {
                self.bump();
                Some(self.expr_node(ExprKind::FloatLit(v), start))
            }
            TokenKind::IntLit(v) => {
                self.bump();
                Some(self.expr_node(ExprKind::IntLit(v), start))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Some(self.expr_node(ExprKind::BoolLit(true), start))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Some(self.expr_node(ExprKind::BoolLit(false), start))
            }
            TokenKind::Keyword(Keyword::Indexof) => {
                self.bump();
                self.expect(&TokenKind::LParen);
                let stream = self.ident()?;
                self.expect(&TokenKind::RParen);
                let span = start.merge(self.prev_span());
                Some(self.expr_node(ExprKind::Indexof { stream }, span))
            }
            TokenKind::Keyword(
                kw @ (Keyword::Float | Keyword::Float2 | Keyword::Float3 | Keyword::Float4 | Keyword::Int),
            ) => {
                // Constructor / cast call: float2(a, b), float(x), int(x).
                self.bump();
                self.expect(&TokenKind::LParen);
                let mut args = Vec::new();
                if !self.eat(&TokenKind::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen);
                }
                let span = start.merge(self.prev_span());
                Some(self.expr_node(
                    ExprKind::Call {
                        callee: kw.as_str().to_owned(),
                        args,
                    },
                    span,
                ))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen);
                    }
                    let span = start.merge(self.prev_span());
                    Some(self.expr_node(ExprKind::Call { callee: name, args }, span))
                } else {
                    Some(self.expr_node(ExprKind::Var(name), start))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen);
                Some(e)
            }
            other => {
                let msg = format!("expected expression, found {other}");
                self.error("P010", msg);
                None
            }
        }
    }
}

/// Normalizes a swizzle like `rgba` to `xyzw` letters; returns `None` if
/// the identifier is not a valid swizzle of length 1..=4.
fn normalize_swizzle(name: &str) -> Option<String> {
    if name.is_empty() || name.len() > 4 {
        return None;
    }
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        out.push(match c {
            'x' | 'r' | 's' => 'x',
            'y' | 'g' | 't' => 'y',
            'z' | 'b' | 'p' => 'z',
            'w' | 'a' | 'q' => 'w',
            _ => return None,
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}: {:?}", e.diagnostics))
    }

    fn parse_err(src: &str) -> CompileError {
        parse(src).expect_err("expected parse failure")
    }

    #[test]
    fn parses_simple_kernel() {
        let p = parse_ok("kernel void add(float a<>, float b<>, out float c<>) { c = a + b; }");
        let k = p.kernel("add").unwrap();
        assert!(!k.is_reduce);
        assert_eq!(k.params.len(), 3);
        assert_eq!(k.params[2].kind, ParamKind::OutStream);
        assert_eq!(k.body.stmts.len(), 1);
    }

    #[test]
    fn parses_reduce_kernel() {
        let p = parse_ok("reduce void sum(float a<>, reduce float r<>) { r += a; }");
        let k = p.kernel("sum").unwrap();
        assert!(k.is_reduce);
        assert_eq!(k.params[1].kind, ParamKind::ReduceOut);
    }

    #[test]
    fn parses_gather_param() {
        let p = parse_ok("kernel void g(float a[][], float idx<>, out float o<>) { o = a[1][2]; }");
        let k = p.kernel("g").unwrap();
        assert_eq!(k.params[0].kind, ParamKind::Gather { rank: 2 });
    }

    #[test]
    fn parses_indexof() {
        let p = parse_ok("kernel void f(float a<>, out float o<>) { float2 i = indexof(o); o = i.x; }");
        let k = p.kernel("f").unwrap();
        assert_eq!(k.body.stmts.len(), 2);
    }

    #[test]
    fn parses_for_loop() {
        let p = parse_ok(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 16; i++) { s += a; }
                o = s;
            }",
        );
        let k = p.kernel("f").unwrap();
        assert!(matches!(k.body.stmts[2], Stmt::For { .. }));
    }

    #[test]
    fn parses_if_else_chain() {
        parse_ok(
            "kernel void f(float a<>, out float o<>) {
                if (a > 1.0) { o = 1.0; } else if (a > 0.5) { o = 0.5; } else { o = 0.0; }
            }",
        );
    }

    #[test]
    fn parses_ternary_and_precedence() {
        let p = parse_ok("kernel void f(float a<>, out float o<>) { o = a > 0.0 ? a * 2.0 + 1.0 : -a; }");
        let k = p.kernel("f").unwrap();
        // Ensure the body parsed as one assignment of a ternary.
        match &k.body.stmts[0] {
            Stmt::Assign { value, .. } => assert!(matches!(value.kind, ExprKind::Ternary { .. })),
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn parses_swizzles() {
        let p = parse_ok("kernel void f(float4 a<>, out float2 o<>) { o = a.xw + a.rg; }");
        assert_eq!(p.kernels().count(), 1);
    }

    #[test]
    fn rejects_bad_swizzle() {
        let e = parse_err("kernel void f(float4 a<>, out float o<>) { o = a.foo; }");
        assert!(e.has_code("P009"));
    }

    #[test]
    fn rejects_pointer_param() {
        let e = parse_err("kernel void f(float *p, out float o<>) { o = 0.0; }");
        assert!(e.has_code("BA001"));
    }

    #[test]
    fn rejects_address_of() {
        let e = parse_err("kernel void f(float a<>, out float o<>) { o = &a; }");
        assert!(e.has_code("BA001"));
    }

    #[test]
    fn rejects_goto() {
        let e = parse_err("kernel void f(float a<>, out float o<>) { goto end; }");
        assert!(e.has_code("BA007"));
    }

    #[test]
    fn rejects_local_array() {
        let e = parse_err("kernel void f(float a<>, out float o<>) { float buf[4]; o = a; }");
        assert!(e.has_code("BA008"));
    }

    #[test]
    fn parses_helper_function() {
        let p = parse_ok(
            "float sq(float x) { return x * x; }
             kernel void f(float a<>, out float o<>) { o = sq(a); }",
        );
        assert_eq!(p.functions().count(), 1);
        assert!(p.function("sq").unwrap().return_ty.is_some());
    }

    #[test]
    fn parses_vector_constructors() {
        parse_ok("kernel void f(float a<>, out float4 o<>) { o = float4(a, a, 0.0, 1.0); }");
    }

    #[test]
    fn increments_lower_to_assignments() {
        let p = parse_ok(
            "kernel void f(float a<>, out float o<>) { int i; i = 0; for (; i < 4; i++) { } o = a; }",
        );
        assert_eq!(p.kernels().count(), 1);
    }

    #[test]
    fn error_recovery_continues_to_next_kernel() {
        // The first kernel is malformed; the parser should still report and
        // reach EOF without panicking.
        let e = parse_err(
            "kernel void f(float a<>) { o = ; } kernel void g(float a<>, out float o<>) { o = a; }",
        );
        assert!(e.first_error().is_some());
    }

    #[test]
    fn node_ids_are_unique() {
        let p = parse_ok("kernel void f(float a<>, out float o<>) { o = a + a * a; }");
        let mut seen = std::collections::HashSet::new();
        fn walk(e: &Expr, seen: &mut std::collections::HashSet<NodeId>) {
            assert!(seen.insert(e.id), "duplicate node id {}", e.id);
            match &e.kind {
                ExprKind::Binary { lhs, rhs, .. } => {
                    walk(lhs, seen);
                    walk(rhs, seen);
                }
                ExprKind::Unary { operand, .. } => walk(operand, seen),
                _ => {}
            }
        }
        for k in p.kernels() {
            for s in &k.body.stmts {
                if let Stmt::Assign { target, value, .. } = s {
                    walk(target, &mut seen);
                    walk(value, &mut seen);
                }
            }
        }
        assert!(seen.len() >= 4);
    }

    #[test]
    fn swizzle_normalization() {
        assert_eq!(normalize_swizzle("rgba").as_deref(), Some("xyzw"));
        assert_eq!(normalize_swizzle("xy").as_deref(), Some("xy"));
        assert_eq!(normalize_swizzle("stpq").as_deref(), Some("xyzw"));
        assert_eq!(normalize_swizzle("xk"), None);
        assert_eq!(normalize_swizzle("xyzwx"), None);
    }
}
