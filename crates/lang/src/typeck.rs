//! Type checker and semantic analysis for Brook Auto programs.
//!
//! Produces a [`CheckedProgram`]: the parsed tree plus a type for every
//! expression node and a per-kernel summary (reduce operation, outputs,
//! gather ranks) consumed by the certification pass, the CPU backend and
//! the code generator.

use crate::ast::*;
use crate::builtins::{builtin, builtin_arity, builtin_result_type, BuiltinSig};
use crate::diag::{CompileError, Diagnostic};
use crate::span::Span;
use std::collections::HashMap;

/// Associative operations supported by reduction kernels.
///
/// Reductions are executed as multi-pass tree combines (paper §5.5), which
/// is only meaningful for associative operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `r += a`
    Add,
    /// `r *= a`
    Mul,
    /// `r = min(r, a)`
    Min,
    /// `r = max(r, a)`
    Max,
}

impl ReduceOp {
    /// Identity element of the operation.
    pub fn identity(&self) -> f32 {
        match self {
            ReduceOp::Add => 0.0,
            ReduceOp::Mul => 1.0,
            ReduceOp::Min => f32::INFINITY,
            ReduceOp::Max => f32::NEG_INFINITY,
        }
    }

    /// Applies the operation to two scalars.
    pub fn apply(&self, a: f32, b: f32) -> f32 {
        match self {
            ReduceOp::Add => a + b,
            ReduceOp::Mul => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// Summary of one kernel, extracted during checking.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSummary {
    /// Kernel name.
    pub name: String,
    /// True for reduce kernels.
    pub is_reduce: bool,
    /// The reduction operation, for reduce kernels.
    pub reduce_op: Option<ReduceOp>,
    /// Names of `out` stream parameters.
    pub outputs: Vec<String>,
    /// Names of input streams (`<>`).
    pub stream_inputs: Vec<String>,
    /// Names and ranks of gather parameters.
    pub gathers: Vec<(String, u8)>,
    /// Names of scalar (uniform) parameters.
    pub scalars: Vec<String>,
    /// Helper functions (transitively) called by this kernel.
    pub called_functions: Vec<String>,
    /// Whether `indexof` is used (forces the hidden dimension uniform).
    pub uses_indexof: bool,
}

/// A fully checked program.
#[derive(Debug, Clone)]
pub struct CheckedProgram {
    /// The syntax tree.
    pub program: Program,
    /// Type of every expression node.
    pub types: HashMap<NodeId, Type>,
    /// Per-kernel summaries, in source order.
    pub kernels: Vec<KernelSummary>,
    /// Non-error diagnostics produced during checking.
    pub warnings: Vec<Diagnostic>,
}

impl CheckedProgram {
    /// Type of an expression, as recorded by the checker.
    ///
    /// # Panics
    /// Panics if the node id does not belong to this program — that is a
    /// toolchain bug, not a user error.
    pub fn type_of(&self, e: &Expr) -> Type {
        *self
            .types
            .get(&e.id)
            .unwrap_or_else(|| panic!("untyped node {}", e.id))
    }

    /// Finds a kernel summary by name.
    pub fn summary(&self, kernel: &str) -> Option<&KernelSummary> {
        self.kernels.iter().find(|k| k.name == kernel)
    }
}

/// Type-checks a parsed program.
///
/// # Errors
/// Returns every type error found; checking continues past individual
/// errors so all problems surface in one run.
pub fn check(program: Program) -> Result<CheckedProgram, CompileError> {
    let mut cx = Checker {
        types: HashMap::new(),
        diags: Vec::new(),
        functions: HashMap::new(),
        scopes: Vec::new(),
        current_params: HashMap::new(),
        calls: Vec::new(),
        uses_indexof: false,
        reduce_param: None,
        reduce_op: None,
        current_return: None,
    };
    for f in program.functions() {
        if cx
            .functions
            .insert(f.name.clone(), (f.params.clone(), f.return_ty))
            .is_some()
        {
            cx.diags.push(Diagnostic::error(
                "T012",
                format!("duplicate function `{}`", f.name),
                f.span,
            ));
        }
    }
    let mut kernels = Vec::new();
    let mut seen_kernels: HashMap<String, Span> = HashMap::new();
    for f in program.functions() {
        cx.check_function(f);
    }
    for k in program.kernels() {
        if let Some(prev) = seen_kernels.insert(k.name.clone(), k.span) {
            let _ = prev;
            cx.diags.push(Diagnostic::error(
                "T012",
                format!("duplicate kernel `{}`", k.name),
                k.span,
            ));
        }
        kernels.push(cx.check_kernel(k));
    }
    let (errors, warnings): (Vec<_>, Vec<_>) = cx
        .diags
        .into_iter()
        .partition(|d| d.severity == crate::diag::Severity::Error);
    if errors.is_empty() {
        Ok(CheckedProgram {
            program,
            types: cx.types,
            kernels,
            warnings,
        })
    } else {
        let mut all = errors;
        all.extend(warnings);
        Err(CompileError::new(all))
    }
}

/// Convenience: parse then check.
///
/// # Errors
/// Returns lexical, syntactic or semantic diagnostics.
pub fn parse_and_check(src: &str) -> Result<CheckedProgram, CompileError> {
    check(crate::parser::parse(src)?)
}

/// Helper-function signature: parameters and optional return type.
type FnSig = (Vec<(String, Type)>, Option<Type>);

struct Checker {
    types: HashMap<NodeId, Type>,
    diags: Vec<Diagnostic>,
    functions: HashMap<String, FnSig>,
    scopes: Vec<HashMap<String, Type>>,
    /// Kernel parameters of the kernel being checked: name -> (type, kind).
    current_params: HashMap<String, (Type, ParamKind)>,
    calls: Vec<String>,
    uses_indexof: bool,
    reduce_param: Option<String>,
    reduce_op: Option<ReduceOp>,
    current_return: Option<Type>,
}

impl Checker {
    fn err(&mut self, code: &str, msg: impl Into<String>, span: Span) {
        self.diags.push(Diagnostic::error(code, msg, span));
    }

    fn lookup(&self, name: &str) -> Option<Type> {
        for scope in self.scopes.iter().rev() {
            if let Some(t) = scope.get(name) {
                return Some(*t);
            }
        }
        self.current_params.get(name).map(|(t, _)| *t)
    }

    fn declare(&mut self, name: &str, ty: Type, span: Span) {
        if self.current_params.contains_key(name) {
            self.err("T013", format!("`{name}` shadows a kernel parameter"), span);
        }
        if let Some(scope) = self.scopes.last_mut() {
            if scope.insert(name.to_owned(), ty).is_some() {
                self.err("T014", format!("`{name}` redeclared in the same scope"), span);
            }
        }
    }

    fn check_function(&mut self, f: &FunctionDef) {
        self.scopes.clear();
        self.current_params.clear();
        self.current_return = f.return_ty;
        let mut scope = HashMap::new();
        for (name, ty) in &f.params {
            scope.insert(name.clone(), *ty);
        }
        self.scopes.push(scope);
        self.check_block(&f.body, false);
        self.scopes.pop();
        self.current_return = None;
    }

    fn check_kernel(&mut self, k: &KernelDef) -> KernelSummary {
        self.scopes.clear();
        self.current_params.clear();
        self.calls.clear();
        self.uses_indexof = false;
        self.reduce_param = None;
        self.reduce_op = None;
        let mut outputs = Vec::new();
        let mut stream_inputs = Vec::new();
        let mut gathers = Vec::new();
        let mut scalars = Vec::new();
        for p in &k.params {
            if self
                .current_params
                .insert(p.name.clone(), (p.ty, p.kind))
                .is_some()
            {
                self.err("T015", format!("duplicate parameter `{}`", p.name), p.span);
            }
            match p.kind {
                ParamKind::OutStream => outputs.push(p.name.clone()),
                ParamKind::ReduceOut => {
                    if self.reduce_param.is_some() {
                        self.err(
                            "T016",
                            "a reduce kernel has exactly one `reduce` parameter",
                            p.span,
                        );
                    }
                    self.reduce_param = Some(p.name.clone());
                    outputs.push(p.name.clone());
                }
                ParamKind::Stream => stream_inputs.push(p.name.clone()),
                ParamKind::Gather { rank } => gathers.push((p.name.clone(), rank)),
                ParamKind::Scalar => scalars.push(p.name.clone()),
            }
            if !p.ty.is_float() && !matches!(p.kind, ParamKind::Scalar) {
                self.err(
                    "T017",
                    format!("stream `{}` must have a float element type", p.name),
                    p.span,
                );
            }
        }
        if k.is_reduce {
            if self.reduce_param.is_none() {
                self.err("T016", "reduce kernels require a `reduce` parameter", k.span);
            }
            if stream_inputs.len() != 1 {
                self.err("T018", "reduce kernels take exactly one input stream", k.span);
            }
        } else if self.reduce_param.is_some() {
            self.err(
                "T019",
                "`reduce` parameters are only allowed in `reduce` kernels",
                k.span,
            );
        } else if outputs.is_empty() {
            self.err(
                "T020",
                format!("kernel `{}` has no output stream", k.name),
                k.span,
            );
        }
        self.scopes.push(HashMap::new());
        self.check_block(&k.body, true);
        self.scopes.pop();
        if k.is_reduce && self.reduce_op.is_none() {
            self.err(
                "T021",
                "reduce kernel must update its accumulator with an associative operation \
                 (`r += a`, `r *= a`, `r = min(r, a)` or `r = max(r, a)`)",
                k.span,
            );
        }
        let mut called = Vec::new();
        let mut queue: Vec<String> = self.calls.clone();
        while let Some(c) = queue.pop() {
            if called.contains(&c) {
                continue;
            }
            if self.functions.contains_key(&c) {
                called.push(c.clone());
                // Transitive calls are collected later by brook-cert's call
                // graph pass; direct calls suffice here.
            }
        }
        KernelSummary {
            name: k.name.clone(),
            is_reduce: k.is_reduce,
            reduce_op: self.reduce_op,
            outputs,
            stream_inputs,
            gathers,
            scalars,
            called_functions: called,
            uses_indexof: self.uses_indexof,
        }
    }

    fn check_block(&mut self, b: &Block, in_kernel: bool) {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.check_stmt(s, in_kernel);
        }
        self.scopes.pop();
    }

    fn check_stmt(&mut self, s: &Stmt, in_kernel: bool) {
        match s {
            Stmt::Decl { name, ty, init, span } => {
                if let Some(init) = init {
                    let it = self.check_expr(init);
                    if let Some(it) = it {
                        if !assignable(*ty, it) {
                            self.err("T001", format!("cannot initialize `{ty}` from `{it}`"), *span);
                        }
                    }
                }
                self.declare(name, *ty, *span);
            }
            Stmt::Assign {
                target,
                op,
                value,
                span,
            } => {
                let tt = self.check_lvalue(target, *span);
                let vt = self.check_expr(value);
                if let (Some(tt), Some(vt)) = (tt, vt) {
                    if !assignable(tt, vt) {
                        self.err("T001", format!("cannot assign `{vt}` to `{tt}`"), *span);
                    }
                }
                // Detect reduction accumulator updates.
                if in_kernel {
                    self.detect_reduce_update(target, *op, value, *span);
                }
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                span,
            } => {
                self.expect_bool(cond, *span);
                self.check_block(then_block, in_kernel);
                if let Some(e) = else_block {
                    self.check_block(e, in_kernel);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.check_stmt(init, in_kernel);
                }
                if let Some(cond) = cond {
                    self.expect_bool(cond, *span);
                }
                if let Some(step) = step {
                    self.check_stmt(step, in_kernel);
                }
                self.check_block(body, in_kernel);
                self.scopes.pop();
            }
            Stmt::While { cond, body, span } => {
                self.expect_bool(cond, *span);
                self.check_block(body, in_kernel);
            }
            Stmt::DoWhile { body, cond, span } => {
                self.check_block(body, in_kernel);
                self.expect_bool(cond, *span);
            }
            Stmt::Return { value, span } => {
                if in_kernel {
                    if value.is_some() {
                        self.err("T002", "kernels cannot return values", *span);
                    }
                } else {
                    match (self.current_return, value) {
                        (Some(rt), Some(v)) => {
                            if let Some(vt) = self.check_expr(v) {
                                if !assignable(rt, vt) {
                                    self.err(
                                        "T003",
                                        format!("return type mismatch: expected `{rt}`, found `{vt}`"),
                                        *span,
                                    );
                                }
                            }
                        }
                        (Some(rt), None) => {
                            self.err("T003", format!("expected a `{rt}` return value"), *span);
                        }
                        (None, Some(_)) => {
                            self.err("T003", "void function returns a value", *span);
                        }
                        (None, None) => {}
                    }
                }
            }
            Stmt::Expr { expr, .. } => {
                self.check_expr(expr);
            }
            Stmt::Block(b) => self.check_block(b, in_kernel),
        }
    }

    /// Records the reduce op when the statement matches an accumulator
    /// update pattern (`r += a`, `r = min(r, x)`, ...).
    fn detect_reduce_update(&mut self, target: &Expr, op: AssignOp, value: &Expr, span: Span) {
        let Some(reduce_name) = self.reduce_param.clone() else {
            return;
        };
        let ExprKind::Var(tname) = &target.kind else {
            return;
        };
        if tname != &reduce_name {
            return;
        }
        let found = match op {
            AssignOp::AddAssign => Some(ReduceOp::Add),
            AssignOp::MulAssign => Some(ReduceOp::Mul),
            AssignOp::Assign => match &value.kind {
                ExprKind::Call { callee, args } if args.len() == 2 => {
                    let touches_acc = args
                        .iter()
                        .any(|a| matches!(&a.kind, ExprKind::Var(n) if n == &reduce_name));
                    match (callee.as_str(), touches_acc) {
                        ("min", true) => Some(ReduceOp::Min),
                        ("max", true) => Some(ReduceOp::Max),
                        _ => None,
                    }
                }
                // `r = r + a` / `r = a + r` / `r = r * a`.
                ExprKind::Binary { op: bop, lhs, rhs } => {
                    let touches_acc = [lhs, rhs]
                        .iter()
                        .any(|e| matches!(&e.kind, ExprKind::Var(n) if n == &reduce_name));
                    match (bop, touches_acc) {
                        (BinOp::Add, true) => Some(ReduceOp::Add),
                        (BinOp::Mul, true) => Some(ReduceOp::Mul),
                        _ => None,
                    }
                }
                _ => None,
            },
            _ => None,
        };
        match found {
            Some(op) => {
                if let Some(prev) = self.reduce_op {
                    if prev != op {
                        self.err(
                            "T022",
                            "reduce kernel mixes different accumulator operations",
                            span,
                        );
                    }
                }
                self.reduce_op = Some(op);
            }
            None => {
                self.err(
                    "T021",
                    "unsupported accumulator update in reduce kernel: only associative \
                     `+`, `*`, `min`, `max` forms are allowed",
                    span,
                );
            }
        }
    }

    fn expect_bool(&mut self, e: &Expr, span: Span) {
        if let Some(t) = self.check_expr(e) {
            if t != Type::BOOL {
                self.err("T004", format!("condition must be `bool`, found `{t}`"), span);
            }
        }
    }

    fn check_lvalue(&mut self, e: &Expr, span: Span) -> Option<Type> {
        if !e.is_lvalue() {
            self.err("T005", "expression is not assignable", span);
            return None;
        }
        // Writing to a pure-input parameter is rejected.
        if let ExprKind::Var(name) = &e.kind {
            if let Some((_, kind)) = self.current_params.get(name.as_str()) {
                if kind.is_input() && !kind.is_output() {
                    self.err("T006", format!("cannot write to input parameter `{name}`"), span);
                }
            }
        }
        self.check_expr(e)
    }

    fn check_expr(&mut self, e: &Expr) -> Option<Type> {
        let t = self.infer(e)?;
        self.types.insert(e.id, t);
        Some(t)
    }

    fn infer(&mut self, e: &Expr) -> Option<Type> {
        match &e.kind {
            ExprKind::FloatLit(_) => Some(Type::FLOAT),
            ExprKind::IntLit(_) => Some(Type::INT),
            ExprKind::BoolLit(_) => Some(Type::BOOL),
            ExprKind::Var(name) => {
                // Reading an out-stream is rejected (write-only, paper §4).
                if let Some((ty, kind)) = self.current_params.get(name.as_str()).copied() {
                    if kind == ParamKind::OutStream {
                        // Permit reads only through being an assign target;
                        // check_lvalue runs infer too, so allow and let the
                        // dedicated rule in cert flag read-before-write.
                    }
                    if let ParamKind::Gather { .. } = kind {
                        return Some(ty); // Element type; indexing checked at use.
                    }
                    return Some(ty);
                }
                match self.lookup(name) {
                    Some(t) => Some(t),
                    None => {
                        self.err("T007", format!("unknown identifier `{name}`"), e.span);
                        None
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs)?;
                let rt = self.check_expr(rhs)?;
                if op.is_logical() {
                    if lt != Type::BOOL || rt != Type::BOOL {
                        self.err(
                            "T008",
                            format!("`{}` requires bool operands", op.as_str()),
                            e.span,
                        );
                        return None;
                    }
                    return Some(Type::BOOL);
                }
                if op.is_comparison() {
                    if unify(lt, rt).is_none() || lt.width != rt.width && lt.width != 1 && rt.width != 1 {
                        self.err("T009", format!("cannot compare `{lt}` with `{rt}`"), e.span);
                        return None;
                    }
                    if lt.width > 1 || rt.width > 1 {
                        self.err("T009", "comparisons require scalar operands", e.span);
                        return None;
                    }
                    return Some(Type::BOOL);
                }
                match unify(lt, rt) {
                    Some(t) => {
                        if *op == BinOp::Rem && t.scalar == ScalarKind::Float && t.width > 1 {
                            self.err("T010", "`%` requires scalar operands", e.span);
                            return None;
                        }
                        Some(t)
                    }
                    None => {
                        self.err(
                            "T009",
                            format!("mismatched operand types `{lt}` and `{rt}`"),
                            e.span,
                        );
                        None
                    }
                }
            }
            ExprKind::Unary { op, operand } => {
                let t = self.check_expr(operand)?;
                match op {
                    UnOp::Neg => {
                        if t == Type::BOOL {
                            self.err("T009", "cannot negate a bool", e.span);
                            return None;
                        }
                        Some(t)
                    }
                    UnOp::Not => {
                        if t != Type::BOOL {
                            self.err("T009", "`!` requires a bool operand", e.span);
                            return None;
                        }
                        Some(Type::BOOL)
                    }
                }
            }
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let ct = self.check_expr(cond)?;
                if ct != Type::BOOL {
                    self.err(
                        "T004",
                        format!("ternary condition must be `bool`, found `{ct}`"),
                        e.span,
                    );
                }
                let tt = self.check_expr(then_expr)?;
                let et = self.check_expr(else_expr)?;
                match unify(tt, et) {
                    Some(t) => Some(t),
                    None => {
                        self.err(
                            "T009",
                            format!("ternary arms have mismatched types `{tt}` and `{et}`"),
                            e.span,
                        );
                        None
                    }
                }
            }
            ExprKind::Call { callee, args } => self.infer_call(e, callee, args),
            ExprKind::Index { base, indices } => {
                let ExprKind::Var(name) = &base.kind else {
                    self.err("T011", "only gather parameters can be indexed", e.span);
                    return None;
                };
                let Some((ty, kind)) = self.current_params.get(name.as_str()).copied() else {
                    self.err("T011", format!("`{name}` is not a gather parameter"), e.span);
                    return None;
                };
                let ParamKind::Gather { rank } = kind else {
                    self.err("T011", format!("`{name}` is not a gather parameter"), e.span);
                    return None;
                };
                self.types.insert(base.id, ty);
                if indices.len() != rank as usize {
                    self.err(
                        "T011",
                        format!(
                            "gather `{name}` has rank {rank} but {} indices were given",
                            indices.len()
                        ),
                        e.span,
                    );
                }
                for ix in indices {
                    if let Some(it) = self.check_expr(ix) {
                        if !(it == Type::INT || it == Type::FLOAT) {
                            self.err(
                                "BA011",
                                format!("gather index must be scalar int or float, found `{it}`"),
                                ix.span,
                            );
                        }
                    }
                }
                Some(ty)
            }
            ExprKind::Swizzle { base, components } => {
                let bt = self.check_expr(base)?;
                if !bt.is_float() {
                    self.err("T023", format!("cannot swizzle `{bt}`"), e.span);
                    return None;
                }
                let max = components
                    .bytes()
                    .map(|c| match c {
                        b'x' => 1,
                        b'y' => 2,
                        b'z' => 3,
                        _ => 4,
                    })
                    .max()
                    .unwrap_or(1);
                if max > bt.width {
                    self.err(
                        "T023",
                        format!("swizzle `.{components}` out of range for `{bt}`"),
                        e.span,
                    );
                    return None;
                }
                Some(Type::float(components.len() as u8))
            }
            ExprKind::Indexof { stream } => {
                self.uses_indexof = true;
                match self.current_params.get(stream.as_str()) {
                    Some((_, ParamKind::Stream | ParamKind::OutStream | ParamKind::ReduceOut)) => {
                        Some(Type::FLOAT2)
                    }
                    Some(_) => {
                        self.err(
                            "T024",
                            format!("`indexof` requires a stream parameter, `{stream}` is not one"),
                            e.span,
                        );
                        None
                    }
                    None => {
                        self.err("T007", format!("unknown identifier `{stream}`"), e.span);
                        None
                    }
                }
            }
        }
    }

    fn infer_call(&mut self, e: &Expr, callee: &str, args: &[Expr]) -> Option<Type> {
        // Vector constructors and casts.
        if let Some(width) = match callee {
            "float" => Some(1u8),
            "float2" => Some(2),
            "float3" => Some(3),
            "float4" => Some(4),
            _ => None,
        } {
            let mut total = 0u8;
            for a in args {
                let at = self.check_expr(a)?;
                if !(at.is_float() || at == Type::INT) {
                    self.err(
                        "T025",
                        format!("constructor argument must be numeric, found `{at}`"),
                        a.span,
                    );
                    return None;
                }
                total += if at == Type::INT { 1 } else { at.width };
            }
            if args.len() == 1 && total == 1 {
                // Splat or scalar cast.
                return Some(Type::float(width));
            }
            if total != width {
                self.err(
                    "T025",
                    format!("`{callee}` constructor needs {width} components, found {total}"),
                    e.span,
                );
                return None;
            }
            return Some(Type::float(width));
        }
        if callee == "int" {
            if args.len() != 1 {
                self.err("T025", "`int` cast takes one argument", e.span);
                return None;
            }
            let at = self.check_expr(&args[0])?;
            if !(at == Type::FLOAT || at == Type::INT) {
                self.err("T025", format!("cannot cast `{at}` to int"), e.span);
                return None;
            }
            return Some(Type::INT);
        }
        // Builtins.
        if let Some(b) = builtin(callee) {
            if args.len() != builtin_arity(b) {
                self.err(
                    "T026",
                    format!(
                        "`{callee}` takes {} argument(s), found {}",
                        builtin_arity(b),
                        args.len()
                    ),
                    e.span,
                );
                return None;
            }
            let mut width = 1u8;
            let mut tys = Vec::new();
            for a in args {
                let at = self.check_expr(a)?;
                let at = if at == Type::INT { Type::FLOAT } else { at };
                if !at.is_float() {
                    self.err(
                        "T026",
                        format!("`{callee}` requires float arguments, found `{at}`"),
                        a.span,
                    );
                    return None;
                }
                width = width.max(at.width);
                tys.push(at);
            }
            // All non-scalar arguments must agree on the width.
            if tys.iter().any(|t| t.width != 1 && t.width != width) {
                self.err(
                    "T026",
                    format!("`{callee}` arguments have mismatched widths"),
                    e.span,
                );
                return None;
            }
            if matches!(b.sig, BuiltinSig::DotLike) && tys.iter().any(|t| t.width != width) {
                self.err("T026", format!("`{callee}` requires equal-width vectors"), e.span);
                return None;
            }
            return Some(builtin_result_type(b, width));
        }
        // Helper functions.
        if let Some((params, ret)) = self.functions.get(callee).cloned() {
            if args.len() != params.len() {
                self.err(
                    "T027",
                    format!(
                        "`{callee}` takes {} argument(s), found {}",
                        params.len(),
                        args.len()
                    ),
                    e.span,
                );
                return None;
            }
            for (a, (pname, pty)) in args.iter().zip(&params) {
                if let Some(at) = self.check_expr(a) {
                    if !assignable(*pty, at) {
                        self.err(
                            "T027",
                            format!("argument `{pname}` of `{callee}` expects `{pty}`, found `{at}`"),
                            a.span,
                        );
                    }
                }
            }
            self.calls.push(callee.to_owned());
            return match ret {
                Some(t) => Some(t),
                None => {
                    self.err(
                        "T027",
                        format!("void function `{callee}` used as a value"),
                        e.span,
                    );
                    None
                }
            };
        }
        self.err(
            "BA008",
            format!(
                "call to unknown function `{callee}`: only builtins and helper functions \
                 defined in the translation unit are allowed (no external linkage, no allocation)"
            ),
            e.span,
        );
        None
    }
}

/// Implicit-conversion-aware type equality used for assignments.
fn assignable(dst: Type, src: Type) -> bool {
    if dst == src {
        return true;
    }
    // int literals / ints convert to float implicitly (C-style).
    if dst.is_float() && src == Type::INT {
        return dst.width == 1;
    }
    // scalar float broadcasts into a vector on assignment.
    if dst.is_float() && src == Type::FLOAT {
        return true;
    }
    false
}

/// Binary-operation result type with scalar broadcast and int->float
/// promotion; `None` when incompatible.
fn unify(a: Type, b: Type) -> Option<Type> {
    if a == b {
        return Some(a);
    }
    let promote = |t: Type| if t == Type::INT { Type::FLOAT } else { t };
    let (a, b) = (promote(a), promote(b));
    if a == b {
        return Some(a);
    }
    if a.is_float() && b.is_float() {
        if a.width == 1 {
            return Some(b);
        }
        if b.width == 1 {
            return Some(a);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_ok(src: &str) -> CheckedProgram {
        parse_and_check(src).unwrap_or_else(|e| panic!("check failed: {:?}", e.diagnostics))
    }

    fn check_err(src: &str) -> CompileError {
        parse_and_check(src).expect_err("expected type error")
    }

    #[test]
    fn simple_kernel_types() {
        let cp = check_ok("kernel void add(float a<>, float b<>, out float c<>) { c = a + b; }");
        assert_eq!(cp.kernels.len(), 1);
        assert_eq!(cp.kernels[0].outputs, vec!["c"]);
        assert_eq!(cp.kernels[0].stream_inputs, vec!["a", "b"]);
    }

    #[test]
    fn reduce_kernel_add_detected() {
        let cp = check_ok("reduce void sum(float a<>, reduce float r<>) { r += a; }");
        assert_eq!(cp.kernels[0].reduce_op, Some(ReduceOp::Add));
    }

    #[test]
    fn reduce_kernel_min_detected() {
        let cp = check_ok("reduce void m(float a<>, reduce float r<>) { r = min(r, a); }");
        assert_eq!(cp.kernels[0].reduce_op, Some(ReduceOp::Min));
    }

    #[test]
    fn reduce_kernel_explicit_add_form() {
        let cp = check_ok("reduce void s(float a<>, reduce float r<>) { r = r + a; }");
        assert_eq!(cp.kernels[0].reduce_op, Some(ReduceOp::Add));
    }

    #[test]
    fn reduce_without_update_rejected() {
        let e = check_err("reduce void bad(float a<>, reduce float r<>) { float x = a; }");
        assert!(e.has_code("T021"));
    }

    #[test]
    fn reduce_with_sub_rejected() {
        let e = check_err("reduce void bad(float a<>, reduce float r<>) { r -= a; }");
        assert!(e.has_code("T021"));
    }

    #[test]
    fn kernel_without_output_rejected() {
        let e = check_err("kernel void f(float a<>) { float x = a; }");
        assert!(e.has_code("T020"));
    }

    #[test]
    fn writing_input_rejected() {
        let e = check_err("kernel void f(float a<>, out float o<>) { a = 1.0; o = a; }");
        assert!(e.has_code("T006"));
    }

    #[test]
    fn unknown_identifier_rejected() {
        let e = check_err("kernel void f(float a<>, out float o<>) { o = zz; }");
        assert!(e.has_code("T007"));
    }

    #[test]
    fn unknown_function_is_ba008() {
        let e = check_err("kernel void f(float a<>, out float o<>) { o = malloc(a); }");
        assert!(e.has_code("BA008"));
    }

    #[test]
    fn condition_must_be_bool() {
        let e = check_err("kernel void f(float a<>, out float o<>) { if (a) { o = 1.0; } }");
        assert!(e.has_code("T004"));
    }

    #[test]
    fn vector_broadcast_allowed() {
        check_ok("kernel void f(float4 a<>, out float4 o<>) { o = a * 2.0; }");
        check_ok("kernel void f2(float4 a<>, out float4 o<>) { o = 2.0 * a; }");
    }

    #[test]
    fn mismatched_vectors_rejected() {
        let e = check_err("kernel void f(float2 a<>, float3 b<>, out float3 o<>) { o = a + b; }");
        assert!(e.has_code("T009"));
    }

    #[test]
    fn int_promotes_to_float() {
        check_ok("kernel void f(float a<>, out float o<>) { o = a + 1; }");
    }

    #[test]
    fn swizzle_types() {
        let cp = check_ok("kernel void f(float4 a<>, out float2 o<>) { o = a.xw; }");
        assert_eq!(cp.kernels.len(), 1);
    }

    #[test]
    fn swizzle_out_of_range_rejected() {
        let e = check_err("kernel void f(float2 a<>, out float o<>) { o = a.z; }");
        assert!(e.has_code("T023"));
    }

    #[test]
    fn gather_rank_checked() {
        let e = check_err("kernel void f(float g[][], float i<>, out float o<>) { o = g[1]; }");
        assert!(e.has_code("T011"));
    }

    #[test]
    fn gather_ok() {
        let cp = check_ok("kernel void f(float g[][], float i<>, out float o<>) { o = g[int(i)][0]; }");
        assert_eq!(cp.kernels[0].gathers, vec![("g".to_string(), 2)]);
    }

    #[test]
    fn indexof_types_as_float2() {
        let cp =
            check_ok("kernel void f(float a<>, out float o<>) { float2 p = indexof(o); o = p.x + p.y; }");
        assert!(cp.kernels[0].uses_indexof);
    }

    #[test]
    fn indexof_on_scalar_param_rejected() {
        let e = check_err("kernel void f(float a<>, float s, out float o<>) { o = indexof(s).x; }");
        assert!(e.has_code("T024"));
    }

    #[test]
    fn helper_function_call_checked() {
        let cp = check_ok(
            "float sq(float x) { return x * x; }
             kernel void f(float a<>, out float o<>) { o = sq(a); }",
        );
        assert_eq!(cp.kernels[0].called_functions, vec!["sq"]);
    }

    #[test]
    fn helper_wrong_arity_rejected() {
        let e = check_err(
            "float sq(float x) { return x * x; }
             kernel void f(float a<>, out float o<>) { o = sq(a, a); }",
        );
        assert!(e.has_code("T027"));
    }

    #[test]
    fn constructor_component_count_checked() {
        let e = check_err("kernel void f(float a<>, out float4 o<>) { o = float4(a, a); }");
        assert!(e.has_code("T025"));
    }

    #[test]
    fn constructor_splat_allowed() {
        check_ok("kernel void f(float a<>, out float4 o<>) { o = float4(a); }");
    }

    #[test]
    fn duplicate_kernel_rejected() {
        let e = check_err(
            "kernel void f(float a<>, out float o<>) { o = a; }
             kernel void f(float a<>, out float o<>) { o = a; }",
        );
        assert!(e.has_code("T012"));
    }

    #[test]
    fn shadowing_parameter_rejected() {
        let e = check_err("kernel void f(float a<>, out float o<>) { float a = 1.0; o = a; }");
        assert!(e.has_code("T013"));
    }

    #[test]
    fn reduce_op_identities() {
        assert_eq!(ReduceOp::Add.identity(), 0.0);
        assert_eq!(ReduceOp::Mul.identity(), 1.0);
        assert_eq!(ReduceOp::Min.apply(3.0, 1.0), 1.0);
        assert_eq!(ReduceOp::Max.apply(3.0, 1.0), 3.0);
    }
}
