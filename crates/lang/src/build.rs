//! Programmatic AST construction.
//!
//! The parser is not the only producer of Brook syntax trees: the
//! `brook-fuzz` generator assembles random well-typed kernels directly at
//! the AST level, and tooling (e.g. kernel specializers) may want to do
//! the same. [`AstBuilder`] owns the one piece of bookkeeping a
//! hand-built tree needs — fresh, unique [`NodeId`]s — and provides
//! constructors for every expression and statement form with synthetic
//! spans.
//!
//! A builder-produced [`Program`] is a first-class citizen: it
//! pretty-prints through [`crate::pretty`], re-parses, type-checks and
//! certifies exactly like a parsed one.
//!
//! ```
//! use brook_lang::ast::{ParamKind, Type};
//! use brook_lang::build::AstBuilder;
//!
//! let mut b = AstBuilder::new();
//! let a = b.var("a");
//! let two = b.float_lit(2.0);
//! let rhs = b.binary(brook_lang::ast::BinOp::Mul, a, two);
//! let o = b.var("o");
//! let body = vec![b.assign(o, rhs)];
//! let kernel = b.kernel(
//!     "dbl",
//!     vec![
//!         b.param("a", Type::FLOAT, ParamKind::Stream),
//!         b.param("o", Type::FLOAT, ParamKind::OutStream),
//!     ],
//!     body,
//! );
//! let program = b.program(vec![kernel]);
//! let src = brook_lang::pretty::print_program(&program);
//! brook_lang::parse_and_check(&src).expect("builder output is valid Brook");
//! ```

use crate::ast::*;
use crate::span::Span;
use std::collections::HashMap;

/// Identifier maps for [`AstBuilder::clone_stmt_renamed`]: how variable
/// references and `indexof` targets translate into the destination
/// kernel. Lookups are total — a name absent from the relevant map makes
/// the clone fail, which is what an inliner wants: silently keeping an
/// unmapped identifier would capture whatever happens to share its name
/// in the destination scope.
#[derive(Debug, Default, Clone)]
pub struct RenameMap {
    /// Variable/parameter/local renames (also applied to `Decl` names).
    pub vars: HashMap<String, String>,
    /// `indexof(name)` target renames. Kept separate from `vars` because
    /// an inliner typically redirects every `indexof` to the fused
    /// kernel's output (all elementwise streams share the domain) while
    /// plain reads of the same parameter become a let-bound local.
    pub indexof: HashMap<String, String>,
}

/// Local variable names declared anywhere in a block, in declaration
/// order (recursing into nested control flow, including `for`
/// initializers). An inliner renames these before cloning so a
/// producer's locals can never capture a consumer's.
pub fn declared_locals(block: &Block) -> Vec<String> {
    fn walk(b: &Block, out: &mut Vec<String>) {
        for s in &b.stmts {
            walk_stmt(s, out);
        }
    }
    fn walk_stmt(s: &Stmt, out: &mut Vec<String>) {
        match s {
            Stmt::Decl { name, .. } => out.push(name.clone()),
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                walk(then_block, out);
                if let Some(e) = else_block {
                    walk(e, out);
                }
            }
            Stmt::For { init, step, body, .. } => {
                if let Some(i) = init {
                    walk_stmt(i, out);
                }
                if let Some(st) = step {
                    walk_stmt(st, out);
                }
                walk(body, out);
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => walk(body, out),
            Stmt::Block(b) => walk(b, out),
            Stmt::Assign { .. } | Stmt::Return { .. } | Stmt::Expr { .. } => {}
        }
    }
    let mut out = Vec::new();
    walk(block, &mut out);
    out
}

/// Constructs AST nodes with unique ids and synthetic spans.
#[derive(Debug, Default)]
pub struct AstBuilder {
    next_id: NodeId,
}

impl AstBuilder {
    /// A fresh builder; ids start at 0.
    pub fn new() -> Self {
        AstBuilder { next_id: 0 }
    }

    fn id(&mut self) -> NodeId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn expr(&mut self, kind: ExprKind) -> Expr {
        Expr {
            id: self.id(),
            kind,
            span: Span::synthetic(),
        }
    }

    // -- expressions --------------------------------------------------------

    /// Float literal.
    pub fn float_lit(&mut self, v: f32) -> Expr {
        self.expr(ExprKind::FloatLit(v))
    }

    /// Integer literal.
    pub fn int_lit(&mut self, v: i64) -> Expr {
        self.expr(ExprKind::IntLit(v))
    }

    /// Boolean literal.
    pub fn bool_lit(&mut self, v: bool) -> Expr {
        self.expr(ExprKind::BoolLit(v))
    }

    /// Variable or parameter reference.
    pub fn var(&mut self, name: impl Into<String>) -> Expr {
        self.expr(ExprKind::Var(name.into()))
    }

    /// Binary operation.
    pub fn binary(&mut self, op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        self.expr(ExprKind::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    /// Unary operation.
    pub fn unary(&mut self, op: UnOp, operand: Expr) -> Expr {
        self.expr(ExprKind::Unary {
            op,
            operand: Box::new(operand),
        })
    }

    /// `cond ? t : f`.
    pub fn ternary(&mut self, cond: Expr, then_expr: Expr, else_expr: Expr) -> Expr {
        self.expr(ExprKind::Ternary {
            cond: Box::new(cond),
            then_expr: Box::new(then_expr),
            else_expr: Box::new(else_expr),
        })
    }

    /// Builtin/helper/constructor call.
    pub fn call(&mut self, callee: impl Into<String>, args: Vec<Expr>) -> Expr {
        self.expr(ExprKind::Call {
            callee: callee.into(),
            args,
        })
    }

    /// Gather access `base[i0]..[iN]`.
    pub fn index(&mut self, base: Expr, indices: Vec<Expr>) -> Expr {
        self.expr(ExprKind::Index {
            base: Box::new(base),
            indices,
        })
    }

    /// Component access/swizzle (`components` in normalized `xyzw` form).
    pub fn swizzle(&mut self, base: Expr, components: impl Into<String>) -> Expr {
        self.expr(ExprKind::Swizzle {
            base: Box::new(base),
            components: components.into(),
        })
    }

    /// `indexof(stream)`.
    pub fn indexof(&mut self, stream: impl Into<String>) -> Expr {
        self.expr(ExprKind::Indexof {
            stream: stream.into(),
        })
    }

    // -- statements ---------------------------------------------------------

    /// Local declaration, optionally initialized.
    pub fn decl(&mut self, name: impl Into<String>, ty: Type, init: Option<Expr>) -> Stmt {
        Stmt::Decl {
            name: name.into(),
            ty,
            init,
            span: Span::synthetic(),
        }
    }

    /// Plain `target = value;`.
    pub fn assign(&mut self, target: Expr, value: Expr) -> Stmt {
        self.assign_op(target, AssignOp::Assign, value)
    }

    /// Compound assignment (`+=`, `-=`, ...).
    pub fn assign_op(&mut self, target: Expr, op: AssignOp, value: Expr) -> Stmt {
        Stmt::Assign {
            target,
            op,
            value,
            span: Span::synthetic(),
        }
    }

    /// `if (cond) { then } else { else }`.
    pub fn if_stmt(&mut self, cond: Expr, then_stmts: Vec<Stmt>, else_stmts: Option<Vec<Stmt>>) -> Stmt {
        Stmt::If {
            cond,
            then_block: self.block(then_stmts),
            else_block: else_stmts.map(|s| self.block(s)),
            span: Span::synthetic(),
        }
    }

    /// The canonical certifiable counted loop
    /// `for (var = start; var < bound; var += 1) { body }` — the shape
    /// the `brook-cert` BA003 analysis deduces a static trip count for.
    pub fn counted_for(&mut self, var: &str, start: i64, bound: i64, body: Vec<Stmt>) -> Stmt {
        let init_value = self.int_lit(start);
        let init_target = self.var(var);
        let init = self.assign(init_target, init_value);
        let cond_lhs = self.var(var);
        let cond_rhs = self.int_lit(bound);
        let cond = self.binary(BinOp::Lt, cond_lhs, cond_rhs);
        let step_target = self.var(var);
        let step_value = self.int_lit(1);
        let step = self.assign_op(step_target, AssignOp::AddAssign, step_value);
        self.for_loop(Some(init), Some(cond), Some(step), body)
    }

    /// General `for` loop from explicit parts.
    pub fn for_loop(
        &mut self,
        init: Option<Stmt>,
        cond: Option<Expr>,
        step: Option<Stmt>,
        body: Vec<Stmt>,
    ) -> Stmt {
        Stmt::For {
            init: init.map(Box::new),
            cond,
            step: step.map(Box::new),
            body: self.block(body),
            span: Span::synthetic(),
        }
    }

    /// `while (cond) { body }` — deliberately constructible: the fuzz
    /// generator uses it to assert the BA003 gate rejects it.
    pub fn while_loop(&mut self, cond: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::While {
            cond,
            body: self.block(body),
            span: Span::synthetic(),
        }
    }

    /// `return e;` / `return;` (helper functions only).
    pub fn ret(&mut self, value: Option<Expr>) -> Stmt {
        Stmt::Return {
            value,
            span: Span::synthetic(),
        }
    }

    /// A `{ ... }` block.
    pub fn block(&mut self, stmts: Vec<Stmt>) -> Block {
        Block {
            stmts,
            span: Span::synthetic(),
        }
    }

    // -- renamed deep clones (kernel inlining support) -----------------------

    /// Deep-clones an expression with fresh node ids, renaming every
    /// identifier through `map` — the expression-level primitive for
    /// inlining one kernel's body into another as let-bound locals.
    ///
    /// # Errors
    /// Returns the offending name when a variable or `indexof` target has
    /// no entry in the relevant map (callees of `Call` are *not* renamed;
    /// the caller decides whether helper calls are admissible).
    pub fn clone_expr_renamed(&mut self, e: &Expr, map: &RenameMap) -> Result<Expr, String> {
        let kind = match &e.kind {
            ExprKind::FloatLit(v) => ExprKind::FloatLit(*v),
            ExprKind::IntLit(v) => ExprKind::IntLit(*v),
            ExprKind::BoolLit(v) => ExprKind::BoolLit(*v),
            ExprKind::Var(name) => ExprKind::Var(
                map.vars
                    .get(name)
                    .cloned()
                    .ok_or_else(|| format!("unmapped variable `{name}`"))?,
            ),
            ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
                op: *op,
                lhs: Box::new(self.clone_expr_renamed(lhs, map)?),
                rhs: Box::new(self.clone_expr_renamed(rhs, map)?),
            },
            ExprKind::Unary { op, operand } => ExprKind::Unary {
                op: *op,
                operand: Box::new(self.clone_expr_renamed(operand, map)?),
            },
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => ExprKind::Ternary {
                cond: Box::new(self.clone_expr_renamed(cond, map)?),
                then_expr: Box::new(self.clone_expr_renamed(then_expr, map)?),
                else_expr: Box::new(self.clone_expr_renamed(else_expr, map)?),
            },
            ExprKind::Call { callee, args } => ExprKind::Call {
                callee: callee.clone(),
                args: args
                    .iter()
                    .map(|a| self.clone_expr_renamed(a, map))
                    .collect::<Result<_, _>>()?,
            },
            ExprKind::Index { base, indices } => ExprKind::Index {
                base: Box::new(self.clone_expr_renamed(base, map)?),
                indices: indices
                    .iter()
                    .map(|i| self.clone_expr_renamed(i, map))
                    .collect::<Result<_, _>>()?,
            },
            ExprKind::Swizzle { base, components } => ExprKind::Swizzle {
                base: Box::new(self.clone_expr_renamed(base, map)?),
                components: components.clone(),
            },
            ExprKind::Indexof { stream } => ExprKind::Indexof {
                stream: map
                    .indexof
                    .get(stream)
                    .cloned()
                    .ok_or_else(|| format!("unmapped indexof target `{stream}`"))?,
            },
        };
        Ok(self.expr(kind))
    }

    /// Deep-clones a statement with fresh node ids, renaming every
    /// identifier (including `Decl` names) through `map`.
    ///
    /// # Errors
    /// As [`AstBuilder::clone_expr_renamed`].
    pub fn clone_stmt_renamed(&mut self, s: &Stmt, map: &RenameMap) -> Result<Stmt, String> {
        Ok(match s {
            Stmt::Decl { name, ty, init, .. } => Stmt::Decl {
                name: map
                    .vars
                    .get(name)
                    .cloned()
                    .ok_or_else(|| format!("unmapped local `{name}`"))?,
                ty: *ty,
                init: init
                    .as_ref()
                    .map(|e| self.clone_expr_renamed(e, map))
                    .transpose()?,
                span: Span::synthetic(),
            },
            Stmt::Assign {
                target, op, value, ..
            } => Stmt::Assign {
                target: self.clone_expr_renamed(target, map)?,
                op: *op,
                value: self.clone_expr_renamed(value, map)?,
                span: Span::synthetic(),
            },
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => Stmt::If {
                cond: self.clone_expr_renamed(cond, map)?,
                then_block: self.clone_block_renamed(then_block, map)?,
                else_block: else_block
                    .as_ref()
                    .map(|b| self.clone_block_renamed(b, map))
                    .transpose()?,
                span: Span::synthetic(),
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => Stmt::For {
                init: init
                    .as_ref()
                    .map(|i| self.clone_stmt_renamed(i, map).map(Box::new))
                    .transpose()?,
                cond: cond
                    .as_ref()
                    .map(|c| self.clone_expr_renamed(c, map))
                    .transpose()?,
                step: step
                    .as_ref()
                    .map(|st| self.clone_stmt_renamed(st, map).map(Box::new))
                    .transpose()?,
                body: self.clone_block_renamed(body, map)?,
                span: Span::synthetic(),
            },
            Stmt::While { cond, body, .. } => Stmt::While {
                cond: self.clone_expr_renamed(cond, map)?,
                body: self.clone_block_renamed(body, map)?,
                span: Span::synthetic(),
            },
            Stmt::DoWhile { body, cond, .. } => Stmt::DoWhile {
                body: self.clone_block_renamed(body, map)?,
                cond: self.clone_expr_renamed(cond, map)?,
                span: Span::synthetic(),
            },
            Stmt::Return { value, .. } => Stmt::Return {
                value: value
                    .as_ref()
                    .map(|v| self.clone_expr_renamed(v, map))
                    .transpose()?,
                span: Span::synthetic(),
            },
            Stmt::Expr { expr, .. } => Stmt::Expr {
                expr: self.clone_expr_renamed(expr, map)?,
                span: Span::synthetic(),
            },
            Stmt::Block(b) => Stmt::Block(self.clone_block_renamed(b, map)?),
        })
    }

    /// Deep-clones a block with fresh node ids through `map`.
    ///
    /// # Errors
    /// As [`AstBuilder::clone_expr_renamed`].
    pub fn clone_block_renamed(&mut self, b: &Block, map: &RenameMap) -> Result<Block, String> {
        let stmts = b
            .stmts
            .iter()
            .map(|s| self.clone_stmt_renamed(s, map))
            .collect::<Result<_, _>>()?;
        Ok(self.block(stmts))
    }

    // -- items --------------------------------------------------------------

    /// One kernel parameter.
    pub fn param(&self, name: impl Into<String>, ty: Type, kind: ParamKind) -> Param {
        Param {
            name: name.into(),
            ty,
            kind,
            span: Span::synthetic(),
        }
    }

    /// A `kernel void` definition.
    pub fn kernel(&mut self, name: impl Into<String>, params: Vec<Param>, body: Vec<Stmt>) -> Item {
        self.kernel_def(name, false, params, body)
    }

    /// A `reduce void` definition.
    pub fn reduce_kernel(&mut self, name: impl Into<String>, params: Vec<Param>, body: Vec<Stmt>) -> Item {
        self.kernel_def(name, true, params, body)
    }

    fn kernel_def(
        &mut self,
        name: impl Into<String>,
        is_reduce: bool,
        params: Vec<Param>,
        body: Vec<Stmt>,
    ) -> Item {
        Item::Kernel(KernelDef {
            name: name.into(),
            is_reduce,
            params,
            body: self.block(body),
            span: Span::synthetic(),
        })
    }

    /// A helper function definition.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        return_ty: Option<Type>,
        params: Vec<(String, Type)>,
        body: Vec<Stmt>,
    ) -> Item {
        Item::Function(FunctionDef {
            name: name.into(),
            return_ty,
            params,
            body: self.block(body),
            span: Span::synthetic(),
        })
    }

    /// Finishes the program, recording the id watermark so later passes
    /// can keep allocating unique ids.
    pub fn program(&mut self, items: Vec<Item>) -> Program {
        Program {
            items,
            next_node_id: self.next_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::print_program;

    #[test]
    fn built_kernel_parses_and_checks() {
        let mut b = AstBuilder::new();
        let two = b.float_lit(2.0);
        let a = b.var("a");
        let rhs = b.binary(BinOp::Mul, a, two);
        let o = b.var("o");
        let body = vec![b.assign(o, rhs)];
        let k = b.kernel(
            "dbl",
            vec![
                b.param("a", Type::FLOAT, ParamKind::Stream),
                b.param("o", Type::FLOAT, ParamKind::OutStream),
            ],
            body,
        );
        let p = b.program(vec![k]);
        let src = print_program(&p);
        let checked = crate::parse_and_check(&src).expect("valid");
        assert_eq!(checked.kernels[0].outputs, vec!["o"]);
    }

    #[test]
    fn ids_are_unique() {
        let mut b = AstBuilder::new();
        let e1 = b.float_lit(1.0);
        let e2 = b.float_lit(1.0);
        assert_ne!(e1.id, e2.id);
    }

    #[test]
    fn counted_for_is_ba003_deducible() {
        let mut b = AstBuilder::new();
        let s = b.var("s");
        let a = b.var("a");
        let add = b.assign_op(s, AssignOp::AddAssign, a);
        let loop_stmt = b.counted_for("i", 0, 8, vec![add]);
        let zero = b.float_lit(0.0);
        let o = b.var("o");
        let s2 = b.var("s");
        let body = vec![
            b.decl("s", Type::FLOAT, Some(zero)),
            b.decl("i", Type::INT, None),
            loop_stmt,
            b.assign(o, s2),
        ];
        let k = b.kernel(
            "acc",
            vec![
                b.param("a", Type::FLOAT, ParamKind::Stream),
                b.param("o", Type::FLOAT, ParamKind::OutStream),
            ],
            body,
        );
        let p = b.program(vec![k]);
        let src = print_program(&p);
        crate::parse_and_check(&src).expect("valid");
        assert!(src.contains("for (i = 0; (i < 8); i += 1)"), "{src}");
    }

    /// The inlining primitive: clone a producer's body with its output
    /// renamed to a local, splice it ahead of a consumer's body, and the
    /// result parses, checks and computes the composition.
    #[test]
    fn renamed_clone_inlines_producer_body() {
        let producer = crate::parse_and_check("kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }")
            .expect("producer");
        let pk = producer.program.kernel("dbl").unwrap().clone();
        let mut b = AstBuilder::new();
        let mut map = RenameMap::default();
        map.vars.insert("a".into(), "in0".into());
        map.vars.insert("o".into(), "t0".into());
        map.indexof.insert("a".into(), "out0".into());
        map.indexof.insert("o".into(), "out0".into());
        let zero = b.float_lit(0.0);
        let mut body = vec![b.decl("t0", Type::FLOAT, Some(zero))];
        for s in &pk.body.stmts {
            body.push(b.clone_stmt_renamed(s, &map).expect("clone"));
        }
        let t = b.var("t0");
        let one = b.float_lit(1.0);
        let sum = b.binary(BinOp::Add, t, one);
        let out = b.var("out0");
        body.push(b.assign(out, sum));
        let k = b.kernel(
            "fused",
            vec![
                b.param("in0", Type::FLOAT, ParamKind::Stream),
                b.param("out0", Type::FLOAT, ParamKind::OutStream),
            ],
            body,
        );
        let p = b.program(vec![k]);
        let src = print_program(&p);
        let checked = crate::parse_and_check(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert_eq!(checked.kernels[0].outputs, vec!["out0"]);
        assert!(src.contains("t0 = (in0 * 2"), "{src}");
    }

    /// Unmapped identifiers fail the clone instead of silently capturing
    /// destination-scope names; `indexof` uses its own map.
    #[test]
    fn renamed_clone_rejects_unmapped_names() {
        let mut b = AstBuilder::new();
        let v = b.var("mystery");
        let o = b.var("o");
        let assign = b.assign(o, v);
        let mut map = RenameMap::default();
        map.vars.insert("o".into(), "t0".into());
        let err = b.clone_stmt_renamed(&assign, &map).unwrap_err();
        assert!(err.contains("mystery"), "{err}");

        let ix = b.indexof("g");
        let o2 = b.var("o");
        let assign2 = b.assign(o2, ix);
        let err2 = b.clone_stmt_renamed(&assign2, &map).unwrap_err();
        assert!(err2.contains("indexof") && err2.contains('g'), "{err2}");
    }

    /// Locals are collected from every nesting level, including `for`
    /// initializers.
    #[test]
    fn declared_locals_recurse_into_control_flow() {
        let checked = crate::parse_and_check(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 4; i += 1) { float inner = a; s += inner; }
                if (a > 0.0) { float branch = 1.0; s += branch; }
                o = s;
            }",
        )
        .expect("valid");
        let k = checked.program.kernel("f").unwrap();
        let locals = declared_locals(&k.body);
        assert_eq!(locals, vec!["s", "i", "inner", "branch"]);
    }

    #[test]
    fn program_records_id_watermark() {
        let mut b = AstBuilder::new();
        let o = b.var("o");
        let a = b.var("a");
        let body = vec![b.assign(o, a)];
        let k = b.kernel(
            "f",
            vec![
                b.param("a", Type::FLOAT, ParamKind::Stream),
                b.param("o", Type::FLOAT, ParamKind::OutStream),
            ],
            body,
        );
        let p = b.program(vec![k]);
        assert!(p.next_node_id >= 2);
    }
}
