//! Programmatic AST construction.
//!
//! The parser is not the only producer of Brook syntax trees: the
//! `brook-fuzz` generator assembles random well-typed kernels directly at
//! the AST level, and tooling (e.g. kernel specializers) may want to do
//! the same. [`AstBuilder`] owns the one piece of bookkeeping a
//! hand-built tree needs — fresh, unique [`NodeId`]s — and provides
//! constructors for every expression and statement form with synthetic
//! spans.
//!
//! A builder-produced [`Program`] is a first-class citizen: it
//! pretty-prints through [`crate::pretty`], re-parses, type-checks and
//! certifies exactly like a parsed one.
//!
//! ```
//! use brook_lang::ast::{ParamKind, Type};
//! use brook_lang::build::AstBuilder;
//!
//! let mut b = AstBuilder::new();
//! let a = b.var("a");
//! let two = b.float_lit(2.0);
//! let rhs = b.binary(brook_lang::ast::BinOp::Mul, a, two);
//! let o = b.var("o");
//! let body = vec![b.assign(o, rhs)];
//! let kernel = b.kernel(
//!     "dbl",
//!     vec![
//!         b.param("a", Type::FLOAT, ParamKind::Stream),
//!         b.param("o", Type::FLOAT, ParamKind::OutStream),
//!     ],
//!     body,
//! );
//! let program = b.program(vec![kernel]);
//! let src = brook_lang::pretty::print_program(&program);
//! brook_lang::parse_and_check(&src).expect("builder output is valid Brook");
//! ```

use crate::ast::*;
use crate::span::Span;

/// Constructs AST nodes with unique ids and synthetic spans.
#[derive(Debug, Default)]
pub struct AstBuilder {
    next_id: NodeId,
}

impl AstBuilder {
    /// A fresh builder; ids start at 0.
    pub fn new() -> Self {
        AstBuilder { next_id: 0 }
    }

    fn id(&mut self) -> NodeId {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn expr(&mut self, kind: ExprKind) -> Expr {
        Expr {
            id: self.id(),
            kind,
            span: Span::synthetic(),
        }
    }

    // -- expressions --------------------------------------------------------

    /// Float literal.
    pub fn float_lit(&mut self, v: f32) -> Expr {
        self.expr(ExprKind::FloatLit(v))
    }

    /// Integer literal.
    pub fn int_lit(&mut self, v: i64) -> Expr {
        self.expr(ExprKind::IntLit(v))
    }

    /// Boolean literal.
    pub fn bool_lit(&mut self, v: bool) -> Expr {
        self.expr(ExprKind::BoolLit(v))
    }

    /// Variable or parameter reference.
    pub fn var(&mut self, name: impl Into<String>) -> Expr {
        self.expr(ExprKind::Var(name.into()))
    }

    /// Binary operation.
    pub fn binary(&mut self, op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        self.expr(ExprKind::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    /// Unary operation.
    pub fn unary(&mut self, op: UnOp, operand: Expr) -> Expr {
        self.expr(ExprKind::Unary {
            op,
            operand: Box::new(operand),
        })
    }

    /// `cond ? t : f`.
    pub fn ternary(&mut self, cond: Expr, then_expr: Expr, else_expr: Expr) -> Expr {
        self.expr(ExprKind::Ternary {
            cond: Box::new(cond),
            then_expr: Box::new(then_expr),
            else_expr: Box::new(else_expr),
        })
    }

    /// Builtin/helper/constructor call.
    pub fn call(&mut self, callee: impl Into<String>, args: Vec<Expr>) -> Expr {
        self.expr(ExprKind::Call {
            callee: callee.into(),
            args,
        })
    }

    /// Gather access `base[i0]..[iN]`.
    pub fn index(&mut self, base: Expr, indices: Vec<Expr>) -> Expr {
        self.expr(ExprKind::Index {
            base: Box::new(base),
            indices,
        })
    }

    /// Component access/swizzle (`components` in normalized `xyzw` form).
    pub fn swizzle(&mut self, base: Expr, components: impl Into<String>) -> Expr {
        self.expr(ExprKind::Swizzle {
            base: Box::new(base),
            components: components.into(),
        })
    }

    /// `indexof(stream)`.
    pub fn indexof(&mut self, stream: impl Into<String>) -> Expr {
        self.expr(ExprKind::Indexof {
            stream: stream.into(),
        })
    }

    // -- statements ---------------------------------------------------------

    /// Local declaration, optionally initialized.
    pub fn decl(&mut self, name: impl Into<String>, ty: Type, init: Option<Expr>) -> Stmt {
        Stmt::Decl {
            name: name.into(),
            ty,
            init,
            span: Span::synthetic(),
        }
    }

    /// Plain `target = value;`.
    pub fn assign(&mut self, target: Expr, value: Expr) -> Stmt {
        self.assign_op(target, AssignOp::Assign, value)
    }

    /// Compound assignment (`+=`, `-=`, ...).
    pub fn assign_op(&mut self, target: Expr, op: AssignOp, value: Expr) -> Stmt {
        Stmt::Assign {
            target,
            op,
            value,
            span: Span::synthetic(),
        }
    }

    /// `if (cond) { then } else { else }`.
    pub fn if_stmt(&mut self, cond: Expr, then_stmts: Vec<Stmt>, else_stmts: Option<Vec<Stmt>>) -> Stmt {
        Stmt::If {
            cond,
            then_block: self.block(then_stmts),
            else_block: else_stmts.map(|s| self.block(s)),
            span: Span::synthetic(),
        }
    }

    /// The canonical certifiable counted loop
    /// `for (var = start; var < bound; var += 1) { body }` — the shape
    /// the `brook-cert` BA003 analysis deduces a static trip count for.
    pub fn counted_for(&mut self, var: &str, start: i64, bound: i64, body: Vec<Stmt>) -> Stmt {
        let init_value = self.int_lit(start);
        let init_target = self.var(var);
        let init = self.assign(init_target, init_value);
        let cond_lhs = self.var(var);
        let cond_rhs = self.int_lit(bound);
        let cond = self.binary(BinOp::Lt, cond_lhs, cond_rhs);
        let step_target = self.var(var);
        let step_value = self.int_lit(1);
        let step = self.assign_op(step_target, AssignOp::AddAssign, step_value);
        self.for_loop(Some(init), Some(cond), Some(step), body)
    }

    /// General `for` loop from explicit parts.
    pub fn for_loop(
        &mut self,
        init: Option<Stmt>,
        cond: Option<Expr>,
        step: Option<Stmt>,
        body: Vec<Stmt>,
    ) -> Stmt {
        Stmt::For {
            init: init.map(Box::new),
            cond,
            step: step.map(Box::new),
            body: self.block(body),
            span: Span::synthetic(),
        }
    }

    /// `while (cond) { body }` — deliberately constructible: the fuzz
    /// generator uses it to assert the BA003 gate rejects it.
    pub fn while_loop(&mut self, cond: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::While {
            cond,
            body: self.block(body),
            span: Span::synthetic(),
        }
    }

    /// `return e;` / `return;` (helper functions only).
    pub fn ret(&mut self, value: Option<Expr>) -> Stmt {
        Stmt::Return {
            value,
            span: Span::synthetic(),
        }
    }

    /// A `{ ... }` block.
    pub fn block(&mut self, stmts: Vec<Stmt>) -> Block {
        Block {
            stmts,
            span: Span::synthetic(),
        }
    }

    // -- items --------------------------------------------------------------

    /// One kernel parameter.
    pub fn param(&self, name: impl Into<String>, ty: Type, kind: ParamKind) -> Param {
        Param {
            name: name.into(),
            ty,
            kind,
            span: Span::synthetic(),
        }
    }

    /// A `kernel void` definition.
    pub fn kernel(&mut self, name: impl Into<String>, params: Vec<Param>, body: Vec<Stmt>) -> Item {
        self.kernel_def(name, false, params, body)
    }

    /// A `reduce void` definition.
    pub fn reduce_kernel(&mut self, name: impl Into<String>, params: Vec<Param>, body: Vec<Stmt>) -> Item {
        self.kernel_def(name, true, params, body)
    }

    fn kernel_def(
        &mut self,
        name: impl Into<String>,
        is_reduce: bool,
        params: Vec<Param>,
        body: Vec<Stmt>,
    ) -> Item {
        Item::Kernel(KernelDef {
            name: name.into(),
            is_reduce,
            params,
            body: self.block(body),
            span: Span::synthetic(),
        })
    }

    /// A helper function definition.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        return_ty: Option<Type>,
        params: Vec<(String, Type)>,
        body: Vec<Stmt>,
    ) -> Item {
        Item::Function(FunctionDef {
            name: name.into(),
            return_ty,
            params,
            body: self.block(body),
            span: Span::synthetic(),
        })
    }

    /// Finishes the program, recording the id watermark so later passes
    /// can keep allocating unique ids.
    pub fn program(&mut self, items: Vec<Item>) -> Program {
        Program {
            items,
            next_node_id: self.next_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::print_program;

    #[test]
    fn built_kernel_parses_and_checks() {
        let mut b = AstBuilder::new();
        let two = b.float_lit(2.0);
        let a = b.var("a");
        let rhs = b.binary(BinOp::Mul, a, two);
        let o = b.var("o");
        let body = vec![b.assign(o, rhs)];
        let k = b.kernel(
            "dbl",
            vec![
                b.param("a", Type::FLOAT, ParamKind::Stream),
                b.param("o", Type::FLOAT, ParamKind::OutStream),
            ],
            body,
        );
        let p = b.program(vec![k]);
        let src = print_program(&p);
        let checked = crate::parse_and_check(&src).expect("valid");
        assert_eq!(checked.kernels[0].outputs, vec!["o"]);
    }

    #[test]
    fn ids_are_unique() {
        let mut b = AstBuilder::new();
        let e1 = b.float_lit(1.0);
        let e2 = b.float_lit(1.0);
        assert_ne!(e1.id, e2.id);
    }

    #[test]
    fn counted_for_is_ba003_deducible() {
        let mut b = AstBuilder::new();
        let s = b.var("s");
        let a = b.var("a");
        let add = b.assign_op(s, AssignOp::AddAssign, a);
        let loop_stmt = b.counted_for("i", 0, 8, vec![add]);
        let zero = b.float_lit(0.0);
        let o = b.var("o");
        let s2 = b.var("s");
        let body = vec![
            b.decl("s", Type::FLOAT, Some(zero)),
            b.decl("i", Type::INT, None),
            loop_stmt,
            b.assign(o, s2),
        ];
        let k = b.kernel(
            "acc",
            vec![
                b.param("a", Type::FLOAT, ParamKind::Stream),
                b.param("o", Type::FLOAT, ParamKind::OutStream),
            ],
            body,
        );
        let p = b.program(vec![k]);
        let src = print_program(&p);
        crate::parse_and_check(&src).expect("valid");
        assert!(src.contains("for (i = 0; (i < 8); i += 1)"), "{src}");
    }

    #[test]
    fn program_records_id_watermark() {
        let mut b = AstBuilder::new();
        let o = b.var("o");
        let a = b.var("a");
        let body = vec![b.assign(o, a)];
        let k = b.kernel(
            "f",
            vec![
                b.param("a", Type::FLOAT, ParamKind::Stream),
                b.param("o", Type::FLOAT, ParamKind::OutStream),
            ],
            body,
        );
        let p = b.program(vec![k]);
        assert!(p.next_node_id >= 2);
    }
}
