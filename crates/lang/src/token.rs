//! Token definitions for the Brook Auto kernel language.

use crate::span::Span;
use std::fmt;

/// Keywords of the Brook kernel language (a restricted C subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Kernel,
    Reduce,
    Out,
    Void,
    Float,
    Float2,
    Float3,
    Float4,
    Int,
    Bool,
    If,
    Else,
    For,
    While,
    Do,
    Return,
    Const,
    True,
    False,
    Indexof,
    /// Rejected C keywords kept as tokens so the parser can emit targeted
    /// certification diagnostics (`goto` violates BA007).
    Goto,
}

impl Keyword {
    /// Looks up a keyword from its source spelling.
    pub fn lookup(s: &str) -> Option<Keyword> {
        Some(match s {
            "kernel" => Keyword::Kernel,
            "reduce" => Keyword::Reduce,
            "out" => Keyword::Out,
            "void" => Keyword::Void,
            "float" => Keyword::Float,
            "float2" => Keyword::Float2,
            "float3" => Keyword::Float3,
            "float4" => Keyword::Float4,
            "int" => Keyword::Int,
            "bool" => Keyword::Bool,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "for" => Keyword::For,
            "while" => Keyword::While,
            "do" => Keyword::Do,
            "return" => Keyword::Return,
            "const" => Keyword::Const,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "indexof" => Keyword::Indexof,
            "goto" => Keyword::Goto,
            _ => return None,
        })
    }

    /// Canonical source spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Keyword::Kernel => "kernel",
            Keyword::Reduce => "reduce",
            Keyword::Out => "out",
            Keyword::Void => "void",
            Keyword::Float => "float",
            Keyword::Float2 => "float2",
            Keyword::Float3 => "float3",
            Keyword::Float4 => "float4",
            Keyword::Int => "int",
            Keyword::Bool => "bool",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::For => "for",
            Keyword::While => "while",
            Keyword::Do => "do",
            Keyword::Return => "return",
            Keyword::Const => "const",
            Keyword::True => "true",
            Keyword::False => "false",
            Keyword::Indexof => "indexof",
            Keyword::Goto => "goto",
        }
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Keyword(Keyword),
    /// Floating literal, e.g. `1.0`, `.5`, `2e3`.
    FloatLit(f32),
    /// Integer literal, e.g. `42`.
    IntLit(i64),
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    /// `<>` stream marker, lexed as a unit after `ident` in parameter
    /// position is handled by the parser via `Lt` + `Gt`.
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    AmpAmp,
    PipePipe,
    /// `&` — not part of the subset; kept so the parser can report BA001.
    Amp,
    /// `|` — not part of the subset.
    Pipe,
    Question,
    Colon,
    Semicolon,
    Comma,
    Dot,
    PlusPlus,
    MinusMinus,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "`{}`", k.as_str()),
            TokenKind::FloatLit(v) => write!(f, "float literal `{v}`"),
            TokenKind::IntLit(v) => write!(f, "int literal `{v}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::PlusAssign => write!(f, "`+=`"),
            TokenKind::MinusAssign => write!(f, "`-=`"),
            TokenKind::StarAssign => write!(f, "`*=`"),
            TokenKind::SlashAssign => write!(f, "`/=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::AmpAmp => write!(f, "`&&`"),
            TokenKind::PipePipe => write!(f, "`||`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Question => write!(f, "`?`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Semicolon => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::PlusPlus => write!(f, "`++`"),
            TokenKind::MinusMinus => write!(f, "`--`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token paired with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kw in [
            Keyword::Kernel,
            Keyword::Reduce,
            Keyword::Float4,
            Keyword::Indexof,
            Keyword::Goto,
        ] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::lookup("double"), None);
    }

    #[test]
    fn display_is_descriptive() {
        assert_eq!(format!("{}", TokenKind::Ident("a".into())), "identifier `a`");
        assert_eq!(format!("{}", TokenKind::Keyword(Keyword::Kernel)), "`kernel`");
        assert_eq!(format!("{}", TokenKind::Le), "`<=`");
    }
}
