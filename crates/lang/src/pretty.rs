//! Canonical pretty-printer for Brook Auto syntax trees.
//!
//! Printing then re-parsing yields a structurally identical tree (modulo
//! node ids and spans), which the property tests rely on. The printer is
//! also used for diagnostics and for embedding kernels in reports.

use crate::ast::*;
use std::fmt::Write;

/// Renders a whole program back to Brook source.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, item) in p.items.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        match item {
            Item::Kernel(k) => print_kernel(&mut out, k),
            Item::Function(f) => print_function(&mut out, f),
        }
    }
    out
}

/// Renders one kernel definition.
pub fn print_kernel_def(k: &KernelDef) -> String {
    let mut out = String::new();
    print_kernel(&mut out, k);
    out
}

fn print_kernel(out: &mut String, k: &KernelDef) {
    let head = if k.is_reduce { "reduce" } else { "kernel" };
    let _ = write!(out, "{head} void {}(", k.name);
    for (i, p) in k.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        print_param(out, p);
    }
    out.push_str(") ");
    print_block(out, &k.body, 0);
    out.push('\n');
}

fn print_function(out: &mut String, f: &FunctionDef) {
    match f.return_ty {
        Some(t) => {
            let _ = write!(out, "{t} {}(", f.name);
        }
        None => {
            let _ = write!(out, "void {}(", f.name);
        }
    }
    for (i, (name, ty)) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{ty} {name}");
    }
    out.push_str(") ");
    print_block(out, &f.body, 0);
    out.push('\n');
}

fn print_param(out: &mut String, p: &Param) {
    match p.kind {
        ParamKind::Stream => {
            let _ = write!(out, "{} {}<>", p.ty, p.name);
        }
        ParamKind::OutStream => {
            let _ = write!(out, "out {} {}<>", p.ty, p.name);
        }
        ParamKind::ReduceOut => {
            let _ = write!(out, "reduce {} {}<>", p.ty, p.name);
        }
        ParamKind::Gather { rank } => {
            let _ = write!(out, "{} {}", p.ty, p.name);
            for _ in 0..rank {
                out.push_str("[]");
            }
        }
        ParamKind::Scalar => {
            let _ = write!(out, "{} {}", p.ty, p.name);
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(out: &mut String, b: &Block, level: usize) {
    out.push_str("{\n");
    for s in &b.stmts {
        print_stmt(out, s, level + 1);
    }
    indent(out, level);
    out.push('}');
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match s {
        Stmt::Decl { name, ty, init, .. } => {
            let _ = write!(out, "{ty} {name}");
            if let Some(e) = init {
                out.push_str(" = ");
                print_expr(out, e);
            }
            out.push_str(";\n");
        }
        Stmt::Assign {
            target, op, value, ..
        } => {
            print_expr(out, target);
            out.push_str(match op {
                AssignOp::Assign => " = ",
                AssignOp::AddAssign => " += ",
                AssignOp::SubAssign => " -= ",
                AssignOp::MulAssign => " *= ",
                AssignOp::DivAssign => " /= ",
            });
            print_expr(out, value);
            out.push_str(";\n");
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            out.push_str("if (");
            print_expr(out, cond);
            out.push_str(") ");
            print_block(out, then_block, level);
            if let Some(e) = else_block {
                out.push_str(" else ");
                print_block(out, e, level);
            }
            out.push('\n');
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            out.push_str("for (");
            if let Some(i) = init {
                print_inline_stmt(out, i);
            }
            out.push_str("; ");
            if let Some(c) = cond {
                print_expr(out, c);
            }
            out.push_str("; ");
            if let Some(st) = step {
                print_inline_stmt(out, st);
            }
            out.push_str(") ");
            print_block(out, body, level);
            out.push('\n');
        }
        Stmt::While { cond, body, .. } => {
            out.push_str("while (");
            print_expr(out, cond);
            out.push_str(") ");
            print_block(out, body, level);
            out.push('\n');
        }
        Stmt::DoWhile { body, cond, .. } => {
            out.push_str("do ");
            print_block(out, body, level);
            out.push_str(" while (");
            print_expr(out, cond);
            out.push_str(");\n");
        }
        Stmt::Return { value, .. } => {
            out.push_str("return");
            if let Some(v) = value {
                out.push(' ');
                print_expr(out, v);
            }
            out.push_str(";\n");
        }
        Stmt::Expr { expr, .. } => {
            print_expr(out, expr);
            out.push_str(";\n");
        }
        Stmt::Block(b) => {
            print_block(out, b, level);
            out.push('\n');
        }
    }
}

/// Statement printed without trailing `;\n` — used inside `for` headers.
fn print_inline_stmt(out: &mut String, s: &Stmt) {
    let mut tmp = String::new();
    print_stmt(&mut tmp, s, 0);
    let trimmed = tmp.trim_end().trim_end_matches(';');
    out.push_str(trimmed);
}

/// Renders one expression with full parenthesization (canonical form).
pub fn print_expr_string(e: &Expr) -> String {
    let mut s = String::new();
    print_expr(&mut s, e);
    s
}

fn print_expr(out: &mut String, e: &Expr) {
    match &e.kind {
        ExprKind::FloatLit(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e9 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        ExprKind::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::BoolLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::Var(n) => out.push_str(n),
        ExprKind::Binary { op, lhs, rhs } => {
            out.push('(');
            print_expr(out, lhs);
            let _ = write!(out, " {} ", op.as_str());
            print_expr(out, rhs);
            out.push(')');
        }
        ExprKind::Unary { op, operand } => {
            out.push('(');
            out.push(match op {
                UnOp::Neg => '-',
                UnOp::Not => '!',
            });
            print_expr(out, operand);
            out.push(')');
        }
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            out.push('(');
            print_expr(out, cond);
            out.push_str(" ? ");
            print_expr(out, then_expr);
            out.push_str(" : ");
            print_expr(out, else_expr);
            out.push(')');
        }
        ExprKind::Call { callee, args } => {
            let _ = write!(out, "{callee}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, a);
            }
            out.push(')');
        }
        ExprKind::Index { base, indices } => {
            print_expr(out, base);
            for ix in indices {
                out.push('[');
                print_expr(out, ix);
                out.push(']');
            }
        }
        ExprKind::Swizzle { base, components } => {
            print_expr(out, base);
            let _ = write!(out, ".{components}");
        }
        ExprKind::Indexof { stream } => {
            let _ = write!(out, "indexof({stream})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let p1 = parse(src).expect("first parse");
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed on:\n{printed}\n{e}"));
        let printed2 = print_program(&p2);
        assert_eq!(printed, printed2, "pretty print is not a fixed point");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip("kernel void add(float a<>, float b<>, out float c<>) { c = a + b; }");
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            "kernel void f(float a<>, out float o<>) {
                float s = 0.0;
                int i;
                for (i = 0; i < 8; i++) { if (a > 0.5) { s += a; } else { s -= a; } }
                o = s;
            }",
        );
    }

    #[test]
    fn roundtrip_reduce() {
        roundtrip("reduce void sum(float a<>, reduce float r<>) { r += a; }");
    }

    #[test]
    fn roundtrip_gather_and_indexof() {
        roundtrip(
            "kernel void g(float m[][], float v<>, out float o<>) {
                float2 p = indexof(o);
                o = m[int(p.y)][int(p.x)] * v;
            }",
        );
    }

    #[test]
    fn roundtrip_vectors() {
        roundtrip("kernel void f(float4 a<>, out float4 o<>) { o = float4(a.x, a.yz, 1.0) * 2.0; }");
    }

    #[test]
    fn roundtrip_helper_function() {
        roundtrip(
            "float sq(float x) { return x * x; }\nkernel void f(float a<>, out float o<>) { o = sq(a); }",
        );
    }

    #[test]
    fn float_literals_keep_decimal_point() {
        let p = parse("kernel void f(float a<>, out float o<>) { o = a * 3.0; }").unwrap();
        let s = print_program(&p);
        assert!(s.contains("3.0"), "got: {s}");
    }
}
