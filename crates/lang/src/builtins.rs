//! Built-in function signatures shared by the type checker, the CPU
//! interpreter backend and the GLSL ES code generator.

use crate::ast::Type;

/// Shape of a builtin's signature relative to its float-vector argument
/// width `N` (1..=4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinSig {
    /// `(floatN) -> floatN` — componentwise unary, e.g. `sin`.
    MapUnary,
    /// `(floatN, floatN) -> floatN` — componentwise binary, e.g. `min`.
    /// The second argument may also be scalar `float` (broadcast).
    MapBinary,
    /// `(floatN, floatN, floatN) -> floatN` — componentwise ternary,
    /// e.g. `clamp`, `lerp`. Trailing arguments may be scalar (broadcast).
    MapTernary,
    /// `(floatN, floatN) -> float` — reduction to scalar, e.g. `dot`.
    DotLike,
    /// `(floatN) -> float` — reduction to scalar, e.g. `length`.
    LengthLike,
}

/// A named builtin with its signature shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Builtin {
    /// Brook-side name.
    pub name: &'static str,
    /// Signature shape.
    pub sig: BuiltinSig,
    /// GLSL ES 1.00 spelling (differs for e.g. `lerp` -> `mix`).
    pub glsl_name: &'static str,
    /// Approximate ALU cost in simulator instruction units, used by the
    /// interpreter cost accounting (transcendentals are multi-cycle on
    /// every embedded GPU).
    pub cost: u32,
}

/// The builtin function table of the Brook Auto subset.
///
/// Names follow Brook/HLSL conventions (`lerp`, `rsqrt`, `saturate`,
/// `fmod`) with GLSL translations recorded per entry.
pub const BUILTINS: &[Builtin] = &[
    Builtin {
        name: "sin",
        sig: BuiltinSig::MapUnary,
        glsl_name: "sin",
        cost: 4,
    },
    Builtin {
        name: "cos",
        sig: BuiltinSig::MapUnary,
        glsl_name: "cos",
        cost: 4,
    },
    Builtin {
        name: "tan",
        sig: BuiltinSig::MapUnary,
        glsl_name: "tan",
        cost: 6,
    },
    Builtin {
        name: "exp",
        sig: BuiltinSig::MapUnary,
        glsl_name: "exp",
        cost: 4,
    },
    Builtin {
        name: "exp2",
        sig: BuiltinSig::MapUnary,
        glsl_name: "exp2",
        cost: 4,
    },
    Builtin {
        name: "log",
        sig: BuiltinSig::MapUnary,
        glsl_name: "log",
        cost: 4,
    },
    Builtin {
        name: "log2",
        sig: BuiltinSig::MapUnary,
        glsl_name: "log2",
        cost: 4,
    },
    Builtin {
        name: "sqrt",
        sig: BuiltinSig::MapUnary,
        glsl_name: "sqrt",
        cost: 4,
    },
    Builtin {
        name: "rsqrt",
        sig: BuiltinSig::MapUnary,
        glsl_name: "inversesqrt",
        cost: 4,
    },
    Builtin {
        name: "abs",
        sig: BuiltinSig::MapUnary,
        glsl_name: "abs",
        cost: 1,
    },
    Builtin {
        name: "floor",
        sig: BuiltinSig::MapUnary,
        glsl_name: "floor",
        cost: 1,
    },
    Builtin {
        name: "ceil",
        sig: BuiltinSig::MapUnary,
        glsl_name: "ceil",
        cost: 1,
    },
    Builtin {
        name: "fract",
        sig: BuiltinSig::MapUnary,
        glsl_name: "fract",
        cost: 1,
    },
    Builtin {
        name: "round",
        sig: BuiltinSig::MapUnary,
        glsl_name: "floor",
        cost: 2,
    },
    Builtin {
        name: "sign",
        sig: BuiltinSig::MapUnary,
        glsl_name: "sign",
        cost: 1,
    },
    Builtin {
        name: "saturate",
        sig: BuiltinSig::MapUnary,
        glsl_name: "clamp",
        cost: 1,
    },
    Builtin {
        name: "normalize",
        sig: BuiltinSig::MapUnary,
        glsl_name: "normalize",
        cost: 6,
    },
    Builtin {
        name: "min",
        sig: BuiltinSig::MapBinary,
        glsl_name: "min",
        cost: 1,
    },
    Builtin {
        name: "max",
        sig: BuiltinSig::MapBinary,
        glsl_name: "max",
        cost: 1,
    },
    Builtin {
        name: "pow",
        sig: BuiltinSig::MapBinary,
        glsl_name: "pow",
        cost: 6,
    },
    Builtin {
        name: "fmod",
        sig: BuiltinSig::MapBinary,
        glsl_name: "mod",
        cost: 2,
    },
    Builtin {
        name: "step",
        sig: BuiltinSig::MapBinary,
        glsl_name: "step",
        cost: 1,
    },
    Builtin {
        name: "atan2",
        sig: BuiltinSig::MapBinary,
        glsl_name: "atan",
        cost: 8,
    },
    Builtin {
        name: "clamp",
        sig: BuiltinSig::MapTernary,
        glsl_name: "clamp",
        cost: 1,
    },
    Builtin {
        name: "lerp",
        sig: BuiltinSig::MapTernary,
        glsl_name: "mix",
        cost: 2,
    },
    Builtin {
        name: "smoothstep",
        sig: BuiltinSig::MapTernary,
        glsl_name: "smoothstep",
        cost: 3,
    },
    Builtin {
        name: "dot",
        sig: BuiltinSig::DotLike,
        glsl_name: "dot",
        cost: 2,
    },
    Builtin {
        name: "distance",
        sig: BuiltinSig::DotLike,
        glsl_name: "distance",
        cost: 6,
    },
    Builtin {
        name: "length",
        sig: BuiltinSig::LengthLike,
        glsl_name: "length",
        cost: 5,
    },
];

/// Looks up a builtin by Brook name.
pub fn builtin(name: &str) -> Option<&'static Builtin> {
    BUILTINS.iter().find(|b| b.name == name)
}

/// Result type of a builtin applied to float arguments of width `n`.
pub fn builtin_result_type(b: &Builtin, n: u8) -> Type {
    match b.sig {
        BuiltinSig::MapUnary | BuiltinSig::MapBinary | BuiltinSig::MapTernary => Type::float(n),
        BuiltinSig::DotLike | BuiltinSig::LengthLike => Type::FLOAT,
    }
}

/// Number of arguments the builtin expects.
pub fn builtin_arity(b: &Builtin) -> usize {
    match b.sig {
        BuiltinSig::MapUnary | BuiltinSig::LengthLike => 1,
        BuiltinSig::MapBinary | BuiltinSig::DotLike => 2,
        BuiltinSig::MapTernary => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_known_builtins() {
        assert!(builtin("sin").is_some());
        assert!(builtin("lerp").is_some());
        assert!(builtin("nonsense").is_none());
    }

    #[test]
    fn lerp_maps_to_mix() {
        assert_eq!(builtin("lerp").unwrap().glsl_name, "mix");
        assert_eq!(builtin("rsqrt").unwrap().glsl_name, "inversesqrt");
        assert_eq!(builtin("fmod").unwrap().glsl_name, "mod");
    }

    #[test]
    fn arity_matches_signature() {
        assert_eq!(builtin_arity(builtin("sin").unwrap()), 1);
        assert_eq!(builtin_arity(builtin("pow").unwrap()), 2);
        assert_eq!(builtin_arity(builtin("clamp").unwrap()), 3);
        assert_eq!(builtin_arity(builtin("dot").unwrap()), 2);
    }

    #[test]
    fn result_types() {
        let dot = builtin("dot").unwrap();
        assert_eq!(builtin_result_type(dot, 3), Type::FLOAT);
        let sin = builtin("sin").unwrap();
        assert_eq!(builtin_result_type(sin, 4), Type::FLOAT4);
    }

    #[test]
    fn no_duplicate_names() {
        let mut names: Vec<_> = BUILTINS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BUILTINS.len());
    }
}
