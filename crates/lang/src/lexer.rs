//! Hand-written lexer for the Brook Auto kernel language.
//!
//! The lexer is total: it never panics on malformed input, and reports
//! unknown characters as `L001` diagnostics. Pointer-forming tokens such as
//! `&` are lexed (so the parser can reject them with a certification-aware
//! message) but `goto` and friends are surfaced as keywords for the same
//! reason.

use crate::diag::Diagnostic;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Converts Brook source text into a token stream.
///
/// ```
/// use brook_lang::lexer::lex;
/// let (tokens, diags) = lex("kernel void f(float a<>, out float b<>) { b = a; }");
/// assert!(diags.is_empty());
/// assert!(tokens.len() > 10);
/// ```
pub fn lex(src: &str) -> (Vec<Token>, Vec<Diagnostic>) {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    diags: Vec<Diagnostic>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            diags: Vec::new(),
        }
    }

    fn run(mut self) -> (Vec<Token>, Vec<Diagnostic>) {
        while self.pos < self.bytes.len() {
            self.skip_trivia();
            if self.pos >= self.bytes.len() {
                break;
            }
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let c = self.bytes[self.pos];
            let kind = match c {
                b'0'..=b'9' => self.number(),
                b'.' if self.peek(1).is_ascii_digit() => self.number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                _ => self.punct(),
            };
            if let Some(kind) = kind {
                let span = Span::new(start, self.pos, line, col);
                self.tokens.push(Token { kind, span });
            }
        }
        let eof = Span::new(self.pos, self.pos, self.line, self.col);
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            span: eof,
        });
        (self.tokens, self.diags)
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.bytes[self.pos];
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn skip_trivia(&mut self) {
        loop {
            while self.pos < self.bytes.len() && (self.bytes[self.pos] as char).is_whitespace() {
                self.bump();
            }
            if self.peek(0) == b'/' && self.peek(1) == b'/' {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.bump();
                }
                continue;
            }
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                let (line, col, start) = (self.line, self.col, self.pos);
                self.bump();
                self.bump();
                let mut closed = false;
                while self.pos < self.bytes.len() {
                    if self.peek(0) == b'*' && self.peek(1) == b'/' {
                        self.bump();
                        self.bump();
                        closed = true;
                        break;
                    }
                    self.bump();
                }
                if !closed {
                    self.diags.push(Diagnostic::error(
                        "L002",
                        "unterminated block comment",
                        Span::new(start, self.pos, line, col),
                    ));
                }
                continue;
            }
            break;
        }
    }

    fn number(&mut self) -> Option<TokenKind> {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        let mut is_float = false;
        while self.peek(0).is_ascii_digit() {
            self.bump();
        }
        if self.peek(0) == b'.' && self.peek(1) != b'.' {
            is_float = true;
            self.bump();
            while self.peek(0).is_ascii_digit() {
                self.bump();
            }
        }
        if self.peek(0) == b'e' || self.peek(0) == b'E' {
            let mut ahead = 1;
            if self.peek(1) == b'+' || self.peek(1) == b'-' {
                ahead = 2;
            }
            if self.peek(ahead).is_ascii_digit() {
                is_float = true;
                for _ in 0..ahead {
                    self.bump();
                }
                while self.peek(0).is_ascii_digit() {
                    self.bump();
                }
            }
        }
        // C-style float suffix.
        if self.peek(0) == b'f' || self.peek(0) == b'F' {
            is_float = true;
            self.bump();
        }
        let text = &self.src[start..self.pos];
        let text = text.trim_end_matches(['f', 'F']);
        if is_float {
            match text.parse::<f32>() {
                Ok(v) => Some(TokenKind::FloatLit(v)),
                Err(_) => {
                    self.diags.push(Diagnostic::error(
                        "L003",
                        format!("malformed float literal `{text}`"),
                        Span::new(start, self.pos, line, col),
                    ));
                    None
                }
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => Some(TokenKind::IntLit(v)),
                Err(_) => {
                    self.diags.push(Diagnostic::error(
                        "L004",
                        format!("integer literal `{text}` out of range"),
                        Span::new(start, self.pos, line, col),
                    ));
                    None
                }
            }
        }
    }

    fn ident(&mut self) -> Option<TokenKind> {
        let start = self.pos;
        while matches!(self.peek(0), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        Some(match Keyword::lookup(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_owned()),
        })
    }

    fn punct(&mut self) -> Option<TokenKind> {
        let (line, col, start) = (self.line, self.col, self.pos);
        let c = self.bump();
        let two = |l: &mut Self, next: u8, yes: TokenKind, no: TokenKind| {
            if l.peek(0) == next {
                l.bump();
                yes
            } else {
                no
            }
        };
        Some(match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semicolon,
            b',' => TokenKind::Comma,
            b'.' => TokenKind::Dot,
            b'?' => TokenKind::Question,
            b':' => TokenKind::Colon,
            b'%' => TokenKind::Percent,
            b'+' => {
                if self.peek(0) == b'+' {
                    self.bump();
                    TokenKind::PlusPlus
                } else {
                    two(self, b'=', TokenKind::PlusAssign, TokenKind::Plus)
                }
            }
            b'-' => {
                if self.peek(0) == b'-' {
                    self.bump();
                    TokenKind::MinusMinus
                } else {
                    two(self, b'=', TokenKind::MinusAssign, TokenKind::Minus)
                }
            }
            b'*' => two(self, b'=', TokenKind::StarAssign, TokenKind::Star),
            b'/' => two(self, b'=', TokenKind::SlashAssign, TokenKind::Slash),
            b'<' => two(self, b'=', TokenKind::Le, TokenKind::Lt),
            b'>' => two(self, b'=', TokenKind::Ge, TokenKind::Gt),
            b'=' => two(self, b'=', TokenKind::EqEq, TokenKind::Assign),
            b'!' => two(self, b'=', TokenKind::Ne, TokenKind::Bang),
            b'&' => two(self, b'&', TokenKind::AmpAmp, TokenKind::Amp),
            b'|' => two(self, b'|', TokenKind::PipePipe, TokenKind::Pipe),
            other => {
                self.diags.push(Diagnostic::error(
                    "L001",
                    format!("unexpected character `{}`", other as char),
                    Span::new(start, self.pos, line, col),
                ));
                return None;
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let (toks, diags) = lex(src);
        assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_kernel_header() {
        let k = kinds("kernel void f(float a<>)");
        assert_eq!(k[0], TokenKind::Keyword(Keyword::Kernel));
        assert_eq!(k[1], TokenKind::Keyword(Keyword::Void));
        assert_eq!(k[2], TokenKind::Ident("f".into()));
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], TokenKind::IntLit(42));
        assert_eq!(kinds("1.5")[0], TokenKind::FloatLit(1.5));
        assert_eq!(kinds(".5")[0], TokenKind::FloatLit(0.5));
        assert_eq!(kinds("2e3")[0], TokenKind::FloatLit(2000.0));
        assert_eq!(kinds("1.5e-2")[0], TokenKind::FloatLit(0.015));
        assert_eq!(kinds("3.0f")[0], TokenKind::FloatLit(3.0));
        assert_eq!(kinds("7f")[0], TokenKind::FloatLit(7.0));
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(kinds("+=")[0], TokenKind::PlusAssign);
        assert_eq!(kinds("==")[0], TokenKind::EqEq);
        assert_eq!(kinds("!=")[0], TokenKind::Ne);
        assert_eq!(kinds("&&")[0], TokenKind::AmpAmp);
        assert_eq!(kinds("||")[0], TokenKind::PipePipe);
        assert_eq!(kinds("++")[0], TokenKind::PlusPlus);
        assert_eq!(kinds("--")[0], TokenKind::MinusMinus);
    }

    #[test]
    fn skips_comments() {
        let k = kinds("a // line\n b /* block\n comment */ c");
        assert_eq!(k.len(), 4); // a b c eof
    }

    #[test]
    fn reports_unterminated_comment() {
        let (_, diags) = lex("a /* never closed");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "L002");
    }

    #[test]
    fn reports_unknown_character() {
        let (toks, diags) = lex("a @ b");
        assert_eq!(diags[0].code, "L001");
        // Lexing continues after the bad character.
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t.kind, TokenKind::Ident(_)))
                .count(),
            2
        );
    }

    #[test]
    fn tracks_line_and_column() {
        let (toks, _) = lex("a\n  b");
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn lexes_ampersand_for_cert_rejection() {
        assert_eq!(kinds("&")[0], TokenKind::Amp);
        assert_eq!(kinds("goto")[0], TokenKind::Keyword(Keyword::Goto));
    }

    #[test]
    fn eof_is_final_token() {
        let (toks, _) = lex("");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Eof);
    }
}
