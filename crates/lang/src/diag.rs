//! Diagnostics shared by the lexer, parser, type checker and the
//! certification rule engine in `brook-cert`.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note (e.g. deduced loop bound).
    Note,
    /// Suspicious but accepted construct.
    Warning,
    /// Construct rejected by the language or the Brook Auto subset.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single message produced by any front-end stage.
///
/// `code` is a stable machine-readable identifier: `Lxxx` for lexical
/// errors, `Pxxx` for parse errors, `Txxx` for type errors and `BAxxx`
/// for Brook Auto certification rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// Stable identifier, e.g. `"P003"` or `"BA003"`.
    pub code: String,
    /// Human-readable description.
    pub message: String,
    /// Source location of the offending construct.
    pub span: Span,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: &str, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code: code.to_owned(),
            message: message.into(),
            span,
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(code: &str, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code: code.to_owned(),
            message: message.into(),
            span,
        }
    }

    /// Creates a note diagnostic.
    pub fn note(code: &str, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Note,
            code: code.to_owned(),
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}] at {}",
            self.severity, self.message, self.code, self.span
        )
    }
}

/// Error type carrying every diagnostic a front-end stage produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// All diagnostics, errors first.
    pub diagnostics: Vec<Diagnostic>,
}

impl CompileError {
    /// Wraps a list of diagnostics; keeps only those at error severity in
    /// front, preserving relative order.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
        CompileError { diagnostics }
    }

    /// First error-severity diagnostic, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics.iter().find(|d| d.severity == Severity::Error)
    }

    /// True if any diagnostic has the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let errors = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        write!(f, "{errors} error(s)")?;
        if let Some(first) = self.first_error() {
            write!(f, "; first: {first}")?;
        }
        Ok(())
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_code_and_span() {
        let d = Diagnostic::error("P001", "unexpected token", Span::new(0, 1, 3, 7));
        assert_eq!(format!("{d}"), "error: unexpected token [P001] at 3:7");
    }

    #[test]
    fn compile_error_orders_errors_first() {
        let e = CompileError::new(vec![
            Diagnostic::note("BA003", "loop bound 8", Span::synthetic()),
            Diagnostic::error("T001", "type mismatch", Span::synthetic()),
        ]);
        assert_eq!(e.diagnostics[0].code, "T001");
        assert!(e.has_code("BA003"));
        assert_eq!(e.first_error().unwrap().code, "T001");
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }
}
