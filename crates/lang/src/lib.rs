//! # brook-lang — the Brook Auto language front-end
//!
//! Brook Auto ([Trompouki & Kosmidis, DAC 2018]) is a certification-friendly
//! subset of the Brook GPU streaming language for automotive systems. This
//! crate provides the front-end: lexer, parser, abstract syntax tree and
//! type checker for the subset.
//!
//! The language is a restricted C dialect:
//!
//! * **streams** instead of pointers: `float a<>` is an elementwise input,
//!   `out float b<>` an output, `reduce float r<>` a reduction accumulator;
//! * **gather arrays** `float m[][]` for random access reads (never writes);
//! * **`indexof(s)`** — the current element index, Brook's analogue of
//!   CUDA's `threadIdx`;
//! * vector types `float2`..`float4` with swizzles, as in OpenCL/GLSL;
//! * structured control flow only — no `goto`, no recursion, no pointers,
//!   no dynamic allocation, no local arrays.
//!
//! Constructs that ISO 26262 / MISRA C exclude are rejected at parse or
//! check time with diagnostics naming the corresponding Brook Auto rule
//! (`BA001` pointers, `BA007` goto, `BA008` unknown calls/allocation, ...);
//! the full rule engine lives in the `brook-cert` crate.
//!
//! ```
//! let src = "
//!     kernel void saxpy(float x<>, float y<>, float alpha, out float r<>) {
//!         r = alpha * x + y;
//!     }";
//! let checked = brook_lang::typeck::parse_and_check(src)?;
//! assert_eq!(checked.kernels[0].outputs, vec!["r"]);
//! # Ok::<(), brook_lang::diag::CompileError>(())
//! ```
//!
//! [Trompouki & Kosmidis, DAC 2018]: https://doi.org/10.1145/3195970.3196002

pub mod ast;
pub mod build;
pub mod builtins;
pub mod diag;
pub mod lexer;
pub mod loopbound;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod typeck;

pub use ast::{Program, Type};
pub use diag::{CompileError, Diagnostic, Severity};
pub use parser::parse;
pub use typeck::{check, parse_and_check, CheckedProgram, KernelSummary, ReduceOp};
