//! Static loop trip-count deduction for the Brook Auto subset.
//!
//! Lives in the front-end crate (rather than `brook-cert`, which
//! re-exports it) because both the certification engine *and* the
//! BrookIR lowerer need the same deduction: the IR records every loop's
//! bound as region metadata so certifiability stays a syntactic
//! property after lowering, and the two layers must agree on what the
//! bound is.

use crate::ast::*;

/// Result of analysing one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopBound {
    /// Canonical counted loop; the maximum trip count was deduced.
    Static {
        /// Maximum number of iterations.
        trips: u64,
    },
    /// The loop shape prevents static deduction (BA003 violation).
    Unbounded {
        /// Human-readable reason.
        reason: String,
    },
}

impl LoopBound {
    /// The deduced trip count, if static.
    pub fn trips(&self) -> Option<u64> {
        match self {
            LoopBound::Static { trips } => Some(*trips),
            LoopBound::Unbounded { .. } => None,
        }
    }
}

/// Tries to evaluate an expression to a compile-time integer.
///
/// Only literal arithmetic is accepted: Brook Auto requires loop bounds to
/// be manifest in the kernel source (the runtime regenerates kernels per
/// configuration, so workload sizes appear as literals).
pub fn const_int(e: &Expr) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(*v),
        ExprKind::FloatLit(v) if v.fract() == 0.0 => Some(*v as i64),
        ExprKind::Unary {
            op: UnOp::Neg,
            operand,
        } => const_int(operand).map(|v| -v),
        ExprKind::Binary { op, lhs, rhs } => {
            let l = const_int(lhs)?;
            let r = const_int(rhs)?;
            match op {
                BinOp::Add => Some(l + r),
                BinOp::Sub => Some(l - r),
                BinOp::Mul => Some(l * r),
                BinOp::Div if r != 0 => Some(l / r),
                BinOp::Rem if r != 0 => Some(l % r),
                _ => None,
            }
        }
        ExprKind::Call { callee, args } if callee == "int" && args.len() == 1 => const_int(&args[0]),
        _ => None,
    }
}

/// Analyses a `for` statement for a statically deducible trip count.
///
/// The canonical accepted shapes are
/// `for (i = C0; i < C1; i += S)` (and `<=`, and the decreasing mirror
/// with `>`/`>=` and `-=`), where `C0`, `C1`, `S` are literal integers and
/// `i` is not reassigned in the body.
pub fn for_loop_bound(
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    step: Option<&Stmt>,
    body: &Block,
) -> LoopBound {
    let unbounded = |reason: &str| LoopBound::Unbounded {
        reason: reason.to_owned(),
    };
    // Extract the induction variable and start value.
    let (var, start) = match init {
        Some(Stmt::Decl {
            name, init: Some(e), ..
        }) => match const_int(e) {
            Some(v) => (name.clone(), v),
            None => return unbounded("loop start value is not a compile-time constant"),
        },
        Some(Stmt::Assign {
            target,
            op: AssignOp::Assign,
            value,
            ..
        }) => match (&target.kind, const_int(value)) {
            (ExprKind::Var(name), Some(v)) => (name.clone(), v),
            _ => return unbounded("loop start value is not a compile-time constant"),
        },
        _ => return unbounded("loop has no initializer with a constant start value"),
    };
    // Extract the comparison bound.
    let Some(cond) = cond else {
        return unbounded("loop has no condition");
    };
    let ExprKind::Binary { op, lhs, rhs } = &cond.kind else {
        return unbounded("loop condition is not a comparison against a constant");
    };
    let (bound, cmp_op, var_on_left) = match (&lhs.kind, &rhs.kind) {
        (ExprKind::Var(n), _) if n == &var => match const_int(rhs) {
            Some(b) => (b, *op, true),
            None => return unbounded("loop bound is not a compile-time constant"),
        },
        (_, ExprKind::Var(n)) if n == &var => match const_int(lhs) {
            Some(b) => (b, *op, false),
            None => return unbounded("loop bound is not a compile-time constant"),
        },
        _ => return unbounded("loop condition does not test the induction variable"),
    };
    // Normalize so the comparison reads `var OP bound`.
    let cmp = if var_on_left {
        cmp_op
    } else {
        match cmp_op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    };
    // Extract the stride.
    let Some(step) = step else {
        return unbounded("loop has no step statement");
    };
    let (step_op, stride) = match step {
        Stmt::Assign {
            target, op, value, ..
        } => match (&target.kind, const_int(value)) {
            (ExprKind::Var(n), Some(s)) if n == &var => (*op, s),
            _ => return unbounded("loop step does not advance the induction variable by a constant"),
        },
        _ => return unbounded("loop step is not an assignment"),
    };
    let delta = match step_op {
        AssignOp::AddAssign => stride,
        AssignOp::SubAssign => -stride,
        AssignOp::MulAssign if stride > 1 && start != 0 => {
            // Geometric loop: for (i = a; i < b; i *= s).
            return match cmp {
                BinOp::Lt | BinOp::Le if start > 0 && bound > start => {
                    let mut trips = 0u64;
                    let mut v = start;
                    while (cmp == BinOp::Lt && v < bound) || (cmp == BinOp::Le && v <= bound) {
                        trips += 1;
                        v = v.saturating_mul(stride);
                        if trips > 1_000_000 {
                            return LoopBound::Unbounded {
                                reason: "geometric loop does not terminate".into(),
                            };
                        }
                    }
                    LoopBound::Static { trips }
                }
                _ => LoopBound::Unbounded {
                    reason: "geometric loop with unsupported condition".into(),
                },
            };
        }
        _ => return unbounded("loop step operator is not a constant increment/decrement"),
    };
    if delta == 0 {
        return unbounded("loop stride is zero");
    }
    // The induction variable must not be written in the body.
    if body_writes_var(body, &var) {
        return unbounded("induction variable is modified inside the loop body");
    }
    let trips = match (cmp, delta > 0) {
        (BinOp::Lt, true) if bound > start => ((bound - start + delta - 1) / delta) as u64,
        (BinOp::Le, true) if bound >= start => ((bound - start) / delta + 1) as u64,
        (BinOp::Gt, false) if bound < start => ((start - bound + (-delta) - 1) / (-delta)) as u64,
        (BinOp::Ge, false) if bound <= start => ((start - bound) / (-delta) + 1) as u64,
        (BinOp::Lt | BinOp::Le, true) => 0,
        (BinOp::Gt | BinOp::Ge, false) => 0,
        (BinOp::Ne, _) => return unbounded("`!=` loop conditions cannot be bounded"),
        _ => return unbounded("loop direction contradicts its condition (never terminates)"),
    };
    LoopBound::Static { trips }
}

fn body_writes_var(b: &Block, var: &str) -> bool {
    b.stmts.iter().any(|s| stmt_writes_var(s, var))
}

fn stmt_writes_var(s: &Stmt, var: &str) -> bool {
    match s {
        Stmt::Assign { target, .. } => matches!(&target.kind, ExprKind::Var(n) if n == var),
        Stmt::Decl { name, .. } => name == var,
        Stmt::If {
            then_block,
            else_block,
            ..
        } => {
            body_writes_var(then_block, var)
                || else_block
                    .as_ref()
                    .map(|e| body_writes_var(e, var))
                    .unwrap_or(false)
        }
        Stmt::For { init, step, body, .. } => {
            init.as_deref().map(|s| stmt_writes_var(s, var)).unwrap_or(false)
                || step.as_deref().map(|s| stmt_writes_var(s, var)).unwrap_or(false)
                || body_writes_var(body, var)
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => body_writes_var(body, var),
        Stmt::Block(b) => body_writes_var(b, var),
        Stmt::Return { .. } | Stmt::Expr { .. } => false,
    }
}
