//! # perf-model — calibrated timing models for both evaluation platforms
//!
//! The paper reports wall-clock speedups measured on two physical
//! machines: an ARM platform with a VideoCore IV GPU (the target) and an
//! Intel Core 2 Duo T9400 + AMD Mobility Radeon HD 3400 (the x86
//! reference running AMD's CAL-based Brook+). We have neither machine;
//! per the substitution rule this crate converts *measured event counts*
//! from the simulator and the instrumented CPU references into seconds
//! using calibrated per-platform constants.
//!
//! What is measured vs. what is calibrated:
//!
//! * measured — shader ALU ops, texture fetches, fragments, draw calls,
//!   bytes uploaded/downloaded (from `gles2-sim`); CPU operation counts
//!   and memory-access profiles (from `brook-apps` instrumentation);
//! * calibrated — per-op throughputs, transfer bandwidths, per-draw
//!   overhead and memory-hierarchy latencies, set once per platform in
//!   [`Platform::target`] / [`Platform::reference`] to land in the same
//!   regime as the paper's Figure 1 (GPU/CPU capability ratio ≈ 26.7 on
//!   the target, ≈ 23 on the reference).
//!
//! Absolute seconds are therefore synthetic, but *shapes* — who wins at
//! which size, where crossovers fall, where plateaus saturate — follow
//! from the measured counts, which is exactly the claim the reproduction
//! checks (see EXPERIMENTS.md).

pub mod cache;

pub use cache::CacheSim;

/// Memory access pattern of an instrumented CPU phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Streaming/linear walks: prefetch-friendly, bandwidth-bound.
    Sequential,
    /// Data-dependent jumps: latency-bound (binary search, gathers).
    Random,
}

/// CPU core model: scalar throughput plus SIMD width for vectorized code
/// (the Brook+ x86 kernels were hand-vectorized, paper §6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Human-readable name.
    pub name: String,
    /// Sustained scalar operations per second (freq × IPC).
    pub ops_per_sec: f64,
    /// SIMD speedup factor available to vectorized CPU code.
    pub simd_width: f64,
}

/// Memory hierarchy model used for the CPU side.
#[derive(Debug, Clone, PartialEq)]
pub struct MemSpec {
    /// L1 data cache capacity in bytes.
    pub l1_bytes: u64,
    /// L2 cache capacity in bytes.
    pub l2_bytes: u64,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Random-access latency when the working set fits L1 (seconds).
    pub l1_latency_s: f64,
    /// Random-access latency when it fits L2 (seconds).
    pub l2_latency_s: f64,
    /// Random-access latency from DRAM (seconds).
    pub mem_latency_s: f64,
    /// Sequential streaming bandwidth (bytes/second).
    pub stream_bw: f64,
}

impl MemSpec {
    /// Seconds for `accesses` reads/writes of `access_bytes` each over a
    /// working set of `working_set` bytes with the given pattern.
    pub fn access_time(
        &self,
        accesses: u64,
        access_bytes: u64,
        working_set: u64,
        pattern: AccessPattern,
    ) -> f64 {
        match pattern {
            AccessPattern::Sequential => {
                if working_set <= self.l1_bytes {
                    accesses as f64 * self.l1_latency_s
                } else {
                    // Streaming: each byte crosses the bus once; latency
                    // hidden by prefetch.
                    (accesses * access_bytes) as f64 / self.stream_bw
                }
            }
            AccessPattern::Random => {
                let lat = if working_set <= self.l1_bytes {
                    self.l1_latency_s
                } else if working_set <= self.l2_bytes {
                    self.l2_latency_s
                } else {
                    self.mem_latency_s
                };
                accesses as f64 * lat
            }
        }
    }
}

/// GPU throughput model. Rates are in simulator event units: the GLSL
/// interpreter counts one ALU op per (possibly vector) operation, which
/// matches the vector microarchitecture of the modelled devices
/// (paper §5.4).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Human-readable name.
    pub name: String,
    /// Shader ALU operations retired per second (all cores combined).
    pub alu_per_sec: f64,
    /// Texture fetches per second.
    pub tex_per_sec: f64,
    /// Host -> GPU transfer bandwidth (bytes/second).
    pub upload_bw: f64,
    /// GPU -> host readback bandwidth (bytes/second).
    pub download_bw: f64,
    /// Fixed cost per draw call (state setup, kickoff, sync), seconds.
    pub draw_overhead_s: f64,
    /// Fixed cost per readback (pipeline flush), seconds.
    pub readback_overhead_s: f64,
    /// Per-fragment fixed cost (rasterization, scheduling), seconds.
    pub fragment_overhead_s: f64,
}

/// Counters describing one GPU execution, filled from `gles2-sim` stats.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GpuRun {
    /// Total shader ALU operations.
    pub alu_ops: u64,
    /// Total texture fetches.
    pub tex_fetches: u64,
    /// Total fragments shaded.
    pub fragments: u64,
    /// Number of draw calls.
    pub draw_calls: u64,
    /// Number of readbacks.
    pub readbacks: u64,
    /// Bytes uploaded to the GPU.
    pub bytes_uploaded: u64,
    /// Bytes read back from the GPU.
    pub bytes_downloaded: u64,
}

impl GpuSpec {
    /// Modeled execution time of a run.
    pub fn time(&self, run: &GpuRun) -> f64 {
        run.alu_ops as f64 / self.alu_per_sec
            + run.tex_fetches as f64 / self.tex_per_sec
            + run.fragments as f64 * self.fragment_overhead_s
            + run.draw_calls as f64 * self.draw_overhead_s
            + run.readbacks as f64 * self.readback_overhead_s
            + run.bytes_uploaded as f64 / self.upload_bw
            + run.bytes_downloaded as f64 / self.download_bw
    }
}

/// One memory phase of an instrumented CPU run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemPhase {
    /// Number of accesses.
    pub accesses: u64,
    /// Bytes per access.
    pub access_bytes: u64,
    /// Working-set size the accesses range over.
    pub working_set: u64,
    /// Access pattern.
    pub pattern: AccessPattern,
}

/// Counters describing one CPU execution (filled by the reference
/// implementations in `brook-apps`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CpuRun {
    /// Arithmetic/logic operations executed.
    pub ops: u64,
    /// True when the code is SIMD-vectorized (x86 Brook+ reference
    /// kernels; the CPU baselines in the paper are scalar C).
    pub vectorized: bool,
    /// Memory phases.
    pub phases: Vec<MemPhase>,
}

impl CpuRun {
    /// Creates a run with the given op count and no memory phases.
    pub fn with_ops(ops: u64) -> Self {
        CpuRun {
            ops,
            ..CpuRun::default()
        }
    }

    /// Adds a memory phase (builder style).
    pub fn phase(
        mut self,
        accesses: u64,
        access_bytes: u64,
        working_set: u64,
        pattern: AccessPattern,
    ) -> Self {
        self.phases.push(MemPhase {
            accesses,
            access_bytes,
            working_set,
            pattern,
        });
        self
    }
}

/// A complete platform: CPU + memory + GPU models.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Platform name as used in figures.
    pub name: String,
    /// CPU model.
    pub cpu: CpuSpec,
    /// Memory hierarchy model.
    pub mem: MemSpec,
    /// GPU model.
    pub gpu: GpuSpec,
    /// True when Brook kernels on this platform are vectorized (the
    /// Brook+/CAL reference); Brook Auto kernels are scalar (paper §6.1).
    pub vectorized_kernels: bool,
}

impl Platform {
    /// The evaluation target: ARM11-class CPU + VideoCore IV-class GPU
    /// behind OpenGL ES 2.0.
    ///
    /// Calibration notes: ARM11 @ 700 MHz sustains roughly 0.35 G scalar
    /// ops/s; VideoCore IV peaks at 24 GFLOPS but the GPGPU-visible rate
    /// through the GL pipeline is far lower — the constants below land
    /// the flops benchmark at the paper's 26.7x capability ratio.
    pub fn target() -> Platform {
        Platform {
            name: "ARM + VideoCore IV (Brook Auto, OpenGL ES 2)".to_owned(),
            cpu: CpuSpec {
                name: "ARM11 700 MHz".to_owned(),
                ops_per_sec: 3.5e8,
                simd_width: 1.0,
            },
            mem: MemSpec {
                l1_bytes: 16 * 1024,
                l2_bytes: 128 * 1024,
                line_bytes: 32,
                l1_latency_s: 3.0e-9,
                l2_latency_s: 12.0e-9,
                mem_latency_s: 90.0e-9,
                stream_bw: 0.8e9,
            },
            gpu: GpuSpec {
                name: "VideoCore IV".to_owned(),
                alu_per_sec: 5.0e9,
                tex_per_sec: 1.5e9,
                upload_bw: 0.35e9,
                download_bw: 0.25e9,
                draw_overhead_s: 0.8e-3,
                readback_overhead_s: 4.0e-3,
                fragment_overhead_s: 0.12e-9,
            },
            vectorized_kernels: false,
        }
    }

    /// The x86 reference: Core 2 Duo T9400 + Mobility Radeon HD 3400
    /// running AMD's CAL-based Brook+ with vectorized kernels.
    pub fn reference() -> Platform {
        Platform {
            name: "x86 + Radeon HD 3400 (Brook+, CAL)".to_owned(),
            cpu: CpuSpec {
                name: "Core 2 Duo T9400 2.53 GHz".to_owned(),
                ops_per_sec: 2.5e9,
                simd_width: 4.0,
            },
            mem: MemSpec {
                l1_bytes: 32 * 1024,
                l2_bytes: 6 * 1024 * 1024,
                line_bytes: 64,
                l1_latency_s: 1.2e-9,
                l2_latency_s: 6.0e-9,
                mem_latency_s: 60.0e-9,
                stream_bw: 5.0e9,
            },
            gpu: GpuSpec {
                name: "Mobility Radeon HD 3400".to_owned(),
                alu_per_sec: 3.0e10,
                tex_per_sec: 4.8e9,
                upload_bw: 1.6e9,
                download_bw: 1.0e9,
                draw_overhead_s: 0.3e-3,
                readback_overhead_s: 1.5e-3,
                fragment_overhead_s: 0.02e-9,
            },
            vectorized_kernels: true,
        }
    }

    /// Modeled CPU time of an instrumented run.
    pub fn cpu_time(&self, run: &CpuRun) -> f64 {
        let rate = if run.vectorized {
            self.cpu.ops_per_sec * self.cpu.simd_width
        } else {
            self.cpu.ops_per_sec
        };
        let mut t = run.ops as f64 / rate;
        for p in &run.phases {
            t += self
                .mem
                .access_time(p.accesses, p.access_bytes, p.working_set, p.pattern);
        }
        t
    }

    /// Modeled GPU time of a run.
    pub fn gpu_time(&self, run: &GpuRun) -> f64 {
        self.gpu.time(run)
    }

    /// Speedup of the GPU over the CPU (> 1 means the GPU wins).
    pub fn speedup(&self, cpu: &CpuRun, gpu: &GpuRun) -> f64 {
        self.cpu_time(cpu) / self.gpu_time(gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platforms_have_distinct_characters() {
        let t = Platform::target();
        let r = Platform::reference();
        assert!(r.cpu.ops_per_sec > t.cpu.ops_per_sec);
        assert!(r.gpu.alu_per_sec > t.gpu.alu_per_sec);
        assert!(r.vectorized_kernels && !t.vectorized_kernels);
    }

    #[test]
    fn gpu_time_scales_with_work() {
        let p = Platform::target();
        let small = GpuRun {
            alu_ops: 1_000,
            draw_calls: 1,
            ..GpuRun::default()
        };
        let big = GpuRun {
            alu_ops: 1_000_000_000,
            draw_calls: 1,
            ..GpuRun::default()
        };
        assert!(p.gpu_time(&big) > p.gpu_time(&small) * 100.0);
    }

    #[test]
    fn draw_overhead_dominates_tiny_kernels() {
        let p = Platform::target();
        let tiny = GpuRun {
            alu_ops: 10,
            draw_calls: 1,
            ..GpuRun::default()
        };
        let t = p.gpu_time(&tiny);
        assert!(t >= p.gpu.draw_overhead_s);
        assert!(t < p.gpu.draw_overhead_s * 1.01);
    }

    #[test]
    fn cpu_vectorization_speeds_up() {
        let p = Platform::reference();
        let scalar = CpuRun {
            ops: 1_000_000,
            vectorized: false,
            phases: vec![],
        };
        let vector = CpuRun {
            ops: 1_000_000,
            vectorized: true,
            phases: vec![],
        };
        let ratio = p.cpu_time(&scalar) / p.cpu_time(&vector);
        assert!((ratio - p.cpu.simd_width).abs() < 1e-9);
    }

    #[test]
    fn random_access_latency_steps_at_cache_boundaries() {
        let p = Platform::reference();
        let in_l1 = p.mem.access_time(1000, 4, 16 * 1024, AccessPattern::Random);
        let in_l2 = p.mem.access_time(1000, 4, 1024 * 1024, AccessPattern::Random);
        let in_mem = p
            .mem
            .access_time(1000, 4, 64 * 1024 * 1024, AccessPattern::Random);
        assert!(in_l1 < in_l2 && in_l2 < in_mem);
        assert!(in_mem / in_l1 > 10.0, "DRAM must be much slower than L1");
    }

    #[test]
    fn sequential_access_is_bandwidth_bound() {
        let p = Platform::reference();
        let seq = p
            .mem
            .access_time(1_000_000, 4, 64 * 1024 * 1024, AccessPattern::Sequential);
        let rnd = p
            .mem
            .access_time(1_000_000, 4, 64 * 1024 * 1024, AccessPattern::Random);
        assert!(
            seq < rnd / 10.0,
            "streaming should be much faster than random access"
        );
    }

    #[test]
    fn speedup_crosses_one_with_enough_work() {
        // Mimics the paper's global trend: transfers dominate small
        // inputs (CPU wins), compute dominates large ones (GPU wins).
        let p = Platform::target();
        let mut saw_cpu_win = false;
        let mut saw_gpu_win = false;
        for n in [64u64, 256, 1024, 4096, 16384, 65536, 262144, 1048576] {
            let cpu = CpuRun::with_ops(n * 2000);
            let gpu = GpuRun {
                alu_ops: n * 2000 / 4,
                tex_fetches: n,
                fragments: n,
                draw_calls: 1,
                readbacks: 1,
                bytes_uploaded: n * 4,
                bytes_downloaded: n * 4,
            };
            let s = p.speedup(&cpu, &gpu);
            if s < 1.0 {
                saw_cpu_win = true;
            } else {
                saw_gpu_win = true;
            }
        }
        assert!(saw_cpu_win, "small inputs should favour the CPU");
        assert!(saw_gpu_win, "large inputs should favour the GPU");
    }
}
