//! A set-associative LRU cache simulator.
//!
//! The analytic [`crate::MemSpec`] model is the one the benchmark sweeps
//! use (per-access simulation of multi-gigabyte traces would be
//! prohibitive); this simulator exists to *validate* the analytic model's
//! regime boundaries on small traces, and to support ablation studies of
//! the binary-search L1 crossover (paper §6.2).

/// Set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheSim {
    sets: Vec<Vec<Option<u64>>>,
    line_bytes: u64,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Creates a cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    /// Panics when the geometry is inconsistent (capacity not divisible
    /// into whole sets).
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines > 0 && lines.is_multiple_of(ways as u64),
            "capacity/ways/line geometry inconsistent"
        );
        let n_sets = (lines / ways as u64) as usize;
        CacheSim {
            sets: vec![vec![None; ways]; n_sets],
            line_bytes,
            hits: 0,
            misses: 0,
        }
    }

    /// Simulates an access to `addr`; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| *l == Some(line)) {
            // Move to front (LRU position 0 = most recent).
            let l = set.remove(pos);
            set.insert(0, l);
            self.hits += 1;
            true
        } else {
            set.pop();
            set.insert(0, Some(line));
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; 0 when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Resets counters but keeps cache contents (for warm-up protocols).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(1024, 4, 64);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = CacheSim::new(4096, 4, 64);
        // 2 KB working set walks repeatedly.
        for _ in 0..2 {
            for a in (0..2048).step_by(4) {
                c.access(a);
            }
        }
        c.reset_counters();
        for a in (0..2048).step_by(4) {
            c.access(a);
        }
        assert_eq!(c.misses(), 0, "warm working set within capacity must not miss");
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = CacheSim::new(4096, 4, 64);
        // 64 KB sequential working set: every new line misses.
        for _ in 0..2 {
            for a in (0..65536).step_by(64) {
                c.access(a);
            }
        }
        c.reset_counters();
        for a in (0..65536).step_by(64) {
            c.access(a);
        }
        assert_eq!(c.hit_rate(), 0.0, "LRU + sequential overflow must thrash");
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct-mapped-like scenario with 2 ways.
        let mut c = CacheSim::new(128, 2, 64); // 1 set, 2 ways
        c.access(0); // line 0
        c.access(64); // line 1
        c.access(0); // hit, line 0 most recent
        c.access(128); // evicts line 1
        assert!(c.access(0), "line 0 must still be cached");
        assert!(!c.access(64), "line 1 must have been evicted");
    }

    #[test]
    fn validates_analytic_l1_boundary() {
        // The analytic model says random accesses over a working set
        // within L1 are fast; the simulator confirms high hit rates below
        // capacity and low above (ratio >> 1).
        let l1 = 16 * 1024;
        let mut small = CacheSim::new(l1, 4, 32);
        let mut big = CacheSim::new(l1, 4, 32);
        let mut rng: u64 = 0x12345678;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..200_000 {
            let r = next();
            small.access(r % (8 * 1024));
            big.access(r % (1024 * 1024));
        }
        assert!(small.hit_rate() > 0.95);
        assert!(big.hit_rate() < 0.30);
    }
}
