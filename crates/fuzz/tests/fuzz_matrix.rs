//! The fuzz smoke suite CI runs on every PR: a fixed-seed differential
//! campaign across every registered backend, gate-escape checks, and the
//! mutation self-test proving the harness actually catches bugs.

use brook_fuzz::{
    gen_case, run_campaign, run_campaign_on, CampaignFailure, FuzzConfig, GenConfig, Matrix, SaboteurBackend,
};

/// The pinned CI seed. Changing it invalidates triage links in old CI
/// logs, so bump it deliberately, not incidentally.
const CI_SEED: u64 = 0xB400_A070;

/// ≥256 generated programs, every registered backend, zero divergence,
/// zero gate escapes — the acceptance bar for the differential pipeline.
#[test]
fn campaign_256_cases_across_all_backends() {
    let cfg = FuzzConfig {
        seed: CI_SEED,
        cases: 256,
        negative_cases: 64,
        ..FuzzConfig::default()
    };
    let stats = run_campaign(&cfg).unwrap_or_else(|f| panic!("campaign failed:\n{f}"));
    assert_eq!(stats.positive_cases, 256);
    assert_eq!(stats.negative_cases, 64);
    assert!(
        stats.rejected_by_rule.len() >= 4,
        "negative generation should exercise several rules, got {:?}",
        stats.rejected_by_rule
    );
}

/// 96 generated kernels through the *widened* matrix of
/// `brook_fuzz::optdiff`: the AST tree-walking oracle (which never
/// touches BrookIR), the unoptimized flat-IR interpreter, and every
/// registered backend running the fully optimized pipeline — bitwise on
/// all CPU specs, storage tolerance on the device. This is the
/// acceptance bar for the cert-gated pass pipeline: optimization must
/// be invisible in results, element for element, bit for bit.
#[test]
fn optdiff_campaign_96_cases_bitwise_vs_ast_oracle() {
    let stats = brook_fuzz::run_optdiff_campaign(CI_SEED, 96, &brook_fuzz::GenConfig::default())
        .unwrap_or_else(|e| panic!("optdiff campaign failed:\n{e}"));
    assert_eq!(stats.cases, 96);
    assert!(
        stats.elements_checked > 1_000,
        "campaign too small to mean anything: {} elements",
        stats.elements_checked
    );
}

/// 96 generated kernels through the lane differential matrix: the AST
/// tree-walking oracle, the scalar flat-IR interpreter (lane execution
/// disabled), the lane engine, and the parallel backend's lane-aligned
/// chunking — all bitwise. Plus the fixed planner-rejected set, which
/// must certify, be refused by the planner, and still agree bitwise
/// through the forced scalar fallback. This is the acceptance bar for
/// lane vectorization: batching must be invisible in results, element
/// for element, bit for bit, and the fallback path must demonstrably
/// run.
#[test]
fn lanes_campaign_96_cases_bitwise_vs_scalar_and_ast() {
    let stats = brook_fuzz::run_lanes_campaign(CI_SEED, 96, &brook_fuzz::GenConfig::default())
        .unwrap_or_else(|e| panic!("lanes campaign failed:\n{e}"));
    assert!(stats.cases >= 96 + 2, "{stats:?}");
    assert!(
        stats.vectorized_kernels >= 64,
        "the campaign must mostly exercise the lane engine: {stats:?}"
    );
    assert!(
        stats.fallback_kernels >= 2,
        "the campaign must exercise the scalar fallback: {stats:?}"
    );
    assert!(
        stats.elements_checked > 1_000,
        "campaign too small to mean anything: {} elements",
        stats.elements_checked
    );
}

/// 96 generated kernels through the tier differential matrix: the AST
/// tree-walking oracle, the scalar flat-IR interpreter, the lane
/// engine with tier compilation disabled, the Tier-2 closure chains,
/// and the parallel backend running Tier-2 inside its workers — all
/// bitwise. Plus the fixed tier-rejected set (cross-component
/// reductions), which must certify, lane-vectorize, be refused by the
/// tier compiler, and still agree bitwise through the forced
/// lane-engine fallback. This is the acceptance bar for Tier-2:
/// closure threading, superword fusion and uniform hoisting must be
/// invisible in results, element for element, bit for bit, and the
/// fallback path must demonstrably run.
#[test]
fn tier_campaign_96_cases_bitwise_vs_lanes_scalar_and_ast() {
    let stats = brook_fuzz::run_tier_campaign(CI_SEED, 96, &brook_fuzz::GenConfig::default())
        .unwrap_or_else(|e| panic!("tier campaign failed:\n{e}"));
    assert!(stats.cases >= 96 + 2, "{stats:?}");
    assert!(
        stats.tier_kernels >= 64,
        "the campaign must mostly exercise Tier-2: {stats:?}"
    );
    assert!(
        stats.fallback_kernels >= 2,
        "the campaign must exercise the lane-engine fallback: {stats:?}"
    );
    assert!(
        stats.elements_checked > 1_000,
        "campaign too small to mean anything: {} elements",
        stats.elements_checked
    );
}

/// 48 generated kernels, each run twice per registered backend — clamp
/// elision on (the default) and off — with **bitwise** agreement
/// required between the two runs on every backend, device included.
/// Plus the fixed provably-faulty set (negative constant / folded /
/// loop-range gather indices, zero denominators), which certification
/// must hard-reject with BA013/BA014 findings anchored to the faulting
/// source line. This is the acceptance bar for the abstract
/// interpreter: a wrong bounds proof shows up as an elision-on vs
/// elision-off bit difference, a missed provable fault as an accepted
/// fault case, a lost span as a mis-anchored finding.
#[test]
fn absint_campaign_48_cases_elision_bitwise_and_faults_rejected() {
    let stats = brook_fuzz::run_absint_campaign(CI_SEED, 48, &brook_fuzz::GenConfig::default())
        .unwrap_or_else(|e| panic!("absint campaign failed:\n{e}"));
    assert_eq!(stats.cases, 48);
    assert!(
        stats.gather_cases >= 8,
        "the campaign must exercise gathers: {stats:?}"
    );
    assert!(
        stats.proven_gathers >= 1,
        "the campaign must exercise clamp elision, not just vacuous agreement: {stats:?}"
    );
    assert!(stats.rejected_faults >= 5, "{stats:?}");
    assert!(
        stats.elements_checked > 1_000,
        "campaign too small to mean anything: {} elements",
        stats.elements_checked
    );
}

/// 128 random 2–5 kernel pipelines, each run eagerly and through the
/// deferred fusing graph executor on every registered backend: zero
/// divergence against the eager CPU oracle (bit-exact on CPU backends),
/// every chain actually collapsed by the planner, every fused kernel
/// re-certified through the real gate (fusion silently skipping the gate
/// would show up as a `NotFused` failure on restricted contexts; fusion
/// miscompiling shows up as a divergence).
#[test]
fn chain_campaign_128_cases_eager_vs_fused() {
    let stats = brook_fuzz::run_chain_campaign(CI_SEED, 128, &brook_fuzz::ChainConfig::default())
        .unwrap_or_else(|f| panic!("chain campaign failed:\n{f}"));
    assert_eq!(stats.cases, 128);
    assert_eq!(
        stats.executed_passes, stats.cases as usize,
        "every chain must collapse to a single pass"
    );
    assert_eq!(stats.eager_passes, stats.stages);
    assert_eq!(stats.elided_streams, stats.stages - stats.cases as usize);
    assert!(
        stats.eager_passes as f64 >= 1.3 * stats.executed_passes as f64,
        "the campaign must demonstrate ≥30% pass reduction, got {} → {}",
        stats.eager_passes,
        stats.executed_passes
    );
}

/// The campaign is a pure function of the seed: two runs generate the
/// same programs (cheap proxy: the generated sources are identical).
#[test]
fn campaign_generation_is_deterministic() {
    let gen_cfg = GenConfig::default();
    for i in 0..32 {
        let a = gen_case(CI_SEED, i, &gen_cfg);
        let b = gen_case(CI_SEED, i, &gen_cfg);
        assert_eq!(a.source, b.source, "case {i} not deterministic");
        assert_eq!(a.inputs, b.inputs, "case {i} data not deterministic");
    }
}

/// Mutation self-test: inject a sabotaged backend (one output element
/// corrupted per dispatch, wired in through the public
/// `BackendExecutor` trait) and require the campaign to catch it, shrink
/// the case, and leave a repro bundle behind.
#[test]
fn injected_backend_bug_is_caught_minimized_and_bundled() {
    let mut matrix = Matrix::default();
    matrix.specs.push(brook_auto::BackendSpec {
        name: "cpu-sabotaged",
        make: SaboteurBackend::context,
    });
    let cfg = FuzzConfig {
        seed: CI_SEED ^ 0xDEAD,
        cases: 8, // the very first dispatch already trips the bug
        negative_cases: 0,
        ..FuzzConfig::default()
    };
    let failure = run_campaign_on(&cfg, &matrix).expect_err("sabotage must be detected");
    match failure {
        CampaignFailure::CaseFailed {
            minimized,
            original,
            failure,
            repro,
        } => {
            let text = failure.to_string();
            assert!(
                text.contains("cpu-sabotaged"),
                "failure must name the buggy backend: {text}"
            );
            assert!(
                minimized.stmt_count() <= original.stmt_count(),
                "shrinking must not grow the case"
            );
            assert!(
                minimized.domain_len() <= original.domain_len(),
                "shrinking must not grow the domain"
            );
            // The corruption hits element 0 regardless of program shape,
            // so the minimal domain is a single element.
            assert_eq!(minimized.domain_len(), 1, "{}", minimized.source);
            let dir = repro.expect("repro bundle must be written");
            assert!(dir.join("program.br").is_file());
            assert!(dir.join("inputs.txt").is_file());
            assert!(dir.join("README.md").is_file());
            assert!(
                dir.join("output-cpu.txt").is_file(),
                "reference outputs belong in the bundle"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
        other => panic!("expected CaseFailed, got: {other}"),
    }
}

/// 96 generated kernels with special-float-biased data (NaN, signed
/// zeros, subnormals) through the explicit-SIMD matrix of
/// `brook_fuzz::simd`: every CPU engine tier with SIMD forced off,
/// forced to SSE2, and auto-detected — bitwise against the AST oracle
/// — plus each device backend run as an off/auto pair, plus the fixed
/// reduce set (one provably reassociation-safe combine that must be
/// admitted to the vectorized reduce, two that must fall back to the
/// serial scalar fold, all bit-compared). This is the acceptance bar
/// for the `std::arch` layer: vector instructions must be invisible
/// in results, bit for bit, exactly where their edge-case semantics
/// could differ from the scalar loops.
#[test]
fn simd_campaign_96_cases_bitwise_on_special_floats() {
    let stats = brook_fuzz::run_simd_campaign(CI_SEED, 96, &brook_fuzz::GenConfig::default())
        .unwrap_or_else(|e| panic!("simd campaign failed:\n{e}"));
    assert_eq!(
        stats.cases,
        96 + 1 + brook_fuzz::simd::SIMD_REDUCE_REJECTED.len() as u32,
        "{stats:?}"
    );
    if brook_ir::simd::detect() != brook_ir::simd::SimdLevel::Scalar {
        assert!(
            stats.simd_kernels >= 48,
            "the campaign must mostly exercise the SIMD block steps: {stats:?}"
        );
        assert_eq!(stats.admitted_reduces, 1, "{stats:?}");
    }
    assert_eq!(
        stats.rejected_reduces,
        brook_fuzz::simd::SIMD_REDUCE_REJECTED.len() as u32,
        "{stats:?}"
    );
    assert!(
        stats.elements_checked > 1_000,
        "campaign too small to mean anything: {} elements",
        stats.elements_checked
    );
}

/// A campaign against the real backends with a *different* seed than CI
/// still passes — i.e. the smoke seed is not a lucky one. Kept small so
/// the suite stays fast.
#[test]
fn alternate_seed_spot_check() {
    let cfg = FuzzConfig {
        seed: 0x5EED_0002,
        cases: 24,
        negative_cases: 16,
        ..FuzzConfig::default()
    };
    let stats = run_campaign(&cfg).unwrap_or_else(|f| panic!("campaign failed:\n{f}"));
    assert_eq!(stats.positive_cases, 24);
}

/// 48 generated kernels each executed by 6 racing contexts (cycling the
/// CPU-family backends) that adopt one shared cached artifact — bitwise
/// against the serial reference, with exact cache accounting. This is
/// the acceptance bar for multi-tenant artifact sharing: the compiled-
/// module cache must be semantically invisible under real concurrency.
#[test]
fn concurrent_campaign_48_cases_shared_cache_bitwise() {
    let stats = brook_fuzz::run_concurrent_campaign(CI_SEED, 48, 6, &brook_fuzz::GenConfig::default())
        .unwrap_or_else(|e| panic!("concurrent campaign failed:\n{e}"));
    assert_eq!(stats.cases, 48);
    assert_eq!(stats.cache_misses, 48, "one compile per case");
    assert_eq!(
        stats.cache_hits,
        48 * 6,
        "every racing context must hit the cache"
    );
    assert!(
        stats.elements_checked > 1_000,
        "campaign too small to mean anything: {} elements",
        stats.elements_checked
    );
}

mod roundtrip_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Property form of the front-end round trip: for arbitrary
        /// seeds (not just the CI seed), generated programs reparse and
        /// re-print to the same canonical source.
        #[test]
        fn print_parse_fixed_point(seed in 0u64..1_000_000, index in 0u32..8) {
            let case = gen_case(seed, index, &GenConfig::default());
            let reparsed = brook_lang::parse(&case.source).expect("reparse");
            let printed = brook_lang::pretty::print_program(&reparsed);
            prop_assert_eq!(printed, case.source);
        }
    }
}

#[test]
fn fault_campaign_three_apps_recover_bit_exact() {
    // The trimmed fault matrix: 3 apps × 4 backends × 1 random plan
    // each, recovery asserted bit-exact against the fault-free run of
    // the same backend (CI runs the full 11-app matrix via the
    // `faults_smoke` example under a hard job timeout). Fixed seed:
    // the exact schedules reproduce anywhere.
    let stats = brook_fuzz::run_faults_campaign(&brook_fuzz::FaultsConfig {
        apps: vec!["black_scholes", "spmv", "image_filter"],
        ..brook_fuzz::FaultsConfig::default()
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(stats.cases, 12, "3 apps × 4 backends");
    assert_eq!(stats.per_backend.len(), 4);
    assert!(stats.injected_faults > 0, "plans must actually inject: {stats:?}");
}
