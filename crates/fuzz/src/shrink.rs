//! Minimizing a diverging case.
//!
//! Shrinking never invents new programs: every candidate is an edit of
//! the failing case (fewer statements, simpler control flow, smaller
//! loop bounds, smaller shapes), revalidated through the *real*
//! front-end and certification gate, and re-run through the caller's
//! failure predicate. The result is the smallest edit of the original
//! that still diverges — which is what a backend author wants to stare
//! at, not a 40-line random kernel.

use crate::gen::FuzzCase;
use brook_cert::{certify, CertConfig};
use brook_lang::ast::*;

/// Maximum shrink iterations (each iteration tries every candidate edit
/// once); a backstop, normal cases converge in a handful.
const MAX_ROUNDS: usize = 64;

/// Shrinks `case` while `still_fails` keeps returning `true` for the
/// candidate. Returns the smallest failing case found (possibly the
/// original if nothing simpler still fails).
pub fn shrink<F>(case: &FuzzCase, mut still_fails: F) -> FuzzCase
where
    F: FnMut(&FuzzCase) -> bool,
{
    let mut best = case.clone();
    for _ in 0..MAX_ROUNDS {
        let mut improved = false;

        // 1. Drop one top-level kernel statement at a time (reverse
        //    order, so consumers go before their declarations). Output
        //    assignments are kept: a kernel that writes nothing cannot
        //    witness a divergence, so removing them never minimizes a
        //    real failure — it only degenerates the case.
        let kernel_len = kernel_stmt_len(&best);
        for idx in (0..kernel_len).rev() {
            if is_output_assignment(&best, idx) {
                continue;
            }
            let mut cand = best.clone();
            remove_kernel_stmt(&mut cand, idx);
            if try_accept(&mut cand, &mut still_fails) {
                best = cand;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }

        // 2. Flatten control flow: replace an `if` with its then-branch,
        //    a `for` with its body.
        for idx in 0..kernel_stmt_len(&best) {
            let mut cand = best.clone();
            if flatten_kernel_stmt(&mut cand, idx) && try_accept(&mut cand, &mut still_fails) {
                best = cand;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }

        // 3. Shrink loop bounds to a single trip.
        {
            let mut cand = best.clone();
            if shrink_loop_bounds(&mut cand) && try_accept(&mut cand, &mut still_fails) {
                best = cand;
                continue;
            }
        }

        // 4. Shrink the domain and gather shapes.
        {
            let mut cand = best.clone();
            if halve_shapes(&mut cand) && try_accept(&mut cand, &mut still_fails) {
                best = cand;
                continue;
            }
        }

        break; // fixpoint: no candidate this round still fails
    }
    best
}

/// Refreshes the candidate's source/data and accepts it when it is still
/// a valid, certifiable program that still fails.
fn try_accept<F>(cand: &mut FuzzCase, still_fails: &mut F) -> bool
where
    F: FnMut(&FuzzCase) -> bool,
{
    cand.refresh();
    if !revalidate(cand) {
        return false;
    }
    still_fails(cand)
}

/// A candidate must still round-trip through the real front-end and the
/// certification gate — shrinking must not escape the tested subset.
fn revalidate(case: &FuzzCase) -> bool {
    let Ok(checked) = brook_lang::parse_and_check(&case.source) else {
        return false;
    };
    certify(&checked, &CertConfig::default()).is_compliant()
}

fn kernel_body_mut(case: &mut FuzzCase) -> Option<&mut Block> {
    case.program.items.iter_mut().find_map(|i| match i {
        Item::Kernel(k) => Some(&mut k.body),
        Item::Function(_) => None,
    })
}

fn kernel_stmt_len(case: &FuzzCase) -> usize {
    case.program
        .kernels()
        .next()
        .map(|k| k.body.stmts.len())
        .unwrap_or(0)
}

/// True when kernel-body statement `idx` assigns directly to an `out`
/// stream parameter.
fn is_output_assignment(case: &FuzzCase, idx: usize) -> bool {
    let Some(k) = case.program.kernels().next() else {
        return false;
    };
    let Some(Stmt::Assign { target, .. }) = k.body.stmts.get(idx) else {
        return false;
    };
    let ExprKind::Var(name) = &target.kind else {
        return false;
    };
    k.params
        .iter()
        .any(|p| p.kind == ParamKind::OutStream && &p.name == name)
}

fn remove_kernel_stmt(case: &mut FuzzCase, idx: usize) {
    if let Some(body) = kernel_body_mut(case) {
        if idx < body.stmts.len() {
            body.stmts.remove(idx);
        }
    }
}

/// Replaces `if`/`for` statement `idx` with its (then-)body statements.
/// Returns false when the statement has no body to flatten into.
fn flatten_kernel_stmt(case: &mut FuzzCase, idx: usize) -> bool {
    let Some(body) = kernel_body_mut(case) else {
        return false;
    };
    if idx >= body.stmts.len() {
        return false;
    }
    let inner: Option<Vec<Stmt>> = match &body.stmts[idx] {
        Stmt::If { then_block, .. } => Some(then_block.stmts.clone()),
        Stmt::For { body: b, .. } => Some(b.stmts.clone()),
        _ => None,
    };
    match inner {
        Some(stmts) => {
            body.stmts.splice(idx..idx + 1, stmts);
            true
        }
        None => false,
    }
}

/// Rewrites every counted-loop bound greater than 1 down to 1. Returns
/// whether anything changed.
fn shrink_loop_bounds(case: &mut FuzzCase) -> bool {
    fn visit(b: &mut Block) -> bool {
        let mut changed = false;
        for s in &mut b.stmts {
            match s {
                Stmt::For { cond, body, .. } => {
                    if let Some(Expr {
                        kind: ExprKind::Binary { rhs, .. },
                        ..
                    }) = cond
                    {
                        if let ExprKind::IntLit(v) = &mut rhs.kind {
                            if *v > 1 {
                                *v = 1;
                                changed = true;
                            }
                        }
                    }
                    changed |= visit(body);
                }
                Stmt::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    changed |= visit(then_block);
                    if let Some(e) = else_block {
                        changed |= visit(e);
                    }
                }
                Stmt::Block(inner) => changed |= visit(inner),
                _ => {}
            }
        }
        changed
    }
    let Some(body) = kernel_body_mut(case) else {
        return false;
    };
    visit(body)
}

/// Halves every domain/gather dimension (floor at 1). Returns whether
/// anything changed. `FuzzCase::refresh` regenerates the input buffers
/// for the new sizes.
fn halve_shapes(case: &mut FuzzCase) -> bool {
    let mut changed = false;
    for d in &mut case.domain_shape {
        if *d > 1 {
            *d = (*d).div_ceil(2);
            changed = true;
        }
    }
    if let Some(g) = &mut case.gather {
        for d in &mut g.shape {
            if *d > 1 {
                *d = (*d).div_ceil(2);
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_case, GenConfig};
    use brook_lang::pretty::print_program;

    /// With a predicate that always fails, shrinking must drive the case
    /// to its skeleton: output assignments only, unit shapes.
    #[test]
    fn shrinks_to_minimal_under_always_failing_predicate() {
        let case = gen_case(0x5111, 7, &GenConfig::default());
        let small = shrink(&case, |_| true);
        assert!(small.stmt_count() <= case.stmt_count());
        assert!(small.domain_len() <= case.domain_len());
        assert!(small.domain_shape.iter().all(|d| *d == 1));
        // The result must still be a valid, certifiable program.
        assert!(revalidate(&small), "{}", small.source);
        // Outputs must survive: removing them would break compilation,
        // so the skeleton keeps at least one statement per output.
        assert!(small.stmt_count() >= small.n_outputs);
    }

    /// With a predicate that never fails again, the original comes back
    /// unchanged (shrinking must not "improve" a passing case).
    #[test]
    fn keeps_original_when_nothing_simpler_fails() {
        let case = gen_case(0x5112, 3, &GenConfig::default());
        let same = shrink(&case, |_| false);
        assert_eq!(same.source, case.source);
    }

    #[test]
    fn shrunk_sources_stay_in_sync_with_ast() {
        let case = gen_case(0x5113, 1, &GenConfig::default());
        let small = shrink(&case, |c| c.stmt_count() > 1);
        assert_eq!(small.source, print_program(&small.program));
    }
}
