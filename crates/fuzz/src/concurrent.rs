//! Concurrent differential campaign: generated cases executed by many
//! threads × many contexts drawing compiled artifacts from one shared
//! [`ModuleCache`], cross-checked bitwise against the serial CPU
//! reference.
//!
//! The property under test is the service substrate's core claim:
//! sharing a compiled [`brook_auto::ModuleArtifact`] across tenants
//! (contexts) and threads is *semantically invisible* — every context
//! adopting the cached artifact computes exactly what a fresh
//! single-context compile-and-run computes, under real scheduling
//! nondeterminism. CPU-family backends must agree bit for bit.

use crate::differential::run_with_module;
use crate::gen::{gen_case, GenConfig};
use brook_auto::{registered_backends, BrookContext};
use brook_serve::{hash_source, CacheKey, ModuleCache};
use std::sync::Arc;

/// Summary of a completed concurrent campaign.
#[derive(Debug, Clone, Default)]
pub struct ConcurrentStats {
    /// Cases generated and cross-checked.
    pub cases: u32,
    /// Worker threads racing per case.
    pub threads: usize,
    /// Total elements compared against the reference.
    pub elements_checked: u64,
    /// Shared-cache hits (every adoption past the first per case).
    pub cache_hits: u64,
    /// Shared-cache misses (one compile per case).
    pub cache_misses: u64,
}

fn cpu_matrix_names() -> Vec<&'static str> {
    registered_backends()
        .iter()
        .map(|s| s.name)
        .filter(|n| n.starts_with("cpu"))
        .collect()
}

fn make_ctx(name: &str) -> BrookContext {
    let spec = registered_backends()
        .into_iter()
        .find(|b| b.name == name)
        .expect("registered backend");
    (spec.make)()
}

/// Runs `cases` generated kernels, each executed concurrently by
/// `threads` contexts (cycling through the CPU-family backends) that
/// all adopt one cached artifact, and compares every thread's outputs
/// bitwise against a serial CPU reference run of the same case.
///
/// # Errors
/// A rendered report naming the case, thread and first diverging
/// element, or any setup failure.
pub fn run_concurrent_campaign(
    seed: u64,
    cases: u32,
    threads: usize,
    gen: &GenConfig,
) -> Result<ConcurrentStats, String> {
    assert!(threads >= 2, "a concurrency campaign needs ≥ 2 threads");
    let backends = cpu_matrix_names();
    let cache = Arc::new(ModuleCache::new());
    let mut stats = ConcurrentStats {
        threads,
        ..ConcurrentStats::default()
    };

    for i in 0..cases {
        let case = Arc::new(gen_case(seed, i, gen));

        // Serial reference: its compile is the case's single cache miss.
        let mut ref_ctx = BrookContext::cpu();
        let key = |ctx: &BrookContext, backend: &'static str| CacheKey {
            source_hash: hash_source(&case.source),
            cert_fingerprint: ctx.cert_config().fingerprint(),
            backend,
        };
        let ref_key = key(&ref_ctx, "cpu");
        let artifact = cache
            .get_or_compile(ref_key, || ref_ctx.compile_artifact(&case.source))
            .map_err(|e| format!("case {}: compile: {e}", case.name))?;
        let ref_module = ref_ctx
            .adopt_artifact(&artifact)
            .map_err(|e| format!("case {}: adopt: {e}", case.name))?;
        let reference = run_with_module(&mut ref_ctx, &ref_module, &case)
            .map_err(|e| format!("case {}: reference run: {e}", case.name))?;

        // The concurrent phase: every thread adopts from the cache.
        // CPU-family artifacts are backend-independent up to the cache
        // key, so all CPU backends share the reference's entry.
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let case = Arc::clone(&case);
                let cache = Arc::clone(&cache);
                let backend = backends[t % backends.len()];
                std::thread::spawn(move || -> Result<Vec<Vec<f32>>, String> {
                    let mut ctx = make_ctx(backend);
                    let k = CacheKey {
                        source_hash: hash_source(&case.source),
                        cert_fingerprint: ctx.cert_config().fingerprint(),
                        backend: "cpu",
                    };
                    let artifact = cache
                        .get_or_compile(k, || ctx.compile_artifact(&case.source))
                        .map_err(|e| format!("compile: {e}"))?;
                    let module = ctx.adopt_artifact(&artifact).map_err(|e| format!("adopt: {e}"))?;
                    run_with_module(&mut ctx, &module, &case)
                })
            })
            .collect();

        for (t, w) in workers.into_iter().enumerate() {
            let outputs = w
                .join()
                .map_err(|_| format!("case {}: thread {t} panicked", case.name))?
                .map_err(|e| format!("case {}: thread {t}: {e}", case.name))?;
            if outputs.len() != reference.len() {
                return Err(format!(
                    "case {}: thread {t}: {} outputs vs reference {}",
                    case.name,
                    outputs.len(),
                    reference.len()
                ));
            }
            for (oi, (got, want)) in outputs.iter().zip(&reference).enumerate() {
                if got.len() != want.len() {
                    return Err(format!(
                        "case {}: thread {t}: output {oi} length {} vs reference {}",
                        case.name,
                        got.len(),
                        want.len()
                    ));
                }
                for (ei, (g, r)) in got.iter().zip(want).enumerate() {
                    if g.to_bits() != r.to_bits() {
                        return Err(format!(
                            "case {}: thread {t}: output {oi} element {ei}: {g} vs reference {r} \
                             (concurrent shared-artifact execution diverged)",
                            case.name
                        ));
                    }
                    stats.elements_checked += 1;
                }
            }
        }
        stats.cases += 1;
    }

    let (hits, misses) = cache.stats();
    stats.cache_hits = hits;
    stats.cache_misses = misses;
    // One miss per case (the reference compile won the race by
    // construction: it ran before any worker thread existed).
    if misses != u64::from(cases) {
        return Err(format!(
            "cache accounting: expected {cases} misses (one per case), saw {misses}"
        ));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_concurrent_campaign_is_bitwise_clean() {
        let stats = run_concurrent_campaign(0xC0FF_EE00, 6, 4, &GenConfig::default())
            .unwrap_or_else(|e| panic!("concurrent campaign failed:\n{e}"));
        assert_eq!(stats.cases, 6);
        assert!(stats.elements_checked > 100);
        assert_eq!(stats.cache_misses, 6);
        assert_eq!(stats.cache_hits, 6 * 4);
    }
}
