//! Tier-2 differential mode.
//!
//! The closure-threaded executor (`brook_ir::tier`) promises
//! **bit-exactness with the lane engine and the scalar IR interpreter
//! by construction**: admission only compiles ops the closure model
//! covers, and unmodeled bindings or faulting blocks re-run through
//! the lane engine (which itself re-runs scalar). This module widens
//! the lane differential matrix by one engine tier to assert that
//! promise on every generated kernel:
//!
//! | spec           | engine                                      | policy  |
//! |----------------|---------------------------------------------|---------|
//! | `cpu-ast`      | AST tree walker (oracle)                    | reference |
//! | `cpu-scalar`   | scalar flat-IR interpreter (lanes off)      | bitwise |
//! | `cpu-lanes`    | lane engine (tier compilation off)          | bitwise |
//! | `cpu`          | Tier-2 closure chains (admitted kernels)    | bitwise |
//! | `cpu-parallel` | Tier-2 in workers, reused per-worker slabs  | bitwise |
//!
//! One diverging case localizes the bug: `cpu-lanes` vs `cpu-scalar`
//! is a lane-engine fault, `cpu` vs `cpu-lanes` is a tier-compiler
//! fault (fusion, hoisting or closure semantics), `cpu-parallel` vs
//! `cpu` is a chunking/slab-reuse fault.
//!
//! Every case is also compile-probed to record the tier decision, and
//! the campaign runs a fixed set of certifiable kernels the lane
//! planner *admits* but the tier compiler *rejects* (cross-component
//! reductions), proving the lane-engine fallback path is actually
//! exercised and bit-exact too.

use crate::differential::{run_case, BackendOutput, CaseFailure, Matrix};
use crate::gen::{gen_case, GenConfig};
use brook_auto::{Arg, BackendSpec, BrookContext};

fn cpu_scalar() -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.lane_execution = false;
    ctx
}

fn cpu_lanes_only() -> BrookContext {
    let mut ctx = BrookContext::cpu();
    ctx.tier_execution = false;
    ctx
}

/// The widened matrix: AST oracle, scalar IR interpreter, lane engine
/// with tier compilation disabled, Tier-2 closure chains, and the
/// parallel backend running Tier-2 inside workers — all CPU specs, so
/// the comparison policy is bitwise everywhere.
pub fn tier_matrix() -> Matrix {
    Matrix {
        specs: vec![
            BackendSpec {
                name: "cpu-ast",
                make: BrookContext::cpu_ast_oracle,
            },
            BackendSpec {
                name: "cpu-scalar",
                make: cpu_scalar,
            },
            BackendSpec {
                name: "cpu-lanes",
                make: cpu_lanes_only,
            },
            BackendSpec {
                name: "cpu",
                make: BrookContext::cpu,
            },
            BackendSpec {
                name: "cpu-parallel",
                make: BrookContext::cpu_parallel,
            },
        ],
        tolerance: 0.0,
    }
}

/// Statistics of one tier differential campaign.
#[derive(Debug, Clone, Default)]
pub struct TierStats {
    /// Cases that ran and agreed bitwise across the whole matrix.
    pub cases: u32,
    /// Kernels the compiler admitted to Tier-2.
    pub tier_kernels: u32,
    /// Kernels the compiler rejected (lane/scalar fallback exercised),
    /// including the fixed rejected set.
    pub fallback_kernels: u32,
    /// Total output elements cross-checked.
    pub elements_checked: u64,
}

/// Certifiable kernels the lane planner *admits* but the tier compiler
/// must *reject* — cross-component reductions (`dot`, `length`,
/// `normalize`) are not closure-threaded. They compile, certify,
/// lane-vectorize, and must still agree bitwise across the matrix
/// through the lane-engine fallback.
const TIER_REJECTED_SOURCES: &[&str] = &[
    "kernel void dotted(float a<>, out float o<>) {
        float2 v = float2(a, a * 0.5);
        o = dot(v, v) + 1.0;
    }",
    "kernel void normed(float a<>, out float o<>) {
        float3 u = float3(a + 1.0, a * 2.0, 3.0);
        o = length(u) + normalize(u).x;
    }",
];

/// Compile-probes one source on a tier-enabled CPU context and returns
/// `(tier, fallback)` kernel counts from the recorded tier plans.
///
/// # Errors
/// Compile failures.
fn probe_plans(source: &str) -> Result<(u32, u32), String> {
    let mut ctx = BrookContext::cpu();
    let module = ctx.compile(source).map_err(|e| format!("probe compile: {e}"))?;
    let mut tiered = 0;
    let mut fallback = 0;
    for plan in &module.report.tier_plans {
        if plan.compiled {
            tiered += 1;
        } else {
            fallback += 1;
        }
    }
    Ok((tiered, fallback))
}

/// Compile-probes the *lane* decision for a source (the rejected set
/// must stay lane-admitted, or it would not prove the lane fallback).
fn probe_lane_admitted(source: &str) -> Result<bool, String> {
    let mut ctx = BrookContext::cpu();
    let module = ctx.compile(source).map_err(|e| format!("probe compile: {e}"))?;
    Ok(module.report.lane_plans.iter().all(|p| p.vectorized))
}

/// Runs one fixed source across the matrix with a deterministic ramp
/// input, requiring bitwise agreement with the AST oracle.
///
/// # Errors
/// Compile/run failures and divergences, rendered with the source.
fn run_fixed(source: &str, n: usize) -> Result<u64, String> {
    let input: Vec<f32> = (0..n).map(|i| (i as f32) * 0.73 - 3.0).collect();
    let mut reference: Option<(&'static str, Vec<f32>)> = None;
    let mut checked = 0u64;
    for spec in tier_matrix().specs {
        let mut ctx = (spec.make)();
        let module = ctx
            .compile(source)
            .map_err(|e| format!("{}: compile: {e}\n{source}", spec.name))?;
        let kernel = module.kernels().first().cloned().ok_or("no kernel")?;
        let a = ctx.stream(&[n]).map_err(|e| format!("{}: {e}", spec.name))?;
        let o = ctx.stream(&[n]).map_err(|e| format!("{}: {e}", spec.name))?;
        ctx.write(&a, &input).map_err(|e| format!("{}: {e}", spec.name))?;
        ctx.run(&module, &kernel, &[Arg::Stream(&a), Arg::Stream(&o)])
            .map_err(|e| format!("{}: run: {e}\n{source}", spec.name))?;
        let out = ctx.read(&o).map_err(|e| format!("{}: {e}", spec.name))?;
        match &reference {
            None => reference = Some((spec.name, out)),
            Some((ref_name, r)) => {
                for (i, (x, y)) in r.iter().zip(&out).enumerate() {
                    if x.to_bits() != y.to_bits() {
                        return Err(format!(
                            "{} diverged from {ref_name} at element {i}: {x} vs {y}\n{source}",
                            spec.name
                        ));
                    }
                }
                checked += out.len() as u64;
            }
        }
    }
    Ok(checked)
}

/// Runs `cases` seeded kernels through the tier matrix, plus the fixed
/// tier-rejected set.
///
/// # Errors
/// The first case failure, annotated with the case name (the seed and
/// index regenerate it anywhere).
pub fn run_tier_campaign(seed: u64, cases: u32, cfg: &GenConfig) -> Result<TierStats, String> {
    let matrix = tier_matrix();
    let mut stats = TierStats::default();
    for index in 0..cases {
        let case = gen_case(seed, index, cfg);
        let (tiered, fallback) = probe_plans(&case.source)
            .map_err(|e| format!("case {} (seed {seed:#x}, index {index}): {e}", case.name))?;
        stats.tier_kernels += tiered;
        stats.fallback_kernels += fallback;
        let runs: Vec<BackendOutput> = run_case(&case, &matrix).map_err(|f| {
            let detail = match &f {
                CaseFailure::Setup { backend, message } => format!("{backend}: {message}"),
                CaseFailure::Divergence(d) => d.to_string(),
            };
            format!(
                "case {} (seed {seed:#x}, index {index}): {detail}\n{}",
                case.name, case.source
            )
        })?;
        stats.cases += 1;
        stats.elements_checked += runs
            .first()
            .map(|r| r.outputs.iter().map(|o| o.len() as u64).sum::<u64>())
            .unwrap_or(0);
    }
    // The forced-fallback set: certifiable, lane-admitted, tier-rejected,
    // bit-exact through the lane engine on every spec.
    for source in TIER_REJECTED_SOURCES {
        if !probe_lane_admitted(source)? {
            return Err(format!(
                "lane planner unexpectedly rejected a tier-fallback kernel:\n{source}"
            ));
        }
        let (tiered, fallback) = probe_plans(source)?;
        if tiered != 0 || fallback == 0 {
            return Err(format!(
                "tier compiler unexpectedly admitted a kernel built to be rejected:\n{source}"
            ));
        }
        stats.fallback_kernels += fallback;
        stats.elements_checked += run_fixed(source, 3 * brook_ir::lanes::LANES + 5)?;
        stats.cases += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_interposes_the_lane_only_spec() {
        let m = tier_matrix();
        let names: Vec<_> = m.specs.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["cpu-ast", "cpu-scalar", "cpu-lanes", "cpu", "cpu-parallel"]
        );
        // The lane-only spec really is the tier-disabled lane engine.
        let ctx = (m.specs[2].make)();
        assert!(ctx.lane_execution);
        assert!(!ctx.tier_execution);
        // And the full spec has both tiers on.
        let ctx = (m.specs[3].make)();
        assert!(ctx.lane_execution && ctx.tier_execution);
    }

    #[test]
    fn rejected_sources_lane_vectorize_but_tier_fall_back() {
        for source in TIER_REJECTED_SOURCES {
            assert!(
                probe_lane_admitted(source).unwrap_or_else(|e| panic!("{e}")),
                "lane planner must admit:\n{source}"
            );
            let (t, f) = probe_plans(source).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(t, 0, "tier compiler must reject:\n{source}");
            assert!(f >= 1);
        }
    }

    #[test]
    fn small_campaign_is_bit_exact() {
        let stats =
            run_tier_campaign(0x71E2_5EED, 8, &GenConfig::default()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(stats.cases, 8 + TIER_REJECTED_SOURCES.len() as u32);
        assert!(stats.tier_kernels > 0, "{stats:?}");
        assert!(stats.fallback_kernels >= TIER_REJECTED_SOURCES.len() as u32);
        assert!(stats.elements_checked > 0);
    }
}
