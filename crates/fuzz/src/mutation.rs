//! Mutation testing for the fuzzer itself: a deliberately *buggy*
//! backend.
//!
//! A differential harness that never fires is indistinguishable from one
//! that works. [`SaboteurBackend`] wraps the serial CPU reference
//! through the public [`BackendExecutor`] trait — exactly like an
//! out-of-tree backend would plug in — and corrupts one element of one
//! output after every dispatch. The integration tests register it in the
//! matrix and assert the campaign (a) catches the divergence, (b)
//! shrinks the case, and (c) emits a repro bundle. If a refactor ever
//! silences the comparison, this canary test fails first.

use brook_auto::{BackendExecutor, BrookContext, CpuBackend, KernelLaunch, Result, StreamDesc};
use brook_cert::CertConfig;
use brook_lang::{CheckedProgram, ReduceOp};

/// How much the saboteur perturbs the corrupted element — far outside
/// every comparison tolerance.
const CORRUPTION: f32 = 0.125;

/// A CPU backend with an injected bug: after every successful dispatch,
/// the first element of the first output stream is nudged by
/// [`CORRUPTION`].
pub struct SaboteurBackend {
    inner: CpuBackend,
}

impl SaboteurBackend {
    /// A fresh sabotaged backend.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        SaboteurBackend {
            inner: CpuBackend::new(),
        }
    }

    /// A ready-made context on the sabotaged backend, named so the
    /// bitwise (`cpu*`) comparison policy applies.
    pub fn context() -> BrookContext {
        BrookContext::with_backend(Box::new(SaboteurBackend::new()), CertConfig::default())
    }
}

impl BackendExecutor for SaboteurBackend {
    fn name(&self) -> &'static str {
        "cpu-sabotaged"
    }

    fn create_stream(&mut self, desc: StreamDesc) -> Result<usize> {
        self.inner.create_stream(desc)
    }

    fn stream_desc(&self, index: usize) -> &StreamDesc {
        self.inner.stream_desc(index)
    }

    fn write_stream(&mut self, index: usize, values: &[f32]) -> Result<()> {
        self.inner.write_stream(index, values)
    }

    fn read_stream(&mut self, index: usize) -> Result<Vec<f32>> {
        self.inner.read_stream(index)
    }

    fn dispatch(&mut self, launch: &KernelLaunch<'_>) -> Result<()> {
        self.inner.dispatch(launch)?;
        // The injected bug: corrupt output element 0.
        if let Some((_, out_idx)) = launch.outputs.first() {
            let mut data = self.inner.read_stream(*out_idx)?;
            if let Some(v) = data.first_mut() {
                *v += CORRUPTION;
            }
            self.inner.write_stream(*out_idx, &data)?;
        }
        Ok(())
    }

    fn reduce(
        &mut self,
        checked: &CheckedProgram,
        ir: &brook_ir::IrProgram,
        kernel: &str,
        op: ReduceOp,
        simd: Option<&brook_ir::simd::ReduceKernel>,
        input: usize,
    ) -> Result<f32> {
        self.inner.reduce(checked, ir, kernel, op, simd, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brook_auto::Arg;

    #[test]
    fn saboteur_differs_from_reference_by_exactly_the_corruption() {
        let src = "kernel void dbl(float a<>, out float o<>) { o = a * 2.0; }";
        let mut good = BrookContext::cpu();
        let mut bad = SaboteurBackend::context();
        let run = |ctx: &mut BrookContext| {
            let module = ctx.compile(src).unwrap();
            let a = ctx.stream(&[4]).unwrap();
            let o = ctx.stream(&[4]).unwrap();
            ctx.write(&a, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            ctx.run(&module, "dbl", &[Arg::Stream(&a), Arg::Stream(&o)])
                .unwrap();
            ctx.read(&o).unwrap()
        };
        let reference = run(&mut good);
        let sabotaged = run(&mut bad);
        assert_eq!(reference, vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(sabotaged[0], reference[0] + CORRUPTION);
        assert_eq!(&sabotaged[1..], &reference[1..]);
    }
}
