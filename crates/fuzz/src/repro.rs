//! Self-contained repro bundles for diverging cases.
//!
//! A bundle under `target/fuzz-repros/<case>/` holds everything needed
//! to reproduce and debug a divergence without the fuzzer: the `.br`
//! source, the exact input data, every backend's outputs, and a README
//! describing the failure and how to re-run it.

use crate::differential::{BackendOutput, CaseFailure};
use crate::gen::FuzzCase;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The repro root: `<workspace>/target/fuzz-repros` (honouring
/// `CARGO_TARGET_DIR` when set).
pub fn repro_root() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
        });
    target.join("fuzz-repros")
}

fn render_buffer(out: &mut String, label: &str, shape: &[usize], data: &[f32]) {
    let _ = writeln!(out, "# {label} shape={shape:?}");
    for v in data {
        // Bit-exact float rendering: Rust's shortest round-trip form.
        let _ = writeln!(out, "{v}");
    }
}

/// Writes the bundle and returns its directory.
///
/// # Errors
/// Propagates filesystem errors (the caller treats them as non-fatal:
/// a failed bundle write must not mask the divergence itself).
pub fn write_repro(
    case: &FuzzCase,
    failure: &CaseFailure,
    outputs: &[BackendOutput],
    seed: u64,
) -> io::Result<PathBuf> {
    let dir = repro_root().join(&case.name);
    fs::create_dir_all(&dir)?;
    fs::write(dir.join("program.br"), &case.source)?;

    let mut inputs = String::new();
    for (i, buf) in case.inputs.iter().enumerate() {
        render_buffer(&mut inputs, &format!("s{i}"), &case.domain_shape, buf);
    }
    if let Some(g) = &case.gather {
        render_buffer(&mut inputs, "t", &g.shape, &g.data);
    }
    if !case.scalars.is_empty() {
        let _ = writeln!(inputs, "# scalars");
        for (i, v) in case.scalars.iter().enumerate() {
            let _ = writeln!(inputs, "k{i} = {v}");
        }
    }
    fs::write(dir.join("inputs.txt"), inputs)?;

    for run in outputs {
        let mut out = String::new();
        for (oi, buf) in run.outputs.iter().enumerate() {
            render_buffer(&mut out, &format!("o{oi}"), &case.domain_shape, buf);
        }
        fs::write(dir.join(format!("output-{}.txt", run.backend)), out)?;
    }

    let mut readme = String::new();
    let _ = writeln!(readme, "# Fuzz repro `{}`", case.name);
    let _ = writeln!(readme);
    let _ = writeln!(readme, "Failure: {failure}");
    let _ = writeln!(readme);
    let _ = writeln!(readme, "* campaign seed: `0x{seed:x}`");
    let _ = writeln!(readme, "* domain shape: `{:?}`", case.domain_shape);
    let _ = writeln!(readme, "* kernel source: `program.br`");
    let _ = writeln!(readme, "* inputs (streams, gather, scalars): `inputs.txt`");
    let _ = writeln!(readme, "* per-backend outputs: `output-<backend>.txt`");
    let _ = writeln!(readme);
    let _ = writeln!(
        readme,
        "Reproduce: re-run the campaign with the seed above \
         (`cargo test -p brook-fuzz`), or feed `program.br` and the \
         inputs through `brook_fuzz::differential::run_case` directly. \
         Generation is deterministic, so the same seed regenerates this \
         exact case."
    );
    fs::write(dir.join("README.md"), readme)?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::Divergence;
    use crate::gen::{gen_case, GenConfig};

    #[test]
    fn bundle_contains_all_artifacts() {
        let case = gen_case(0xEE, 0, &GenConfig::default());
        let failure = CaseFailure::Divergence(Divergence {
            backend: "gles2-packed",
            output_index: 0,
            element: 3,
            reference: 1.0,
            actual: 2.0,
        });
        let outputs = vec![BackendOutput {
            backend: "cpu",
            outputs: vec![vec![0.0; case.domain_len()]; case.n_outputs],
        }];
        let dir = write_repro(&case, &failure, &outputs, 0xEE).expect("write bundle");
        assert!(dir.join("program.br").is_file());
        assert!(dir.join("inputs.txt").is_file());
        assert!(dir.join("output-cpu.txt").is_file());
        let readme = fs::read_to_string(dir.join("README.md")).unwrap();
        assert!(readme.contains("gles2-packed"));
        assert!(readme.contains("0xee"));
        fs::remove_dir_all(&dir).ok();
    }
}
