//! Abstract-interpretation differential mode.
//!
//! The value-range analyzer (`brook_cert::absint`) makes two promises
//! this mode turns into campaign-level assertions:
//!
//! 1. **Elision is invisible.** Dropping the clamp on a proven-in-bounds
//!    gather must not change a single output bit. Every generated case
//!    runs twice per registered backend — `clamp_elision` on (the
//!    default) and off — and the two runs must agree **bit-for-bit** on
//!    every backend, device included: both runs use the same engine, so
//!    any difference is the elided clamp mattering, i.e. a wrong proof.
//! 2. **Provable faults are compile-time errors.** A fixed set of
//!    kernels whose gather index or denominator the analyzer can fold
//!    to a definite fault must be hard-rejected by certification
//!    (BA013/BA014), with the finding anchored to the faulting source
//!    line.
//!
//! The generator is biased toward boundary indices (see
//! `gen::gen_case`'s gather arm), so elision-eligible gathers at the
//! very edge of their proof — index `0`, `dim - 1`, and just past the
//! end — dominate the campaign.

use crate::differential::run_with_module;
use crate::gen::{gen_case, FuzzCase, GenConfig};
use brook_auto::{registered_backends, BrookContext, BrookError};
use brook_cert::RuleId;

/// Statistics of one abstract-interpretation campaign.
#[derive(Debug, Clone, Default)]
pub struct AbsintStats {
    /// Cases that ran elision-on vs elision-off bit-identically on
    /// every registered backend.
    pub cases: u32,
    /// Cases containing at least one gather read.
    pub gather_cases: u32,
    /// Gathers the analyzer proved in bounds (elision eligible),
    /// summed over the compile probe of every case.
    pub proven_gathers: u64,
    /// All gathers seen by the analyzer across the campaign.
    pub total_gathers: u64,
    /// Provably-faulty kernels correctly hard-rejected with the right
    /// rule on the right source line.
    pub rejected_faults: u32,
    /// Total output elements cross-checked bitwise.
    pub elements_checked: u64,
}

/// One provably-faulty kernel the gate must reject at compile time.
struct FaultCase {
    /// Why this kernel is included.
    what: &'static str,
    /// Kernel source.
    source: &'static str,
    /// The rule the analyzer must fire.
    rule: RuleId,
    /// 1-based source line the finding must anchor to.
    line: u32,
}

/// Kernels whose fault the analyzer can prove without running them.
/// Each must be rejected by every context (the analysis is not a
/// backend property), and the finding must carry the faulting line —
/// that line is what a developer sees, so the campaign pins it.
const FAULT_CASES: &[FaultCase] = &[
    FaultCase {
        what: "constant negative gather index",
        source: "kernel void oob_const(float t[], out float o<>) {
    o = t[(-3)];
}",
        rule: RuleId::ProvableGatherBounds,
        line: 2,
    },
    FaultCase {
        what: "gather index folded through int() to a negative constant",
        source: "kernel void oob_folded(float t[], out float o<>) {
    float i = 1.5 - 4.0;
    o = t[int(i)];
}",
        rule: RuleId::ProvableGatherBounds,
        line: 3,
    },
    FaultCase {
        what: "loop counter range proves the 2-D gather row negative",
        source: "kernel void oob_loop(float t[][], out float o<>) {
    float s = 0.0;
    int i;
    for (i = 0; i < 4; i++) {
        s += t[i - 10][i];
    }
    o = s;
}",
        rule: RuleId::ProvableGatherBounds,
        line: 5,
    },
    FaultCase {
        what: "literal zero denominator",
        source: "kernel void div_const(float a<>, out float o<>) {
    o = a / 0.0;
}",
        rule: RuleId::ProvableDivByZero,
        line: 2,
    },
    FaultCase {
        what: "denominator folded to zero through a local",
        source: "kernel void div_folded(float a<>, out float o<>) {
    float z = 2.0 - 2.0;
    o = a / z;
}",
        rule: RuleId::ProvableDivByZero,
        line: 3,
    },
];

/// Compile-probes one source on the serial CPU context and returns the
/// analyzer's `(proven, total)` gather counts from the compliance
/// report.
///
/// # Errors
/// Compile failures — a spurious certification rejection of a generated
/// (legal) kernel fails the campaign here.
fn probe_analysis(source: &str) -> Result<(u64, u64), String> {
    let mut ctx = BrookContext::cpu();
    let module = ctx.compile(source).map_err(|e| format!("probe compile: {e}"))?;
    let mut proven = 0u64;
    let mut total = 0u64;
    for k in &module.report.analysis.kernels {
        proven += k.proven_gathers as u64;
        total += k.total_gathers as u64;
    }
    Ok((proven, total))
}

/// Runs one case elision-on and elision-off in fresh contexts of the
/// same spec and bit-compares the outputs.
///
/// # Errors
/// Compile/run failures and the first differing bit, named by backend.
fn run_elision_pair(name: &'static str, make: fn() -> BrookContext, case: &FuzzCase) -> Result<u64, String> {
    let mut on = make();
    let mut off = make();
    off.clamp_elision = false;
    let m_on = on
        .compile(&case.source)
        .map_err(|e| format!("{name} (elision on): compile: {e}"))?;
    let m_off = off
        .compile(&case.source)
        .map_err(|e| format!("{name} (elision off): compile: {e}"))?;
    let o_on = run_with_module(&mut on, &m_on, case).map_err(|e| format!("{name} (elision on): {e}"))?;
    let o_off = run_with_module(&mut off, &m_off, case).map_err(|e| format!("{name} (elision off): {e}"))?;
    let mut checked = 0u64;
    for (oi, (a, b)) in o_on.iter().zip(&o_off).enumerate() {
        if a.len() != b.len() {
            return Err(format!(
                "{name}: output {oi} length changed with elision: {} vs {}",
                a.len(),
                b.len()
            ));
        }
        for (ei, (x, y)) in a.iter().zip(b).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Err(format!(
                    "{name}: output {oi} element {ei}: elision on {x} vs off {y} — \
                     an elided clamp changed a result, so a bounds proof is wrong"
                ));
            }
        }
        checked += a.len() as u64;
    }
    Ok(checked)
}

/// Asserts one provably-faulty kernel is hard-rejected with the right
/// rule on the right line.
///
/// # Errors
/// Acceptance, the wrong rule, or a finding on the wrong line.
fn check_fault_case(fc: &FaultCase) -> Result<(), String> {
    let mut ctx = BrookContext::cpu();
    let report = match ctx.compile(fc.source) {
        Err(BrookError::Certification(report)) => report,
        Err(e) => {
            return Err(format!(
                "fault case ({}) failed before certification: {e}\n{}",
                fc.what, fc.source
            ));
        }
        Ok(_) => {
            return Err(format!(
                "fault case ({}) compiled — the analyzer missed a provable fault:\n{}",
                fc.what, fc.source
            ));
        }
    };
    let finding = report
        .kernels
        .iter()
        .flat_map(|k| k.violations())
        .find(|f| f.rule == fc.rule)
        .ok_or_else(|| {
            format!(
                "fault case ({}) rejected, but not by {}:\n{}",
                fc.what, fc.rule, fc.source
            )
        })?;
    if finding.span.line != fc.line {
        return Err(format!(
            "fault case ({}): {} finding anchored to line {} instead of {}:\n{}",
            fc.what, fc.rule, finding.span.line, fc.line, fc.source
        ));
    }
    Ok(())
}

/// Runs `cases` seeded kernels through the elision on/off bit-compare
/// on every registered backend, then the fixed provably-faulty set.
///
/// # Errors
/// The first case failure, annotated with the case name (the seed and
/// index regenerate it anywhere).
pub fn run_absint_campaign(seed: u64, cases: u32, cfg: &GenConfig) -> Result<AbsintStats, String> {
    let mut stats = AbsintStats::default();
    for index in 0..cases {
        let case = gen_case(seed, index, cfg);
        let ctx = |e: String| {
            format!(
                "case {} (seed {seed:#x}, index {index}): {e}\n{}",
                case.name, case.source
            )
        };
        let (proven, total) = probe_analysis(&case.source).map_err(ctx)?;
        stats.proven_gathers += proven;
        stats.total_gathers += total;
        if case.gather.is_some() {
            stats.gather_cases += 1;
        }
        for spec in registered_backends() {
            stats.elements_checked += run_elision_pair(spec.name, spec.make, &case).map_err(ctx)?;
        }
        stats.cases += 1;
    }
    for fc in FAULT_CASES {
        check_fault_case(fc)?;
        stats.rejected_faults += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_cases_are_rejected_with_line_accurate_findings() {
        for fc in FAULT_CASES {
            check_fault_case(fc).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn elision_toggle_is_bitwise_invisible_on_a_proven_kernel() {
        // sgemm-shaped: every gather is proven, so elision-on really
        // drops clamps, and the outputs must still match bit for bit.
        let case = gen_case(0xAB51_0001, 0, &GenConfig::default());
        for spec in registered_backends() {
            run_elision_pair(spec.name, spec.make, &case).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "8.4M-element domain — run in release (CI fuzz job)"
    )]
    fn big_linear_domain_keeps_clamp_and_matches_bitwise() {
        // For launch positions at/above 2^23 the runtime's f32
        // `(f + 0.5).floor()` index conversion stops being exact
        // (round-to-even ties round up), so `proven_fits_dyn` must
        // refuse elision on domains whose indices reach 2^23 — the
        // clamp stays and elision on/off must remain bitwise identical.
        // Domain 2^23 + 4 puts the last position on a tie that would
        // index one past the end were the clamp (unsoundly) elided.
        // CPU backends only: the GL simulators are far too slow at this
        // scale, and every engine shares the same launch-time guard.
        let n = (1usize << 23) + 4;
        let source = "kernel void f(float t[], out float o<>) {\n\
            float2 p = indexof(o);\n\
            o = t[p.x];\n\
            }"
        .to_owned();
        let program = brook_lang::parse(&source).expect("fixture parses");
        let data: Vec<f32> = (0..n).map(|i| (i % 251) as f32).collect();
        let case = FuzzCase {
            name: "absint_big_linear_domain".to_owned(),
            source,
            program,
            domain_shape: vec![n],
            inputs: Vec::new(),
            gather: Some(crate::gen::GatherData { shape: vec![n], data }),
            scalars: Vec::new(),
            n_outputs: 1,
            data_seed: 0,
            special_floats: false,
        };
        for spec in registered_backends() {
            if !spec.name.starts_with("cpu") {
                continue;
            }
            run_elision_pair(spec.name, spec.make, &case).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn small_campaign_passes_and_proves_gathers() {
        let stats =
            run_absint_campaign(0xAB51_0002, 12, &GenConfig::default()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(stats.cases, 12);
        assert_eq!(stats.rejected_faults, FAULT_CASES.len() as u32);
        assert!(stats.elements_checked > 0);
    }
}
